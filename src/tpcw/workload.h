// The TPC-W workload as the paper uses it (§IX-D1): the 11 join queries of
// Fig. 15 (Q1-Q11), the 13 write statements of Fig. 16 (W1-W13), and the
// single-table reads extracted from the servlets (S1-S8). The soundex
// queries and the multi-row DELETE are excluded, exactly as in the paper.
#pragma once

#include "sql/workload.h"

namespace synergy::tpcw {

/// Full workload (joins + writes + single-table reads).
sql::Workload BuildWorkload();

/// Ids of the join queries (Fig. 15), in order Q1..Q11.
std::vector<std::string> JoinQueryIds();
/// Ids of the write statements (Fig. 16), in order W1..W13.
std::vector<std::string> WriteStatementIds();
/// Ids of the single-table read statements.
std::vector<std::string> SingleTableReadIds();

}  // namespace synergy::tpcw
