// Deterministic TPC-W data generator and workload parameter provider.
//
// Cardinalities follow the paper's setup (§IX-D1): NUM_ITEMS = 10*NUM_CUST
// and Customer:Orders = 1:10; TPC-W's own derived counts otherwise
// (authors = items/4, addresses = 2*customers, 92 countries). String fields
// are shortened relative to the spec (e.g. i_desc) to keep the in-memory
// store compact; EXPERIMENTS.md documents this substitution.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "exec/row_codec.h"

namespace synergy::tpcw {

struct ScaleConfig {
  int64_t num_customers = 1000;
  uint64_t seed = 20170904;  // CLUSTER'17

  int64_t num_items() const { return num_customers * 10; }
  int64_t num_authors() const { return std::max<int64_t>(1, num_items() / 4); }
  int64_t num_addresses() const { return num_customers * 2; }
  int64_t num_countries() const { return 92; }
  int64_t num_orders() const { return num_customers * 10; }
  int64_t num_carts() const { return std::max<int64_t>(1, num_customers / 10); }
  int64_t num_orders_tmp() const {
    return std::min<int64_t>(3333, num_orders());
  }
  /// Upper bound on Order_line ids (lines per order in [1,5]).
  int64_t max_order_line_id() const { return num_orders() * 5; }
};

/// Sink receiving (relation, tuple) pairs in FK-topological order.
using TupleSink =
    std::function<Status(const std::string& relation, const exec::Tuple&)>;

/// Streams the whole database through `sink`. Deterministic in `config`.
Status GenerateDatabase(const ScaleConfig& config, const TupleSink& sink);

/// Subjects used for i_subject (TPC-W's 24 subjects).
const std::vector<std::string>& Subjects();

/// Deterministic, valid parameters for a workload statement. `fresh_id`
/// monotonically grows so repeated inserts never collide.
class ParamProvider {
 public:
  explicit ParamProvider(const ScaleConfig& config, uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  StatusOr<std::vector<Value>> ParamsFor(const std::string& stmt_id);

 private:
  int64_t NextFreshId() { return fresh_base_++; }

  ScaleConfig config_;
  Rng rng_;
  int64_t fresh_base_ = 1000000000;  // above every generated id
};

}  // namespace synergy::tpcw
