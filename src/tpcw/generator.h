// Deterministic TPC-W data generator and workload parameter provider.
//
// Cardinalities follow the paper's setup (§IX-D1): NUM_ITEMS = 10*NUM_CUST
// and Customer:Orders = 1:10; TPC-W's own derived counts otherwise
// (authors = items/4, addresses = 2*customers, 92 countries). String fields
// are shortened relative to the spec (e.g. i_desc) to keep the in-memory
// store compact; EXPERIMENTS.md documents this substitution.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "exec/row_codec.h"

namespace synergy::tpcw {

struct ScaleConfig {
  int64_t num_customers = 1000;
  uint64_t seed = 20170904;  // CLUSTER'17
  /// >1: systems load through GenerateDatabaseParallel with this many
  /// worker threads (needed to make the 1M-customer load tractable).
  int load_threads = 1;

  int64_t num_items() const { return num_customers * 10; }
  int64_t num_authors() const { return std::max<int64_t>(1, num_items() / 4); }
  int64_t num_addresses() const { return num_customers * 2; }
  int64_t num_countries() const { return 92; }
  int64_t num_orders() const { return num_customers * 10; }
  int64_t num_carts() const { return std::max<int64_t>(1, num_customers / 10); }
  int64_t num_orders_tmp() const {
    return std::min<int64_t>(3333, num_orders());
  }
  /// Upper bound on Order_line ids (lines per order in [1,5]).
  int64_t max_order_line_id() const { return num_orders() * 5; }
};

/// Sink receiving (relation, tuple) pairs in FK-topological order.
using TupleSink =
    std::function<Status(const std::string& relation, const exec::Tuple&)>;

/// Streams the whole database through `sink`. Deterministic in `config`.
Status GenerateDatabase(const ScaleConfig& config, const TupleSink& sink);

/// Thread-aware sink for the parallel loader: `thread_id` identifies the
/// calling worker (0..load_threads-1) so the receiving side can route to a
/// per-thread session. Must be safe to call from different threads with
/// different thread ids.
using ParallelTupleSink = std::function<Status(
    int thread_id, const std::string& relation, const exec::Tuple&)>;

/// Parallel loader: generates each relation in fixed-size id blocks, each
/// block with its own RNG seeded from (config.seed, relation, block), and
/// fans blocks out over config.load_threads workers. The generated data is
/// deterministic in `config.seed` and *independent of the thread count* —
/// only the interleaving changes. Phases follow FK-topological order with a
/// barrier between them (a tuple's ancestors are fully loaded before it is
/// emitted), so FK-walking view maintenance sees complete chains.
///
/// The data stream intentionally differs from sequential GenerateDatabase
/// in two ways: field values come from per-block RNGs rather than one
/// rolling RNG, and Order_line ids are derived as (o_id-1)*5 + line + 1
/// (sparse, within max_order_line_id()) instead of a global counter.
Status GenerateDatabaseParallel(const ScaleConfig& config,
                                const ParallelTupleSink& sink);

/// Subjects used for i_subject (TPC-W's 24 subjects).
const std::vector<std::string>& Subjects();

/// Deterministic, valid parameters for a workload statement. `fresh_id`
/// monotonically grows so repeated inserts never collide.
class ParamProvider {
 public:
  explicit ParamProvider(const ScaleConfig& config, uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  StatusOr<std::vector<Value>> ParamsFor(const std::string& stmt_id);

  /// Interleaves this provider's fresh-id stream with `num_streams - 1`
  /// sibling providers (stream k draws base + k, base + k + num_streams, …)
  /// so concurrent per-thread providers never hand out colliding insert
  /// keys. Call before the first ParamsFor.
  void PartitionFreshIds(int stream, int num_streams) {
    fresh_base_ = 1000000000 + stream;
    fresh_step_ = num_streams;
  }

 private:
  int64_t NextFreshId() {
    const int64_t id = fresh_base_;
    fresh_base_ += fresh_step_;
    return id;
  }

  ScaleConfig config_;
  Rng rng_;
  int64_t fresh_base_ = 1000000000;  // above every generated id
  int64_t fresh_step_ = 1;
};

}  // namespace synergy::tpcw
