#include "tpcw/generator.h"

#include <algorithm>
#include <thread>

namespace synergy::tpcw {
namespace {

std::string Uname(int64_t c_id) { return "USER" + std::to_string(c_id); }

// ---- parallel loader ----

// Ids per block: one RNG seed per block makes the generated data a pure
// function of (seed, block size), independent of how many threads consume
// the blocks.
constexpr int64_t kLoadBlock = 1024;

uint64_t BlockSeed(uint64_t seed, uint64_t phase, int64_t block) {
  // splitmix64's output mixing decorrelates nearby seeds, so a cheap
  // combination is enough.
  return seed ^ (phase << 40) ^ static_cast<uint64_t>(block);
}

/// Emits one id of a phase using that block's RNG.
using EmitFn = std::function<Status(Rng& rng, int thread_id, int64_t id)>;

/// Runs one FK-topological phase: ids 1..count split into kLoadBlock-sized
/// blocks, block b handled by thread b % threads. Joins all workers before
/// returning (the inter-phase barrier).
Status ParallelPhase(int threads, uint64_t seed, uint64_t phase, int64_t count,
                     const EmitFn& emit) {
  if (count <= 0) return Status::Ok();
  const int64_t num_blocks = (count + kLoadBlock - 1) / kLoadBlock;
  const int n = static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(threads, num_blocks)));
  std::vector<Status> results(static_cast<size_t>(n), Status::Ok());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    workers.emplace_back([&, tid] {
      for (int64_t b = tid; b < num_blocks; b += n) {
        Rng rng(BlockSeed(seed, phase, b));
        const int64_t lo = b * kLoadBlock + 1;
        const int64_t hi = std::min(count, (b + 1) * kLoadBlock);
        for (int64_t id = lo; id <= hi; ++id) {
          Status s = emit(rng, tid, id);
          if (!s.ok()) {
            results[static_cast<size_t>(tid)] = std::move(s);
            return;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (Status& s : results) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

const std::vector<std::string>& Subjects() {
  static const std::vector<std::string> kSubjects = {
      "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS",
      "COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE",
      "MYSTERY", "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE",
      "RELIGION", "ROMANCE", "SELF-HELP", "SCIENCE-NATURE",
      "SCIENCE-FICTION", "SPORTS", "YOUTH", "TRAVEL"};
  return kSubjects;
}

Status GenerateDatabase(const ScaleConfig& cfg, const TupleSink& sink) {
  Rng rng(cfg.seed);
  // Countries.
  for (int64_t id = 1; id <= cfg.num_countries(); ++id) {
    SYNERGY_RETURN_IF_ERROR(sink(
        "Country", {{"co_id", Value(id)},
                    {"co_name", Value("COUNTRY" + std::to_string(id))},
                    {"co_exchange", Value(rng.UniformReal(0.1, 10.0))},
                    {"co_currency", Value(rng.AlphaString(3))}}));
  }
  // Addresses.
  for (int64_t id = 1; id <= cfg.num_addresses(); ++id) {
    SYNERGY_RETURN_IF_ERROR(sink(
        "Address",
        {{"addr_id", Value(id)},
         {"addr_street1", Value(rng.AlphaString(16))},
         {"addr_street2", Value(rng.AlphaString(16))},
         {"addr_city", Value(rng.AlphaString(10))},
         {"addr_state", Value(rng.AlphaString(2))},
         {"addr_zip", Value(rng.AlphaString(5))},
         {"addr_co_id", Value(rng.Uniform(1, cfg.num_countries()))}}));
  }
  // Authors.
  for (int64_t id = 1; id <= cfg.num_authors(); ++id) {
    SYNERGY_RETURN_IF_ERROR(sink(
        "Author", {{"a_id", Value(id)},
                   {"a_fname", Value(rng.AlphaString(8))},
                   {"a_lname", Value(rng.AlphaString(10))},
                   {"a_mname", Value(rng.AlphaString(1))},
                   {"a_dob", Value(rng.Uniform(1900, 1999))},
                   {"a_bio", Value(rng.AlphaString(60))}}));
  }
  // Customers.
  for (int64_t id = 1; id <= cfg.num_customers; ++id) {
    SYNERGY_RETURN_IF_ERROR(sink(
        "Customer",
        {{"c_id", Value(id)},
         {"c_uname", Value(Uname(id))},
         {"c_passwd", Value(rng.AlphaString(8))},
         {"c_fname", Value(rng.AlphaString(8))},
         {"c_lname", Value(rng.AlphaString(10))},
         {"c_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
         {"c_phone", Value(rng.AlphaString(10))},
         {"c_email", Value(rng.AlphaString(12))},
         {"c_since", Value(rng.Uniform(20000101, 20170101))},
         {"c_last_login", Value(rng.Uniform(20170101, 20170930))},
         {"c_login", Value(rng.Uniform(0, 1000000))},
         {"c_expiration", Value(rng.Uniform(20180101, 20200101))},
         {"c_discount", Value(rng.UniformReal(0.0, 0.5))},
         {"c_balance", Value(rng.UniformReal(-100.0, 100.0))},
         {"c_ytd_pmt", Value(rng.UniformReal(0.0, 10000.0))},
         {"c_birthdate", Value(rng.Uniform(19200101, 19991231))},
         {"c_data", Value(rng.AlphaString(80))}}));
  }
  // Items.
  const auto& subjects = Subjects();
  for (int64_t id = 1; id <= cfg.num_items(); ++id) {
    auto related = [&] { return Value(rng.Uniform(1, cfg.num_items())); };
    SYNERGY_RETURN_IF_ERROR(sink(
        "Item",
        {{"i_id", Value(id)},
         {"i_title", Value("TITLE" + std::to_string(rng.Next() % 100000))},
         {"i_a_id", Value(rng.Uniform(1, cfg.num_authors()))},
         {"i_pub_date", Value(rng.Uniform(19500101, 20170101))},
         {"i_publisher", Value(rng.AlphaString(14))},
         {"i_subject",
          Value(subjects[static_cast<size_t>(rng.Next() % subjects.size())])},
         {"i_desc", Value(rng.AlphaString(100))},
         {"i_related1", related()},
         {"i_related2", related()},
         {"i_related3", related()},
         {"i_related4", related()},
         {"i_related5", related()},
         {"i_thumbnail", Value(rng.AlphaString(20))},
         {"i_image", Value(rng.AlphaString(20))},
         {"i_srp", Value(rng.UniformReal(1.0, 300.0))},
         {"i_cost", Value(rng.UniformReal(1.0, 300.0))},
         {"i_avail", Value(rng.Uniform(20170101, 20171231))},
         {"i_stock", Value(rng.Uniform(10, 30))},
         {"i_isbn", Value(rng.AlphaString(13))},
         {"i_page", Value(rng.Uniform(20, 9999))},
         {"i_backing", Value(rng.AlphaString(5))},
         {"i_dimensions", Value(rng.AlphaString(12))}}));
  }
  // Orders + lines + credit-card transactions (Customer:Orders = 1:10).
  int64_t next_ol_id = 1;
  for (int64_t o_id = 1; o_id <= cfg.num_orders(); ++o_id) {
    const int64_t c_id = (o_id - 1) % cfg.num_customers + 1;
    SYNERGY_RETURN_IF_ERROR(sink(
        "Orders",
        {{"o_id", Value(o_id)},
         {"o_c_id", Value(c_id)},
         {"o_date", Value(rng.Uniform(20150101, 20170930))},
         {"o_sub_total", Value(rng.UniformReal(10.0, 1000.0))},
         {"o_tax", Value(rng.UniformReal(0.0, 80.0))},
         {"o_total", Value(rng.UniformReal(10.0, 1100.0))},
         {"o_ship_type", Value(rng.AlphaString(6))},
         {"o_ship_date", Value(rng.Uniform(20150101, 20171001))},
         {"o_bill_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
         {"o_ship_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
         {"o_status", Value(rng.AlphaString(8))}}));
    const int64_t lines = rng.Uniform(1, 5);
    for (int64_t l = 0; l < lines; ++l) {
      SYNERGY_RETURN_IF_ERROR(sink(
          "Order_line",
          {{"ol_id", Value(next_ol_id++)},
           {"ol_o_id", Value(o_id)},
           {"ol_i_id", Value(rng.Uniform(1, cfg.num_items()))},
           {"ol_qty", Value(rng.Uniform(1, 10))},
           {"ol_discount", Value(rng.UniformReal(0.0, 0.3))},
           {"ol_comments", Value(rng.AlphaString(20))}}));
    }
    SYNERGY_RETURN_IF_ERROR(sink(
        "CC_Xacts",
        {{"cx_o_id", Value(o_id)},
         {"cx_type", Value(rng.Next() % 2 ? "VISA" : "AMEX")},
         {"cx_num", Value(rng.AlphaString(16))},
         {"cx_name", Value(rng.AlphaString(14))},
         {"cx_expiry", Value(rng.Uniform(20180101, 20220101))},
         {"cx_auth_id", Value(rng.AlphaString(15))},
         {"cx_xact_amt", Value(rng.UniformReal(10.0, 1100.0))},
         {"cx_xact_date", Value(rng.Uniform(20150101, 20171001))},
         {"cx_co_id", Value(rng.Uniform(1, cfg.num_countries()))}}));
  }
  // Shopping carts.
  for (int64_t sc = 1; sc <= cfg.num_carts(); ++sc) {
    SYNERGY_RETURN_IF_ERROR(
        sink("Shopping_cart", {{"sc_id", Value(sc)},
                               {"sc_time", Value(rng.Uniform(0, 1 << 30))}}));
    const int64_t lines = rng.Uniform(1, 3);
    for (int64_t l = 0; l < lines; ++l) {
      SYNERGY_RETURN_IF_ERROR(sink(
          "Shopping_cart_line",
          {{"scl_sc_id", Value(sc)},
           {"scl_i_id", Value(rng.Uniform(1, cfg.num_items()))},
           {"scl_qty", Value(rng.Uniform(1, 5))}}));
    }
  }
  // Orders_tmp: the most recent orders (highest ids).
  for (int64_t k = 0; k < cfg.num_orders_tmp(); ++k) {
    SYNERGY_RETURN_IF_ERROR(
        sink("Orders_tmp", {{"ot_o_id", Value(cfg.num_orders() - k)}}));
  }
  return Status::Ok();
}

Status GenerateDatabaseParallel(const ScaleConfig& cfg,
                                const ParallelTupleSink& sink) {
  const int threads = std::max(1, cfg.load_threads);
  const auto& subjects = Subjects();

  // Phase tags feed BlockSeed, so each relation gets its own seed stream.
  enum : uint64_t {
    kCountry = 1, kAddress, kAuthor, kCustomer, kItem, kOrders, kCarts, kTmp
  };

  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kCountry, cfg.num_countries(),
      [&](Rng& rng, int tid, int64_t id) {
        return sink(tid, "Country",
                    {{"co_id", Value(id)},
                     {"co_name", Value("COUNTRY" + std::to_string(id))},
                     {"co_exchange", Value(rng.UniformReal(0.1, 10.0))},
                     {"co_currency", Value(rng.AlphaString(3))}});
      }));
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kAddress, cfg.num_addresses(),
      [&](Rng& rng, int tid, int64_t id) {
        return sink(tid, "Address",
                    {{"addr_id", Value(id)},
                     {"addr_street1", Value(rng.AlphaString(16))},
                     {"addr_street2", Value(rng.AlphaString(16))},
                     {"addr_city", Value(rng.AlphaString(10))},
                     {"addr_state", Value(rng.AlphaString(2))},
                     {"addr_zip", Value(rng.AlphaString(5))},
                     {"addr_co_id", Value(rng.Uniform(1, cfg.num_countries()))}});
      }));
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kAuthor, cfg.num_authors(),
      [&](Rng& rng, int tid, int64_t id) {
        return sink(tid, "Author",
                    {{"a_id", Value(id)},
                     {"a_fname", Value(rng.AlphaString(8))},
                     {"a_lname", Value(rng.AlphaString(10))},
                     {"a_mname", Value(rng.AlphaString(1))},
                     {"a_dob", Value(rng.Uniform(1900, 1999))},
                     {"a_bio", Value(rng.AlphaString(60))}});
      }));
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kCustomer, cfg.num_customers,
      [&](Rng& rng, int tid, int64_t id) {
        return sink(tid, "Customer",
                    {{"c_id", Value(id)},
                     {"c_uname", Value(Uname(id))},
                     {"c_passwd", Value(rng.AlphaString(8))},
                     {"c_fname", Value(rng.AlphaString(8))},
                     {"c_lname", Value(rng.AlphaString(10))},
                     {"c_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
                     {"c_phone", Value(rng.AlphaString(10))},
                     {"c_email", Value(rng.AlphaString(12))},
                     {"c_since", Value(rng.Uniform(20000101, 20170101))},
                     {"c_last_login", Value(rng.Uniform(20170101, 20170930))},
                     {"c_login", Value(rng.Uniform(0, 1000000))},
                     {"c_expiration", Value(rng.Uniform(20180101, 20200101))},
                     {"c_discount", Value(rng.UniformReal(0.0, 0.5))},
                     {"c_balance", Value(rng.UniformReal(-100.0, 100.0))},
                     {"c_ytd_pmt", Value(rng.UniformReal(0.0, 10000.0))},
                     {"c_birthdate", Value(rng.Uniform(19200101, 19991231))},
                     {"c_data", Value(rng.AlphaString(80))}});
      }));
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kItem, cfg.num_items(),
      [&](Rng& rng, int tid, int64_t id) {
        auto related = [&] { return Value(rng.Uniform(1, cfg.num_items())); };
        return sink(
            tid, "Item",
            {{"i_id", Value(id)},
             {"i_title", Value("TITLE" + std::to_string(rng.Next() % 100000))},
             {"i_a_id", Value(rng.Uniform(1, cfg.num_authors()))},
             {"i_pub_date", Value(rng.Uniform(19500101, 20170101))},
             {"i_publisher", Value(rng.AlphaString(14))},
             {"i_subject",
              Value(subjects[static_cast<size_t>(rng.Next() %
                                                 subjects.size())])},
             {"i_desc", Value(rng.AlphaString(100))},
             {"i_related1", related()},
             {"i_related2", related()},
             {"i_related3", related()},
             {"i_related4", related()},
             {"i_related5", related()},
             {"i_thumbnail", Value(rng.AlphaString(20))},
             {"i_image", Value(rng.AlphaString(20))},
             {"i_srp", Value(rng.UniformReal(1.0, 300.0))},
             {"i_cost", Value(rng.UniformReal(1.0, 300.0))},
             {"i_avail", Value(rng.Uniform(20170101, 20171231))},
             {"i_stock", Value(rng.Uniform(10, 30))},
             {"i_isbn", Value(rng.AlphaString(13))},
             {"i_page", Value(rng.Uniform(20, 9999))},
             {"i_backing", Value(rng.AlphaString(5))},
             {"i_dimensions", Value(rng.AlphaString(12))}});
      }));
  // Orders carry their lines and credit-card row; ol_id is derived from
  // (o_id, line) so no cross-thread counter is needed.
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kOrders, cfg.num_orders(),
      [&](Rng& rng, int tid, int64_t o_id) {
        const int64_t c_id = (o_id - 1) % cfg.num_customers + 1;
        SYNERGY_RETURN_IF_ERROR(sink(
            tid, "Orders",
            {{"o_id", Value(o_id)},
             {"o_c_id", Value(c_id)},
             {"o_date", Value(rng.Uniform(20150101, 20170930))},
             {"o_sub_total", Value(rng.UniformReal(10.0, 1000.0))},
             {"o_tax", Value(rng.UniformReal(0.0, 80.0))},
             {"o_total", Value(rng.UniformReal(10.0, 1100.0))},
             {"o_ship_type", Value(rng.AlphaString(6))},
             {"o_ship_date", Value(rng.Uniform(20150101, 20171001))},
             {"o_bill_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
             {"o_ship_addr_id", Value(rng.Uniform(1, cfg.num_addresses()))},
             {"o_status", Value(rng.AlphaString(8))}}));
        const int64_t lines = rng.Uniform(1, 5);
        for (int64_t l = 0; l < lines; ++l) {
          SYNERGY_RETURN_IF_ERROR(sink(
              tid, "Order_line",
              {{"ol_id", Value((o_id - 1) * 5 + l + 1)},
               {"ol_o_id", Value(o_id)},
               {"ol_i_id", Value(rng.Uniform(1, cfg.num_items()))},
               {"ol_qty", Value(rng.Uniform(1, 10))},
               {"ol_discount", Value(rng.UniformReal(0.0, 0.3))},
               {"ol_comments", Value(rng.AlphaString(20))}}));
        }
        return sink(
            tid, "CC_Xacts",
            {{"cx_o_id", Value(o_id)},
             {"cx_type", Value(rng.Next() % 2 ? "VISA" : "AMEX")},
             {"cx_num", Value(rng.AlphaString(16))},
             {"cx_name", Value(rng.AlphaString(14))},
             {"cx_expiry", Value(rng.Uniform(20180101, 20220101))},
             {"cx_auth_id", Value(rng.AlphaString(15))},
             {"cx_xact_amt", Value(rng.UniformReal(10.0, 1100.0))},
             {"cx_xact_date", Value(rng.Uniform(20150101, 20171001))},
             {"cx_co_id", Value(rng.Uniform(1, cfg.num_countries()))}});
      }));
  SYNERGY_RETURN_IF_ERROR(ParallelPhase(
      threads, cfg.seed, kCarts, cfg.num_carts(),
      [&](Rng& rng, int tid, int64_t sc) {
        SYNERGY_RETURN_IF_ERROR(
            sink(tid, "Shopping_cart",
                 {{"sc_id", Value(sc)},
                  {"sc_time", Value(rng.Uniform(0, 1 << 30))}}));
        const int64_t lines = rng.Uniform(1, 3);
        for (int64_t l = 0; l < lines; ++l) {
          SYNERGY_RETURN_IF_ERROR(
              sink(tid, "Shopping_cart_line",
                   {{"scl_sc_id", Value(sc)},
                    {"scl_i_id", Value(rng.Uniform(1, cfg.num_items()))},
                    {"scl_qty", Value(rng.Uniform(1, 5))}}));
        }
        return Status::Ok();
      }));
  return ParallelPhase(
      threads, cfg.seed, kTmp, cfg.num_orders_tmp(),
      [&](Rng&, int tid, int64_t k) {
        return sink(tid, "Orders_tmp",
                    {{"ot_o_id", Value(cfg.num_orders() - (k - 1))}});
      });
}

StatusOr<std::vector<Value>> ParamProvider::ParamsFor(
    const std::string& id) {
  const auto& subjects = Subjects();
  auto subject = [&] {
    return Value(subjects[static_cast<size_t>(rng_.Next() % subjects.size())]);
  };
  auto cust = [&] { return Value(rng_.Uniform(1, config_.num_customers)); };
  auto item = [&] { return Value(rng_.Uniform(1, config_.num_items())); };
  auto order = [&] { return Value(rng_.Uniform(1, config_.num_orders())); };
  auto cart = [&] { return Value(rng_.Uniform(1, config_.num_carts())); };
  auto addr = [&] { return Value(rng_.Uniform(1, config_.num_addresses())); };

  if (id == "Q1") return std::vector<Value>{order()};
  if (id == "Q2" || id == "Q3") {
    return std::vector<Value>{Value(Uname(rng_.Uniform(1, config_.num_customers)))};
  }
  if (id == "Q4" || id == "Q5" || id == "Q10") {
    return std::vector<Value>{subject()};
  }
  if (id == "Q6" || id == "Q9") return std::vector<Value>{item()};
  if (id == "Q7") return std::vector<Value>{order()};
  if (id == "Q8") return std::vector<Value>{cart()};
  if (id == "Q11") {
    const Value i = item();
    return std::vector<Value>{i, i};
  }
  if (id == "W1") {
    return std::vector<Value>{Value(NextFreshId()), cust(), Value(20171001),
                              Value(100.0),          Value(8.0),
                              Value(108.0),          Value("FEDEX"),
                              Value(20171002),       addr(),
                              addr(),                Value("PENDING")};
  }
  if (id == "W2") {
    return std::vector<Value>{Value(NextFreshId()),
                              Value("VISA"),
                              Value(rng_.AlphaString(16)),
                              Value(rng_.AlphaString(14)),
                              Value(20191231),
                              Value(rng_.AlphaString(15)),
                              Value(108.0),
                              Value(20171001),
                              Value(rng_.Uniform(1, config_.num_countries()))};
  }
  if (id == "W3") {
    return std::vector<Value>{Value(NextFreshId()), order(), item(),
                              Value(rng_.Uniform(1, 10)), Value(0.1),
                              Value(rng_.AlphaString(20))};
  }
  if (id == "W4") {
    const int64_t fresh = NextFreshId();
    return std::vector<Value>{Value(fresh),
                              Value("USER" + std::to_string(fresh)),
                              Value(rng_.AlphaString(8)),
                              Value(rng_.AlphaString(8)),
                              Value(rng_.AlphaString(10)),
                              addr(),
                              Value(rng_.AlphaString(10)),
                              Value(rng_.AlphaString(12)),
                              Value(20171001),
                              Value(20171001),
                              Value(0),
                              Value(20200101),
                              Value(0.1),
                              Value(0.0),
                              Value(0.0),
                              Value(19800101),
                              Value(rng_.AlphaString(80))};
  }
  if (id == "W5") {
    return std::vector<Value>{Value(NextFreshId()),
                              Value(rng_.AlphaString(16)),
                              Value(rng_.AlphaString(16)),
                              Value(rng_.AlphaString(10)),
                              Value(rng_.AlphaString(2)),
                              Value(rng_.AlphaString(5)),
                              Value(rng_.Uniform(1, config_.num_countries()))};
  }
  if (id == "W6") {
    return std::vector<Value>{Value(NextFreshId()), Value(20171001)};
  }
  if (id == "W7") {
    return std::vector<Value>{cart(), Value(NextFreshId()),
                              Value(rng_.Uniform(1, 5))};
  }
  if (id == "W8") return std::vector<Value>{cart(), item()};
  if (id == "W9") {
    return std::vector<Value>{Value(19.99), Value(20171001),
                              Value(rng_.AlphaString(14)), item()};
  }
  if (id == "W10") {
    return std::vector<Value>{Value(rng_.AlphaString(20)),
                              Value(rng_.AlphaString(20)), item()};
  }
  if (id == "W11") return std::vector<Value>{Value(20171002), cart()};
  if (id == "W12") {
    return std::vector<Value>{Value(rng_.Uniform(1, 9)), cart(), item()};
  }
  if (id == "W13") {
    return std::vector<Value>{Value(50.0), Value(1000.0), Value(20171001),
                              cust()};
  }
  if (id == "S1") return std::vector<Value>{cust()};
  if (id == "S2" || id == "S3") return std::vector<Value>{item()};
  if (id == "S4") return std::vector<Value>{addr()};
  if (id == "S5") {
    return std::vector<Value>{Value(rng_.Uniform(1, config_.num_countries()))};
  }
  if (id == "S6" || id == "S8") return std::vector<Value>{cart()};
  if (id == "S7") return std::vector<Value>{cust()};
  return Status::InvalidArgument("unknown statement id " + id);
}

}  // namespace synergy::tpcw
