#include "tpcw/schema.h"

#include <cstdlib>

namespace synergy::tpcw {
namespace {

using DT = DataType;

void Must(Status s) {
  if (!s.ok()) {
    std::fprintf(stderr, "tpcw schema: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

sql::Catalog BuildCatalog() {
  sql::Catalog cat;
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Country",
      .columns = {{"co_id", DT::kInt},
                  {"co_name", DT::kString},
                  {"co_exchange", DT::kDouble},
                  {"co_currency", DT::kString}},
      .primary_key = {"co_id"}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Address",
      .columns = {{"addr_id", DT::kInt},
                  {"addr_street1", DT::kString},
                  {"addr_street2", DT::kString},
                  {"addr_city", DT::kString},
                  {"addr_state", DT::kString},
                  {"addr_zip", DT::kString},
                  {"addr_co_id", DT::kInt}},
      .primary_key = {"addr_id"},
      .foreign_keys = {{{"addr_co_id"}, "Country"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Author",
      .columns = {{"a_id", DT::kInt},
                  {"a_fname", DT::kString},
                  {"a_lname", DT::kString},
                  {"a_mname", DT::kString},
                  {"a_dob", DT::kInt},
                  {"a_bio", DT::kString}},
      .primary_key = {"a_id"}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Customer",
      .columns = {{"c_id", DT::kInt},
                  {"c_uname", DT::kString},
                  {"c_passwd", DT::kString},
                  {"c_fname", DT::kString},
                  {"c_lname", DT::kString},
                  {"c_addr_id", DT::kInt},
                  {"c_phone", DT::kString},
                  {"c_email", DT::kString},
                  {"c_since", DT::kInt},
                  {"c_last_login", DT::kInt},
                  {"c_login", DT::kInt},
                  {"c_expiration", DT::kInt},
                  {"c_discount", DT::kDouble},
                  {"c_balance", DT::kDouble},
                  {"c_ytd_pmt", DT::kDouble},
                  {"c_birthdate", DT::kInt},
                  {"c_data", DT::kString}},
      .primary_key = {"c_id"},
      .foreign_keys = {{{"c_addr_id"}, "Address"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Item",
      .columns = {{"i_id", DT::kInt},
                  {"i_title", DT::kString},
                  {"i_a_id", DT::kInt},
                  {"i_pub_date", DT::kInt},
                  {"i_publisher", DT::kString},
                  {"i_subject", DT::kString},
                  {"i_desc", DT::kString},
                  {"i_related1", DT::kInt},
                  {"i_related2", DT::kInt},
                  {"i_related3", DT::kInt},
                  {"i_related4", DT::kInt},
                  {"i_related5", DT::kInt},
                  {"i_thumbnail", DT::kString},
                  {"i_image", DT::kString},
                  {"i_srp", DT::kDouble},
                  {"i_cost", DT::kDouble},
                  {"i_avail", DT::kInt},
                  {"i_stock", DT::kInt},
                  {"i_isbn", DT::kString},
                  {"i_page", DT::kInt},
                  {"i_backing", DT::kString},
                  {"i_dimensions", DT::kString}},
      .primary_key = {"i_id"},
      .foreign_keys = {{{"i_a_id"}, "Author"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Orders",
      .columns = {{"o_id", DT::kInt},
                  {"o_c_id", DT::kInt},
                  {"o_date", DT::kInt},
                  {"o_sub_total", DT::kDouble},
                  {"o_tax", DT::kDouble},
                  {"o_total", DT::kDouble},
                  {"o_ship_type", DT::kString},
                  {"o_ship_date", DT::kInt},
                  {"o_bill_addr_id", DT::kInt},
                  {"o_ship_addr_id", DT::kInt},
                  {"o_status", DT::kString}},
      .primary_key = {"o_id"},
      .foreign_keys = {{{"o_c_id"}, "Customer"},
                       {{"o_bill_addr_id"}, "Address"},
                       {{"o_ship_addr_id"}, "Address"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Order_line",
      .columns = {{"ol_id", DT::kInt},
                  {"ol_o_id", DT::kInt},
                  {"ol_i_id", DT::kInt},
                  {"ol_qty", DT::kInt},
                  {"ol_discount", DT::kDouble},
                  {"ol_comments", DT::kString}},
      .primary_key = {"ol_id"},
      .foreign_keys = {{{"ol_o_id"}, "Orders"}, {{"ol_i_id"}, "Item"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "CC_Xacts",
      .columns = {{"cx_o_id", DT::kInt},
                  {"cx_type", DT::kString},
                  {"cx_num", DT::kString},
                  {"cx_name", DT::kString},
                  {"cx_expiry", DT::kInt},
                  {"cx_auth_id", DT::kString},
                  {"cx_xact_amt", DT::kDouble},
                  {"cx_xact_date", DT::kInt},
                  {"cx_co_id", DT::kInt}},
      .primary_key = {"cx_o_id"},
      .foreign_keys = {{{"cx_o_id"}, "Orders"}, {{"cx_co_id"}, "Country"}}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Shopping_cart",
      .columns = {{"sc_id", DT::kInt}, {"sc_time", DT::kInt}},
      .primary_key = {"sc_id"}}));
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Shopping_cart_line",
      .columns = {{"scl_sc_id", DT::kInt},
                  {"scl_i_id", DT::kInt},
                  {"scl_qty", DT::kInt}},
      .primary_key = {"scl_sc_id", "scl_i_id"},
      .foreign_keys = {{{"scl_sc_id"}, "Shopping_cart"},
                       {{"scl_i_id"}, "Item"}}}));
  // Materialized recent-orders subset ("Orders tmp table" in the paper's
  // Q10/Q11). No FK metadata: joins against it are never key/foreign-key
  // joins, so Synergy never materializes them.
  Must(cat.AddRelation(sql::RelationDef{
      .name = "Orders_tmp",
      .columns = {{"ot_o_id", DT::kInt}},
      .primary_key = {"ot_o_id"}}));

  // Base covered indexes (assumed present in the input schema, §VI-C).
  auto index = [&](const std::string& name, const std::string& rel,
                   std::vector<std::string> cols, bool unique,
                   sql::IndexCardinality cardinality) {
    sql::IndexDef ix;
    ix.name = name;
    ix.relation = rel;
    ix.indexed_columns = std::move(cols);
    for (const sql::Column& c : cat.FindRelation(rel)->columns) {
      ix.covered_columns.push_back(c.name);
    }
    ix.unique = unique;
    ix.cardinality = cardinality;
    Must(cat.AddIndex(std::move(ix)));
  };
  using IC = sql::IndexCardinality;
  index("ix_customer_uname", "Customer", {"c_uname"}, true, IC::kHigh);
  index("ix_orders_c_id", "Orders", {"o_c_id"}, false, IC::kHigh);
  index("ix_item_subject", "Item", {"i_subject"}, false, IC::kLow);
  index("ix_item_a_id", "Item", {"i_a_id"}, false, IC::kHigh);
  index("ix_ol_o_id", "Order_line", {"ol_o_id"}, false, IC::kHigh);
  index("ix_ol_i_id", "Order_line", {"ol_i_id"}, false, IC::kHigh);
  return cat;
}

std::vector<std::string> Roots() { return {"Author", "Customer", "Country"}; }

}  // namespace synergy::tpcw
