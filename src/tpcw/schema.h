// TPC-W schema (the paper's benchmark database, §IX-D).
//
// Matches the standard TPC-W relational schema with the paper's
// modifications: Customer:Orders cardinality is 10 and NUM_ITEMS is derived
// from NUM_CUST. "Orders_tmp" materializes the recent-orders subquery that
// the paper denotes "Orders tmp table" for Q10/Q11 (the best-seller /
// related-items servlets).
#pragma once

#include "sql/catalog.h"

namespace synergy::tpcw {

/// Base relations + base covered indexes (no views).
sql::Catalog BuildCatalog();

/// Roots set used by the paper: Q_TPC-W = {Author, Customer, Country}.
std::vector<std::string> Roots();

}  // namespace synergy::tpcw
