#include "tpcw/workload.h"

#include <cstdlib>

namespace synergy::tpcw {
namespace {

void Must(Status s) {
  if (!s.ok()) {
    std::fprintf(stderr, "tpcw workload: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

sql::Workload BuildWorkload() {
  sql::Workload w;
  // ---- Join queries (Fig. 15) ----
  // Q1: order display — items of an order.
  Must(w.Add("Q1",
             "SELECT * FROM Item as i, Order_line as ol "
             "WHERE ol.ol_i_id = i.i_id AND ol.ol_o_id = ?"));
  // Q2: most recent order of a customer.
  Must(w.Add("Q2",
             "SELECT * FROM Customer as c, Orders as o "
             "WHERE c.c_id = o.o_c_id AND c.c_uname = ? "
             "ORDER BY o_date DESC, o_id DESC LIMIT 1"));
  // Q3: customer with address and country.
  Must(w.Add("Q3",
             "SELECT * FROM Customer as c, Address as a, Country as co "
             "WHERE c.c_addr_id = a.addr_id AND a.addr_co_id = co.co_id "
             "AND c.c_uname = ?"));
  // Q4: new products by subject, by title.
  Must(w.Add("Q4",
             "SELECT * FROM Author as a, Item as i "
             "WHERE i.i_a_id = a.a_id AND i.i_subject = ? "
             "ORDER BY i_title LIMIT 50"));
  // Q5: new products by subject, newest first.
  Must(w.Add("Q5",
             "SELECT * FROM Author as a, Item as i "
             "WHERE i.i_a_id = a.a_id AND i.i_subject = ? "
             "ORDER BY i_pub_date DESC, i_title LIMIT 50"));
  // Q6: product detail with author.
  Must(w.Add("Q6",
             "SELECT * FROM Author as a, Item as i "
             "WHERE i.i_a_id = a.a_id AND i.i_id = ?"));
  // Q7: order display — customer, both addresses and countries.
  Must(w.Add("Q7",
             "SELECT * FROM Orders as o, Customer as c, "
             "Address as ship_addr, Address as bill_addr, "
             "Country as ship_co, Country as bill_co "
             "WHERE o.o_id = ? AND o.o_c_id = c.c_id "
             "AND o.o_ship_addr_id = ship_addr.addr_id "
             "AND o.o_bill_addr_id = bill_addr.addr_id "
             "AND ship_addr.addr_co_id = ship_co.co_id "
             "AND bill_addr.addr_co_id = bill_co.co_id"));
  // Q8: shopping cart contents.
  Must(w.Add("Q8",
             "SELECT * FROM Item as i, Shopping_cart_line as scl "
             "WHERE scl.scl_i_id = i.i_id AND scl.scl_sc_id = ?"));
  // Q9: related item (Item self join).
  Must(w.Add("Q9",
             "SELECT j.i_id AS rel_id, j.i_thumbnail AS rel_thumb "
             "FROM Item as i, Item as j "
             "WHERE i.i_related1 = j.i_id AND i.i_id = ?"));
  // Q10: best sellers over the recent-orders tmp table.
  Must(w.Add("Q10",
             "SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, "
             "SUM(ol.ol_qty) AS qty "
             "FROM Author as a, Item as i, Order_line as ol, Orders_tmp as ot "
             "WHERE a.a_id = i.i_a_id AND ol.ol_i_id = i.i_id "
             "AND ol.ol_o_id = ot.ot_o_id AND i.i_subject = ? "
             "GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname "
             "ORDER BY qty DESC LIMIT 50"));
  // Q11: admin related-items (Order_line self join over recent orders).
  Must(w.Add("Q11",
             "SELECT ol2.ol_i_id, SUM(ol2.ol_qty) AS qty "
             "FROM Order_line as ol, Orders_tmp as ot, Order_line as ol2 "
             "WHERE ol.ol_o_id = ot.ot_o_id AND ol2.ol_o_id = ot.ot_o_id "
             "AND ol.ol_i_id = ? AND ol2.ol_i_id <> ? "
             "GROUP BY ol2.ol_i_id ORDER BY qty DESC LIMIT 5"));

  // ---- Write statements (Fig. 16) ----
  Must(w.Add("W1",
             "INSERT INTO Orders (o_id, o_c_id, o_date, o_sub_total, o_tax, "
             "o_total, o_ship_type, o_ship_date, o_bill_addr_id, "
             "o_ship_addr_id, o_status) "
             "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"));
  Must(w.Add("W2",
             "INSERT INTO CC_Xacts (cx_o_id, cx_type, cx_num, cx_name, "
             "cx_expiry, cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) "
             "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"));
  Must(w.Add("W3",
             "INSERT INTO Order_line (ol_id, ol_o_id, ol_i_id, ol_qty, "
             "ol_discount, ol_comments) VALUES (?, ?, ?, ?, ?, ?)"));
  Must(w.Add("W4",
             "INSERT INTO Customer (c_id, c_uname, c_passwd, c_fname, "
             "c_lname, c_addr_id, c_phone, c_email, c_since, c_last_login, "
             "c_login, c_expiration, c_discount, c_balance, c_ytd_pmt, "
             "c_birthdate, c_data) "
             "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"));
  Must(w.Add("W5",
             "INSERT INTO Address (addr_id, addr_street1, addr_street2, "
             "addr_city, addr_state, addr_zip, addr_co_id) "
             "VALUES (?, ?, ?, ?, ?, ?, ?)"));
  Must(w.Add("W6",
             "INSERT INTO Shopping_cart (sc_id, sc_time) VALUES (?, ?)"));
  Must(w.Add("W7",
             "INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) "
             "VALUES (?, ?, ?)"));
  Must(w.Add("W8",
             "DELETE FROM Shopping_cart_line "
             "WHERE scl_sc_id = ? AND scl_i_id = ?"));
  Must(w.Add("W9",
             "UPDATE Item SET i_cost = ?, i_pub_date = ?, i_publisher = ? "
             "WHERE i_id = ?"));
  Must(w.Add("W10",
             "UPDATE Item SET i_thumbnail = ?, i_image = ? WHERE i_id = ?"));
  Must(w.Add("W11", "UPDATE Shopping_cart SET sc_time = ? WHERE sc_id = ?"));
  Must(w.Add("W12",
             "UPDATE Shopping_cart_line SET scl_qty = ? "
             "WHERE scl_sc_id = ? AND scl_i_id = ?"));
  Must(w.Add("W13",
             "UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, "
             "c_last_login = ? WHERE c_id = ?"));

  // ---- Single-table reads (servlet statements without joins) ----
  Must(w.Add("S1", "SELECT * FROM Customer WHERE c_id = ?"));
  Must(w.Add("S2", "SELECT * FROM Item WHERE i_id = ?"));
  Must(w.Add("S3",
             "SELECT i_related1, i_related2, i_related3, i_related4, "
             "i_related5 FROM Item WHERE i_id = ?"));
  Must(w.Add("S4", "SELECT * FROM Address WHERE addr_id = ?"));
  Must(w.Add("S5", "SELECT co_id, co_name FROM Country WHERE co_id = ?"));
  Must(w.Add("S6",
             "SELECT * FROM Shopping_cart_line WHERE scl_sc_id = ?"));
  Must(w.Add("S7", "SELECT * FROM Orders WHERE o_c_id = ?"));
  Must(w.Add("S8", "SELECT sc_time FROM Shopping_cart WHERE sc_id = ?"));
  return w;
}

std::vector<std::string> JoinQueryIds() {
  return {"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11"};
}

std::vector<std::string> WriteStatementIds() {
  return {"W1", "W2", "W3", "W4", "W5", "W6", "W7",
          "W8", "W9", "W10", "W11", "W12", "W13"};
}

std::vector<std::string> SingleTableReadIds() {
  return {"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"};
}

}  // namespace synergy::tpcw
