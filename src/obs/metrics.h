// Cluster-wide metrics registry: counters, gauges and log-bucketed
// histograms published by every layer (hbase RPC boundary, admission,
// failover, txn WAL/locks/slaves, executor, Synergy view maintenance) and
// rendered as one snapshot — Prometheus-style text or JSON — so benches and
// tests read layer-level state from a single place instead of per-struct
// tallies.
//
// Hot-path design: a Counter is a set of cache-line-aligned stripes of
// relaxed atomics, one picked per thread, so concurrent clients never
// contend on a line; a Histogram stripes {mutex + LatencyHistogram} the
// same way (Observe is rare enough per op that a striped mutex is cheap,
// and LatencyHistogram::Add is not atomic-friendly). Handles returned by
// GetCounter/GetGauge/GetHistogram are stable for the registry's lifetime,
// so layers resolve them once at construction and publish with a single
// relaxed add per event.
//
// Naming convention (docs/OBSERVABILITY.md): snake_case families prefixed
// by layer (`hbase_`, `client_`, `txn_`, `exec_`, `synergy_`); counters end
// in `_total`, histograms name their unit (`_us`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace synergy::obs {

/// Monotonic event counter. Inc is one relaxed fetch_add on a per-thread
/// stripe; Value/Reset sum/clear all stripes (read-side, not hot).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    stripes_[ThisThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kStripes = 16;
  static size_t ThisThreadStripe();

  std::array<Stripe, kStripes> stripes_{};
};

/// Point-in-time state (e.g. live region servers). Unlike counters, gauges
/// are not tallies: ResetAll leaves them untouched.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution metric over LatencyHistogram (log buckets, p50/p95/p99).
class Histogram {
 public:
  void Observe(double value) {
    Stripe& s = stripes_[ThisThreadStripe()];
    std::lock_guard lock(s.mu);
    s.h.Add(value);
  }
  /// Merged view across stripes (read-side).
  LatencyHistogram Merged() const {
    LatencyHistogram out;
    for (const Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      out.Merge(s.h);
    }
    return out;
  }
  void Reset() {
    for (Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      s.h = LatencyHistogram{};
    }
  }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    LatencyHistogram h;
  };
  static constexpr size_t kStripes = 8;
  static size_t ThisThreadStripe();

  std::array<Stripe, kStripes> stripes_{};
};

struct HistogramSummary {
  size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every metric, in deterministic (name) order.
struct RegistrySnapshot {
  struct CounterRow {
    std::string name, help;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name, help;
    HistogramSummary summary;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Prometheus text exposition (counters/gauges plain, histograms as
  /// summaries with quantile labels plus _sum/_count).
  std::string ToPrometheusText() const;
  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,mean,min,max,p50,p95,p99}}}.
  std::string ToJson() const;

  /// Counter value by name; 0 when absent (test/assertion convenience).
  uint64_t CounterValue(std::string_view name) const;
  bool HasCounter(std::string_view name) const;
};

/// Thread-safe named-metric registry. Get* registers on first use and
/// returns a stable handle; name order makes snapshots deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  RegistrySnapshot Snapshot() const;

  /// Zeroes every counter and histogram in one place, so mid-run resets
  /// cannot desynchronize the per-layer tallies that read through here
  /// (admission, failover, client op counters). Gauges are state, not
  /// tallies, and keep their value.
  void ResetAll();

 private:
  template <typename T>
  struct Entry {
    std::string help;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace synergy::obs
