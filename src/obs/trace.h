// Per-query trace spans over the virtual cost model.
//
// A TraceCollector is attached to one hbase::Session (Session::SetTrace) and
// records a tree of spans — parse/rewrite/plan/bind/execute down to
// individual RPCs — where each span's duration is the virtual-µs charged to
// the session's sim::CostMeter between enter and exit. Because every layer
// charges the same meter, the durations of a query's root spans sum exactly
// to its total virtual cost: the decomposition is exact, not sampled.
//
// Threading contract: a collector belongs to one logical client session.
// Like the session itself, it may be driven from a txn slave worker thread,
// but only one thread at a time touches it (serialized by the slave queue /
// future handoff), so it needs no internal locking.
//
// Typical use:
//   obs::TraceCollector trace(&session.meter());
//   session.SetTrace(&trace);
//   ... run a statement ...
//   std::cout << trace.Render();
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/cost_model.h"

namespace synergy::obs {

struct TraceSpan {
  std::string name;
  int parent = -1;  // index into TraceCollector::spans(), -1 = root
  int depth = 0;
  double start_us = 0.0;  // meter reading at enter (0 for pre-measured leaves)
  double end_us = 0.0;    // meter reading at exit
  bool open = false;      // still on the open stack
  // Layer annotations (server id, queue wait, lock retries, shed/degraded
  // flags, ...), insertion-ordered.
  std::vector<std::pair<std::string, std::string>> notes;

  double duration_us() const { return end_us - start_us; }
};

class TraceCollector {
 public:
  /// `meter` is the session's cost meter; spans measure its virtual time.
  explicit TraceCollector(const sim::CostMeter* meter) : meter_(meter) {}

  /// Record per-RPC leaf spans too (one span per Get/Put/ScanBatch/...).
  /// Off by default: statement-level spans are usually enough and RPC spans
  /// can run into the thousands for scan-heavy queries.
  void set_rpc_spans(bool on) { rpc_spans_ = on; }
  bool rpc_spans() const { return rpc_spans_; }

  /// Opens a span as a child of the innermost open span. Returns its index.
  int OpenSpan(std::string name);
  /// Closes span `index`, stamping the current meter reading.
  void CloseSpan(int index);
  /// Attaches an annotation to span `index`.
  void Note(int index, std::string key, std::string value);
  /// Attaches an annotation to the innermost open span (no-op when none) —
  /// lets deep layers (admission queue, failover degraded reads) annotate
  /// whatever span is active without plumbing indices through.
  void NoteCurrent(std::string key, std::string value);
  /// Records an already-measured child of the innermost open span, e.g. a
  /// plan-node cost computed by EXPLAIN ANALYZE (start_us stays 0; only the
  /// duration is meaningful).
  int AddLeaf(std::string name, double duration_us);

  void Clear();

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// Sum of root-span durations == total virtual-µs this trace accounts for.
  double RootUs() const;

  /// Indented tree: one line per span with virtual-µs and annotations.
  std::string Render() const;

 private:
  double Now() const;

  const sim::CostMeter* meter_;
  bool rpc_spans_ = false;
  std::vector<TraceSpan> spans_;
  std::vector<int> open_;  // stack of open span indices
};

/// RAII span: opens on construction, closes on destruction (or explicit
/// Close() when the instrumented region ends before scope exit). A null
/// collector makes every operation a no-op, so instrumented code pays only
/// a pointer test when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* trace, const char* name)
      : trace_(trace), index_(trace ? trace->OpenSpan(name) : -1) {}
  ~ScopedSpan() { Close(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Note(std::string key, std::string value) {
    if (trace_ != nullptr && index_ >= 0) {
      trace_->Note(index_, std::move(key), std::move(value));
    }
  }
  void Close() {
    if (trace_ != nullptr && index_ >= 0) {
      trace_->CloseSpan(index_);
      index_ = -1;
    }
  }

 private:
  TraceCollector* trace_;
  int index_;
};

}  // namespace synergy::obs
