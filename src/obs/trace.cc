#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace synergy::obs {

double TraceCollector::Now() const {
  return meter_ != nullptr ? meter_->micros() : 0.0;
}

int TraceCollector::OpenSpan(std::string name) {
  TraceSpan span;
  span.name = std::move(name);
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = span.parent < 0 ? 0 : spans_[span.parent].depth + 1;
  span.start_us = Now();
  span.open = true;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void TraceCollector::CloseSpan(int index) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  TraceSpan& span = spans_[index];
  if (!span.open) return;
  span.end_us = Now();
  span.open = false;
  // RAII closes LIFO; erase defensively anywhere on the stack in case an
  // explicit Close() interleaves.
  auto it = std::find(open_.rbegin(), open_.rend(), index);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

void TraceCollector::Note(int index, std::string key, std::string value) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[index].notes.emplace_back(std::move(key), std::move(value));
}

void TraceCollector::NoteCurrent(std::string key, std::string value) {
  if (open_.empty()) return;
  Note(open_.back(), std::move(key), std::move(value));
}

int TraceCollector::AddLeaf(std::string name, double duration_us) {
  TraceSpan span;
  span.name = std::move(name);
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = span.parent < 0 ? 0 : spans_[span.parent].depth + 1;
  span.start_us = 0.0;
  span.end_us = duration_us;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  return index;
}

void TraceCollector::Clear() {
  spans_.clear();
  open_.clear();
}

double TraceCollector::RootUs() const {
  double total = 0.0;
  for (const TraceSpan& span : spans_) {
    if (span.parent < 0) total += span.duration_us();
  }
  return total;
}

std::string TraceCollector::Render() const {
  std::string out;
  for (const TraceSpan& span : spans_) {
    char line[160];
    std::snprintf(line, sizeof(line), "%*s%-*s %12.1f us", span.depth * 2, "",
                  std::max(1, 34 - span.depth * 2), span.name.c_str(),
                  span.duration_us());
    out += line;
    for (const auto& [key, value] : span.notes) {
      out += "  " + key + "=" + value;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace synergy::obs
