#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace synergy::obs {
namespace {

// Stripe assignment: each thread draws a ticket once and keeps it for its
// lifetime, so a thread always lands on the same stripe (no per-call rng)
// and threads spread round-robin across stripes.
size_t NextThreadTicket() {
  static std::atomic<size_t> next{0};
  thread_local const size_t ticket = next.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

// Shortest-round-trip double rendering that is always valid JSON: no inf/nan
// (clamped to 0, neither can arise from the meter/histograms), and always
// parseable as a number.
void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

// Metric names are [a-z0-9_:] by convention; help strings may carry
// arbitrary prose, so escape them for the JSON rendering.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

HistogramSummary Summarize(const LatencyHistogram& h) {
  HistogramSummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.mean = h.mean();
  // LatencyHistogram exposes mean/count but not a running sum.
  s.sum = s.mean * static_cast<double>(s.count);
  s.min = h.min();
  s.max = h.max();
  // Percentile takes p in [0, 100], not a fraction.
  s.p50 = h.Percentile(50.0);
  s.p95 = h.Percentile(95.0);
  s.p99 = h.Percentile(99.0);
  return s;
}

}  // namespace

size_t Counter::ThisThreadStripe() { return NextThreadTicket() % kStripes; }
size_t Histogram::ThisThreadStripe() { return NextThreadTicket() % kStripes; }

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry<Counter>& e = counters_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<Counter>();
    e.help = help;
  }
  return e.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry<Gauge>& e = gauges_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<Gauge>();
    e.help = help;
  }
  return e.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry<Histogram>& e = histograms_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<Histogram>();
    e.help = help;
  }
  return e.metric.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, e] : counters_) {
    snap.counters.push_back({name, e.help, e.metric->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, e] : gauges_) {
    snap.gauges.push_back({name, e.help, e.metric->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, e] : histograms_) {
    snap.histograms.push_back({name, e.help, Summarize(e.metric->Merged())});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard lock(mutex_);
  for (auto& [name, e] : counters_) e.metric->Reset();
  for (auto& [name, e] : histograms_) e.metric->Reset();
}

std::string RegistrySnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterRow& c : counters) {
    if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " ";
    AppendUint(&out, c.value);
    out.push_back('\n');
  }
  for (const GaugeRow& g : gauges) {
    if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendDouble(&out, g.value);
    out.push_back('\n');
  }
  for (const HistogramRow& h : histograms) {
    if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
    out += "# TYPE " + h.name + " summary\n";
    const struct { const char* q; double v; } quantiles[] = {
        {"0.5", h.summary.p50}, {"0.95", h.summary.p95}, {"0.99", h.summary.p99}};
    for (const auto& q : quantiles) {
      out += h.name + "{quantile=\"" + q.q + "\"} ";
      AppendDouble(&out, q.v);
      out.push_back('\n');
    }
    out += h.name + "_sum ";
    AppendDouble(&out, h.summary.sum);
    out.push_back('\n');
    out += h.name + "_count ";
    AppendUint(&out, h.summary.count);
    out.push_back('\n');
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterRow& c : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, c.name);
    out.push_back(':');
    AppendUint(&out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeRow& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, g.name);
    out.push_back(':');
    AppendDouble(&out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramRow& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, h.name);
    out += ":{\"count\":";
    AppendUint(&out, h.summary.count);
    out += ",\"sum\":";
    AppendDouble(&out, h.summary.sum);
    out += ",\"mean\":";
    AppendDouble(&out, h.summary.mean);
    out += ",\"min\":";
    AppendDouble(&out, h.summary.min);
    out += ",\"max\":";
    AppendDouble(&out, h.summary.max);
    out += ",\"p50\":";
    AppendDouble(&out, h.summary.p50);
    out += ",\"p95\":";
    AppendDouble(&out, h.summary.p95);
    out += ",\"p99\":";
    AppendDouble(&out, h.summary.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

uint64_t RegistrySnapshot::CounterValue(std::string_view name) const {
  for (const CounterRow& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool RegistrySnapshot::HasCounter(std::string_view name) const {
  for (const CounterRow& c : counters) {
    if (c.name == name) return true;
  }
  return false;
}

}  // namespace synergy::obs
