#include "synergy/query_rewrite.h"

#include <algorithm>
#include <map>
#include <set>

namespace synergy::core {
namespace {

/// FROM alias -> relation name for a statement.
std::map<std::string, std::string> AliasMap(const sql::SelectStatement& stmt) {
  std::map<std::string, std::string> out;
  for (const sql::TableRef& ref : stmt.from) out[ref.alias] = ref.table;
  return out;
}

/// Relation a (possibly unqualified) column belongs to, or "".
std::string ColumnRelation(const sql::SelectStatement& stmt,
                           const sql::Catalog& catalog,
                           const sql::ColumnRef& ref) {
  if (!ref.qualifier.empty()) {
    for (const sql::TableRef& t : stmt.from) {
      if (t.alias == ref.qualifier) return t.table;
    }
    return "";
  }
  std::string found;
  for (const sql::TableRef& t : stmt.from) {
    const sql::RelationDef* rel = catalog.FindRelation(t.table);
    if (rel != nullptr && rel->HasColumn(ref.column)) {
      if (!found.empty() && found != t.table) return "";
      found = t.table;
    }
  }
  return found;
}

/// True if `pred` is the FK join condition between two consecutive members
/// of `view`.
bool IsInternalJoin(const sql::Predicate& pred,
                    const sql::SelectStatement& stmt,
                    const sql::Catalog& catalog, const SelectedView& view) {
  if (!pred.IsEquiJoin()) return false;
  const std::string lhs = ColumnRelation(stmt, catalog, pred.lhs.column);
  const std::string rhs = ColumnRelation(stmt, catalog, pred.rhs.column);
  if (lhs.empty() || rhs.empty()) return false;
  for (size_t i = 1; i < view.relations.size(); ++i) {
    const std::string& parent = view.relations[i - 1];
    const std::string& child = view.relations[i];
    if ((lhs == parent && rhs == child) || (lhs == child && rhs == parent)) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<RewriteResult> RewriteQuery(const sql::SelectStatement& stmt,
                                     const sql::Catalog& catalog,
                                     const std::vector<SelectedView>& views) {
  RewriteResult result;
  result.stmt = stmt;
  if (views.empty()) return result;

  const std::map<std::string, std::string> aliases = AliasMap(stmt);
  // relation -> view replacing it (only views whose members all appear in
  // this statement's FROM are applicable).
  std::map<std::string, const SelectedView*> replaced_by;
  std::vector<const SelectedView*> applicable;
  for (const SelectedView& view : views) {
    bool all_present = true;
    for (const std::string& rel : view.relations) {
      const bool present = std::any_of(
          stmt.from.begin(), stmt.from.end(),
          [&](const sql::TableRef& t) { return t.table == rel; });
      if (!present) {
        all_present = false;
        break;
      }
    }
    if (!all_present) continue;
    applicable.push_back(&view);
    for (const std::string& rel : view.relations) {
      replaced_by[rel] = &view;
    }
  }
  if (applicable.empty()) return result;

  // New FROM: one entry per applicable view (at its first member's
  // position), plus untouched relations.
  sql::SelectStatement out;
  out.items = stmt.items;
  out.group_by = stmt.group_by;
  out.order_by = stmt.order_by;
  out.limit = stmt.limit;
  std::set<const SelectedView*> emitted;
  for (const sql::TableRef& ref : stmt.from) {
    auto it = replaced_by.find(ref.table);
    if (it == replaced_by.end()) {
      out.from.push_back(ref);
      continue;
    }
    if (emitted.insert(it->second).second) {
      const std::string name = it->second->Name();
      out.from.push_back(sql::TableRef{name, name});
    }
  }

  // Rewrite a column reference: anything belonging to a replaced relation
  // re-qualifies to the view (attribute names are unique inside a view).
  auto rewrite_col = [&](sql::ColumnRef* col) {
    const std::string rel = ColumnRelation(stmt, catalog, *col);
    auto it = replaced_by.find(rel);
    if (it != replaced_by.end()) {
      col->qualifier = it->second->Name();
    }
  };
  auto rewrite_operand = [&](sql::Operand* op) {
    if (op->kind == sql::Operand::Kind::kColumn) rewrite_col(&op->column);
  };

  // WHERE: drop internal join conditions, rewrite the rest. Parameter
  // indices are preserved (no parameterized predicate is ever internal —
  // internal joins are column=column).
  for (const sql::Predicate& pred : stmt.where) {
    bool internal = false;
    for (const SelectedView* view : applicable) {
      if (IsInternalJoin(pred, stmt, catalog, *view)) {
        internal = true;
        break;
      }
    }
    if (internal) continue;
    sql::Predicate p = pred;
    rewrite_operand(&p.lhs);
    rewrite_operand(&p.rhs);
    out.where.push_back(std::move(p));
  }
  for (sql::SelectItem& item : out.items) {
    if (!item.star && !item.count_star) rewrite_col(&item.column);
  }
  for (sql::ColumnRef& col : out.group_by) rewrite_col(&col);
  for (sql::OrderItem& o : out.order_by) rewrite_col(&o.column);

  result.stmt = std::move(out);
  result.changed = true;
  for (const SelectedView* view : applicable) {
    result.views_used.push_back(view->Name());
  }
  return result;
}

StatusOr<std::vector<std::string>> RewriteWorkload(
    sql::Workload* workload, const sql::Catalog& catalog,
    const std::vector<RootedTree>& trees) {
  std::vector<std::string> rewritten;
  for (sql::WorkloadStatement& stmt : workload->statements) {
    auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
    if (sel == nullptr) continue;
    const std::vector<SelectedView> views =
        SelectViewsForQuery(*sel, catalog, trees);
    if (views.empty()) continue;
    SYNERGY_ASSIGN_OR_RETURN(rw, RewriteQuery(*sel, catalog, views));
    if (rw.changed) {
      stmt.ast = sql::Statement(std::move(rw.stmt));
      stmt.sql = sql::StatementToString(stmt.ast);
      rewritten.push_back(stmt.id);
    }
  }
  return rewritten;
}

}  // namespace synergy::core
