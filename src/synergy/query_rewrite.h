// Query re-writing using selected views (§VI-B): replace a view's
// constituent relations with the view, and drop join conditions whose two
// sides both live inside a single view.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "synergy/view_selection.h"

namespace synergy::core {

struct RewriteResult {
  sql::SelectStatement stmt;
  /// Names of views the rewritten statement reads.
  std::vector<std::string> views_used;
  bool changed = false;
};

/// Rewrites one query with the views selected for it. `views` must be the
/// output of SelectViewsForQuery on this statement (or a superset covering
/// the same paths).
StatusOr<RewriteResult> RewriteQuery(const sql::SelectStatement& stmt,
                                     const sql::Catalog& catalog,
                                     const std::vector<SelectedView>& views);

/// Rewrites every SELECT in the workload (W is replaced in place; write
/// statements pass through untouched). Returns ids of rewritten statements.
StatusOr<std::vector<std::string>> RewriteWorkload(
    sql::Workload* workload, const sql::Catalog& catalog,
    const std::vector<RootedTree>& trees);

}  // namespace synergy::core
