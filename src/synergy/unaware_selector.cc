#include "synergy/unaware_selector.h"

#include <algorithm>
#include <map>
#include <set>

namespace synergy::core {

double EstimateRelationBytes(const sql::RelationDef& rel, size_t rows) {
  double width = 0;
  for (const sql::Column& col : rel.columns) {
    width += col.type == DataType::kString ? 24.0 : 8.0;
  }
  return width * static_cast<double>(rows);
}

namespace {

/// Maximal FK chains inside one query's join-edge set.
std::vector<SelectedView> MaximalChains(
    const std::vector<QueryJoinEdge>& joins) {
  std::vector<SelectedView> out;
  std::set<std::string> has_incoming;
  for (const QueryJoinEdge& e : joins) has_incoming.insert(e.edge.child);
  // Walk from every chain head.
  for (const QueryJoinEdge& head : joins) {
    if (has_incoming.contains(head.edge.parent)) continue;
    // DFS over all chains starting at this head edge.
    std::function<void(const std::string&, SelectedView)> walk =
        [&](const std::string& node, SelectedView path) {
          bool extended = false;
          for (const QueryJoinEdge& e : joins) {
            if (e.edge.parent != node) continue;
            SelectedView next = path;
            next.relations.push_back(e.edge.child);
            next.edges.push_back(e.edge.fk);
            walk(e.edge.child, std::move(next));
            extended = true;
          }
          if (!extended && path.relations.size() >= 2) {
            out.push_back(std::move(path));
          }
        };
    SelectedView seed;
    seed.root = head.edge.parent;  // no rooted tree: the chain head
    seed.relations.push_back(head.edge.parent);
    seed.edges.emplace_back();
    walk(head.edge.parent, std::move(seed));
  }
  // De-duplicate.
  std::vector<SelectedView> unique;
  for (SelectedView& v : out) {
    if (std::find(unique.begin(), unique.end(), v) == unique.end()) {
      unique.push_back(std::move(v));
    }
  }
  return unique;
}

}  // namespace

std::vector<UnawareCandidate> EnumerateUnawareCandidates(
    const sql::Workload& workload, const sql::Catalog& catalog,
    const RowCountFn& rows) {
  std::map<std::string, UnawareCandidate> by_name;
  for (const sql::WorkloadStatement& stmt : workload.statements) {
    const auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
    if (sel == nullptr) continue;
    const std::vector<QueryJoinEdge> joins = ExtractJoinEdges(*sel, catalog);
    if (joins.empty()) continue;
    for (SelectedView& chain : MaximalChains(joins)) {
      // Benefit: frequency-weighted scan work the view saves (reading one
      // pre-joined relation instead of every member).
      double scanned = 0;
      for (const std::string& rel : chain.relations) {
        scanned += static_cast<double>(rows(rel));
      }
      const std::string& last = chain.relations.back();
      const double view_rows = static_cast<double>(rows(last));
      const double benefit = stmt.frequency * std::max(0.0, scanned - view_rows);
      // Storage: view rows x combined width.
      double width = 0;
      for (const std::string& rel_name : chain.relations) {
        const sql::RelationDef* rel = catalog.FindRelation(rel_name);
        if (rel != nullptr) {
          width += EstimateRelationBytes(*rel, 1);
        }
      }
      const std::string name = chain.Name();
      auto [it, inserted] = by_name.try_emplace(name);
      if (inserted) {
        it->second.view = std::move(chain);
        it->second.storage_bytes = width * view_rows;
      }
      it->second.benefit += benefit;
    }
  }
  std::vector<UnawareCandidate> out;
  out.reserve(by_name.size());
  for (auto& [name, cand] : by_name) out.push_back(std::move(cand));
  return out;
}

std::vector<SelectedView> SelectViewsUnaware(const sql::Workload& workload,
                                             const sql::Catalog& catalog,
                                             const RowCountFn& rows,
                                             const UnawareOptions& options) {
  std::vector<UnawareCandidate> candidates =
      EnumerateUnawareCandidates(workload, catalog, rows);
  // Budget relative to the base footprint.
  double base_bytes = 0;
  for (const sql::RelationDef* rel : catalog.Relations()) {
    if (catalog.IsView(rel->name)) continue;
    base_bytes += EstimateRelationBytes(*rel, rows(rel->name));
  }
  double budget = base_bytes * options.storage_budget_fraction;

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const UnawareCandidate& a, const UnawareCandidate& b) {
                     const double ra =
                         a.benefit / std::max(1.0, a.storage_bytes);
                     const double rb =
                         b.benefit / std::max(1.0, b.storage_bytes);
                     if (ra != rb) return ra > rb;
                     return a.view.Name() < b.view.Name();
                   });
  std::vector<SelectedView> selected;
  for (UnawareCandidate& cand : candidates) {
    if (cand.storage_bytes > budget) continue;
    // Also require the attribute-union to be well-formed.
    if (!MaterializeViewDef(cand.view, catalog).ok()) continue;
    budget -= cand.storage_bytes;
    selected.push_back(std::move(cand.view));
  }
  return selected;
}

}  // namespace synergy::core
