#include "synergy/view_maintenance.h"

#include <algorithm>

namespace synergy::core {

bool ViewMaintainer::UpdateApplies(const sql::ViewDef& view,
                                   const std::string& relation) {
  return std::find(view.relations.begin(), view.relations.end(), relation) !=
         view.relations.end();
}

Status ViewMaintainer::ApplyInsert(hbase::Session& s,
                                   const std::string& relation,
                                   const exec::Tuple& tuple) {
  const sql::Catalog& catalog = adapter_->catalog();
  for (const sql::ViewDef* view : catalog.Views()) {
    if (!InsertApplies(*view, relation)) continue;
    // Walk the FK chain from the inserted (last) relation up to the view
    // head, reading one ancestor tuple per hop.
    exec::Tuple view_tuple = tuple;
    exec::Tuple current = tuple;
    bool complete = true;
    for (size_t i = view->relations.size() - 1; i >= 1; --i) {
      const sql::ForeignKey& fk = view->edges[i];
      std::vector<Value> parent_pk;
      parent_pk.reserve(fk.columns.size());
      bool missing_fk = false;
      for (const std::string& col : fk.columns) {
        auto it = current.find(col);
        if (it == current.end() || it->second.is_null()) {
          missing_fk = true;
          break;
        }
        parent_pk.push_back(it->second);
      }
      if (missing_fk) {
        complete = false;
        break;
      }
      SYNERGY_ASSIGN_OR_RETURN(
          parent, adapter_->GetByPk(s, view->relations[i - 1], parent_pk));
      if (!parent.has_value()) {
        complete = false;  // FK constraints are not enforced (§IV)
        break;
      }
      for (const auto& [col, value] : parent->tuple) view_tuple[col] = value;
      current = parent->tuple;
    }
    if (!complete) continue;
    SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, view->name, view_tuple));
  }
  return Status::Ok();
}

Status ViewMaintainer::ApplyDelete(hbase::Session& s,
                                   const std::string& relation,
                                   const std::vector<Value>& pk_values) {
  const sql::Catalog& catalog = adapter_->catalog();
  for (const sql::ViewDef* view : catalog.Views()) {
    if (!DeleteApplies(*view, relation)) continue;
    SYNERGY_RETURN_IF_ERROR(adapter_->DeleteByPk(s, view->name, pk_values));
  }
  return Status::Ok();
}

StatusOr<std::vector<ViewMaintainer::AffectedRows>>
ViewMaintainer::FindAffected(hbase::Session& s, const std::string& relation,
                             const std::vector<Value>& pk_values) {
  const sql::Catalog& catalog = adapter_->catalog();
  std::vector<AffectedRows> out;
  for (const sql::ViewDef* view : catalog.Views()) {
    if (!UpdateApplies(*view, relation)) continue;
    AffectedRows affected;
    affected.view = view->name;
    if (view->relations.back() == relation) {
      // The view key is the base key: exactly one row.
      SYNERGY_ASSIGN_OR_RETURN(row,
                               adapter_->GetByPk(s, view->name, pk_values));
      if (row.has_value()) affected.view_pks.push_back(pk_values);
      out.push_back(std::move(affected));
      continue;
    }
    // Mid-path member: locate rows by the member's PK attribute, via a
    // maintenance/view index indexed upon that attribute when present.
    const sql::RelationDef* member = catalog.FindRelation(relation);
    const sql::RelationDef* storage = catalog.FindRelation(view->name);
    if (member == nullptr || member->primary_key.size() != 1) {
      return Status::Unimplemented(
          "multi-column member PK in view maintenance");
    }
    const std::string& attr = member->primary_key.front();
    const sql::IndexDef* via_index = nullptr;
    for (const sql::IndexDef* ix : catalog.IndexesFor(view->name)) {
      if (!ix->indexed_columns.empty() && ix->indexed_columns.front() == attr) {
        via_index = ix;
        break;
      }
    }
    auto collect = [&](exec::TupleScanner scanner) -> Status {
      exec::TupleWithMeta twm;
      while (true) {
        SYNERGY_ASSIGN_OR_RETURN(more, scanner.Next(&twm));
        if (!more) break;
        auto it = twm.tuple.find(attr);
        if (it == twm.tuple.end() || !(it->second == pk_values[0])) continue;
        std::vector<Value> vpk;
        for (const std::string& col : storage->primary_key) {
          auto pit = twm.tuple.find(col);
          if (pit == twm.tuple.end()) {
            return Status::Internal("view row missing PK column " + col);
          }
          vpk.push_back(pit->second);
        }
        affected.view_pks.push_back(std::move(vpk));
      }
      return Status::Ok();
    };
    if (via_index != nullptr) {
      SYNERGY_ASSIGN_OR_RETURN(
          scanner,
          adapter_->ScanIndexPrefix(s, via_index->name, {pk_values[0]}));
      SYNERGY_RETURN_IF_ERROR(collect(std::move(scanner)));
    } else {
      SYNERGY_ASSIGN_OR_RETURN(scanner, adapter_->ScanAll(s, view->name));
      SYNERGY_RETURN_IF_ERROR(collect(std::move(scanner)));
    }
    out.push_back(std::move(affected));
  }
  return out;
}

Status ViewMaintainer::UpdateViewRow(
    hbase::Session& s, const std::string& view,
    const std::vector<Value>& view_pk,
    const std::vector<std::pair<std::string, Value>>& sets) {
  const sql::RelationDef* storage = adapter_->catalog().FindRelation(view);
  if (storage == nullptr) return Status::NotFound("view " + view);
  std::vector<std::pair<std::string, Value>> applicable;
  for (const auto& [col, value] : sets) {
    if (storage->HasColumn(col)) applicable.emplace_back(col, value);
  }
  if (applicable.empty()) return Status::Ok();
  return adapter_->UpdateByPk(s, view, view_pk, applicable);
}

}  // namespace synergy::core
