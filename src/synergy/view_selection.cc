#include "synergy/view_selection.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace synergy::core {

std::string SelectedView::Name() const {
  return JoinStrings(relations, "-");
}

namespace {

struct Marking {
  std::set<std::string> relations;
  std::set<const TreeEdge*> edges;
};

/// True when the statement references any FROM relation twice.
bool UsesRelationTwice(const sql::SelectStatement& stmt) {
  std::set<std::string> seen;
  for (const sql::TableRef& ref : stmt.from) {
    if (!seen.insert(ref.table).second) return true;
  }
  return false;
}

}  // namespace

std::vector<SelectedView> SelectViewsForQuery(
    const sql::SelectStatement& stmt, const sql::Catalog& catalog,
    const std::vector<RootedTree>& trees) {
  std::vector<SelectedView> selected;
  if (UsesRelationTwice(stmt)) return selected;
  const std::vector<QueryJoinEdge> joins = ExtractJoinEdges(stmt, catalog);
  if (joins.empty()) return selected;

  for (const RootedTree& tree : trees) {
    // Mark edges and participating relations.
    Marking mark;
    for (const TreeEdge& e : tree.edges()) {
      for (const QueryJoinEdge& qe : joins) {
        if (qe.edge.parent == e.parent && qe.edge.child == e.child &&
            qe.edge.fk.columns == e.fk.columns) {
          mark.edges.insert(&e);
          mark.relations.insert(e.parent);
          mark.relations.insert(e.child);
        }
      }
    }
    // Iteratively choose paths.
    while (true) {
      // Rule 2: start = a marked node with no incoming marked edge.
      std::string start;
      for (const std::string& rel : tree.Members()) {
        if (!mark.relations.contains(rel)) continue;
        const TreeEdge* in = tree.EdgeTo(rel);
        if (in != nullptr && mark.edges.contains(in)) continue;
        // The start must also have an outgoing marked edge (paths have >= 2
        // relations).
        bool has_out = false;
        for (const TreeEdge& e : tree.edges()) {
          if (e.parent == rel && mark.edges.contains(&e) &&
              mark.relations.contains(e.child)) {
            has_out = true;
            break;
          }
        }
        if (has_out) {
          start = rel;
          break;
        }
      }
      if (start.empty()) break;

      // Walk marked edges (highest weight first on fan-out) until a leaf or
      // a node with no outgoing marked edge.
      SelectedView view;
      view.root = tree.root();
      view.relations.push_back(start);
      view.edges.emplace_back();  // placeholder for the head
      std::string cur = start;
      while (true) {
        const TreeEdge* next = nullptr;
        for (const TreeEdge& e : tree.edges()) {
          if (e.parent != cur || !mark.edges.contains(&e) ||
              !mark.relations.contains(e.child)) {
            continue;
          }
          if (next == nullptr || e.weight > next->weight) next = &e;
        }
        if (next == nullptr) break;
        view.relations.push_back(next->child);
        view.edges.push_back(next->fk);
        cur = next->child;
      }
      // Select the path as a view; unmark participants and their out-edges.
      for (const std::string& rel : view.relations) {
        mark.relations.erase(rel);
        for (const TreeEdge& e : tree.edges()) {
          if (e.parent == rel) mark.edges.erase(&e);
        }
      }
      selected.push_back(std::move(view));
    }
  }
  return selected;
}

std::vector<SelectedView> SelectViews(const sql::Workload& workload,
                                      const sql::Catalog& catalog,
                                      const std::vector<RootedTree>& trees) {
  std::vector<SelectedView> all;
  for (const sql::WorkloadStatement& stmt : workload.statements) {
    const auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
    if (sel == nullptr) continue;
    for (SelectedView& v : SelectViewsForQuery(*sel, catalog, trees)) {
      if (std::find(all.begin(), all.end(), v) == all.end()) {
        all.push_back(std::move(v));
      }
    }
  }
  return all;
}

StatusOr<std::pair<sql::ViewDef, sql::RelationDef>> MaterializeViewDef(
    const SelectedView& view, const sql::Catalog& catalog) {
  sql::ViewDef def;
  def.name = view.Name();
  def.relations = view.relations;
  def.root = view.root;
  def.edges.resize(view.relations.size());
  for (size_t i = 1; i < view.relations.size(); ++i) {
    def.edges[i] = view.edges[i];
  }

  sql::RelationDef storage;
  storage.name = def.name;
  std::set<std::string> seen;
  for (const std::string& rel_name : view.relations) {
    const sql::RelationDef* rel = catalog.FindRelation(rel_name);
    if (rel == nullptr) return Status::NotFound("relation " + rel_name);
    for (const sql::Column& col : rel->columns) {
      if (!seen.insert(col.name).second) {
        return Status::InvalidArgument(
            "duplicate attribute " + col.name + " across view members of " +
            def.name);
      }
      storage.columns.push_back(col);
    }
  }
  const sql::RelationDef* last =
      catalog.FindRelation(view.relations.back());
  storage.primary_key = last->primary_key;
  // Record the member FKs so the view itself can participate in lookups.
  for (size_t i = 1; i < view.relations.size(); ++i) {
    storage.foreign_keys.push_back(view.edges[i]);
  }
  return std::make_pair(std::move(def), std::move(storage));
}

}  // namespace synergy::core
