#include "synergy/synergy_system.h"

#include <algorithm>

#include "sql/parser.h"
#include "testing/fault_injector.h"

namespace synergy::core {

SynergySystem::SynergySystem(hbase::Cluster* cluster, SynergyConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  obs::MetricsRegistry& r = cluster_->metrics();
  c_reads_ = r.GetCounter("synergy_reads_total",
                          "read statements run under the dirty-read protocol");
  c_writes_ = r.GetCounter("synergy_writes_total",
                           "write transactions submitted to the txn layer");
  c_view_marks_ = r.GetCounter(
      "synergy_view_marks_total",
      "view rows marked dirty during §VIII-B update maintenance");
  c_view_rows_updated_ = r.GetCounter("synergy_view_rows_updated_total",
                                      "materialized-view rows rewritten");
}

StatusOr<SynergyDesign> DesignSynergySchema(
    const sql::Catalog& base_catalog, const sql::Workload& workload,
    const std::vector<std::string>& roots) {
  SynergyDesign design;
  // Copy base relations and indexes.
  for (const sql::RelationDef* rel : base_catalog.Relations()) {
    SYNERGY_RETURN_IF_ERROR(design.catalog.AddRelation(*rel));
  }
  for (const sql::RelationDef* rel : base_catalog.Relations()) {
    for (const sql::IndexDef* ix : base_catalog.IndexesFor(rel->name)) {
      SYNERGY_RETURN_IF_ERROR(design.catalog.AddIndex(*ix));
    }
  }
  design.workload = workload;

  // §V: candidate views from the schema's rooted trees.
  const SchemaGraph graph = SchemaGraph::FromCatalog(design.catalog);
  SYNERGY_ASSIGN_OR_RETURN(
      candidates,
      GenerateCandidateViews(graph, design.workload, design.catalog, roots));
  design.trees = std::move(candidates.trees);

  // §VI-A: workload-driven selection.
  const std::vector<SelectedView> views =
      SelectViews(design.workload, design.catalog, design.trees);
  for (const SelectedView& view : views) {
    SYNERGY_ASSIGN_OR_RETURN(defs, MaterializeViewDef(view, design.catalog));
    SYNERGY_RETURN_IF_ERROR(design.catalog.AddView(defs.first, defs.second));
  }

  // §VI-B: rewrite the workload's equi-join queries over the views.
  SYNERGY_ASSIGN_OR_RETURN(
      rewritten,
      RewriteWorkload(&design.workload, design.catalog, design.trees));
  design.rewritten_ids = std::move(rewritten);

  // §VI-C + §VII-C: view-indexes for query filters, maintenance indexes for
  // updates to mid-path members.
  for (sql::IndexDef& ix :
       RecommendViewIndexes(design.workload, design.catalog)) {
    SYNERGY_RETURN_IF_ERROR(design.catalog.AddIndex(std::move(ix)));
  }
  for (sql::IndexDef& ix :
       RecommendMaintenanceIndexes(design.workload, design.catalog)) {
    SYNERGY_RETURN_IF_ERROR(design.catalog.AddIndex(std::move(ix)));
  }
  return design;
}

Status SynergySystem::Build(const sql::Catalog& base_catalog,
                            const sql::Workload& workload) {
  if (built_) return Status::FailedPrecondition("Build called twice");
  SYNERGY_ASSIGN_OR_RETURN(
      design, DesignSynergySchema(base_catalog, workload, config_.roots));
  catalog_ = std::move(design.catalog);
  workload_ = std::move(design.workload);
  trees_ = std::move(design.trees);
  rewritten_ids_ = std::move(design.rewritten_ids);

  adapter_ = std::make_unique<exec::TableAdapter>(cluster_, &catalog_);
  executor_ = std::make_unique<exec::Executor>(adapter_.get());
  maintainer_ = std::make_unique<ViewMaintainer>(adapter_.get());
  locks_ = std::make_unique<txn::LockManager>(cluster_);
  txn_layer_ = std::make_unique<txn::TxnLayer>(cluster_, locks_.get(),
                                               config_.txn_slaves);
  // Lets SubmitWrite's retry loop heal a drained slave pool on its own:
  // under region-server failover every in-flight write body sees
  // kUnavailable and kills its slave, so without auto-recovery the pool
  // would empty long before the lease even expires.
  txn_layer_->SetReplayFn([this](hbase::Session& s,
                                 const std::string& payload) {
    return ReplayPayload(s, payload);
  });
  if (faults_ != nullptr) SetFaultInjector(faults_);
  built_ = true;
  return Status::Ok();
}

void SynergySystem::SetFaultInjector(fault::FaultInjector* faults) {
  faults_ = faults;
  cluster_->SetFaultInjector(faults);
  if (locks_ != nullptr) locks_->SetFaultInjector(faults);
  if (txn_layer_ != nullptr) txn_layer_->SetFaultInjector(faults);
}

Status SynergySystem::CreateStorage() {
  if (!built_) return Status::FailedPrecondition("Build first");
  for (const sql::RelationDef* rel : catalog_.Relations()) {
    SYNERGY_RETURN_IF_ERROR(adapter_->CreateStorage(rel->name));
  }
  for (const std::string& root : config_.roots) {
    SYNERGY_RETURN_IF_ERROR(locks_->CreateLockTable(root));
  }
  return Status::Ok();
}

Status SynergySystem::Load(hbase::Session& s, const std::string& relation,
                           const exec::Tuple& tuple) {
  SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, relation, tuple));
  SYNERGY_RETURN_IF_ERROR(maintainer_->ApplyInsert(s, relation, tuple));
  if (std::find(config_.roots.begin(), config_.roots.end(), relation) !=
      config_.roots.end()) {
    const sql::RelationDef* rel = catalog_.FindRelation(relation);
    SYNERGY_ASSIGN_OR_RETURN(key, exec::EncodePkKey(*rel, tuple));
    SYNERGY_RETURN_IF_ERROR(locks_->CreateLockEntry(s, relation, key));
  }
  return Status::Ok();
}

StatusOr<exec::QueryResult> SynergySystem::ExecuteRead(
    hbase::Session& s, const sql::SelectStatement& stmt,
    exec::BoundParams params, bool collect_rows) {
  exec::ExecOptions options;
  options.detect_dirty = true;
  options.max_dirty_retries = config_.max_dirty_retries;
  options.collect_rows = collect_rows;
  c_reads_->Inc();
  obs::ScopedSpan span(s.trace(), "synergy.read");
  return executor_->ExecuteSelect(s, stmt, params, options);
}

StatusOr<exec::AnalyzeResult> SynergySystem::ExplainAnalyzeRead(
    hbase::Session& s, const sql::SelectStatement& stmt,
    exec::BoundParams params) {
  exec::ExecOptions options;
  options.detect_dirty = true;
  options.max_dirty_retries = config_.max_dirty_retries;
  options.collect_rows = false;
  c_reads_->Inc();
  obs::ScopedSpan span(s.trace(), "synergy.read");
  return executor_->ExplainAnalyze(s, stmt, params, options);
}

StatusOr<std::optional<txn::LockSpec>> SynergySystem::DeriveLockSpec(
    hbase::Session& s, const std::string& relation, const exec::Tuple& tuple) {
  const RootedTree* tree = nullptr;
  for (const RootedTree& t : trees_) {
    if (t.Contains(relation)) {
      tree = &t;
      break;
    }
  }
  if (tree == nullptr) return std::optional<txn::LockSpec>();

  // Walk up the FK chain reading ancestors until the root's PK is known.
  const std::vector<std::string> path = tree->PathFromRoot(relation);
  exec::Tuple current = tuple;
  for (size_t i = path.size() - 1; i >= 1; --i) {
    const TreeEdge* edge = tree->EdgeTo(path[i]);
    if (edge == nullptr) return Status::Internal("broken tree edge");
    std::vector<Value> parent_pk;
    for (const std::string& col : edge->fk.columns) {
      auto it = current.find(col);
      if (it == current.end() || it->second.is_null()) {
        // Dangling FK: no root row to lock (FKs are not enforced, §IV);
        // fall back to locking nothing.
        return std::optional<txn::LockSpec>();
      }
      parent_pk.push_back(it->second);
    }
    if (i == 1) {
      return std::optional<txn::LockSpec>(txn::LockSpec{
          tree->root(), exec::EncodePkKeyFromValues(parent_pk)});
    }
    SYNERGY_ASSIGN_OR_RETURN(parent,
                             adapter_->GetByPk(s, path[i - 1], parent_pk));
    if (!parent.has_value()) return std::optional<txn::LockSpec>();
    current = parent->tuple;
  }
  // relation itself is the root.
  const sql::RelationDef* rel = catalog_.FindRelation(relation);
  SYNERGY_ASSIGN_OR_RETURN(key, exec::EncodePkKey(*rel, tuple));
  return std::optional<txn::LockSpec>(txn::LockSpec{relation, key});
}

Status SynergySystem::RunInsert(hbase::Session& s,
                                const exec::BoundWrite& write) {
  SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, write.relation, write.tuple));
  if (std::find(config_.roots.begin(), config_.roots.end(), write.relation) !=
      config_.roots.end()) {
    const sql::RelationDef* rel = catalog_.FindRelation(write.relation);
    SYNERGY_ASSIGN_OR_RETURN(key, exec::EncodePkKey(*rel, write.tuple));
    SYNERGY_RETURN_IF_ERROR(
        locks_->CreateLockEntry(s, write.relation, key));
  }
  return maintainer_->ApplyInsert(s, write.relation, write.tuple);
}

Status SynergySystem::RunDelete(hbase::Session& s,
                                const exec::BoundWrite& write) {
  SYNERGY_RETURN_IF_ERROR(
      maintainer_->ApplyDelete(s, write.relation, write.pk_values));
  return adapter_->DeleteByPk(s, write.relation, write.pk_values);
}

Status SynergySystem::RunUpdate(hbase::Session& s,
                                const exec::BoundWrite& write) {
  // The 6-step procedure of §VIII-B (the lock is already held):
  // (2) read the rows that need to be updated.
  SYNERGY_ASSIGN_OR_RETURN(
      affected, maintainer_->FindAffected(s, write.relation, write.pk_values));
  // (3) mark them (views and their indexes).
  for (const ViewMaintainer::AffectedRows& rows : affected) {
    for (const std::vector<Value>& vpk : rows.view_pks) {
      SYNERGY_RETURN_IF_ERROR(
          adapter_->SetMarkWithIndexes(s, rows.view, vpk, true));
      c_view_marks_->Inc();
    }
  }
  // (4) issue the updates (base row first, then view rows).
  SYNERGY_RETURN_IF_ERROR(
      adapter_->UpdateByPk(s, write.relation, write.pk_values, write.sets));
  for (const ViewMaintainer::AffectedRows& rows : affected) {
    for (const std::vector<Value>& vpk : rows.view_pks) {
      SYNERGY_RETURN_IF_ERROR(
          maintainer_->UpdateViewRow(s, rows.view, vpk, write.sets));
      c_view_rows_updated_->Inc();
    }
  }
  // (5) un-mark.
  for (const ViewMaintainer::AffectedRows& rows : affected) {
    for (const std::vector<Value>& vpk : rows.view_pks) {
      SYNERGY_RETURN_IF_ERROR(
          adapter_->SetMarkWithIndexes(s, rows.view, vpk, false));
    }
  }
  return Status::Ok();
}

Status SynergySystem::WriteBodyFor(hbase::Session& s,
                                   const exec::BoundWrite& write) {
  switch (write.kind) {
    case exec::BoundWrite::Kind::kInsert: return RunInsert(s, write);
    case exec::BoundWrite::Kind::kDelete: return RunDelete(s, write);
    case exec::BoundWrite::Kind::kUpdate: return RunUpdate(s, write);
  }
  return Status::Internal("bad write kind");
}

StatusOr<WriteResult> SynergySystem::ExecuteWrite(
    hbase::Session& s, const sql::Statement& stmt,
    const std::vector<Value>& params) {
  c_writes_->Inc();
  obs::ScopedSpan span(s.trace(), "synergy.write");
  const sql::Statement bound = sql::BindParams(stmt, params);
  SYNERGY_ASSIGN_OR_RETURN(write, exec::BindWriteStatement(bound, catalog_));

  // Derive the single root lock (reads ancestor rows as needed). For
  // update/delete the FK chain starts from the current base row.
  obs::ScopedSpan lock_span(s.trace(), "synergy.derive_lock");
  exec::Tuple chain_tuple = write.tuple;
  if (write.kind != exec::BoundWrite::Kind::kInsert) {
    SYNERGY_ASSIGN_OR_RETURN(
        existing, adapter_->GetByPk(s, write.relation, write.pk_values));
    if (existing.has_value()) chain_tuple = existing->tuple;
  }
  SYNERGY_ASSIGN_OR_RETURN(lock,
                           DeriveLockSpec(s, write.relation, chain_tuple));
  lock_span.Close();

  const std::string payload = sql::StatementToString(bound);
  SYNERGY_ASSIGN_OR_RETURN(
      txn_id, txn_layer_->SubmitWrite(s, payload, lock, [&](hbase::Session& ts) {
        return WriteBodyFor(ts, write);
      }));
  WriteResult result;
  result.txn_id = txn_id;
  result.base_rows_affected = 1;
  return result;
}

Status SynergySystem::ReplayPayload(hbase::Session& s,
                                    const std::string& payload) {
  SYNERGY_ASSIGN_OR_RETURN(stmt, sql::Parse(payload));
  SYNERGY_ASSIGN_OR_RETURN(write, exec::BindWriteStatement(stmt, catalog_));
  return WriteBodyFor(s, write);
}

}  // namespace synergy::core
