#include "synergy/candidate_views.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <sstream>

namespace synergy::core {

void RootedTree::AddEdge(TreeEdge edge) {
  if (EdgeTo(edge.child) != nullptr) return;  // unique path invariant
  edges_.push_back(std::move(edge));
}

bool RootedTree::Contains(const std::string& relation) const {
  if (relation == root_) return true;
  return EdgeTo(relation) != nullptr;
}

std::optional<std::string> RootedTree::ParentOf(
    const std::string& relation) const {
  const TreeEdge* e = EdgeTo(relation);
  if (e == nullptr) return std::nullopt;
  return e->parent;
}

std::vector<std::string> RootedTree::ChildrenOf(
    const std::string& relation) const {
  std::vector<std::string> out;
  for (const TreeEdge& e : edges_) {
    if (e.parent == relation) out.push_back(e.child);
  }
  return out;
}

const TreeEdge* RootedTree::EdgeTo(const std::string& child) const {
  for (const TreeEdge& e : edges_) {
    if (e.child == child) return &e;
  }
  return nullptr;
}

std::vector<std::string> RootedTree::PathFromRoot(
    const std::string& relation) const {
  std::vector<std::string> path;
  std::string cur = relation;
  while (cur != root_) {
    const TreeEdge* e = EdgeTo(cur);
    if (e == nullptr) return {};  // not a member
    path.push_back(cur);
    cur = e->parent;
  }
  path.push_back(root_);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::string> RootedTree::Members() const {
  std::vector<std::string> out = {root_};
  std::deque<std::string> queue = {root_};
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    for (const std::string& child : ChildrenOf(cur)) {
      out.push_back(child);
      queue.push_back(child);
    }
  }
  return out;
}

std::string RootedTree::ToString() const {
  std::ostringstream os;
  os << root_ << " {";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) os << ", ";
    os << edges_[i].parent << "->" << edges_[i].child;
  }
  os << "}";
  return os.str();
}

namespace {

struct WeightedEdge {
  SchemaEdge edge;
  double weight;
};

/// Step 1: keep at most one (max-weight) edge between any pair of nodes.
std::vector<WeightedEdge> ToDag(const SchemaGraph& graph,
                                const sql::Workload& workload,
                                const sql::Catalog& catalog) {
  std::vector<WeightedEdge> dag;
  for (const SchemaEdge& e : graph.edges()) {
    const double w = EdgeWeight(e, workload, catalog);
    auto it = std::find_if(dag.begin(), dag.end(), [&](const WeightedEdge& we) {
      return we.edge.SameEndpoints(e);
    });
    if (it == dag.end()) {
      dag.push_back(WeightedEdge{e, w});
    } else if (w > it->weight) {
      *it = WeightedEdge{e, w};
    }
  }
  return dag;
}

/// Step 2: deterministic topological order (Kahn; lexicographic ties).
StatusOr<std::vector<std::string>> TopologicalOrder(
    const std::vector<std::string>& nodes,
    const std::vector<WeightedEdge>& edges) {
  std::map<std::string, int> indegree;
  for (const std::string& n : nodes) indegree[n] = 0;
  for (const WeightedEdge& we : edges) indegree[we.edge.child] += 1;
  std::set<std::string> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.insert(n);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string n = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(n);
    for (const WeightedEdge& we : edges) {
      if (we.edge.parent != n) continue;
      if (--indegree[we.edge.child] == 0) ready.insert(we.edge.child);
    }
  }
  if (order.size() != nodes.size()) {
    return Status::InvalidArgument(
        "schema graph has a cycle; circular references are out of scope");
  }
  return order;
}

struct Path {
  std::vector<const WeightedEdge*> edges;  // root-to-target order
  double weight = 0;  // sum of per-edge overlap weights (secondary score)
  std::vector<std::string> Relations() const {
    std::vector<std::string> rels;
    if (edges.empty()) return rels;
    rels.push_back(edges.front()->edge.parent);
    for (const WeightedEdge* e : edges) rels.push_back(e->edge.child);
    return rels;
  }
};

/// Per-query join-edge sets, for the primary path score: the number of
/// workload queries whose join set contains EVERY edge of the path (such a
/// path materializes whole joins of those queries). The per-edge overlap
/// sum breaks ties — it still rewards paths that partially overlap many
/// queries, matching the paper's "number of overlapping joins" heuristic.
struct QueryJoinSets {
  std::vector<std::pair<double, std::vector<SchemaEdge>>> per_query;

  static QueryJoinSets FromWorkload(const sql::Workload& workload,
                                    const sql::Catalog& catalog) {
    QueryJoinSets out;
    for (const sql::WorkloadStatement& stmt : workload.statements) {
      const auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
      if (sel == nullptr) continue;
      std::vector<SchemaEdge> edges;
      for (const QueryJoinEdge& qe : ExtractJoinEdges(*sel, catalog)) {
        edges.push_back(qe.edge);
      }
      if (!edges.empty()) out.per_query.emplace_back(stmt.frequency, edges);
    }
    return out;
  }

  double FullContainmentScore(const Path& path) const {
    double score = 0;
    for (const auto& [freq, joins] : per_query) {
      bool all = true;
      for (const WeightedEdge* we : path.edges) {
        if (std::find(joins.begin(), joins.end(), we->edge) == joins.end()) {
          all = false;
          break;
        }
      }
      if (all) score += freq;
    }
    return score;
  }
};

/// All simple paths `from` -> `to` over `edges` (schemas are small).
void EnumeratePaths(const std::vector<WeightedEdge>& edges,
                    const std::string& from, const std::string& to,
                    Path* current, std::vector<Path>* out) {
  if (from == to) {
    out->push_back(*current);
    return;
  }
  for (const WeightedEdge& we : edges) {
    if (we.edge.parent != from) continue;
    current->edges.push_back(&we);
    current->weight += we.weight;
    EnumeratePaths(edges, we.edge.child, to, current, out);
    current->weight -= we.weight;
    current->edges.pop_back();
  }
}

std::string PathLabel(const Path& p) {
  std::string label;
  for (const std::string& r : p.Relations()) label += r + "/";
  return label;
}

}  // namespace

StatusOr<CandidateViewsResult> GenerateCandidateViews(
    const SchemaGraph& graph, const sql::Workload& workload,
    const sql::Catalog& catalog, const std::vector<std::string>& roots) {
  for (const std::string& root : roots) {
    if (!graph.HasRelation(root)) {
      return Status::InvalidArgument("root " + root + " is not a relation");
    }
  }
  const std::set<std::string> root_set(roots.begin(), roots.end());
  const QueryJoinSets join_sets = QueryJoinSets::FromWorkload(workload, catalog);
  auto path_less = [&join_sets](const Path& a, const Path& b) {
    const double fa = join_sets.FullContainmentScore(a);
    const double fb = join_sets.FullContainmentScore(b);
    if (fa != fb) return fa > fb;
    if (a.weight != b.weight) return a.weight > b.weight;
    return PathLabel(a) < PathLabel(b);
  };

  // Step 1: schema graph -> DAG.
  const std::vector<WeightedEdge> dag = ToDag(graph, workload, catalog);
  // Step 2: topological order.
  SYNERGY_ASSIGN_OR_RETURN(topo, TopologicalOrder(graph.relations(), dag));

  // Step 3: assign non-root relations to roots.
  std::map<std::string, std::string> assignment;  // relation -> root
  for (const std::string& root : roots) assignment[root] = root;
  // Rooted graphs: per root, the set of DAG edges added via selected paths.
  std::map<std::string, std::vector<const WeightedEdge*>> rooted_graphs;

  for (const std::string& relation : topo) {
    if (root_set.contains(relation)) continue;
    // 3a: paths from every root to this relation.
    std::vector<Path> paths;
    for (const std::string& root : roots) {
      Path current;
      EnumeratePaths(dag, root, relation, &current, &paths);
    }
    // 3b: highest weight first (label as deterministic tie-break).
    std::stable_sort(paths.begin(), paths.end(), path_less);
    for (const Path& path : paths) {
      const std::vector<std::string> rels = path.Relations();
      // The path must contain exactly one root...
      int roots_on_path = 0;
      for (const std::string& r : rels) {
        if (root_set.contains(r)) ++roots_on_path;
      }
      if (roots_on_path != 1) continue;
      // ...and no relation already assigned to a different root.
      const std::string& root = rels.front();
      bool ok = true;
      for (const std::string& r : rels) {
        auto it = assignment.find(r);
        if (it != assignment.end() && it->second != root) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // 3c: add the path to the root's rooted graph.
      for (const std::string& r : rels) assignment[r] = root;
      for (const WeightedEdge* e : path.edges) {
        auto& edges = rooted_graphs[root];
        if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
          edges.push_back(e);
        }
      }
      break;
    }
  }

  // Step 4: rooted graphs -> rooted trees (reverse topological order).
  CandidateViewsResult result;
  for (const std::string& root : roots) {
    RootedTree tree(root);
    std::vector<WeightedEdge> edges;
    for (const WeightedEdge* e : rooted_graphs[root]) edges.push_back(*e);
    // Non-root members of this rooted graph in topological order.
    std::vector<std::string> members;
    for (const std::string& r : topo) {
      if (r == root) continue;
      if (assignment.contains(r) && assignment[r] == root) members.push_back(r);
    }
    std::vector<std::string> remaining(members.rbegin(), members.rend());
    std::set<std::string> done;
    for (const std::string& target : remaining) {
      if (done.contains(target)) continue;
      std::vector<Path> paths;
      Path current;
      EnumeratePaths(edges, root, target, &current, &paths);
      if (paths.empty()) continue;
      std::stable_sort(paths.begin(), paths.end(), path_less);
      const Path& best = paths.front();
      for (const WeightedEdge* e : best.edges) {
        tree.AddEdge(TreeEdge{e->edge.parent, e->edge.child, e->edge.fk,
                              e->weight});
      }
      for (const std::string& r : best.Relations()) {
        if (r != root) done.insert(r);
      }
    }
    result.trees.push_back(std::move(tree));
  }
  for (const std::string& r : graph.relations()) {
    if (!assignment.contains(r)) result.unassigned.push_back(r);
  }
  return result;
}

std::vector<std::vector<std::string>> EnumerateCandidatePaths(
    const RootedTree& tree) {
  std::vector<std::vector<std::string>> out;
  for (const std::string& start : tree.Members()) {
    // Walk every downward chain starting at `start`.
    std::function<void(const std::string&, std::vector<std::string>&)> dfs =
        [&](const std::string& node, std::vector<std::string>& path) {
          path.push_back(node);
          if (path.size() >= 2) out.push_back(path);
          for (const std::string& child : tree.ChildrenOf(node)) {
            dfs(child, path);
          }
          path.pop_back();
        };
    std::vector<std::string> path;
    dfs(start, path);
  }
  return out;
}

}  // namespace synergy::core
