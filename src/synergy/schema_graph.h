// Schema graph model (§V, Definitions 1-3).
//
// Vertices are base relations; a directed edge runs from a relation Ri
// (whose PK is referenced) to a relation Rj holding the foreign key:
// Ri -> Rj exists iff FKk(Rj) references PK(Ri). Parallel edges are possible
// (e.g. Employee's home and office address both reference Address).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/workload.h"

namespace synergy::core {

struct SchemaEdge {
  std::string parent;  // PK side
  std::string child;   // FK side
  sql::ForeignKey fk;  // the child's foreign key

  /// "(PK,FK)" label, e.g. "(AID,EHome_AID)".
  std::string Label() const;
  bool SameEndpoints(const SchemaEdge& other) const {
    return parent == other.parent && child == other.child;
  }
  bool operator==(const SchemaEdge& other) const {
    return parent == other.parent && child == other.child &&
           fk.columns == other.fk.columns;
  }
};

class SchemaGraph {
 public:
  /// Builds the graph from every base relation in the catalog (views are
  /// excluded).
  static SchemaGraph FromCatalog(const sql::Catalog& catalog);

  const std::vector<std::string>& relations() const { return relations_; }
  const std::vector<SchemaEdge>& edges() const { return edges_; }

  std::vector<const SchemaEdge*> OutEdges(const std::string& relation) const;
  std::vector<const SchemaEdge*> InEdges(const std::string& relation) const;
  bool HasRelation(const std::string& relation) const;

 private:
  std::vector<std::string> relations_;
  std::vector<SchemaEdge> edges_;
};

/// A join in a query that matches a schema edge: the query equates the
/// child's FK column(s) with the parent's PK column(s).
struct QueryJoinEdge {
  SchemaEdge edge;
};

/// Extracts the key/foreign-key equi joins of a SELECT (other equi joins —
/// non-key joins — are ignored, per the Synergy materialization boundary).
std::vector<QueryJoinEdge> ExtractJoinEdges(const sql::SelectStatement& stmt,
                                            const sql::Catalog& catalog);

/// Workload-driven edge weight: the number of statements (scaled by
/// frequency) whose join set contains the edge — the paper's
/// "number of overlapping joins" heuristic.
double EdgeWeight(const SchemaEdge& edge, const sql::Workload& workload,
                  const sql::Catalog& catalog);

}  // namespace synergy::core
