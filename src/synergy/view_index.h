// Additional view-indexes (§VI-C) and maintenance indexes (§VII-C).
#pragma once

#include <vector>

#include "sql/catalog.h"
#include "sql/workload.h"

namespace synergy::core {

/// §VI-C: for each view, examine each (rewritten) conjunctive query using
/// it; when the query only filters on attributes that neither the view key
/// nor any existing view-index is indexed upon, recommend a covered index
/// on one filter attribute. Recommended indexes cover all view columns.
std::vector<sql::IndexDef> RecommendViewIndexes(
    const sql::Workload& rewritten_workload, const sql::Catalog& catalog);

/// §VII-C: to prepare view updates efficiently, recommend an index on the
/// member-relation PK attribute for every view member that (a) is not the
/// view's last relation and (b) is the target of an UPDATE in the workload.
std::vector<sql::IndexDef> RecommendMaintenanceIndexes(
    const sql::Workload& workload, const sql::Catalog& catalog);

}  // namespace synergy::core
