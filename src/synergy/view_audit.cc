#include "synergy/view_audit.h"

#include <algorithm>
#include <sstream>

#include "exec/executor.h"

namespace synergy::core {

namespace {

constexpr char kFieldSep = '\x1f';

std::string Fingerprint(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    if (v.is_null()) {
      out.push_back('\0');
    } else {
      out += v.ToString();
    }
    out += kFieldSep;
  }
  return out;
}

/// Rows of `a` (sorted) that are absent from `b` (sorted), as multisets.
size_t MultisetDifference(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  std::vector<std::string> diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  return diff.size();
}

}  // namespace

bool ViewAuditReport::consistent() const {
  return std::all_of(views.begin(), views.end(),
                     [](const ViewAuditEntry& v) { return v.consistent(); });
}

std::string ViewAuditReport::ToString() const {
  std::ostringstream out;
  for (const ViewAuditEntry& v : views) {
    out << v.view << ": view=" << v.view_rows << " join=" << v.join_rows
        << " marked=" << v.marked_rows << " missing=" << v.missing_rows
        << " extra=" << v.extra_rows
        << (v.consistent() ? " [ok]" : " [INCONSISTENT]") << "\n";
  }
  return out.str();
}

sql::SelectStatement ViewJoinStatement(const sql::ViewDef& view,
                                       const sql::Catalog& catalog) {
  sql::SelectStatement stmt;
  for (size_t i = 0; i < view.relations.size(); ++i) {
    const std::string alias = "t" + std::to_string(i);
    stmt.from.push_back(sql::TableRef{view.relations[i], alias});
    const sql::RelationDef* rel = catalog.FindRelation(view.relations[i]);
    if (rel == nullptr) continue;  // caught later: empty select list
    for (const sql::Column& col : rel->columns) {
      sql::SelectItem item;
      item.column = sql::ColumnRef{alias, col.name};
      item.output_name = col.name;
      stmt.items.push_back(std::move(item));
    }
    if (i == 0) continue;
    const sql::ForeignKey& fk = view.edges[i];
    const sql::RelationDef* parent = catalog.FindRelation(view.relations[i - 1]);
    const std::string parent_alias = "t" + std::to_string(i - 1);
    for (size_t j = 0; j < fk.columns.size() && parent != nullptr &&
                       j < parent->primary_key.size();
         ++j) {
      sql::Predicate pred;
      pred.lhs = sql::Operand::Col(sql::ColumnRef{alias, fk.columns[j]});
      pred.op = sql::CompareOp::kEq;
      pred.rhs = sql::Operand::Col(
          sql::ColumnRef{parent_alias, parent->primary_key[j]});
      stmt.where.push_back(std::move(pred));
    }
  }
  return stmt;
}

std::string ViewJoinSql(const sql::ViewDef& view, const sql::Catalog& catalog) {
  return ViewJoinStatement(view, catalog).ToString();
}

StatusOr<ViewAuditReport> AuditViewConsistency(hbase::Session& s,
                                               exec::TableAdapter* adapter) {
  const sql::Catalog& catalog = adapter->catalog();
  exec::Executor executor(adapter);
  ViewAuditReport report;
  for (const sql::ViewDef* view : catalog.Views()) {
    ViewAuditEntry entry;
    entry.view = view->name;

    // The defining join over the base tables. Hash joins are forced so the
    // audit does not read the view (or its indexes) it is checking.
    const sql::SelectStatement stmt = ViewJoinStatement(*view, catalog);
    exec::ExecOptions opts;
    opts.collect_rows = true;
    opts.detect_dirty = false;
    opts.force_hash_join = true;
    StatusOr<exec::QueryResult> joined_or =
        executor.ExecuteSelect(s, stmt, {}, opts);
    if (!joined_or.ok()) {
      return Status(joined_or.status().code(),
                    "auditing " + view->name + " (defining join `" +
                        stmt.ToString() + "`): " +
                        joined_or.status().message());
    }
    exec::QueryResult& joined = *joined_or;
    std::vector<std::string> join_rows;
    join_rows.reserve(joined.rows.size());
    for (const std::vector<Value>& row : joined.rows) {
      join_rows.push_back(Fingerprint(row));
    }
    entry.join_rows = join_rows.size();

    // The view's stored rows, in the same (storage) column order.
    SYNERGY_ASSIGN_OR_RETURN(scanner, adapter->ScanAll(s, view->name));
    std::vector<std::string> view_rows;
    exec::SlotRow row;
    while (true) {
      StatusOr<bool> more_or = scanner.NextSlots(&row);
      if (!more_or.ok()) {
        return Status(more_or.status().code(),
                      "auditing " + view->name + " (storage scan): " +
                          more_or.status().message());
      }
      const bool more = *more_or;
      if (!more) break;
      view_rows.push_back(Fingerprint(row.values));
      if (row.marked) ++entry.marked_rows;
    }
    entry.view_rows = view_rows.size();

    std::sort(join_rows.begin(), join_rows.end());
    std::sort(view_rows.begin(), view_rows.end());
    entry.missing_rows = MultisetDifference(join_rows, view_rows);
    entry.extra_rows = MultisetDifference(view_rows, join_rows);
    report.views.push_back(std::move(entry));
  }
  return report;
}

}  // namespace synergy::core
