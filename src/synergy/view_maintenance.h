// View maintenance (§VII): applicability tests and tuple/key construction
// for insert, delete and update statements against base tables.
#pragma once

#include <string>
#include <vector>

#include "exec/table_adapter.h"
#include "sql/catalog.h"

namespace synergy::core {

class ViewMaintainer {
 public:
  explicit ViewMaintainer(exec::TableAdapter* adapter) : adapter_(adapter) {}

  /// §VII-A applicability: a base insert into R applies to view V iff R is
  /// the last relation of V.
  static bool InsertApplies(const sql::ViewDef& view,
                            const std::string& relation) {
    return !view.relations.empty() && view.relations.back() == relation;
  }
  /// §VII-B: same applicability as insert (no cascading deletes).
  static bool DeleteApplies(const sql::ViewDef& view,
                            const std::string& relation) {
    return InsertApplies(view, relation);
  }
  /// §VII-C: an update applies iff R is anywhere in V's relation sequence.
  static bool UpdateApplies(const sql::ViewDef& view,
                            const std::string& relation);

  /// Propagates a base-table insert to every applicable view: reads the
  /// k-1 ancestor tuples along the FK chain and inserts the joined tuple
  /// (linear in view length, independent of cardinality ratios).
  Status ApplyInsert(hbase::Session& s, const std::string& relation,
                     const exec::Tuple& tuple);

  /// Propagates a base-table delete: the view key equals the base key
  /// (PK(V) = PK of the last relation); view-index rows are removed via the
  /// read-then-delete key construction inside the adapter.
  Status ApplyDelete(hbase::Session& s, const std::string& relation,
                     const std::vector<Value>& pk_values);

  struct AffectedRows {
    std::string view;
    std::vector<std::vector<Value>> view_pks;
  };

  /// Locates the view rows an update to `relation`@pk touches, using a
  /// maintenance index when available and a view scan otherwise.
  StatusOr<std::vector<AffectedRows>> FindAffected(
      hbase::Session& s, const std::string& relation,
      const std::vector<Value>& pk_values);

  /// Applies SET assignments to one view row (column names are shared
  /// between base relations and views).
  Status UpdateViewRow(hbase::Session& s, const std::string& view,
                       const std::vector<Value>& view_pk,
                       const std::vector<std::pair<std::string, Value>>& sets);

 private:
  exec::TableAdapter* adapter_;
};

}  // namespace synergy::core
