// Schema-relationships-UNAWARE view selection (the MVCC-UA comparator).
//
// Models the tuning-advisor approach of Agrawal et al. (VLDB'00) the paper
// compares against: purely workload-driven, oblivious to rooted trees and
// the one-tree-per-relation restriction. Candidates are the FK join chains
// appearing in each query; a greedy knapsack picks views by benefit per
// storage byte under a storage budget. With TPC-W statistics and the
// default budget this selects a single view (matching the paper's
// observation that the advisor materialized one view, used by Q10).
#pragma once

#include <functional>
#include <vector>

#include "synergy/view_selection.h"

namespace synergy::core {

struct UnawareOptions {
  /// Budget as a fraction of the estimated base-tables footprint (tuning
  /// advisors are typically given an explicit storage bound; 0.6 admits the
  /// highest-benefit-per-byte TPC-W views while rejecting the order-line-
  /// grain monsters Synergy's schema-aware mechanism deliberately accepts).
  double storage_budget_fraction = 0.6;
};

struct UnawareCandidate {
  SelectedView view;
  double benefit = 0;        // scan work saved, frequency-weighted
  double storage_bytes = 0;  // estimated materialization footprint
};

using RowCountFn = std::function<size_t(const std::string& relation)>;

/// Enumerates candidate views (maximal FK join chains per query).
std::vector<UnawareCandidate> EnumerateUnawareCandidates(
    const sql::Workload& workload, const sql::Catalog& catalog,
    const RowCountFn& rows);

/// Greedy benefit/storage selection under the budget.
std::vector<SelectedView> SelectViewsUnaware(const sql::Workload& workload,
                                             const sql::Catalog& catalog,
                                             const RowCountFn& rows,
                                             const UnawareOptions& options = {});

/// Estimated on-disk bytes of one relation (rows x average row width).
double EstimateRelationBytes(const sql::RelationDef& rel, size_t rows);

}  // namespace synergy::core
