#include "synergy/view_index.h"

#include <algorithm>
#include <set>

namespace synergy::core {
namespace {

std::vector<std::string> AllColumns(const sql::RelationDef& rel) {
  std::vector<std::string> out;
  out.reserve(rel.columns.size());
  for (const sql::Column& c : rel.columns) out.push_back(c.name);
  return out;
}

/// First column a storage structure is "indexed upon".
std::string IndexedUpon(const sql::RelationDef& rel) {
  return rel.primary_key.empty() ? "" : rel.primary_key.front();
}

bool AlreadyIndexedUpon(const std::string& attr, const sql::RelationDef& view,
                        const std::vector<const sql::IndexDef*>& existing,
                        const std::vector<sql::IndexDef>& pending) {
  if (IndexedUpon(view) == attr) return true;
  for (const sql::IndexDef* ix : existing) {
    if (!ix->indexed_columns.empty() && ix->indexed_columns.front() == attr) {
      return true;
    }
  }
  for (const sql::IndexDef& ix : pending) {
    if (ix.relation == view.name && !ix.indexed_columns.empty() &&
        ix.indexed_columns.front() == attr) {
      return true;
    }
  }
  return false;
}

/// Filter attributes of `stmt` that land on `view_name` (const-comparison
/// predicates only).
std::vector<std::string> FilterAttributesOnView(
    const sql::SelectStatement& stmt, const sql::RelationDef& view,
    const std::string& view_name) {
  std::vector<std::string> out;
  for (const sql::Predicate& p : stmt.where) {
    if (p.IsColumnColumn()) continue;
    const sql::Operand& col_side =
        p.lhs.kind == sql::Operand::Kind::kColumn ? p.lhs : p.rhs;
    if (col_side.kind != sql::Operand::Kind::kColumn) continue;
    const sql::ColumnRef& ref = col_side.column;
    const bool on_view =
        ref.qualifier == view_name ||
        (ref.qualifier.empty() && view.HasColumn(ref.column));
    if (on_view && view.HasColumn(ref.column)) out.push_back(ref.column);
  }
  return out;
}

}  // namespace

namespace {

/// Inherit the statistics hint from any base index on the same column.
sql::IndexCardinality InheritCardinality(const sql::Catalog& catalog,
                                         const std::string& column) {
  for (const sql::RelationDef* rel : catalog.Relations()) {
    for (const sql::IndexDef* ix : catalog.IndexesFor(rel->name)) {
      if (!ix->indexed_columns.empty() && ix->indexed_columns.front() == column) {
        return ix->cardinality;
      }
    }
  }
  return sql::IndexCardinality::kUnknown;
}

}  // namespace

std::vector<sql::IndexDef> RecommendViewIndexes(
    const sql::Workload& rewritten_workload, const sql::Catalog& catalog) {
  std::vector<sql::IndexDef> recommended;
  for (const sql::ViewDef* view : catalog.Views()) {
    const sql::RelationDef* storage = catalog.FindRelation(view->name);
    const auto existing = catalog.IndexesFor(view->name);
    for (const sql::WorkloadStatement& stmt : rewritten_workload.statements) {
      const auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
      if (sel == nullptr) continue;
      const bool uses_view = std::any_of(
          sel->from.begin(), sel->from.end(),
          [&](const sql::TableRef& t) { return t.table == view->name; });
      if (!uses_view) continue;
      const std::vector<std::string> filters =
          FilterAttributesOnView(*sel, *storage, view->name);
      if (filters.empty()) continue;
      const bool any_indexed = std::any_of(
          filters.begin(), filters.end(), [&](const std::string& attr) {
            return AlreadyIndexedUpon(attr, *storage, existing, recommended);
          });
      if (any_indexed) continue;
      sql::IndexDef ix;
      ix.name = "vix_" + view->name + "_" + filters.front();
      ix.relation = view->name;
      ix.indexed_columns = {filters.front()};
      ix.covered_columns = AllColumns(*storage);
      ix.cardinality = InheritCardinality(catalog, filters.front());
      recommended.push_back(std::move(ix));
    }
  }
  return recommended;
}

std::vector<sql::IndexDef> RecommendMaintenanceIndexes(
    const sql::Workload& workload, const sql::Catalog& catalog) {
  // Relations the workload updates.
  std::set<std::string> updated;
  for (const sql::WorkloadStatement& stmt : workload.statements) {
    if (const auto* upd = std::get_if<sql::UpdateStatement>(&stmt.ast)) {
      updated.insert(upd->table);
    }
  }
  std::vector<sql::IndexDef> recommended;
  for (const sql::ViewDef* view : catalog.Views()) {
    const sql::RelationDef* storage = catalog.FindRelation(view->name);
    const auto existing = catalog.IndexesFor(view->name);
    for (size_t i = 0; i + 1 < view->relations.size(); ++i) {
      const std::string& member = view->relations[i];
      if (!updated.contains(member)) continue;
      const sql::RelationDef* rel = catalog.FindRelation(member);
      if (rel == nullptr || rel->primary_key.size() != 1) continue;
      const std::string& attr = rel->primary_key.front();
      if (AlreadyIndexedUpon(attr, *storage, existing, recommended)) continue;
      sql::IndexDef ix;
      ix.name = "mix_" + view->name + "_" + attr;
      ix.relation = view->name;
      ix.indexed_columns = {attr};
      // Key-only: maintenance only needs attr -> view-PK mapping (the
      // catalog adds the PK columns automatically), so don't duplicate the
      // whole view the way query-serving covered indexes must.
      ix.covered_columns = {attr};
      // Member PKs fan out like foreign keys inside the view.
      ix.cardinality = sql::IndexCardinality::kHigh;
      recommended.push_back(std::move(ix));
    }
  }
  return recommended;
}

}  // namespace synergy::core
