// The Synergy system facade (§IV, §VIII): wires together candidate-view
// generation, view selection, query rewriting, view/maintenance indexes,
// the transaction layer with hierarchical locking, and the executor with
// dirty-read restarts.
//
// Usage:
//   SynergySystem sys(&cluster, {.roots = {"Author", "Customer", "Country"}});
//   sys.Build(base_catalog, workload);    // selects views, rewrites workload
//   sys.CreateStorage();                  // tables, views, indexes, locks
//   sys.Load(session, relation, tuple);   // bulk load (views maintained)
//   sys.Execute(session, statement_ast, params);
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/write_binding.h"
#include "sql/workload.h"
#include "synergy/query_rewrite.h"
#include "synergy/view_index.h"
#include "synergy/view_maintenance.h"
#include "txn/txn_layer.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::core {

struct SynergyConfig {
  std::vector<std::string> roots;
  int txn_slaves = 1;
  int max_dirty_retries = 10;
};

/// Output of the offline design pipeline (§V + §VI): catalog with views and
/// all recommended indexes, rewritten workload, and the rooted trees.
struct SynergyDesign {
  sql::Catalog catalog;
  sql::Workload workload;
  std::vector<RootedTree> trees;
  std::vector<std::string> rewritten_ids;
};

/// Runs candidate generation, view selection, query rewriting, and
/// view/maintenance index recommendation. Shared by SynergySystem and the
/// MVCC-A comparator (which uses the same views with MVCC instead of the
/// specialized concurrency control, §IX-D2).
StatusOr<SynergyDesign> DesignSynergySchema(
    const sql::Catalog& base_catalog, const sql::Workload& workload,
    const std::vector<std::string>& roots);

struct WriteResult {
  int64_t txn_id = 0;
  size_t base_rows_affected = 0;
};

class SynergySystem {
 public:
  SynergySystem(hbase::Cluster* cluster, SynergyConfig config);

  /// Runs the §V/§VI pipeline: candidate views, selection, rewriting,
  /// view-indexes and maintenance indexes. The input catalog must contain
  /// base relations and base indexes only.
  Status Build(const sql::Catalog& base_catalog, const sql::Workload& workload);

  /// Creates every store table: base relations, base indexes, views,
  /// view-indexes and lock tables.
  Status CreateStorage();

  const sql::Catalog& catalog() const { return catalog_; }
  const sql::Workload& workload() const { return workload_; }
  const std::vector<RootedTree>& trees() const { return trees_; }
  const std::vector<std::string>& rewritten_ids() const {
    return rewritten_ids_;
  }
  exec::TableAdapter* adapter() { return adapter_.get(); }
  txn::TxnLayer* txn_layer() { return txn_layer_.get(); }

  /// Installs (or clears, with nullptr) one fault injector across the whole
  /// stack: cluster RPC boundary, lock manager, txn layer + WALs. May be
  /// called before or after Build.
  void SetFaultInjector(fault::FaultInjector* faults);

  /// Bulk load one base tuple: inserts base row, index rows, view rows and
  /// the lock entry (for roots) — no WAL/locking (offline load path).
  Status Load(hbase::Session& s, const std::string& relation,
              const exec::Tuple& tuple);

  /// Executes any statement: reads run with dirty-read restarts; writes run
  /// as single-statement transactions through the transaction layer with a
  /// single hierarchical lock.
  StatusOr<exec::QueryResult> ExecuteRead(hbase::Session& s,
                                          const sql::SelectStatement& stmt,
                                          exec::BoundParams params,
                                          bool collect_rows = true);
  StatusOr<WriteResult> ExecuteWrite(hbase::Session& s,
                                     const sql::Statement& stmt,
                                     const std::vector<Value>& params);

  /// EXPLAIN ANALYZE under the read protocol (dirty-read restarts on, rows
  /// not materialized): runs the statement and returns the per-plan-node
  /// virtual cost decomposition.
  StatusOr<exec::AnalyzeResult> ExplainAnalyzeRead(
      hbase::Session& s, const sql::SelectStatement& stmt,
      exec::BoundParams params);

  /// Root lock this write must take, derived by walking the FK chain from
  /// the written row up to its rooted tree's root (§VIII-A). nullopt when
  /// the relation is not in any rooted tree.
  StatusOr<std::optional<txn::LockSpec>> DeriveLockSpec(
      hbase::Session& s, const std::string& relation, const exec::Tuple& tuple);

  /// Replays a WAL payload after failover (parses the bound statement and
  /// re-executes the write body without WAL re-append).
  Status ReplayPayload(hbase::Session& s, const std::string& payload);

 private:
  Status WriteBodyFor(hbase::Session& s, const exec::BoundWrite& write);
  Status RunInsert(hbase::Session& s, const exec::BoundWrite& write);
  Status RunDelete(hbase::Session& s, const exec::BoundWrite& write);
  Status RunUpdate(hbase::Session& s, const exec::BoundWrite& write);

  hbase::Cluster* cluster_;
  SynergyConfig config_;
  fault::FaultInjector* faults_ = nullptr;
  sql::Catalog catalog_;
  sql::Workload workload_;
  std::vector<RootedTree> trees_;
  std::vector<std::string> rewritten_ids_;
  std::unique_ptr<exec::TableAdapter> adapter_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<ViewMaintainer> maintainer_;
  std::unique_ptr<txn::LockManager> locks_;
  std::unique_ptr<txn::TxnLayer> txn_layer_;
  bool built_ = false;
  // Registry handles (cluster->metrics()), resolved at construction.
  obs::Counter* c_reads_;
  obs::Counter* c_writes_;
  obs::Counter* c_view_marks_;
  obs::Counter* c_view_rows_updated_;
};

}  // namespace synergy::core
