// View-consistency auditor: checks that every materialized view equals the
// join of its member base tables (the §VII invariant) and that no dirty
// marks are left behind. The chaos/property suites run it after recovery;
// it is also handy as a debugging probe after any write sequence.
//
// The defining join is rebuilt from the catalog's ViewDef (member path +
// FK edges) and executed over the base tables with client hash joins, so
// the audit does not depend on the view machinery it is checking.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/table_adapter.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace synergy::core {

struct ViewAuditEntry {
  std::string view;
  size_t view_rows = 0;    // live rows in view storage
  size_t join_rows = 0;    // rows of the defining base join
  size_t marked_rows = 0;  // leftover dirty marks in view storage
  size_t missing_rows = 0; // join rows absent from the view
  size_t extra_rows = 0;   // view rows absent from the join

  bool consistent() const {
    return missing_rows == 0 && extra_rows == 0 && marked_rows == 0;
  }
};

struct ViewAuditReport {
  std::vector<ViewAuditEntry> views;

  bool consistent() const;
  std::string ToString() const;
};

/// The defining join of `view` as a SELECT over its member base tables:
/// members aliased t0 (root-most) .. tn, select list in view storage column
/// order, WHERE joining each member to its parent along the FK edges.
sql::SelectStatement ViewJoinStatement(const sql::ViewDef& view,
                                       const sql::Catalog& catalog);

/// ViewJoinStatement rendered as SQL text (diagnostics, docs).
std::string ViewJoinSql(const sql::ViewDef& view, const sql::Catalog& catalog);

/// Audits every view in the adapter's catalog: executes the defining join,
/// scans the view storage, and multiset-compares the two row sets.
StatusOr<ViewAuditReport> AuditViewConsistency(hbase::Session& s,
                                               exec::TableAdapter* adapter);

}  // namespace synergy::core
