// Candidate views generation mechanism (§V-B).
//
// Pipeline: schema graph -> DAG (keep the max-weight edge per node pair)
// -> topological order -> assign each non-root relation to at most one root
// (forward topological order, max-weight valid path) -> rooted graphs ->
// rooted trees (reverse topological order, max-weight path retained).
//
// The output is one rooted tree per root; every path in a rooted tree is a
// candidate view. Because each relation lands in at most one tree, a write
// transaction needs exactly one lock (on the tree's root key).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "synergy/schema_graph.h"

namespace synergy::core {

struct TreeEdge {
  std::string parent;
  std::string child;
  sql::ForeignKey fk;
  double weight = 0;
};

class RootedTree {
 public:
  RootedTree() = default;
  explicit RootedTree(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }
  const std::vector<TreeEdge>& edges() const { return edges_; }

  void AddEdge(TreeEdge edge);
  bool Contains(const std::string& relation) const;
  /// Parent of a non-root member; nullopt for the root or non-members.
  std::optional<std::string> ParentOf(const std::string& relation) const;
  std::vector<std::string> ChildrenOf(const std::string& relation) const;
  const TreeEdge* EdgeTo(const std::string& child) const;

  /// Relations on the unique root->relation path, root first.
  std::vector<std::string> PathFromRoot(const std::string& relation) const;

  /// All member relations (root first, then BFS order).
  std::vector<std::string> Members() const;

  std::string ToString() const;

 private:
  std::string root_;
  std::vector<TreeEdge> edges_;
};

struct CandidateViewsResult {
  std::vector<RootedTree> trees;
  /// Relations that could not be assigned to any root.
  std::vector<std::string> unassigned;
};

/// Runs the full §V-B mechanism. `roots` is the designer-provided set Q.
StatusOr<CandidateViewsResult> GenerateCandidateViews(
    const SchemaGraph& graph, const sql::Workload& workload,
    const sql::Catalog& catalog, const std::vector<std::string>& roots);

/// Enumerates every path with >= 2 relations in a rooted tree — the
/// candidate views of Definition 5 (used by tests and the Company example).
std::vector<std::vector<std::string>> EnumerateCandidatePaths(
    const RootedTree& tree);

}  // namespace synergy::core
