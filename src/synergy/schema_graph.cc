#include "synergy/schema_graph.h"

#include <algorithm>

#include "common/str_util.h"

namespace synergy::core {

std::string SchemaEdge::Label() const {
  return "(" + parent + "->" + child + " via " + JoinStrings(fk.columns, ",") +
         ")";
}

SchemaGraph SchemaGraph::FromCatalog(const sql::Catalog& catalog) {
  SchemaGraph g;
  for (const sql::RelationDef* rel : catalog.Relations()) {
    if (catalog.IsView(rel->name)) continue;
    g.relations_.push_back(rel->name);
  }
  std::sort(g.relations_.begin(), g.relations_.end());
  for (const std::string& child : g.relations_) {
    const sql::RelationDef* rel = catalog.FindRelation(child);
    for (const sql::ForeignKey& fk : rel->foreign_keys) {
      if (!catalog.FindRelation(fk.ref_relation) ||
          catalog.IsView(fk.ref_relation)) {
        continue;
      }
      g.edges_.push_back(SchemaEdge{fk.ref_relation, child, fk});
    }
  }
  return g;
}

std::vector<const SchemaEdge*> SchemaGraph::OutEdges(
    const std::string& relation) const {
  std::vector<const SchemaEdge*> out;
  for (const SchemaEdge& e : edges_) {
    if (e.parent == relation) out.push_back(&e);
  }
  return out;
}

std::vector<const SchemaEdge*> SchemaGraph::InEdges(
    const std::string& relation) const {
  std::vector<const SchemaEdge*> out;
  for (const SchemaEdge& e : edges_) {
    if (e.child == relation) out.push_back(&e);
  }
  return out;
}

bool SchemaGraph::HasRelation(const std::string& relation) const {
  return std::find(relations_.begin(), relations_.end(), relation) !=
         relations_.end();
}

namespace {

/// Relation name a query operand belongs to, resolved through FROM aliases.
std::string OperandRelation(const sql::SelectStatement& stmt,
                            const sql::Catalog& catalog,
                            const sql::Operand& op) {
  if (op.kind != sql::Operand::Kind::kColumn) return "";
  if (!op.column.qualifier.empty()) {
    for (const sql::TableRef& ref : stmt.from) {
      if (ref.alias == op.column.qualifier) return ref.table;
    }
    return "";
  }
  std::string found;
  for (const sql::TableRef& ref : stmt.from) {
    const sql::RelationDef* rel = catalog.FindRelation(ref.table);
    if (rel != nullptr && rel->HasColumn(op.column.column)) {
      if (!found.empty() && found != ref.table) return "";  // ambiguous
      found = ref.table;
    }
  }
  return found;
}

}  // namespace

std::vector<QueryJoinEdge> ExtractJoinEdges(const sql::SelectStatement& stmt,
                                            const sql::Catalog& catalog) {
  std::vector<QueryJoinEdge> out;
  for (const sql::Predicate& p : stmt.where) {
    if (!p.IsEquiJoin()) continue;
    const std::string lhs_rel = OperandRelation(stmt, catalog, p.lhs);
    const std::string rhs_rel = OperandRelation(stmt, catalog, p.rhs);
    if (lhs_rel.empty() || rhs_rel.empty() || lhs_rel == rhs_rel) continue;
    // Try both orientations: child.fk = parent.pk.
    for (const auto& [child_rel, child_col, parent_rel, parent_col] :
         {std::tuple{lhs_rel, p.lhs.column.column, rhs_rel,
                     p.rhs.column.column},
          std::tuple{rhs_rel, p.rhs.column.column, lhs_rel,
                     p.lhs.column.column}}) {
      const sql::RelationDef* parent = catalog.FindRelation(parent_rel);
      const sql::RelationDef* child = catalog.FindRelation(child_rel);
      if (parent == nullptr || child == nullptr) continue;
      // Single-column keys (the supported workloads use single-column FKs).
      if (parent->primary_key.size() != 1 ||
          parent->primary_key[0] != parent_col) {
        continue;
      }
      for (const sql::ForeignKey& fk : child->foreign_keys) {
        if (fk.ref_relation == parent_rel && fk.columns.size() == 1 &&
            fk.columns[0] == child_col) {
          out.push_back(QueryJoinEdge{SchemaEdge{parent_rel, child_rel, fk}});
        }
      }
    }
  }
  return out;
}

double EdgeWeight(const SchemaEdge& edge, const sql::Workload& workload,
                  const sql::Catalog& catalog) {
  double weight = 0;
  for (const sql::WorkloadStatement& stmt : workload.statements) {
    const auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
    if (sel == nullptr) continue;
    for (const QueryJoinEdge& qe : ExtractJoinEdges(*sel, catalog)) {
      if (qe.edge == edge) {
        weight += stmt.frequency;
        break;
      }
    }
  }
  return weight;
}

}  // namespace synergy::core
