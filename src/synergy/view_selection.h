// Workload-driven views selection (§VI-A) and the path-marking procedure.
//
// For each equi-join query: mark the rooted-tree edges (and their endpoint
// relations) that the query joins over, then repeatedly peel off a maximal
// marked path (start: marked node with no incoming marked edge; end: leaf or
// no outgoing marked edge), select it as a view, and unmark its relations
// and their outgoing edges.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "synergy/candidate_views.h"

namespace synergy::core {

/// A selected view: a path of relations (root-most first) plus the FK edges
/// linking consecutive members.
struct SelectedView {
  std::string root;                    // root of the originating tree
  std::vector<std::string> relations;  // path order, parent first
  std::vector<sql::ForeignKey> edges;  // edges[i] = FK of relations[i] ->
                                       // relations[i-1]; edges[0] unused

  std::string Name() const;  // "R2-R3-R4"
  bool operator==(const SelectedView& other) const {
    return relations == other.relations;
  }
};

/// Views the marking procedure selects for one query.
std::vector<SelectedView> SelectViewsForQuery(
    const sql::SelectStatement& stmt, const sql::Catalog& catalog,
    const std::vector<RootedTree>& trees);

/// Final view set for a workload: the union over all equi-join queries,
/// de-duplicated. Queries that use a relation more than once are skipped
/// (unsupported in Synergy, §VIII-C).
std::vector<SelectedView> SelectViews(const sql::Workload& workload,
                                      const sql::Catalog& catalog,
                                      const std::vector<RootedTree>& trees);

/// Builds the catalog metadata + storage definition for a selected view:
/// attributes = union of member attributes (duplicate names rejected),
/// PK = PK of the last relation, FKs = the member FKs linking the path.
StatusOr<std::pair<sql::ViewDef, sql::RelationDef>> MaterializeViewDef(
    const SelectedView& view, const sql::Catalog& catalog);

}  // namespace synergy::core
