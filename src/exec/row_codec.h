// Typed tuple <-> store bytes (the baseline schema transformation, §II-D).
//
// A relation row is stored under one data qualifier ("d") holding the
// self-describing encoding of all column values in schema order (akin to
// Phoenix's single-cell storage format). The row key is the order-preserving
// encoding of the PK values. An index row's key is the encoding of the
// indexed columns followed by the PK; its value covers the index's covered
// columns.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "sql/catalog.h"

namespace synergy::exec {

/// Column name -> value. Missing columns read back as NULL.
using Tuple = std::map<std::string, Value>;

/// Data qualifier holding the encoded tuple.
inline constexpr char kDataQualifier[] = "d";
/// Dirty-mark qualifier used by the Synergy update protocol (§VIII-B).
inline constexpr char kMarkQualifier[] = "m";

/// Row key for a base-table tuple: encoded PK values in PK order.
StatusOr<std::string> EncodePkKey(const sql::RelationDef& rel,
                                  const Tuple& tuple);
std::string EncodePkKeyFromValues(const std::vector<Value>& pk_values);

/// Index row key: encoded indexed-column values, then PK values.
StatusOr<std::string> EncodeIndexKey(const sql::IndexDef& index,
                                     const sql::RelationDef& rel,
                                     const Tuple& tuple);

/// Scan bounds [start, stop) for an index-prefix lookup on the first
/// `prefix_values.size()` indexed columns.
std::pair<std::string, std::string> IndexPrefixRange(
    const std::vector<Value>& prefix_values);

/// Serializes the tuple's values for `rel.columns` in schema order.
std::string EncodeRowValue(const sql::RelationDef& rel, const Tuple& tuple);

/// Serializes only `columns` (for covered index rows).
std::string EncodeProjectedValue(const std::vector<std::string>& columns,
                                 const sql::RelationDef& rel,
                                 const Tuple& tuple);

/// Decodes a row value back into a tuple given the column list used to
/// encode it (schema order for base rows; covered order for index rows).
StatusOr<Tuple> DecodeRowValue(const std::vector<sql::Column>& columns,
                               std::string_view bytes);

/// Slot-decoding fast path: decodes the value encoded with `columns` directly
/// into `out`, which is resized to `num_slots` and NULL-filled first. The
/// i-th decoded column lands in slot `slot_map[i]` (a negative slot discards
/// it); an empty `slot_map` means identity (base rows in schema order).
/// Reuses `out`'s capacity — no per-row map or node allocations.
Status DecodeRowSlots(const std::vector<sql::Column>& columns,
                      const std::vector<int>& slot_map, size_t num_slots,
                      std::string_view bytes, std::vector<Value>* out);

/// Like EncodePkKeyFromValues but reuses `out`'s capacity (cleared first).
void EncodePkKeyFromValuesInto(const std::vector<Value>& pk_values,
                               std::string* out);

/// Column definitions for a projected (index) encoding.
std::vector<sql::Column> ProjectColumns(
    const sql::RelationDef& rel, const std::vector<std::string>& names);

}  // namespace synergy::exec
