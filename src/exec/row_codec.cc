#include "exec/row_codec.h"

namespace synergy::exec {
namespace {

Value TupleGet(const Tuple& tuple, const std::string& column) {
  auto it = tuple.find(column);
  return it == tuple.end() ? Value() : it->second;
}

}  // namespace

StatusOr<std::string> EncodePkKey(const sql::RelationDef& rel,
                                  const Tuple& tuple) {
  std::vector<Value> pk;
  pk.reserve(rel.primary_key.size());
  for (const std::string& col : rel.primary_key) {
    Value v = TupleGet(tuple, col);
    if (v.is_null()) {
      return Status::InvalidArgument("NULL or missing PK column " + col +
                                     " for relation " + rel.name);
    }
    pk.push_back(std::move(v));
  }
  return codec::EncodeKey(pk);
}

std::string EncodePkKeyFromValues(const std::vector<Value>& pk_values) {
  return codec::EncodeKey(pk_values);
}

StatusOr<std::string> EncodeIndexKey(const sql::IndexDef& index,
                                     const sql::RelationDef& rel,
                                     const Tuple& tuple) {
  std::vector<Value> parts;
  parts.reserve(index.indexed_columns.size() + rel.primary_key.size());
  for (const std::string& col : index.indexed_columns) {
    parts.push_back(TupleGet(tuple, col));
  }
  for (const std::string& col : rel.primary_key) {
    Value v = TupleGet(tuple, col);
    if (v.is_null()) {
      return Status::InvalidArgument("NULL PK column " + col +
                                     " while building index key");
    }
    parts.push_back(std::move(v));
  }
  return codec::EncodeKey(parts);
}

std::pair<std::string, std::string> IndexPrefixRange(
    const std::vector<Value>& prefix_values) {
  const std::string start = codec::EncodeKey(prefix_values);
  return {start, codec::PrefixSuccessor(start)};
}

std::string EncodeRowValue(const sql::RelationDef& rel, const Tuple& tuple) {
  std::string out;
  for (const sql::Column& col : rel.columns) {
    codec::EncodeValue(TupleGet(tuple, col.name), &out);
  }
  return out;
}

std::string EncodeProjectedValue(const std::vector<std::string>& columns,
                                 const sql::RelationDef& rel,
                                 const Tuple& tuple) {
  (void)rel;
  std::string out;
  for (const std::string& col : columns) {
    codec::EncodeValue(TupleGet(tuple, col), &out);
  }
  return out;
}

StatusOr<Tuple> DecodeRowValue(const std::vector<sql::Column>& columns,
                               std::string_view bytes) {
  Tuple tuple;
  for (const sql::Column& col : columns) {
    SYNERGY_ASSIGN_OR_RETURN(v, codec::DecodeValue(&bytes, col.type));
    if (!v.is_null()) tuple.emplace(col.name, std::move(v));
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes in row value");
  }
  return tuple;
}

Status DecodeRowSlots(const std::vector<sql::Column>& columns,
                      const std::vector<int>& slot_map, size_t num_slots,
                      std::string_view bytes, std::vector<Value>* out) {
  out->clear();
  out->resize(num_slots);  // all slots NULL
  const bool identity = slot_map.empty();
  for (size_t i = 0; i < columns.size(); ++i) {
    SYNERGY_ASSIGN_OR_RETURN(v, codec::DecodeValue(&bytes, columns[i].type));
    const int slot = identity ? static_cast<int>(i) : slot_map[i];
    if (slot >= 0) (*out)[static_cast<size_t>(slot)] = std::move(v);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes in row value");
  }
  return Status::Ok();
}

void EncodePkKeyFromValuesInto(const std::vector<Value>& pk_values,
                               std::string* out) {
  codec::EncodeKeyInto(pk_values, out);
}

std::vector<sql::Column> ProjectColumns(const sql::RelationDef& rel,
                                        const std::vector<std::string>& names) {
  std::vector<sql::Column> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(
        sql::Column{name, rel.ColumnType(name).value_or(DataType::kString)});
  }
  return out;
}

}  // namespace synergy::exec
