// Typed access to relations (base tables, views, indexes) stored in the
// cluster. One adapter per (cluster, catalog) pair; sessions carry cost.
//
// All write paths maintain the relation's covered indexes, mirroring how
// Phoenix keeps index tables in sync with data tables.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row_codec.h"
#include "hbase/cluster.h"
#include "sql/catalog.h"

namespace synergy::exec {

struct TupleWithMeta {
  Tuple tuple;
  bool marked = false;  // dirty-mark set by an in-flight Synergy update
};

/// Reusable slot-decoded row buffer: values in RelationDef column order
/// (NULL where absent), plus a scratch byte-key buffer so repeated point
/// lookups reuse one allocation. The executor keeps one per operator.
struct SlotRow {
  std::vector<Value> values;
  bool marked = false;
  std::string key_scratch;
};

/// Streaming typed scan over a relation or one of its indexes.
class TupleScanner {
 public:
  /// Returns false at end of stream; Status error on decode failure.
  StatusOr<bool> Next(TupleWithMeta* out);

  /// Slot-decoding variant: fills `out->values` in the owning relation's
  /// column order, reusing its capacity (no per-row map allocations).
  StatusOr<bool> NextSlots(SlotRow* out);

 private:
  friend class TableAdapter;
  /// `slot_map[i]` is the output slot of the i-th stored column (identity
  /// for base-table scans, covered->relation mapping for index scans);
  /// `num_slots` is the relation's column count.
  TupleScanner(hbase::Scanner scanner, std::vector<sql::Column> columns,
               std::vector<int> slot_map, size_t num_slots)
      : scanner_(std::move(scanner)),
        columns_(std::move(columns)),
        slot_map_(std::move(slot_map)),
        num_slots_(num_slots) {}

  hbase::Scanner scanner_;
  std::vector<sql::Column> columns_;
  std::vector<int> slot_map_;
  size_t num_slots_;
};

class TableAdapter {
 public:
  TableAdapter(hbase::Cluster* cluster, const sql::Catalog* catalog)
      : cluster_(cluster), catalog_(catalog) {}

  const sql::Catalog& catalog() const { return *catalog_; }
  hbase::Cluster* cluster() const { return cluster_; }

  /// Creates store tables for a relation and all its indexes.
  Status CreateStorage(const std::string& relation);

  /// Inserts a tuple and its index rows. Does not check uniqueness.
  Status Insert(hbase::Session& s, const std::string& relation,
                const Tuple& tuple);

  /// Point lookup by primary key values.
  StatusOr<std::optional<TupleWithMeta>> GetByPk(
      hbase::Session& s, const std::string& relation,
      const std::vector<Value>& pk_values);

  /// Slot-decoding point lookup: returns true and fills `row` (values in
  /// relation column order) when the row exists. Reuses `row`'s buffers.
  StatusOr<bool> GetByPkSlots(hbase::Session& s, const std::string& relation,
                              const std::vector<Value>& pk_values,
                              SlotRow* row);

  /// Deletes the row and its index rows (reads the row first to build index
  /// keys, as in §VII-B). No-op if absent.
  Status DeleteByPk(hbase::Session& s, const std::string& relation,
                    const std::vector<Value>& pk_values);

  /// Read-modify-write of non-PK columns; maintains affected index rows.
  Status UpdateByPk(hbase::Session& s, const std::string& relation,
                    const std::vector<Value>& pk_values,
                    const std::vector<std::pair<std::string, Value>>& sets);

  /// Full-relation scan.
  StatusOr<TupleScanner> ScanAll(hbase::Session& s,
                                 const std::string& relation);

  /// Range scan of an index by equality prefix on its indexed columns.
  StatusOr<TupleScanner> ScanIndexPrefix(hbase::Session& s,
                                         const std::string& index_name,
                                         const std::vector<Value>& prefix);

  /// Range scan of the base table by PK prefix.
  StatusOr<TupleScanner> ScanPkPrefix(hbase::Session& s,
                                      const std::string& relation,
                                      const std::vector<Value>& prefix);

  /// Dirty-mark protocol (§VIII-B): set/clear the mark column on the row.
  Status MarkRow(hbase::Session& s, const std::string& relation,
                 const std::vector<Value>& pk_values, bool marked);

  /// Marks/unmarks the row and all of its index rows (the paper marks both
  /// views and view-indexes before an update).
  Status SetMarkWithIndexes(hbase::Session& s, const std::string& relation,
                            const std::vector<Value>& pk_values, bool marked);

  size_t RowCount(const std::string& relation) const;

 private:
  Status WriteIndexRows(hbase::Session& s, const sql::RelationDef& rel,
                        const Tuple& tuple);
  Status DeleteIndexRows(hbase::Session& s, const sql::RelationDef& rel,
                         const Tuple& tuple);

  hbase::Cluster* cluster_;
  const sql::Catalog* catalog_;
};

}  // namespace synergy::exec
