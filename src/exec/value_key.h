// Composite hash keys over Value tuples for the executor's in-memory hash
// tables (hash join build/probe, GROUP BY state).
//
// Replaces the old codec::EncodeKey byte-string keys: no per-row encoding or
// string allocation. Probing uses heterogeneous lookup with a non-owning
// ValueKeyRef (an array of Value pointers gathered from the current row), so
// the probe side never copies values; only newly inserted keys materialize a
// vector<Value>.
//
// Hashing and equality follow Value::Compare()/Value::Hash(): int 5 and
// double 5.0 are the same key, NULLs are all one key (matching the previous
// EncodeKey behavior where every NULL encoded to the same marker).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/value.h"

namespace synergy::exec {

inline size_t CombineValueHash(size_t seed, size_t h) {
  // boost::hash_combine-style mixing over the per-value hashes.
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

inline size_t HashValuePtrs(std::span<const Value* const> values) {
  size_t seed = values.size();
  for (const Value* v : values) seed = CombineValueHash(seed, v->Hash());
  return seed;
}

/// Owning key: the gathered key values plus their cached hash. Construct
/// via MaterializeKey (probe-miss path) so the hash is computed once.
struct ValueKey {
  std::vector<Value> values;
  size_t hash = 0;
};

/// Non-owning probe key: pointers into an existing row, hash precomputed.
struct ValueKeyRef {
  std::span<const Value* const> values;
  size_t hash = 0;

  explicit ValueKeyRef(std::span<const Value* const> v)
      : values(v), hash(HashValuePtrs(v)) {}
};

struct ValueKeyHash {
  using is_transparent = void;
  size_t operator()(const ValueKey& k) const { return k.hash; }
  size_t operator()(const ValueKeyRef& k) const { return k.hash; }
};

struct ValueKeyEq {
  using is_transparent = void;

  bool operator()(const ValueKey& a, const ValueKey& b) const {
    if (a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (a.values[i].Compare(b.values[i]) != 0) return false;
    }
    return true;
  }
  bool operator()(const ValueKeyRef& a, const ValueKey& b) const {
    if (a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (a.values[i]->Compare(b.values[i]) != 0) return false;
    }
    return true;
  }
  bool operator()(const ValueKey& a, const ValueKeyRef& b) const {
    return (*this)(b, a);
  }
  bool operator()(const ValueKeyRef& a, const ValueKeyRef& b) const {
    if (a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (a.values[i]->Compare(*b.values[i]) != 0) return false;
    }
    return true;
  }
};

/// Materializes an owning ValueKey from a probe ref (reuses the ref's hash).
inline ValueKey MaterializeKey(const ValueKeyRef& ref) {
  ValueKey key;
  key.values.reserve(ref.values.size());
  for (const Value* v : ref.values) key.values.push_back(*v);
  key.hash = ref.hash;
  return key;
}

}  // namespace synergy::exec
