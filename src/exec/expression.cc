#include "exec/expression.h"

#include "common/str_util.h"

namespace synergy::exec {

std::shared_ptr<RowSchema> RowSchema::Make(
    std::vector<std::string> qualified_names) {
  auto schema = std::make_shared<RowSchema>();
  schema->names_ = std::move(qualified_names);
  std::map<std::string, int> plain_count;
  for (size_t i = 0; i < schema->names_.size(); ++i) {
    const std::string& qname = schema->names_[i];
    schema->by_name_[qname] = static_cast<int>(i);
    const size_t dot = qname.find('.');
    if (dot != std::string::npos) {
      const std::string plain = qname.substr(dot + 1);
      auto [it, inserted] = schema->by_name_.try_emplace(
          plain, static_cast<int>(i));
      if (!inserted && it->second >= 0 &&
          schema->names_[static_cast<size_t>(it->second)] != qname) {
        it->second = -2;  // ambiguous unqualified name
      }
    }
  }
  return schema;
}

std::shared_ptr<RowSchema> RowSchema::Concat(const RowSchema& left,
                                             const RowSchema& right) {
  std::vector<std::string> names = left.names_;
  names.insert(names.end(), right.names_.begin(), right.names_.end());
  return Make(std::move(names));
}

int RowSchema::Find(const sql::ColumnRef& ref) const {
  return FindByName(ref.qualifier.empty() ? ref.column
                                          : ref.qualifier + "." + ref.column);
}

int RowSchema::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second < 0) return -1;
  return it->second;
}

StatusOr<Value> ResolveOperand(const sql::Operand& op, const ExecRow& row,
                               BoundParams params) {
  switch (op.kind) {
    case sql::Operand::Kind::kColumn: {
      const int slot = row.schema->Find(op.column);
      if (slot < 0) {
        return Status::InvalidArgument("unknown column " +
                                       op.column.ToString());
      }
      return row.At(slot);
    }
    case sql::Operand::Kind::kLiteral:
      return op.literal;
    case sql::Operand::Kind::kParam: {
      if (op.param_index < 0 ||
          static_cast<size_t>(op.param_index) >= params.size()) {
        return Status::InvalidArgument("parameter index out of range");
      }
      return params[static_cast<size_t>(op.param_index)];
    }
  }
  return Status::Internal("bad operand kind");
}

StatusOr<Value> ResolveConstOperand(const sql::Operand& op,
                                    BoundParams params) {
  if (op.kind == sql::Operand::Kind::kColumn) {
    return Status::InvalidArgument("expected constant operand");
  }
  ExecRow dummy{RowSchema::Make({}), {}};
  return ResolveOperand(op, dummy, params);
}

bool CompareValues(sql::CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const int c = lhs.Compare(rhs);
  switch (op) {
    case sql::CompareOp::kEq: return c == 0;
    case sql::CompareOp::kNe: return c != 0;
    case sql::CompareOp::kLt: return c < 0;
    case sql::CompareOp::kLe: return c <= 0;
    case sql::CompareOp::kGt: return c > 0;
    case sql::CompareOp::kGe: return c >= 0;
  }
  return false;
}

StatusOr<bool> EvalPredicate(const sql::Predicate& pred, const ExecRow& row,
                             BoundParams params) {
  SYNERGY_ASSIGN_OR_RETURN(lhs, ResolveOperand(pred.lhs, row, params));
  SYNERGY_ASSIGN_OR_RETURN(rhs, ResolveOperand(pred.rhs, row, params));
  return CompareValues(pred.op, lhs, rhs);
}

StatusOr<bool> EvalAll(const std::vector<const sql::Predicate*>& preds,
                       const ExecRow& row, BoundParams params) {
  for (const sql::Predicate* p : preds) {
    SYNERGY_ASSIGN_OR_RETURN(ok, EvalPredicate(*p, row, params));
    if (!ok) return false;
  }
  return true;
}

}  // namespace synergy::exec
