#include "exec/planner.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace synergy::exec {
namespace {

/// Index of the FROM alias a column reference resolves to; -1 if it cannot
/// be resolved unambiguously.
int ResolveAlias(const std::vector<sql::TableRef>& from,
                 const sql::Catalog& catalog, const sql::ColumnRef& ref) {
  if (!ref.qualifier.empty()) {
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i].alias == ref.qualifier) return static_cast<int>(i);
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < from.size(); ++i) {
    const sql::RelationDef* rel = catalog.FindRelation(from[i].table);
    if (rel != nullptr && rel->HasColumn(ref.column)) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

int OperandAlias(const std::vector<sql::TableRef>& from,
                 const sql::Catalog& catalog, const sql::Operand& op) {
  if (op.kind != sql::Operand::Kind::kColumn) return -1;
  return ResolveAlias(from, catalog, op.column);
}

struct ClassifiedPred {
  const sql::Predicate* pred;
  int lhs_alias;
  int rhs_alias;
  int max_alias;  // latest FROM position referenced
  bool IsEquiJoin() const {
    return pred->op == sql::CompareOp::kEq && lhs_alias >= 0 &&
           rhs_alias >= 0 && lhs_alias != rhs_alias;
  }
  bool IsConstEquality(int alias) const {
    return pred->op == sql::CompareOp::kEq &&
           ((lhs_alias == alias && rhs_alias < 0 &&
             pred->rhs.kind != sql::Operand::Kind::kColumn) ||
            (rhs_alias == alias && lhs_alias < 0 &&
             pred->lhs.kind != sql::Operand::Kind::kColumn));
  }
  /// For a const-equality: the column on `alias`.
  std::string ConstEqualityColumn(int alias) const {
    return lhs_alias == alias ? pred->lhs.column.column
                              : pred->rhs.column.column;
  }
};

/// Columns this alias must supply (for covered-index eligibility).
std::set<std::string> NeededColumns(const sql::SelectStatement& stmt,
                                    const sql::Catalog& catalog,
                                    const std::vector<sql::TableRef>& from,
                                    int alias) {
  const sql::RelationDef* rel = catalog.FindRelation(from[alias].table);
  std::set<std::string> needed;
  auto add_ref = [&](const sql::ColumnRef& ref) {
    if (ResolveAlias(from, catalog, ref) == alias) needed.insert(ref.column);
  };
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const sql::Column& c : rel->columns) needed.insert(c.name);
    } else if (!item.count_star) {
      add_ref(item.column);
    }
  }
  for (const sql::Predicate& p : stmt.where) {
    if (p.lhs.kind == sql::Operand::Kind::kColumn) add_ref(p.lhs.column);
    if (p.rhs.kind == sql::Operand::Kind::kColumn) add_ref(p.rhs.column);
  }
  for (const sql::ColumnRef& c : stmt.group_by) add_ref(c);
  for (const sql::OrderItem& o : stmt.order_by) add_ref(o.column);
  return needed;
}

bool Covers(const sql::IndexDef& ix, const std::set<std::string>& needed) {
  for (const std::string& col : needed) {
    if (std::find(ix.covered_columns.begin(), ix.covered_columns.end(), col) ==
        ix.covered_columns.end()) {
      return false;
    }
  }
  return true;
}

/// Picks the best access path given const-equality predicates on the alias.
AccessPath PickAccessPath(const sql::RelationDef& rel,
                          const std::vector<const sql::IndexDef*>& indexes,
                          const std::vector<ClassifiedPred>& const_eqs,
                          int alias, const std::set<std::string>& needed) {
  auto find_pred = [&](const std::string& col) -> const ClassifiedPred* {
    for (const ClassifiedPred& cp : const_eqs) {
      if (cp.ConstEqualityColumn(alias) == col) return &cp;
    }
    return nullptr;
  };

  AccessPath path;
  // Full PK equality -> point get.
  {
    std::vector<const sql::Predicate*> preds;
    std::vector<std::string> cols;
    for (const std::string& pk : rel.primary_key) {
      const ClassifiedPred* cp = find_pred(pk);
      if (cp == nullptr) break;
      preds.push_back(cp->pred);
      cols.push_back(pk);
    }
    if (cols.size() == rel.primary_key.size() && !cols.empty()) {
      path.kind = AccessPath::Kind::kPkGet;
      path.key_columns = std::move(cols);
      path.key_preds = std::move(preds);
      return path;
    }
  }
  // Longest covered index prefix.
  size_t best_len = 0;
  const sql::IndexDef* best_ix = nullptr;
  for (const sql::IndexDef* ix : indexes) {
    if (!Covers(*ix, needed)) continue;
    size_t len = 0;
    for (const std::string& col : ix->indexed_columns) {
      if (find_pred(col) == nullptr) break;
      ++len;
    }
    if (len > best_len) {
      best_len = len;
      best_ix = ix;
    }
  }
  // PK prefix.
  size_t pk_prefix = 0;
  for (const std::string& pk : rel.primary_key) {
    if (find_pred(pk) == nullptr) break;
    ++pk_prefix;
  }
  if (best_len > 0 && best_len >= pk_prefix) {
    path.kind = AccessPath::Kind::kIndexPrefixScan;
    path.index_name = best_ix->name;
    for (size_t i = 0; i < best_len; ++i) {
      const std::string& col = best_ix->indexed_columns[i];
      path.key_columns.push_back(col);
      path.key_preds.push_back(find_pred(col)->pred);
    }
    return path;
  }
  if (pk_prefix > 0) {
    path.kind = AccessPath::Kind::kPkPrefixScan;
    for (size_t i = 0; i < pk_prefix; ++i) {
      const std::string& col = rel.primary_key[i];
      path.key_columns.push_back(col);
      path.key_preds.push_back(find_pred(col)->pred);
    }
    return path;
  }
  path.kind = AccessPath::Kind::kFullScan;
  return path;
}

double EstimateSourceRows(const AccessPath& path, const sql::Catalog& catalog,
                          size_t table_rows) {
  switch (path.kind) {
    case AccessPath::Kind::kPkGet:
      return 1.0;
    case AccessPath::Kind::kIndexPrefixScan: {
      const sql::IndexDef* ix = catalog.FindIndex(path.index_name);
      if (ix != nullptr && ix->unique &&
          path.key_columns.size() == ix->indexed_columns.size()) {
        return 1.0;
      }
      double divisor = 100.0;
      if (ix != nullptr) {
        switch (ix->cardinality) {
          case sql::IndexCardinality::kLow: divisor = 20.0; break;
          case sql::IndexCardinality::kHigh: divisor = 1000.0; break;
          case sql::IndexCardinality::kUnknown: break;
        }
      }
      return std::max(1.0, static_cast<double>(table_rows) / divisor);
    }
    case AccessPath::Kind::kPkPrefixScan:
      return std::max(1.0, static_cast<double>(table_rows) / 100.0);
    case AccessPath::Kind::kFullScan:
      return static_cast<double>(table_rows);
  }
  return static_cast<double>(table_rows);
}

}  // namespace

std::string AccessPath::Describe() const {
  switch (kind) {
    case Kind::kPkGet: return "PK_GET";
    case Kind::kPkPrefixScan: return "PK_PREFIX_SCAN";
    case Kind::kIndexPrefixScan: return "INDEX_SCAN(" + index_name + ")";
    case Kind::kFullScan: return "FULL_SCAN";
  }
  return "?";
}

std::string SelectPlan::Explain() const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    os << i << ": " << s.table.table;
    if (s.table.alias != s.table.table) os << " AS " << s.table.alias;
    switch (s.method) {
      case PlanStep::Method::kSource:
        os << " SOURCE " << s.path.Describe();
        break;
      case PlanStep::Method::kHashJoin:
        os << " HASH_JOIN " << s.path.Describe();
        break;
      case PlanStep::Method::kIndexNestedLoop:
        os << " INDEX_NESTED_LOOP ";
        switch (s.lookup.kind) {
          case AccessPath::Kind::kPkGet: os << "PK_GET"; break;
          case AccessPath::Kind::kPkPrefixScan: os << "PK_PREFIX"; break;
          case AccessPath::Kind::kIndexPrefixScan:
            os << "INDEX(" << s.lookup.index_name << ")";
            break;
          default: os << "?";
        }
        break;
    }
    os << " residual=" << s.residual.size()
       << " est=" << static_cast<long long>(s.estimated_rows) << "\n";
  }
  return os.str();
}

StatusOr<SelectPlan> PlanSelect(const sql::SelectStatement& stmt,
                                const sql::Catalog& catalog,
                                const RowCountFn& row_count,
                                const PlannerOptions& options) {
  SelectPlan plan;
  plan.stmt = &stmt;
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT without FROM");
  }
  for (const sql::TableRef& ref : stmt.from) {
    if (catalog.FindRelation(ref.table) == nullptr) {
      return Status::NotFound("relation " + ref.table);
    }
  }
  // Classify predicates.
  std::vector<ClassifiedPred> preds;
  preds.reserve(stmt.where.size());
  for (const sql::Predicate& p : stmt.where) {
    ClassifiedPred cp;
    cp.pred = &p;
    cp.lhs_alias = OperandAlias(stmt.from, catalog, p.lhs);
    cp.rhs_alias = OperandAlias(stmt.from, catalog, p.rhs);
    if (p.lhs.kind == sql::Operand::Kind::kColumn && cp.lhs_alias < 0) {
      return Status::InvalidArgument("cannot resolve column " +
                                     p.lhs.column.ToString());
    }
    if (p.rhs.kind == sql::Operand::Kind::kColumn && cp.rhs_alias < 0) {
      return Status::InvalidArgument("cannot resolve column " +
                                     p.rhs.column.ToString());
    }
    cp.max_alias = std::max(cp.lhs_alias, cp.rhs_alias);
    preds.push_back(cp);
  }

  // Pre-compute per-alias access paths and source estimates.
  const size_t n = stmt.from.size();
  std::vector<AccessPath> alias_paths(n);
  std::vector<double> alias_est(n);
  std::vector<std::set<std::string>> alias_needed(n);
  for (size_t i = 0; i < n; ++i) {
    const int alias = static_cast<int>(i);
    alias_needed[i] = NeededColumns(stmt, catalog, stmt.from, alias);
    std::vector<ClassifiedPred> const_eqs;
    for (const ClassifiedPred& cp : preds) {
      if (cp.IsConstEquality(alias)) const_eqs.push_back(cp);
    }
    const sql::RelationDef* rel = catalog.FindRelation(stmt.from[i].table);
    alias_paths[i] =
        PickAccessPath(*rel, catalog.IndexesFor(stmt.from[i].table),
                       const_eqs, alias, alias_needed[i]);
    const size_t table_rows =
        row_count ? row_count(stmt.from[i].table) : 0;
    alias_est[i] = EstimateSourceRows(alias_paths[i], catalog, table_rows);
  }

  // Greedy join order: start at the most selective source; repeatedly add
  // the most selective table that joins the bound set (avoiding cross joins
  // whenever connectivity allows).
  std::vector<int> order;
  std::set<int> bound;
  {
    size_t first = 0;
    for (size_t i = 1; i < n; ++i) {
      if (alias_est[i] < alias_est[first]) first = i;
    }
    order.push_back(static_cast<int>(first));
    bound.insert(static_cast<int>(first));
    while (order.size() < n) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < n; ++i) {
        const int alias = static_cast<int>(i);
        if (bound.contains(alias)) continue;
        bool connected = false;
        for (const ClassifiedPred& cp : preds) {
          if (!cp.IsEquiJoin()) continue;
          if ((cp.lhs_alias == alias && bound.contains(cp.rhs_alias)) ||
              (cp.rhs_alias == alias && bound.contains(cp.lhs_alias))) {
            connected = true;
            break;
          }
        }
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             alias_est[i] < alias_est[static_cast<size_t>(best)])) {
          best = alias;
          best_connected = connected;
        }
      }
      order.push_back(best);
      bound.insert(best);
    }
  }

  double est = 0;
  std::set<int> done;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const int alias = order[pos];
    const size_t i = static_cast<size_t>(alias);
    PlanStep step;
    step.table = stmt.from[i];
    step.rel = catalog.FindRelation(step.table.table);
    const std::set<std::string>& needed = alias_needed[i];
    const auto indexes = catalog.IndexesFor(step.table.table);
    done.insert(alias);

    std::vector<const sql::Predicate*> equi_joins;
    for (const ClassifiedPred& cp : preds) {
      if (cp.IsEquiJoin() && (cp.lhs_alias == alias || cp.rhs_alias == alias) &&
          done.contains(cp.lhs_alias) && done.contains(cp.rhs_alias)) {
        equi_joins.push_back(cp.pred);
      }
    }
    // Residual: every predicate that becomes fully bound at this step and is
    // not consumed by the access path / hash keys.
    step.path = alias_paths[i];
    auto becomes_bound_here = [&](const ClassifiedPred& cp) {
      const bool lhs_ok = cp.lhs_alias < 0 || done.contains(cp.lhs_alias);
      const bool rhs_ok = cp.rhs_alias < 0 || done.contains(cp.rhs_alias);
      if (!lhs_ok || !rhs_ok) return false;
      if (cp.lhs_alias == alias || cp.rhs_alias == alias) return true;
      // Constant-only predicates attach to the first step.
      return cp.lhs_alias < 0 && cp.rhs_alias < 0 && pos == 0;
    };
    for (const ClassifiedPred& cp : preds) {
      if (!becomes_bound_here(cp)) continue;
      const bool consumed_by_path =
          std::find(step.path.key_preds.begin(), step.path.key_preds.end(),
                    cp.pred) != step.path.key_preds.end();
      const bool is_hash_key =
          std::find(equi_joins.begin(), equi_joins.end(), cp.pred) !=
          equi_joins.end();
      if (!consumed_by_path && !is_hash_key) step.residual.push_back(cp.pred);
    }
    step.equi_joins = std::move(equi_joins);

    const size_t table_rows = row_count ? row_count(step.table.table) : 0;
    if (pos == 0) {
      step.method = PlanStep::Method::kSource;
      est = alias_est[i];
    } else {
      // Try an index nested-loop lookup on the join columns.
      JoinLookup lookup;
      if (!options.force_hash_join && !step.equi_joins.empty() &&
          est <= options.inl_max_outer_rows) {
        std::vector<std::pair<std::string, sql::Operand>> join_cols;
        for (const sql::Predicate* p : step.equi_joins) {
          const int la = OperandAlias(stmt.from, catalog, p->lhs);
          if (la == alias) {
            join_cols.emplace_back(p->lhs.column.column, p->rhs);
          } else {
            join_cols.emplace_back(p->rhs.column.column, p->lhs);
          }
        }
        auto find_join_col =
            [&](const std::string& col) -> const sql::Operand* {
          for (const auto& [c, op] : join_cols) {
            if (c == col) return &op;
          }
          return nullptr;
        };
        // Full-PK lookup?
        bool pk_ok = !step.rel->primary_key.empty();
        for (const std::string& pk : step.rel->primary_key) {
          if (find_join_col(pk) == nullptr) {
            pk_ok = false;
            break;
          }
        }
        if (pk_ok) {
          lookup.kind = AccessPath::Kind::kPkGet;
          for (const std::string& pk : step.rel->primary_key) {
            lookup.inner_columns.push_back(pk);
            lookup.outer_operands.push_back(*find_join_col(pk));
          }
        } else {
          // Longest covered-index prefix over join columns.
          size_t best_len = 0;
          const sql::IndexDef* best_ix = nullptr;
          for (const sql::IndexDef* ix : indexes) {
            if (!Covers(*ix, needed)) continue;
            size_t len = 0;
            for (const std::string& col : ix->indexed_columns) {
              if (find_join_col(col) == nullptr) break;
              ++len;
            }
            if (len > best_len) {
              best_len = len;
              best_ix = ix;
            }
          }
          size_t pk_prefix = 0;
          for (const std::string& pk : step.rel->primary_key) {
            if (find_join_col(pk) == nullptr) break;
            ++pk_prefix;
          }
          if (best_len > 0 && best_len >= pk_prefix) {
            lookup.kind = AccessPath::Kind::kIndexPrefixScan;
            lookup.index_name = best_ix->name;
            for (size_t k = 0; k < best_len; ++k) {
              const std::string& col = best_ix->indexed_columns[k];
              lookup.inner_columns.push_back(col);
              lookup.outer_operands.push_back(*find_join_col(col));
            }
          } else if (pk_prefix > 0) {
            lookup.kind = AccessPath::Kind::kPkPrefixScan;
            for (size_t k = 0; k < pk_prefix; ++k) {
              const std::string& pk = step.rel->primary_key[k];
              lookup.inner_columns.push_back(pk);
              lookup.outer_operands.push_back(*find_join_col(pk));
            }
          }
        }
      }
      if (!lookup.inner_columns.empty()) {
        step.method = PlanStep::Method::kIndexNestedLoop;
        step.lookup = std::move(lookup);
        // The lookup path replaces the table's access path, so constant
        // predicates consumed into that (now unused) path must be evaluated
        // as residuals instead.
        for (const sql::Predicate* p : step.path.key_preds) {
          step.residual.push_back(p);
        }
        step.path = AccessPath{};
        // All equi joins must still hold on the combined row (those consumed
        // by the lookup are trivially true); evaluate them as residuals.
        for (const sql::Predicate* p : step.equi_joins) {
          step.residual.push_back(p);
        }
        est = std::max(
            1.0, est * (step.lookup.kind == AccessPath::Kind::kPkGet
                            ? 1.0
                            : 10.0));
      } else {
        step.method = PlanStep::Method::kHashJoin;
        const double scan_est =
            EstimateSourceRows(step.path, catalog, table_rows);
        est = std::max(1.0, std::max(est, scan_est));
      }
    }
    step.estimated_rows = est;
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace synergy::exec
