// Execution rows, schemas and predicate evaluation.
//
// An ExecRow is a flat vector of values aligned with a RowSchema that maps
// qualified ("alias.column") and unambiguous unqualified names to slots.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace synergy::exec {

/// Column name -> slot mapping shared by all rows of one operator output.
class RowSchema {
 public:
  /// `qualified_names` are "alias.column" entries in slot order.
  static std::shared_ptr<RowSchema> Make(
      std::vector<std::string> qualified_names);

  /// Concatenation (for join outputs).
  static std::shared_ptr<RowSchema> Concat(const RowSchema& left,
                                           const RowSchema& right);

  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return names_.size(); }

  /// Slot for a column reference; -1 if unknown or ambiguous.
  int Find(const sql::ColumnRef& ref) const;
  int FindByName(const std::string& qualified_or_plain) const;

 private:
  std::vector<std::string> names_;            // qualified, slot order
  std::map<std::string, int> by_name_;        // qualified + unique unqualified
};

struct ExecRow {
  std::shared_ptr<const RowSchema> schema;
  std::vector<Value> values;

  const Value& At(int slot) const { return values[static_cast<size_t>(slot)]; }
};

using BoundParams = std::span<const Value>;

/// Resolves an operand against a row and bound parameters.
StatusOr<Value> ResolveOperand(const sql::Operand& op, const ExecRow& row,
                               BoundParams params);

/// Resolves a literal/param operand (no row context). Fails for columns.
StatusOr<Value> ResolveConstOperand(const sql::Operand& op, BoundParams params);

/// Evaluates one conjunct. SQL three-valued logic collapses to false when
/// either side is NULL (sufficient for the supported workloads).
StatusOr<bool> EvalPredicate(const sql::Predicate& pred, const ExecRow& row,
                             BoundParams params);

StatusOr<bool> EvalAll(const std::vector<const sql::Predicate*>& preds,
                       const ExecRow& row, BoundParams params);

bool CompareValues(sql::CompareOp op, const Value& lhs, const Value& rhs);

}  // namespace synergy::exec
