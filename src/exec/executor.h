// Query executor: runs SelectPlans against the store, Phoenix-style
// (client-coordinated scans, hash joins and index nested-loop joins),
// charging join/sort/aggregation CPU to the session's virtual meter.
//
// Also implements the dirty-read detection protocol of §VIII-C: when
// ExecOptions.detect_dirty is set and a scan encounters a marked row, the
// whole statement is restarted (bounded retries).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expression.h"
#include "exec/planner.h"
#include "exec/table_adapter.h"

namespace synergy::exec {

struct ExecOptions {
  /// Materialize result rows (false = count + cost only; used by benches
  /// over multi-million-row results).
  bool collect_rows = true;
  /// Restart on dirty-marked rows (Synergy read protocol).
  bool detect_dirty = false;
  int max_dirty_retries = 10;
  /// Force client hash joins (micro-benchmark "join algorithm" mode).
  bool force_hash_join = false;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;  // empty when !collect_rows
  size_t row_count = 0;
  int dirty_restarts = 0;
};

class Executor {
 public:
  explicit Executor(TableAdapter* adapter) : adapter_(adapter) {}

  /// Plans and executes a SELECT. The statement must outlive the call.
  StatusOr<QueryResult> ExecuteSelect(hbase::Session& s,
                                      const sql::SelectStatement& stmt,
                                      BoundParams params,
                                      const ExecOptions& options = {});

  /// Explain the plan that would be chosen (for tests and ablations).
  StatusOr<std::string> Explain(const sql::SelectStatement& stmt,
                                const ExecOptions& options = {});

 private:
  StatusOr<QueryResult> ExecuteOnce(hbase::Session& s,
                                    const sql::SelectStatement& stmt,
                                    BoundParams params,
                                    const ExecOptions& options);

  TableAdapter* adapter_;
};

}  // namespace synergy::exec
