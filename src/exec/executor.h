// Query executor: runs SelectPlans against the store, Phoenix-style
// (client-coordinated scans, hash joins and index nested-loop joins),
// charging join/sort/aggregation CPU to the session's virtual meter.
//
// Also implements the dirty-read detection protocol of §VIII-C: when
// ExecOptions.detect_dirty is set and a scan encounters a marked row, the
// whole statement is restarted (bounded retries).
//
// EXPLAIN ANALYZE (ExplainAnalyze) runs a statement and attributes its
// virtual cost to plan nodes: each node's virtual-µs is measured as a
// meter-delta interval exclusive of the other nodes, so the per-node sum
// equals the statement's total meter charge (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expression.h"
#include "exec/planner.h"
#include "exec/table_adapter.h"

namespace synergy::exec {

struct ExecOptions {
  /// Materialize result rows (false = count + cost only; used by benches
  /// over multi-million-row results).
  bool collect_rows = true;
  /// Restart on dirty-marked rows (Synergy read protocol).
  bool detect_dirty = false;
  int max_dirty_retries = 10;
  /// Force client hash joins (micro-benchmark "join algorithm" mode).
  bool force_hash_join = false;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;  // empty when !collect_rows
  size_t row_count = 0;
  int dirty_restarts = 0;
};

/// Runtime stats for one plan node of an analyzed statement. The virtual-µs
/// intervals of a statement's nodes partition its meter charge: each node's
/// time excludes the time attributed to other nodes (sink time accrued
/// while a stage was driving rows is charged to the sink node, not the
/// stage), so summing nodes reproduces the statement total exactly.
struct PlanNodeStats {
  std::string label;
  size_t rows = 0;        // rows the node produced
  uint64_t rpcs = 0;      // store RPCs issued while the node was active
  double virtual_us = 0;  // exclusive virtual time
};

/// EXPLAIN ANALYZE output: the query result plus the per-node cost
/// decomposition and the cross-check totals (`node_sum_us` vs
/// `total_virtual_us` — equal up to floating-point rounding).
struct AnalyzeResult {
  QueryResult result;
  std::vector<PlanNodeStats> nodes;
  double total_virtual_us = 0;  // meter delta across the whole statement
  double node_sum_us = 0;       // sum of per-node exclusive times
  uint64_t total_rpcs = 0;
  std::string text;  // rendered table (one line per node + totals)
};

class Executor {
 public:
  /// Resolves the executor's metric handles from the adapter's cluster
  /// registry (exec_statements_total, exec_dirty_restarts_total,
  /// exec_statement_virtual_us).
  explicit Executor(TableAdapter* adapter);

  /// Plans and executes a SELECT. The statement must outlive the call.
  StatusOr<QueryResult> ExecuteSelect(hbase::Session& s,
                                      const sql::SelectStatement& stmt,
                                      BoundParams params,
                                      const ExecOptions& options = {});

  /// Runs the statement and decomposes its virtual cost into plan nodes.
  /// Dirty restarts (detect_dirty) fold the aborted attempts into a
  /// `dirty restarts` pseudo-node so the totals still balance.
  StatusOr<AnalyzeResult> ExplainAnalyze(hbase::Session& s,
                                         const sql::SelectStatement& stmt,
                                         BoundParams params,
                                         const ExecOptions& options = {});

  /// Explain the plan that would be chosen (for tests and ablations).
  StatusOr<std::string> Explain(const sql::SelectStatement& stmt,
                                const ExecOptions& options = {});

 private:
  /// ExecuteSelect's restart loop; when `nodes` is non-null, per-node stats
  /// are collected (cleared on each restart, pseudo-node prepended).
  StatusOr<QueryResult> RunStatement(hbase::Session& s,
                                     const sql::SelectStatement& stmt,
                                     BoundParams params,
                                     const ExecOptions& options,
                                     std::vector<PlanNodeStats>* nodes);
  StatusOr<QueryResult> ExecuteOnce(hbase::Session& s,
                                    const sql::SelectStatement& stmt,
                                    BoundParams params,
                                    const ExecOptions& options,
                                    std::vector<PlanNodeStats>* nodes);

  TableAdapter* adapter_;
  // Registry handles (cluster->metrics()), resolved at construction.
  obs::Counter* statements_;
  obs::Counter* dirty_restarts_;
  obs::Histogram* statement_us_;
};

}  // namespace synergy::exec
