#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "exec/value_key.h"
#include "testing/fault_injector.h"

namespace synergy::exec {
namespace {

Status DirtyRead() { return Status::Aborted("dirty row encountered"); }

/// One-line plan-node label for EXPLAIN ANALYZE, matching the vocabulary of
/// SelectPlan::Explain.
std::string StepLabel(const PlanStep& step, size_t i) {
  std::string label = std::to_string(i) + ": " + step.table.table;
  if (step.table.alias != step.table.table) {
    label += " AS " + step.table.alias;
  }
  switch (step.method) {
    case PlanStep::Method::kSource:
      label += " SOURCE " + step.path.Describe();
      break;
    case PlanStep::Method::kHashJoin:
      label += " HASH_JOIN " + step.path.Describe();
      break;
    case PlanStep::Method::kIndexNestedLoop:
      label += " INDEX_NESTED_LOOP ";
      switch (step.lookup.kind) {
        case AccessPath::Kind::kPkGet:
          label += "PK_GET";
          break;
        case AccessPath::Kind::kPkPrefixScan:
          label += "PK_PREFIX";
          break;
        case AccessPath::Kind::kIndexPrefixScan:
          label += "INDEX(" + step.lookup.index_name + ")";
          break;
        default:
          label += "?";
      }
      break;
  }
  return label;
}

std::string RenderAnalyze(const AnalyzeResult& a) {
  std::ostringstream os;
  size_t width = 24;
  for (const PlanNodeStats& node : a.nodes) {
    width = std::max(width, node.label.size());
  }
  char buf[160];
  for (const PlanNodeStats& node : a.nodes) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s  rows=%-8zu rpcs=%-6llu virtual_us=%.1f",
                  static_cast<int>(width), node.label.c_str(), node.rows,
                  static_cast<unsigned long long>(node.rpcs),
                  node.virtual_us);
    os << buf << "\n";
  }
  const double drift =
      a.total_virtual_us > 0.0
          ? 100.0 * (a.node_sum_us - a.total_virtual_us) / a.total_virtual_us
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "total: rows=%zu rpcs=%llu virtual_us=%.1f "
                "(node sum %.1f, drift %.3f%%)",
                a.result.row_count,
                static_cast<unsigned long long>(a.total_rpcs),
                a.total_virtual_us, a.node_sum_us, drift);
  os << buf << "\n";
  return os.str();
}

std::shared_ptr<RowSchema> AliasSchema(const sql::TableRef& ref,
                                       const sql::RelationDef& rel) {
  std::vector<std::string> names;
  names.reserve(rel.columns.size());
  for (const sql::Column& c : rel.columns) {
    names.push_back(ref.alias + "." + c.name);
  }
  return RowSchema::Make(std::move(names));
}

/// The constant side of an access-path key predicate.
const sql::Operand& ConstSide(const sql::Predicate& pred) {
  return pred.lhs.kind == sql::Operand::Kind::kColumn ? pred.rhs : pred.lhs;
}

/// Coerces a byte-key lookup value to the declared column type so encoded
/// point/prefix lookups agree with Value::Compare's numeric equality (int 5
/// must find a row stored under double 5.0 and vice versa, exactly as the
/// hash-join/predicate paths treat them). Returns false when no stored
/// value could match (a fractional or out-of-range double against an INT
/// column), i.e. the lookup is a guaranteed miss.
bool CoerceKeyValue(DataType declared, Value* v) {
  if (v->is_null()) return true;  // NULL handling stays with the caller
  if (declared == DataType::kInt && v->type() == DataType::kDouble) {
    const double d = v->as_double();
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return false;
    }
    const int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) != d) return false;  // fractional: no match
    *v = Value(i);
  } else if (declared == DataType::kDouble && v->type() == DataType::kInt) {
    const int64_t i = v->as_int();
    const double d = static_cast<double>(i);
    // Ints not exactly representable as a double (beyond 2^53) equal no
    // stored double under Value::Compare; the rounded key must not match.
    if (d >= 9223372036854775808.0 || static_cast<int64_t>(d) != i) {
      return false;
    }
    *v = Value(d);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Slot-bound predicates
//
// Residual predicates and join-key operands are resolved to row slots (or
// pre-evaluated constants) once per statement, so the per-row path is a
// vector index plus Value::Compare — no schema lookups, no Value copies.
// ---------------------------------------------------------------------------

struct BoundOperand {
  int slot = -1;   // >= 0: index into the combined row
  Value constant;  // used when slot < 0 (literal/param, resolved at bind)
};

struct BoundPredicate {
  sql::CompareOp op = sql::CompareOp::kEq;
  BoundOperand lhs, rhs;
};

StatusOr<BoundOperand> BindOperand(const sql::Operand& op,
                                   const RowSchema& schema,
                                   BoundParams params) {
  BoundOperand bound;
  if (op.kind == sql::Operand::Kind::kColumn) {
    bound.slot = schema.Find(op.column);
    if (bound.slot < 0) {
      return Status::InvalidArgument("unknown column " + op.column.ToString());
    }
    return bound;
  }
  SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(op, params));
  bound.constant = std::move(v);
  return bound;
}

StatusOr<std::vector<BoundPredicate>> BindPredicates(
    const std::vector<const sql::Predicate*>& preds, const RowSchema& schema,
    BoundParams params) {
  std::vector<BoundPredicate> bound;
  bound.reserve(preds.size());
  for (const sql::Predicate* p : preds) {
    BoundPredicate bp;
    bp.op = p->op;
    SYNERGY_ASSIGN_OR_RETURN(lhs, BindOperand(p->lhs, schema, params));
    SYNERGY_ASSIGN_OR_RETURN(rhs, BindOperand(p->rhs, schema, params));
    bp.lhs = std::move(lhs);
    bp.rhs = std::move(rhs);
    bound.push_back(std::move(bp));
  }
  return bound;
}

inline const Value& OperandValue(const BoundOperand& op,
                                 const std::vector<Value>& row) {
  return op.slot >= 0 ? row[static_cast<size_t>(op.slot)] : op.constant;
}

/// Conjunction with SQL NULL-collapses-to-false semantics (as EvalAll).
inline bool EvalBound(const std::vector<BoundPredicate>& preds,
                      const std::vector<Value>& row) {
  for (const BoundPredicate& p : preds) {
    if (!CompareValues(p.op, OperandValue(p.lhs, row),
                       OperandValue(p.rhs, row))) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Result sinks
// ---------------------------------------------------------------------------

class Sink {
 public:
  virtual ~Sink() = default;
  /// Consumes one combined pipeline row (slots per the final schema).
  /// Returns false to stop the pipeline early.
  virtual StatusOr<bool> Process(const std::vector<Value>& row) = 0;
  virtual Status Finish(QueryResult* out) = 0;
};

struct SortSpec {
  std::vector<int> slots;  // into the output row
  std::vector<bool> descending;
};

/// Output-order comparison on projected rows: sort keys, no tie-break.
int CompareSorted(const SortSpec& sort, const std::vector<Value>& a,
                  const std::vector<Value>& b) {
  for (size_t k = 0; k < sort.slots.size(); ++k) {
    const size_t slot = static_cast<size_t>(sort.slots[k]);
    const int c = a[slot].Compare(b[slot]);
    if (c != 0) return sort.descending[k] ? -c : c;
  }
  return 0;
}

void SortAndLimit(std::vector<std::vector<Value>>* rows, const SortSpec& sort,
                  int64_t limit, hbase::Session& s,
                  const sim::CostModel& model) {
  if (!sort.slots.empty() && rows->size() > 1) {
    const double n = static_cast<double>(rows->size());
    s.meter().Charge(model.sort_row_log_us * n * std::log2(n));
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       return CompareSorted(sort, a, b) < 0;
                     });
  }
  if (limit >= 0 && rows->size() > static_cast<size_t>(limit)) {
    rows->resize(static_cast<size_t>(limit));
  }
}

/// Non-aggregating sink: project, optionally sort, limit, collect/count.
///
/// ORDER BY + LIMIT k keeps a bounded k-row heap (top-N) instead of
/// materializing and stable-sorting the whole input; ties preserve input
/// order via a sequence number, so results match stable_sort exactly.
class PlainSink : public Sink {
 public:
  static StatusOr<std::unique_ptr<PlainSink>> Make(
      const sql::SelectStatement& stmt, const RowSchema& final_schema,
      hbase::Session& s, const sim::CostModel& model,
      const ExecOptions& options) {
    auto sink = std::make_unique<PlainSink>();
    sink->session_ = &s;
    sink->model_ = &model;
    sink->collect_ = options.collect_rows;
    sink->limit_ = stmt.limit;
    // Projection slots.
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < final_schema.size(); ++i) {
          sink->slots_.push_back(static_cast<int>(i));
          const std::string& qname = final_schema.names()[i];
          const size_t dot = qname.find('.');
          sink->columns_.push_back(
              dot == std::string::npos ? qname : qname.substr(dot + 1));
        }
        continue;
      }
      const int slot = final_schema.Find(item.column);
      if (slot < 0) {
        return Status::InvalidArgument("unknown select column " +
                                       item.column.ToString());
      }
      sink->slots_.push_back(slot);
      sink->columns_.push_back(item.output_name);
    }
    // ORDER BY: prefer an output column, else a source slot.
    for (const sql::OrderItem& o : stmt.order_by) {
      int out_slot = -1;
      for (size_t i = 0; i < sink->columns_.size(); ++i) {
        if (sink->columns_[i] == o.column.column &&
            (o.column.qualifier.empty())) {
          out_slot = static_cast<int>(i);
          break;
        }
      }
      if (out_slot < 0) {
        const int src = final_schema.Find(o.column);
        if (src < 0) {
          return Status::InvalidArgument("unknown ORDER BY column " +
                                         o.column.ToString());
        }
        // Append as a hidden sort column.
        sink->slots_.push_back(src);
        sink->hidden_tail_ = true;
        out_slot = static_cast<int>(sink->slots_.size()) - 1;
      }
      sink->sort_.slots.push_back(out_slot);
      sink->sort_.descending.push_back(o.descending);
    }
    sink->needs_materialize_ = !sink->sort_.slots.empty();
    sink->top_n_ = sink->needs_materialize_ && sink->limit_ >= 0;
    return sink;
  }

  StatusOr<bool> Process(const std::vector<Value>& row) override {
    if (top_n_) {
      ++seen_;
      if (limit_ == 0) return false;  // LIMIT 0: nothing can qualify
      ProcessTopN(row);
      return true;
    }
    if (!needs_materialize_ && limit_ >= 0 &&
        count_ >= static_cast<size_t>(limit_)) {
      return false;
    }
    if (needs_materialize_ || collect_) {
      rows_.push_back(Project(row));
    }
    ++count_;
    if (!needs_materialize_ && limit_ >= 0 &&
        count_ >= static_cast<size_t>(limit_)) {
      return false;  // early stop: no ordering requested
    }
    return true;
  }

  Status Finish(QueryResult* result) override {
    if (top_n_) {
      FinishTopN();
    } else {
      SortAndLimit(&rows_, sort_, limit_, *session_, *model_);
    }
    const size_t visible_cols =
        columns_.size();  // hidden sort columns are dropped below
    if (hidden_tail_) {
      for (std::vector<Value>& row : rows_) row.resize(visible_cols);
    }
    result->columns = columns_;
    result->row_count = needs_materialize_ ? rows_.size() : count_;
    if (limit_ >= 0) {
      result->row_count = std::min(result->row_count,
                                   static_cast<size_t>(limit_));
    }
    if (collect_) {
      result->rows = std::move(rows_);
    }
    return Status::Ok();
  }

 private:
  struct HeapEntry {
    std::vector<Value> row;  // projected (incl. hidden sort tail)
    size_t seq = 0;          // input order, for stable ties
  };

  std::vector<Value> Project(const std::vector<Value>& row) const {
    std::vector<Value> out;
    out.reserve(slots_.size());
    for (const int slot : slots_) {
      out.push_back(row[static_cast<size_t>(slot)]);
    }
    return out;
  }

  /// True when `a` is output strictly before `b`.
  bool OutputBefore(const HeapEntry& a, const HeapEntry& b) const {
    const int c = CompareSorted(sort_, a.row, b.row);
    if (c != 0) return c < 0;
    return a.seq < b.seq;  // stable: earlier input first
  }

  /// True when the (unprojected) source row would be output strictly before
  /// the worst kept entry. Ties lose: the earlier row is already in the heap.
  bool BeatsWorst(const std::vector<Value>& row) const {
    for (size_t k = 0; k < sort_.slots.size(); ++k) {
      const size_t out_slot = static_cast<size_t>(sort_.slots[k]);
      const size_t src_slot = static_cast<size_t>(slots_[out_slot]);
      const int c = row[src_slot].Compare(heap_.front().row[out_slot]);
      if (c != 0) return sort_.descending[k] ? c > 0 : c < 0;
    }
    return false;
  }

  void ProcessTopN(const std::vector<Value>& row) {
    const size_t k = static_cast<size_t>(limit_);
    auto later = [this](const HeapEntry& a, const HeapEntry& b) {
      return OutputBefore(a, b);  // max-heap: worst kept entry on top
    };
    if (heap_.size() < k) {
      heap_.push_back(HeapEntry{Project(row), seen_});
      std::push_heap(heap_.begin(), heap_.end(), later);
      return;
    }
    // Compare against the current worst before paying for a projection;
    // with a full heap most rows are rejected right here.
    if (BeatsWorst(row)) {
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.back() = HeapEntry{Project(row), seen_};
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
  }

  void FinishTopN() {
    if (seen_ > 1 && !heap_.empty()) {
      // Bounded-heap cost: n rows through a k-sized heap.
      const double n = static_cast<double>(seen_);
      const double k = static_cast<double>(heap_.size());
      session_->meter().Charge(model_->sort_row_log_us * n *
                               std::log2(std::max(2.0, k)));
    }
    std::sort(heap_.begin(), heap_.end(),
              [this](const HeapEntry& a, const HeapEntry& b) {
                return OutputBefore(a, b);
              });
    rows_.reserve(heap_.size());
    for (HeapEntry& e : heap_) rows_.push_back(std::move(e.row));
    heap_.clear();
    count_ = seen_;
  }

  hbase::Session* session_ = nullptr;
  const sim::CostModel* model_ = nullptr;
  bool collect_ = true;
  bool needs_materialize_ = false;
  bool top_n_ = false;
  bool hidden_tail_ = false;
  int64_t limit_ = -1;
  size_t count_ = 0;
  size_t seen_ = 0;
  std::vector<int> slots_;
  std::vector<std::string> columns_;
  SortSpec sort_;
  std::vector<std::vector<Value>> rows_;
  std::vector<HeapEntry> heap_;
};

/// Hash-aggregation sink (GROUP BY + aggregate select items). Groups are
/// keyed on the group-column Values directly (ValueKey, cached hash) — the
/// per-row probe gathers pointers into the row, so no key encoding or
/// allocation happens for rows of already-seen groups.
class AggSink : public Sink {
 public:
  static StatusOr<std::unique_ptr<AggSink>> Make(
      const sql::SelectStatement& stmt, const RowSchema& final_schema,
      hbase::Session& s, const sim::CostModel& model,
      const ExecOptions& options) {
    auto sink = std::make_unique<AggSink>();
    sink->session_ = &s;
    sink->model_ = &model;
    sink->collect_ = options.collect_rows;
    sink->limit_ = stmt.limit;
    for (const sql::ColumnRef& g : stmt.group_by) {
      const int slot = final_schema.Find(g);
      if (slot < 0) {
        return Status::InvalidArgument("unknown GROUP BY column " +
                                       g.ToString());
      }
      sink->group_slots_.push_back(slot);
    }
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      ItemSpec spec;
      spec.agg = item.agg;
      if (item.count_star) {
        spec.slot = -1;
      } else {
        spec.slot = final_schema.Find(item.column);
        if (spec.slot < 0) {
          return Status::InvalidArgument("unknown select column " +
                                         item.column.ToString());
        }
      }
      sink->items_.push_back(spec);
      sink->columns_.push_back(item.output_name);
    }
    for (const sql::OrderItem& o : stmt.order_by) {
      int out_slot = -1;
      for (size_t i = 0; i < sink->columns_.size(); ++i) {
        if (sink->columns_[i] == o.column.column) {
          out_slot = static_cast<int>(i);
          break;
        }
      }
      if (out_slot < 0) {
        return Status::InvalidArgument(
            "ORDER BY over aggregation must name an output column: " +
            o.column.ToString());
      }
      sink->sort_.slots.push_back(out_slot);
      sink->sort_.descending.push_back(o.descending);
    }
    return sink;
  }

  StatusOr<bool> Process(const std::vector<Value>& row) override {
    session_->meter().Charge(model_->agg_row_us);
    key_ptrs_.clear();
    for (const int slot : group_slots_) {
      key_ptrs_.push_back(&row[static_cast<size_t>(slot)]);
    }
    const ValueKeyRef ref(key_ptrs_);
    auto it = groups_.find(ref);
    if (it == groups_.end()) {
      it = groups_.emplace(MaterializeKey(ref), GroupState{}).first;
      GroupState& state = it->second;
      state.order = groups_.size() - 1;
      state.accums.resize(items_.size());
      state.first_row.reserve(items_.size());
      for (const ItemSpec& item : items_) {
        state.first_row.push_back(
            item.slot >= 0 ? row[static_cast<size_t>(item.slot)] : Value());
      }
    }
    GroupState& state = it->second;
    for (size_t i = 0; i < items_.size(); ++i) {
      Accum& acc = state.accums[i];
      const ItemSpec& item = items_[i];
      if (item.agg == sql::AggFunc::kNone) continue;
      const Value* v = item.slot >= 0
                           ? &row[static_cast<size_t>(item.slot)]
                           : nullptr;  // COUNT(*)
      if (item.agg == sql::AggFunc::kCount) {
        if (v == nullptr || !v->is_null()) acc.count += 1;
        continue;
      }
      if (v == nullptr || v->is_null()) continue;
      acc.count += 1;
      acc.sum += v->numeric();
      if (acc.count == 1 || *v < acc.min) acc.min = *v;
      if (acc.count == 1 || *v > acc.max) acc.max = *v;
    }
    return true;
  }

  Status Finish(QueryResult* result) override {
    if (groups_.empty() && group_slots_.empty()) {
      // Aggregates over an empty input still produce one row (COUNT = 0).
      GroupState& state = groups_.emplace(ValueKey{}, GroupState{})
                              .first->second;
      state.order = 0;
      state.accums.resize(items_.size());
      state.first_row.resize(items_.size());
    }
    std::vector<std::pair<size_t, std::vector<Value>>> ordered;
    ordered.reserve(groups_.size());
    for (auto& [key, state] : groups_) {
      std::vector<Value> row;
      row.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        const ItemSpec& item = items_[i];
        const Accum& acc = state.accums[i];
        switch (item.agg) {
          case sql::AggFunc::kNone:
            row.push_back(state.first_row[i]);
            break;
          case sql::AggFunc::kCount:
            row.push_back(Value(static_cast<int64_t>(acc.count)));
            break;
          case sql::AggFunc::kSum:
            row.push_back(acc.count == 0 ? Value() : Value(acc.sum));
            break;
          case sql::AggFunc::kAvg:
            row.push_back(acc.count == 0
                              ? Value()
                              : Value(acc.sum /
                                      static_cast<double>(acc.count)));
            break;
          case sql::AggFunc::kMin:
            row.push_back(acc.count == 0 ? Value() : acc.min);
            break;
          case sql::AggFunc::kMax:
            row.push_back(acc.count == 0 ? Value() : acc.max);
            break;
        }
      }
      ordered.emplace_back(state.order, std::move(row));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::vector<Value>> rows;
    rows.reserve(ordered.size());
    for (auto& [order, row] : ordered) rows.push_back(std::move(row));
    SortAndLimit(&rows, sort_, limit_, *session_, *model_);
    result->columns = columns_;
    result->row_count = rows.size();
    if (collect_) result->rows = std::move(rows);
    return Status::Ok();
  }

 private:
  struct ItemSpec {
    sql::AggFunc agg = sql::AggFunc::kNone;
    int slot = -1;  // -1 == COUNT(*)
  };
  struct Accum {
    size_t count = 0;
    double sum = 0.0;
    Value min, max;
  };
  struct GroupState {
    size_t order = 0;
    std::vector<Accum> accums;
    std::vector<Value> first_row;
  };

  hbase::Session* session_ = nullptr;
  const sim::CostModel* model_ = nullptr;
  bool collect_ = true;
  int64_t limit_ = -1;
  std::vector<int> group_slots_;
  std::vector<ItemSpec> items_;
  std::vector<std::string> columns_;
  SortSpec sort_;
  std::vector<const Value*> key_ptrs_;  // per-row probe scratch
  std::unordered_map<ValueKey, GroupState, ValueKeyHash, ValueKeyEq> groups_;
};

}  // namespace

Executor::Executor(TableAdapter* adapter) : adapter_(adapter) {
  obs::MetricsRegistry& r = adapter_->cluster()->metrics();
  statements_ = r.GetCounter("exec_statements_total",
                             "SELECT statements executed");
  dirty_restarts_ = r.GetCounter(
      "exec_dirty_restarts_total",
      "statement restarts after observing a dirty-marked row");
  statement_us_ = r.GetHistogram("exec_statement_virtual_us",
                                 "virtual time per SELECT statement");
}

StatusOr<std::string> Executor::Explain(const sql::SelectStatement& stmt,
                                        const ExecOptions& options) {
  PlannerOptions popts;
  popts.force_hash_join = options.force_hash_join;
  SYNERGY_ASSIGN_OR_RETURN(
      plan, PlanSelect(stmt, adapter_->catalog(),
                       [this](const std::string& r) {
                         return adapter_->RowCount(r);
                       },
                       popts));
  return plan.Explain();
}

StatusOr<QueryResult> Executor::ExecuteSelect(hbase::Session& s,
                                              const sql::SelectStatement& stmt,
                                              BoundParams params,
                                              const ExecOptions& options) {
  return RunStatement(s, stmt, params, options, /*nodes=*/nullptr);
}

StatusOr<AnalyzeResult> Executor::ExplainAnalyze(
    hbase::Session& s, const sql::SelectStatement& stmt, BoundParams params,
    const ExecOptions& options) {
  AnalyzeResult out;
  const double start_us = s.meter().micros();
  const uint64_t start_rpcs = s.rpc_count();
  SYNERGY_ASSIGN_OR_RETURN(result,
                           RunStatement(s, stmt, params, options, &out.nodes));
  out.result = std::move(result);
  out.total_virtual_us = s.meter().Since(start_us);
  out.total_rpcs = s.rpc_count() - start_rpcs;
  for (const PlanNodeStats& node : out.nodes) {
    out.node_sum_us += node.virtual_us;
  }
  out.text = RenderAnalyze(out);
  return out;
}

StatusOr<QueryResult> Executor::RunStatement(hbase::Session& s,
                                             const sql::SelectStatement& stmt,
                                             BoundParams params,
                                             const ExecOptions& options,
                                             std::vector<PlanNodeStats>* nodes) {
  statements_->Inc();
  obs::ScopedSpan span(s.trace(), "exec.select");
  const double start_us = s.meter().micros();
  // Virtual time and RPCs burned by attempts that aborted on a dirty row
  // (including the per-restart backoff charge); surfaced as a pseudo-node so
  // the analyzed totals still balance.
  PlanNodeStats restart_node;
  restart_node.label = "dirty restarts";
  int restarts = 0;
  while (true) {
    if (nodes != nullptr) nodes->clear();
    const double attempt_us = s.meter().micros();
    const uint64_t attempt_rpcs = s.rpc_count();
    StatusOr<QueryResult> result = ExecuteOnce(s, stmt, params, options, nodes);
    if (result.ok()) {
      result->dirty_restarts = restarts;
      if (restarts > 0) {
        dirty_restarts_->Inc(static_cast<uint64_t>(restarts));
        span.Note("dirty_restarts", std::to_string(restarts));
        if (nodes != nullptr) {
          // rows = aborted attempts, by analogy with rows-produced.
          restart_node.rows = static_cast<size_t>(restarts);
          nodes->insert(nodes->begin(), restart_node);
        }
      }
      statement_us_->Observe(s.meter().Since(start_us));
      return result;
    }
    if (result.status().code() == StatusCode::kAborted &&
        options.detect_dirty && restarts < options.max_dirty_retries) {
      ++restarts;
      // Back off for roughly one RPC before re-scanning.
      s.meter().Charge(
          adapter_->cluster()->cost_model().rpc_base_us);
      restart_node.virtual_us += s.meter().Since(attempt_us);
      restart_node.rpcs += s.rpc_count() - attempt_rpcs;
      continue;
    }
    statement_us_->Observe(s.meter().Since(start_us));
    return result;
  }
}

StatusOr<QueryResult> Executor::ExecuteOnce(hbase::Session& s,
                                            const sql::SelectStatement& stmt,
                                            BoundParams params,
                                            const ExecOptions& options,
                                            std::vector<PlanNodeStats>* nodes) {
  const bool analyze = nodes != nullptr;
  const double exec_start_us = s.meter().micros();
  const uint64_t exec_start_rpcs = s.rpc_count();
  const sql::Catalog& catalog = adapter_->catalog();
  const sim::CostModel& model = adapter_->cluster()->cost_model();
  PlannerOptions popts;
  popts.force_hash_join = options.force_hash_join;
  SYNERGY_ASSIGN_OR_RETURN(
      plan, PlanSelect(stmt, catalog,
                       [this](const std::string& r) {
                         return adapter_->RowCount(r);
                       },
                       popts));

  // Cumulative schemas: cum_schemas[i] covers the combined row after step i.
  // The final row schema is the concatenation of all alias schemas; slots
  // are stable across steps (each step appends to the right).
  const size_t n = plan.steps.size();
  std::vector<std::shared_ptr<RowSchema>> cum_schemas;
  cum_schemas.reserve(n);
  std::shared_ptr<RowSchema> acc;
  for (const PlanStep& step : plan.steps) {
    auto schema = AliasSchema(step.table, *step.rel);
    acc = acc ? RowSchema::Concat(*acc, *schema) : std::move(schema);
    cum_schemas.push_back(acc);
  }
  const RowSchema& final_schema = *cum_schemas.back();

  // Bind residual predicates to slots once per statement (they reference
  // only columns available at their step, i.e. slots of cum_schemas[i]).
  std::vector<std::vector<BoundPredicate>> residuals(n);
  for (size_t i = 0; i < n; ++i) {
    SYNERGY_ASSIGN_OR_RETURN(
        bound, BindPredicates(plan.steps[i].residual, *cum_schemas[i],
                              params));
    residuals[i] = std::move(bound);
  }

  std::unique_ptr<Sink> sink;
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    SYNERGY_ASSIGN_OR_RETURN(
        agg, AggSink::Make(stmt, final_schema, s, model, options));
    sink = std::move(agg);
  } else {
    SYNERGY_ASSIGN_OR_RETURN(
        plain, PlainSink::Make(stmt, final_schema, s, model, options));
    sink = std::move(plain);
  }

  // EXPLAIN ANALYZE accounting: every sink->Process call goes through this
  // wrapper so sink time (aggregation/top-N charges) accrued while a stage
  // is driving rows is attributed to the sink node, not the stage. Stage
  // nodes then measure their meter/RPC interval minus the sink accrual, so
  // the node intervals partition the statement's total charge exactly.
  double sink_us = 0.0;
  uint64_t sink_rpcs = 0;
  auto sink_process = [&](const std::vector<Value>& row) -> StatusOr<bool> {
    if (!analyze) return sink->Process(row);
    const double m0 = s.meter().micros();
    const uint64_t r0 = s.rpc_count();
    StatusOr<bool> keep = sink->Process(row);
    sink_us += s.meter().Since(m0);
    sink_rpcs += s.rpc_count() - r0;
    return keep;
  };
  if (analyze) {
    PlanNodeStats bind;
    bind.label = "plan+bind";
    bind.virtual_us = s.meter().Since(exec_start_us);
    bind.rpcs = s.rpc_count() - exec_start_rpcs;
    nodes->push_back(bind);
  }

  // Streams rows of one table according to its access path. The callback
  // receives a reusable slot row (relation column order); it may move the
  // values out when it needs to keep them.
  // Resolves an access path's equality key values, coerced to the key
  // columns' declared types. Returns false when the lookup is a guaranteed
  // miss (e.g. a fractional double against an INT key column).
  auto build_access_key = [&params](const PlanStep& step,
                                    std::vector<Value>* key)
      -> StatusOr<bool> {
    for (size_t j = 0; j < step.path.key_preds.size(); ++j) {
      SYNERGY_ASSIGN_OR_RETURN(
          v, ResolveConstOperand(ConstSide(*step.path.key_preds[j]), params));
      const DataType declared =
          step.rel->ColumnType(step.path.key_columns[j])
              .value_or(DataType::kString);
      if (!CoerceKeyValue(declared, &v)) return false;
      key->push_back(std::move(v));
    }
    return true;
  };

  auto for_each_table_row =
      [&](const PlanStep& step,
          const std::function<StatusOr<bool>(SlotRow&)>& fn) -> Status {
    SlotRow scratch;
    auto handle = [&](SlotRow& row) -> StatusOr<bool> {
      if (options.detect_dirty) {
        if (row.marked) return DirtyRead();
        // The dirty-read-restart fault point treats this (clean) row as if
        // its dirty mark had been observed, forcing the §VIII-C abort so
        // the restart loop in ExecuteSelect runs under test control.
        fault::FaultInjector* faults = adapter_->cluster()->fault_injector();
        if (faults != nullptr &&
            faults->ShouldFire(fault::FaultPoint::kDirtyReadRestart)) {
          return faults->InjectedFault(fault::FaultPoint::kDirtyReadRestart);
        }
      }
      return fn(row);
    };
    switch (step.path.kind) {
      case AccessPath::Kind::kPkGet: {
        std::vector<Value> key;
        SYNERGY_ASSIGN_OR_RETURN(matchable, build_access_key(step, &key));
        if (!matchable) return Status::Ok();
        SYNERGY_ASSIGN_OR_RETURN(
            found, adapter_->GetByPkSlots(s, step.table.table, key, &scratch));
        if (found) {
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(scratch));
          (void)keep;
        }
        return Status::Ok();
      }
      case AccessPath::Kind::kIndexPrefixScan:
      case AccessPath::Kind::kPkPrefixScan: {
        std::vector<Value> prefix;
        SYNERGY_ASSIGN_OR_RETURN(matchable, build_access_key(step, &prefix));
        if (!matchable) return Status::Ok();
        StatusOr<TupleScanner> scanner =
            step.path.kind == AccessPath::Kind::kIndexPrefixScan
                ? adapter_->ScanIndexPrefix(s, step.path.index_name, prefix)
                : adapter_->ScanPkPrefix(s, step.table.table, prefix);
        SYNERGY_RETURN_IF_ERROR(scanner.status());
        while (true) {
          SYNERGY_ASSIGN_OR_RETURN(more, scanner->NextSlots(&scratch));
          if (!more) break;
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(scratch));
          if (!keep) break;
        }
        return Status::Ok();
      }
      case AccessPath::Kind::kFullScan: {
        SYNERGY_ASSIGN_OR_RETURN(scanner,
                                 adapter_->ScanAll(s, step.table.table));
        while (true) {
          SYNERGY_ASSIGN_OR_RETURN(more, scanner.NextSlots(&scratch));
          if (!more) break;
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(scratch));
          if (!keep) break;
        }
        return Status::Ok();
      }
    }
    return Status::Internal("bad access path");
  };

  // --- pipeline ---
  // Intermediate rows are plain slot vectors; schemas live on the side and
  // everything row-referencing was pre-bound to slots above.
  std::vector<std::vector<Value>> current;
  bool stopped = false;

  {
    const PlanStep& step = plan.steps[0];
    const std::vector<BoundPredicate>& residual = residuals[0];
    const double stage_us = s.meter().micros();
    const uint64_t stage_rpcs = s.rpc_count();
    const double stage_sink_us = sink_us;
    const uint64_t stage_sink_rpcs = sink_rpcs;
    size_t stage_rows = 0;
    auto consume = [&](SlotRow& row) -> StatusOr<bool> {
      if (!EvalBound(residual, row.values)) return true;
      ++stage_rows;
      if (n == 1) {
        SYNERGY_ASSIGN_OR_RETURN(keep, sink_process(row.values));
        if (!keep) {
          stopped = true;
          return false;
        }
        return true;
      }
      current.push_back(std::move(row.values));
      return true;
    };
    SYNERGY_RETURN_IF_ERROR(for_each_table_row(step, consume));
    if (analyze) {
      PlanNodeStats node;
      node.label = StepLabel(step, 0);
      node.rows = stage_rows;
      node.virtual_us = s.meter().Since(stage_us) - (sink_us - stage_sink_us);
      node.rpcs = s.rpc_count() - stage_rpcs - (sink_rpcs - stage_sink_rpcs);
      nodes->push_back(node);
    }
  }

  for (size_t i = 1; i < n && !stopped; ++i) {
    const PlanStep& step = plan.steps[i];
    const bool last = (i == n - 1);
    const RowSchema& outer_schema = *cum_schemas[i - 1];
    const std::vector<BoundPredicate>& residual = residuals[i];
    const double stage_us = s.meter().micros();
    const uint64_t stage_rpcs = s.rpc_count();
    const double stage_sink_us = sink_us;
    const uint64_t stage_sink_rpcs = sink_rpcs;
    size_t stage_rows = 0;
    std::vector<std::vector<Value>> next;
    std::vector<Value> combined;  // reused when feeding the sink

    auto emit_combined = [&](const std::vector<Value>& left,
                             const std::vector<Value>& right)
        -> StatusOr<bool> {
      combined.clear();
      combined.reserve(left.size() + right.size());
      combined.insert(combined.end(), left.begin(), left.end());
      combined.insert(combined.end(), right.begin(), right.end());
      if (!EvalBound(residual, combined)) return true;
      s.meter().Charge(model.join_emit_row_us);
      ++stage_rows;
      if (last) {
        SYNERGY_ASSIGN_OR_RETURN(keep, sink_process(combined));
        if (!keep) {
          stopped = true;
          return false;
        }
        return true;
      }
      next.push_back(std::move(combined));
      return true;
    };

    if (step.method == PlanStep::Method::kIndexNestedLoop) {
      // Bind the outer-side lookup operands once; reuse key and inner-row
      // buffers across all outer rows.
      std::vector<BoundOperand> outer_ops;
      outer_ops.reserve(step.lookup.outer_operands.size());
      for (const sql::Operand& op : step.lookup.outer_operands) {
        SYNERGY_ASSIGN_OR_RETURN(bound, BindOperand(op, outer_schema, params));
        outer_ops.push_back(std::move(bound));
      }
      std::vector<DataType> lookup_types;
      lookup_types.reserve(step.lookup.inner_columns.size());
      for (const std::string& col : step.lookup.inner_columns) {
        lookup_types.push_back(
            step.rel->ColumnType(col).value_or(DataType::kString));
      }
      std::vector<Value> key;
      SlotRow inner;
      for (const std::vector<Value>& outer : current) {
        if (stopped) break;
        key.clear();
        bool skip = false;
        for (size_t j = 0; j < outer_ops.size(); ++j) {
          Value v = OperandValue(outer_ops[j], outer);
          // NULL keys never match; neither does e.g. a fractional double
          // probed against an INT column (keeps byte-key lookups consistent
          // with hash-join/Compare numeric equality).
          if (v.is_null() || !CoerceKeyValue(lookup_types[j], &v)) {
            skip = true;
            break;
          }
          key.push_back(std::move(v));
        }
        if (skip) continue;
        s.meter().Charge(model.join_probe_row_us + model.join_row_overhead_us);
        if (step.lookup.kind == AccessPath::Kind::kPkGet) {
          SYNERGY_ASSIGN_OR_RETURN(
              found, adapter_->GetByPkSlots(s, step.table.table, key, &inner));
          if (found) {
            if (options.detect_dirty && inner.marked) return DirtyRead();
            SYNERGY_ASSIGN_OR_RETURN(keep,
                                     emit_combined(outer, inner.values));
            (void)keep;
          }
        } else {
          StatusOr<TupleScanner> scanner =
              step.lookup.kind == AccessPath::Kind::kIndexPrefixScan
                  ? adapter_->ScanIndexPrefix(s, step.lookup.index_name, key)
                  : adapter_->ScanPkPrefix(s, step.table.table, key);
          SYNERGY_RETURN_IF_ERROR(scanner.status());
          while (!stopped) {
            SYNERGY_ASSIGN_OR_RETURN(more, scanner->NextSlots(&inner));
            if (!more) break;
            if (options.detect_dirty && inner.marked) return DirtyRead();
            SYNERGY_ASSIGN_OR_RETURN(keep,
                                     emit_combined(outer, inner.values));
            if (!keep) break;
          }
        }
      }
    } else {
      // Client-side hash join: build on the accumulated intermediate,
      // stream this step's table. The table is keyed on the join-key Values
      // (cached hash), not on encoded byte strings.
      struct JoinSide {
        const sql::Operand* outer;
        std::string inner_column;
      };
      std::vector<JoinSide> keys;
      for (const sql::Predicate* p : step.equi_joins) {
        // Exactly one side belongs to this alias; the planner guaranteed it.
        const bool lhs_inner =
            p->lhs.kind == sql::Operand::Kind::kColumn &&
            (p->lhs.column.qualifier == step.table.alias ||
             (p->lhs.column.qualifier.empty() &&
              step.rel->HasColumn(p->lhs.column.column) &&
              outer_schema.Find(p->lhs.column) < 0));
        if (lhs_inner) {
          keys.push_back(JoinSide{&p->rhs, p->lhs.column.column});
        } else {
          keys.push_back(JoinSide{&p->lhs, p->rhs.column.column});
        }
      }
      // Pre-bind both sides: build-side operands to outer-row slots,
      // probe-side columns to this relation's slots.
      std::vector<BoundOperand> build_ops;
      std::vector<int> probe_slots;
      build_ops.reserve(keys.size());
      probe_slots.reserve(keys.size());
      for (const JoinSide& k : keys) {
        SYNERGY_ASSIGN_OR_RETURN(bound,
                                 BindOperand(*k.outer, outer_schema, params));
        build_ops.push_back(std::move(bound));
        probe_slots.push_back(step.rel->ColumnIndex(k.inner_column));
      }
      std::unordered_map<ValueKey, std::vector<size_t>, ValueKeyHash,
                         ValueKeyEq>
          table;
      table.reserve(current.size() * 2);
      // Build sides beyond client memory spill to a grace hash join: both
      // sides pay an extra partitioning pass per row.
      const bool spilled = current.size() > model.hash_join_spill_rows;
      std::vector<const Value*> key_ptrs;
      key_ptrs.reserve(keys.size());
      for (size_t row_idx = 0; row_idx < current.size(); ++row_idx) {
        const std::vector<Value>& row = current[row_idx];
        key_ptrs.clear();
        bool has_null = false;
        for (const BoundOperand& op : build_ops) {
          const Value& v = OperandValue(op, row);
          if (v.is_null()) has_null = true;
          key_ptrs.push_back(&v);
        }
        s.meter().Charge(model.join_build_row_us + model.join_row_overhead_us +
                         (spilled ? model.join_spill_row_us : 0.0));
        if (has_null) continue;
        const ValueKeyRef ref(key_ptrs);
        auto it = table.find(ref);
        if (it == table.end()) {
          it = table.emplace(MaterializeKey(ref), std::vector<size_t>())
                   .first;
        }
        it->second.push_back(row_idx);
      }
      auto consume = [&](SlotRow& row) -> StatusOr<bool> {
        s.meter().Charge(model.join_probe_row_us + model.join_row_overhead_us +
                         (spilled ? model.join_spill_row_us : 0.0));
        key_ptrs.clear();
        for (const int slot : probe_slots) {
          if (slot < 0) return true;  // column not stored: NULL, no match
          const Value& v = row.values[static_cast<size_t>(slot)];
          if (v.is_null()) return true;  // NULL join key: no match
          key_ptrs.push_back(&v);
        }
        const auto bucket = table.find(ValueKeyRef(key_ptrs));
        if (bucket == table.end()) return true;
        for (const size_t left_idx : bucket->second) {
          SYNERGY_ASSIGN_OR_RETURN(
              keep, emit_combined(current[left_idx], row.values));
          if (!keep) return false;
        }
        return true;
      };
      SYNERGY_RETURN_IF_ERROR(for_each_table_row(step, consume));
    }
    if (analyze) {
      PlanNodeStats node;
      node.label = StepLabel(step, i);
      node.rows = stage_rows;
      node.virtual_us = s.meter().Since(stage_us) - (sink_us - stage_sink_us);
      node.rpcs = s.rpc_count() - stage_rpcs - (sink_rpcs - stage_sink_rpcs);
      nodes->push_back(node);
    }
    if (!last) {
      current = std::move(next);
    }
  }

  QueryResult result;
  const double finish_us = s.meter().micros();
  const uint64_t finish_rpcs = s.rpc_count();
  SYNERGY_RETURN_IF_ERROR(sink->Finish(&result));
  if (analyze) {
    sink_us += s.meter().Since(finish_us);
    sink_rpcs += s.rpc_count() - finish_rpcs;
    PlanNodeStats node;
    node.label = (stmt.HasAggregates() || !stmt.group_by.empty())
                     ? "sink: aggregate"
                     : "sink: project/sort/limit";
    node.rows = result.row_count;
    node.virtual_us = sink_us;
    node.rpcs = sink_rpcs;
    nodes->push_back(node);
  }
  return result;
}

}  // namespace synergy::exec
