#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/codec.h"

namespace synergy::exec {
namespace {

Status DirtyRead() { return Status::Aborted("dirty row encountered"); }

std::shared_ptr<RowSchema> AliasSchema(const sql::TableRef& ref,
                                       const sql::RelationDef& rel) {
  std::vector<std::string> names;
  names.reserve(rel.columns.size());
  for (const sql::Column& c : rel.columns) {
    names.push_back(ref.alias + "." + c.name);
  }
  return RowSchema::Make(std::move(names));
}

std::vector<Value> TupleToValues(const sql::RelationDef& rel,
                                 const Tuple& tuple) {
  std::vector<Value> values;
  values.reserve(rel.columns.size());
  for (const sql::Column& c : rel.columns) {
    auto it = tuple.find(c.name);
    values.push_back(it == tuple.end() ? Value() : it->second);
  }
  return values;
}

/// The constant side of an access-path key predicate.
const sql::Operand& ConstSide(const sql::Predicate& pred) {
  return pred.lhs.kind == sql::Operand::Kind::kColumn ? pred.rhs : pred.lhs;
}

// ---------------------------------------------------------------------------
// Result sinks
// ---------------------------------------------------------------------------

class Sink {
 public:
  virtual ~Sink() = default;
  /// Returns false to stop the pipeline early.
  virtual StatusOr<bool> Process(const ExecRow& row) = 0;
  virtual Status Finish(QueryResult* out) = 0;
};

struct SortSpec {
  std::vector<int> slots;  // into the output row
  std::vector<bool> descending;
};

void SortAndLimit(std::vector<std::vector<Value>>* rows, const SortSpec& sort,
                  int64_t limit, hbase::Session& s,
                  const sim::CostModel& model) {
  if (!sort.slots.empty() && rows->size() > 1) {
    const double n = static_cast<double>(rows->size());
    s.meter().Charge(model.sort_row_log_us * n * std::log2(n));
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       for (size_t k = 0; k < sort.slots.size(); ++k) {
                         const size_t slot =
                             static_cast<size_t>(sort.slots[k]);
                         const int c = a[slot].Compare(b[slot]);
                         if (c != 0) return sort.descending[k] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (limit >= 0 && rows->size() > static_cast<size_t>(limit)) {
    rows->resize(static_cast<size_t>(limit));
  }
}

/// Non-aggregating sink: project, optionally sort, limit, collect/count.
class PlainSink : public Sink {
 public:
  static StatusOr<std::unique_ptr<PlainSink>> Make(
      const sql::SelectStatement& stmt, const RowSchema& final_schema,
      hbase::Session& s, const sim::CostModel& model,
      const ExecOptions& options) {
    auto sink = std::make_unique<PlainSink>();
    sink->session_ = &s;
    sink->model_ = &model;
    sink->collect_ = options.collect_rows;
    sink->limit_ = stmt.limit;
    // Projection slots.
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < final_schema.size(); ++i) {
          sink->slots_.push_back(static_cast<int>(i));
          const std::string& qname = final_schema.names()[i];
          const size_t dot = qname.find('.');
          sink->columns_.push_back(
              dot == std::string::npos ? qname : qname.substr(dot + 1));
        }
        continue;
      }
      const int slot = final_schema.Find(item.column);
      if (slot < 0) {
        return Status::InvalidArgument("unknown select column " +
                                       item.column.ToString());
      }
      sink->slots_.push_back(slot);
      sink->columns_.push_back(item.output_name);
    }
    // ORDER BY: prefer an output column, else a source slot.
    for (const sql::OrderItem& o : stmt.order_by) {
      int out_slot = -1;
      for (size_t i = 0; i < sink->columns_.size(); ++i) {
        if (sink->columns_[i] == o.column.column &&
            (o.column.qualifier.empty())) {
          out_slot = static_cast<int>(i);
          break;
        }
      }
      if (out_slot < 0) {
        const int src = final_schema.Find(o.column);
        if (src < 0) {
          return Status::InvalidArgument("unknown ORDER BY column " +
                                         o.column.ToString());
        }
        // Append as a hidden sort column.
        sink->slots_.push_back(src);
        sink->hidden_tail_ = true;
        out_slot = static_cast<int>(sink->slots_.size()) - 1;
      }
      sink->sort_.slots.push_back(out_slot);
      sink->sort_.descending.push_back(o.descending);
    }
    sink->needs_materialize_ = !sink->sort_.slots.empty();
    return sink;
  }

  StatusOr<bool> Process(const ExecRow& row) override {
    if (!needs_materialize_ && limit_ >= 0 &&
        count_ >= static_cast<size_t>(limit_)) {
      return false;
    }
    std::vector<Value> out;
    out.reserve(slots_.size());
    for (const int slot : slots_) out.push_back(row.At(slot));
    if (needs_materialize_ || collect_) {
      rows_.push_back(std::move(out));
    }
    ++count_;
    if (!needs_materialize_ && limit_ >= 0 &&
        count_ >= static_cast<size_t>(limit_)) {
      return false;  // early stop: no ordering requested
    }
    return true;
  }

  Status Finish(QueryResult* result) override {
    SortAndLimit(&rows_, sort_, limit_, *session_, *model_);
    const size_t visible_cols =
        columns_.size();  // hidden sort columns are dropped below
    if (hidden_tail_) {
      for (std::vector<Value>& row : rows_) row.resize(visible_cols);
    }
    result->columns = columns_;
    result->row_count = needs_materialize_ ? rows_.size() : count_;
    if (limit_ >= 0) {
      result->row_count = std::min(result->row_count,
                                   static_cast<size_t>(limit_));
    }
    if (collect_) {
      result->rows = std::move(rows_);
    }
    return Status::Ok();
  }

 private:
  hbase::Session* session_ = nullptr;
  const sim::CostModel* model_ = nullptr;
  bool collect_ = true;
  bool needs_materialize_ = false;
  bool hidden_tail_ = false;
  int64_t limit_ = -1;
  size_t count_ = 0;
  std::vector<int> slots_;
  std::vector<std::string> columns_;
  SortSpec sort_;
  std::vector<std::vector<Value>> rows_;
};

/// Hash-aggregation sink (GROUP BY + aggregate select items).
class AggSink : public Sink {
 public:
  static StatusOr<std::unique_ptr<AggSink>> Make(
      const sql::SelectStatement& stmt, const RowSchema& final_schema,
      hbase::Session& s, const sim::CostModel& model,
      const ExecOptions& options) {
    auto sink = std::make_unique<AggSink>();
    sink->session_ = &s;
    sink->model_ = &model;
    sink->collect_ = options.collect_rows;
    sink->limit_ = stmt.limit;
    for (const sql::ColumnRef& g : stmt.group_by) {
      const int slot = final_schema.Find(g);
      if (slot < 0) {
        return Status::InvalidArgument("unknown GROUP BY column " +
                                       g.ToString());
      }
      sink->group_slots_.push_back(slot);
    }
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      ItemSpec spec;
      spec.agg = item.agg;
      if (item.count_star) {
        spec.slot = -1;
      } else {
        spec.slot = final_schema.Find(item.column);
        if (spec.slot < 0) {
          return Status::InvalidArgument("unknown select column " +
                                         item.column.ToString());
        }
      }
      sink->items_.push_back(spec);
      sink->columns_.push_back(item.output_name);
    }
    for (const sql::OrderItem& o : stmt.order_by) {
      int out_slot = -1;
      for (size_t i = 0; i < sink->columns_.size(); ++i) {
        if (sink->columns_[i] == o.column.column) {
          out_slot = static_cast<int>(i);
          break;
        }
      }
      if (out_slot < 0) {
        return Status::InvalidArgument(
            "ORDER BY over aggregation must name an output column: " +
            o.column.ToString());
      }
      sink->sort_.slots.push_back(out_slot);
      sink->sort_.descending.push_back(o.descending);
    }
    return sink;
  }

  StatusOr<bool> Process(const ExecRow& row) override {
    session_->meter().Charge(model_->agg_row_us);
    std::vector<Value> key;
    key.reserve(group_slots_.size());
    for (const int slot : group_slots_) key.push_back(row.At(slot));
    GroupState& state = groups_[codec::EncodeKey(key)];
    if (state.accums.empty()) {
      state.order = groups_.size() - 1;
      state.accums.resize(items_.size());
      state.first_row.reserve(items_.size());
      for (const ItemSpec& item : items_) {
        state.first_row.push_back(item.slot >= 0 ? row.At(item.slot) : Value());
      }
    }
    for (size_t i = 0; i < items_.size(); ++i) {
      Accum& acc = state.accums[i];
      const ItemSpec& item = items_[i];
      if (item.agg == sql::AggFunc::kNone) continue;
      Value v = item.slot >= 0 ? row.At(item.slot) : Value(1);
      if (item.agg == sql::AggFunc::kCount) {
        if (item.slot < 0 || !v.is_null()) acc.count += 1;
        continue;
      }
      if (v.is_null()) continue;
      acc.count += 1;
      acc.sum += v.numeric();
      if (acc.count == 1 || v < acc.min) acc.min = v;
      if (acc.count == 1 || v > acc.max) acc.max = v;
    }
    return true;
  }

  Status Finish(QueryResult* result) override {
    if (groups_.empty() && group_slots_.empty()) {
      // Aggregates over an empty input still produce one row (COUNT = 0).
      GroupState& state = groups_[""];
      state.order = 0;
      state.accums.resize(items_.size());
      state.first_row.resize(items_.size());
    }
    std::vector<std::pair<size_t, std::vector<Value>>> ordered;
    ordered.reserve(groups_.size());
    for (auto& [key, state] : groups_) {
      std::vector<Value> row;
      row.reserve(items_.size());
      for (size_t i = 0; i < items_.size(); ++i) {
        const ItemSpec& item = items_[i];
        const Accum& acc = state.accums[i];
        switch (item.agg) {
          case sql::AggFunc::kNone:
            row.push_back(state.first_row[i]);
            break;
          case sql::AggFunc::kCount:
            row.push_back(Value(static_cast<int64_t>(acc.count)));
            break;
          case sql::AggFunc::kSum:
            row.push_back(acc.count == 0 ? Value() : Value(acc.sum));
            break;
          case sql::AggFunc::kAvg:
            row.push_back(acc.count == 0
                              ? Value()
                              : Value(acc.sum /
                                      static_cast<double>(acc.count)));
            break;
          case sql::AggFunc::kMin:
            row.push_back(acc.count == 0 ? Value() : acc.min);
            break;
          case sql::AggFunc::kMax:
            row.push_back(acc.count == 0 ? Value() : acc.max);
            break;
        }
      }
      ordered.emplace_back(state.order, std::move(row));
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::vector<Value>> rows;
    rows.reserve(ordered.size());
    for (auto& [order, row] : ordered) rows.push_back(std::move(row));
    SortAndLimit(&rows, sort_, limit_, *session_, *model_);
    result->columns = columns_;
    result->row_count = rows.size();
    if (collect_) result->rows = std::move(rows);
    return Status::Ok();
  }

 private:
  struct ItemSpec {
    sql::AggFunc agg = sql::AggFunc::kNone;
    int slot = -1;  // -1 == COUNT(*)
  };
  struct Accum {
    size_t count = 0;
    double sum = 0.0;
    Value min, max;
  };
  struct GroupState {
    size_t order = 0;
    std::vector<Accum> accums;
    std::vector<Value> first_row;
  };

  hbase::Session* session_ = nullptr;
  const sim::CostModel* model_ = nullptr;
  bool collect_ = true;
  int64_t limit_ = -1;
  std::vector<int> group_slots_;
  std::vector<ItemSpec> items_;
  std::vector<std::string> columns_;
  SortSpec sort_;
  std::unordered_map<std::string, GroupState> groups_;
};

}  // namespace

StatusOr<std::string> Executor::Explain(const sql::SelectStatement& stmt,
                                        const ExecOptions& options) {
  PlannerOptions popts;
  popts.force_hash_join = options.force_hash_join;
  SYNERGY_ASSIGN_OR_RETURN(
      plan, PlanSelect(stmt, adapter_->catalog(),
                       [this](const std::string& r) {
                         return adapter_->RowCount(r);
                       },
                       popts));
  return plan.Explain();
}

StatusOr<QueryResult> Executor::ExecuteSelect(hbase::Session& s,
                                              const sql::SelectStatement& stmt,
                                              BoundParams params,
                                              const ExecOptions& options) {
  int restarts = 0;
  while (true) {
    StatusOr<QueryResult> result = ExecuteOnce(s, stmt, params, options);
    if (result.ok()) {
      result->dirty_restarts = restarts;
      return result;
    }
    if (result.status().code() == StatusCode::kAborted &&
        options.detect_dirty && restarts < options.max_dirty_retries) {
      ++restarts;
      // Back off for roughly one RPC before re-scanning.
      s.meter().Charge(
          adapter_->cluster()->cost_model().rpc_base_us);
      continue;
    }
    return result;
  }
}

StatusOr<QueryResult> Executor::ExecuteOnce(hbase::Session& s,
                                            const sql::SelectStatement& stmt,
                                            BoundParams params,
                                            const ExecOptions& options) {
  const sql::Catalog& catalog = adapter_->catalog();
  const sim::CostModel& model = adapter_->cluster()->cost_model();
  PlannerOptions popts;
  popts.force_hash_join = options.force_hash_join;
  SYNERGY_ASSIGN_OR_RETURN(
      plan, PlanSelect(stmt, catalog,
                       [this](const std::string& r) {
                         return adapter_->RowCount(r);
                       },
                       popts));

  // Final row schema = concatenation of all alias schemas.
  std::vector<std::shared_ptr<RowSchema>> alias_schemas;
  std::shared_ptr<RowSchema> final_schema;
  for (const PlanStep& step : plan.steps) {
    auto schema = AliasSchema(step.table, *step.rel);
    final_schema = final_schema ? RowSchema::Concat(*final_schema, *schema)
                                : schema;
    alias_schemas.push_back(std::move(schema));
  }

  std::unique_ptr<Sink> sink;
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    SYNERGY_ASSIGN_OR_RETURN(
        agg, AggSink::Make(stmt, *final_schema, s, model, options));
    sink = std::move(agg);
  } else {
    SYNERGY_ASSIGN_OR_RETURN(
        plain, PlainSink::Make(stmt, *final_schema, s, model, options));
    sink = std::move(plain);
  }

  // Streams rows of one table according to its access path.
  auto for_each_table_row =
      [&](const PlanStep& step,
          const std::function<StatusOr<bool>(Tuple&&)>& fn) -> Status {
    auto handle = [&](TupleWithMeta&& twm) -> StatusOr<bool> {
      if (options.detect_dirty && twm.marked) return DirtyRead();
      return fn(std::move(twm.tuple));
    };
    switch (step.path.kind) {
      case AccessPath::Kind::kPkGet: {
        std::vector<Value> key;
        for (const sql::Predicate* p : step.path.key_preds) {
          SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(ConstSide(*p), params));
          key.push_back(std::move(v));
        }
        SYNERGY_ASSIGN_OR_RETURN(
            row, adapter_->GetByPk(s, step.table.table, key));
        if (row.has_value()) {
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(std::move(*row)));
          (void)keep;
        }
        return Status::Ok();
      }
      case AccessPath::Kind::kIndexPrefixScan:
      case AccessPath::Kind::kPkPrefixScan: {
        std::vector<Value> prefix;
        for (const sql::Predicate* p : step.path.key_preds) {
          SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(ConstSide(*p), params));
          prefix.push_back(std::move(v));
        }
        StatusOr<TupleScanner> scanner =
            step.path.kind == AccessPath::Kind::kIndexPrefixScan
                ? adapter_->ScanIndexPrefix(s, step.path.index_name, prefix)
                : adapter_->ScanPkPrefix(s, step.table.table, prefix);
        SYNERGY_RETURN_IF_ERROR(scanner.status());
        TupleWithMeta twm;
        while (true) {
          SYNERGY_ASSIGN_OR_RETURN(more, scanner->Next(&twm));
          if (!more) break;
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(std::move(twm)));
          if (!keep) break;
        }
        return Status::Ok();
      }
      case AccessPath::Kind::kFullScan: {
        SYNERGY_ASSIGN_OR_RETURN(scanner,
                                 adapter_->ScanAll(s, step.table.table));
        TupleWithMeta twm;
        while (true) {
          SYNERGY_ASSIGN_OR_RETURN(more, scanner.Next(&twm));
          if (!more) break;
          SYNERGY_ASSIGN_OR_RETURN(keep, handle(std::move(twm)));
          if (!keep) break;
        }
        return Status::Ok();
      }
    }
    return Status::Internal("bad access path");
  };

  // --- pipeline ---
  const size_t n = plan.steps.size();
  std::vector<ExecRow> current;
  std::shared_ptr<RowSchema> cur_schema = alias_schemas[0];
  bool stopped = false;

  {
    const PlanStep& step = plan.steps[0];
    auto consume = [&](Tuple&& tuple) -> StatusOr<bool> {
      ExecRow row{cur_schema, TupleToValues(*step.rel, tuple)};
      SYNERGY_ASSIGN_OR_RETURN(pass, EvalAll(step.residual, row, params));
      if (!pass) return true;
      if (n == 1) {
        SYNERGY_ASSIGN_OR_RETURN(keep, sink->Process(row));
        if (!keep) {
          stopped = true;
          return false;
        }
        return true;
      }
      current.push_back(std::move(row));
      return true;
    };
    SYNERGY_RETURN_IF_ERROR(for_each_table_row(step, consume));
  }

  for (size_t i = 1; i < n && !stopped; ++i) {
    const PlanStep& step = plan.steps[i];
    const bool last = (i == n - 1);
    auto next_schema = RowSchema::Concat(*cur_schema, *alias_schemas[i]);
    std::vector<ExecRow> next;

    auto emit_combined = [&](const ExecRow& left,
                             std::vector<Value>&& right_values)
        -> StatusOr<bool> {
      ExecRow combined{next_schema, left.values};
      combined.values.insert(combined.values.end(),
                             std::make_move_iterator(right_values.begin()),
                             std::make_move_iterator(right_values.end()));
      SYNERGY_ASSIGN_OR_RETURN(pass, EvalAll(step.residual, combined, params));
      if (!pass) return true;
      s.meter().Charge(model.join_emit_row_us);
      if (last) {
        SYNERGY_ASSIGN_OR_RETURN(keep, sink->Process(combined));
        if (!keep) {
          stopped = true;
          return false;
        }
        return true;
      }
      next.push_back(std::move(combined));
      return true;
    };

    if (step.method == PlanStep::Method::kIndexNestedLoop) {
      for (const ExecRow& outer : current) {
        if (stopped) break;
        std::vector<Value> key;
        key.reserve(step.lookup.outer_operands.size());
        bool has_null = false;
        for (const sql::Operand& op : step.lookup.outer_operands) {
          SYNERGY_ASSIGN_OR_RETURN(v, ResolveOperand(op, outer, params));
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        if (has_null) continue;
        s.meter().Charge(model.join_probe_row_us + model.join_row_overhead_us);
        if (step.lookup.kind == AccessPath::Kind::kPkGet) {
          SYNERGY_ASSIGN_OR_RETURN(
              row, adapter_->GetByPk(s, step.table.table, key));
          if (row.has_value()) {
            if (options.detect_dirty && row->marked) return DirtyRead();
            SYNERGY_ASSIGN_OR_RETURN(
                keep, emit_combined(outer, TupleToValues(*step.rel,
                                                         row->tuple)));
            (void)keep;
          }
        } else {
          StatusOr<TupleScanner> scanner =
              step.lookup.kind == AccessPath::Kind::kIndexPrefixScan
                  ? adapter_->ScanIndexPrefix(s, step.lookup.index_name, key)
                  : adapter_->ScanPkPrefix(s, step.table.table, key);
          SYNERGY_RETURN_IF_ERROR(scanner.status());
          TupleWithMeta twm;
          while (!stopped) {
            SYNERGY_ASSIGN_OR_RETURN(more, scanner->Next(&twm));
            if (!more) break;
            if (options.detect_dirty && twm.marked) return DirtyRead();
            SYNERGY_ASSIGN_OR_RETURN(
                keep,
                emit_combined(outer, TupleToValues(*step.rel, twm.tuple)));
            if (!keep) break;
          }
        }
      }
    } else {
      // Client-side hash join: build on the accumulated intermediate,
      // stream this step's table.
      struct JoinSide {
        const sql::Operand* outer;
        std::string inner_column;
      };
      std::vector<JoinSide> keys;
      for (const sql::Predicate* p : step.equi_joins) {
        // Exactly one side belongs to this alias; the planner guaranteed it.
        const bool lhs_inner =
            p->lhs.kind == sql::Operand::Kind::kColumn &&
            (p->lhs.column.qualifier == step.table.alias ||
             (p->lhs.column.qualifier.empty() &&
              step.rel->HasColumn(p->lhs.column.column) &&
              cur_schema->Find(p->lhs.column) < 0));
        if (lhs_inner) {
          keys.push_back(JoinSide{&p->rhs, p->lhs.column.column});
        } else {
          keys.push_back(JoinSide{&p->lhs, p->rhs.column.column});
        }
      }
      std::unordered_map<std::string, std::vector<const ExecRow*>> table;
      table.reserve(current.size() * 2);
      // Build sides beyond client memory spill to a grace hash join: both
      // sides pay an extra partitioning pass per row.
      const bool spilled = current.size() > model.hash_join_spill_rows;
      for (const ExecRow& row : current) {
        std::vector<Value> key;
        key.reserve(keys.size());
        bool has_null = false;
        for (const JoinSide& k : keys) {
          SYNERGY_ASSIGN_OR_RETURN(v, ResolveOperand(*k.outer, row, params));
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        s.meter().Charge(model.join_build_row_us + model.join_row_overhead_us +
                         (spilled ? model.join_spill_row_us : 0.0));
        if (!has_null) table[codec::EncodeKey(key)].push_back(&row);
      }
      auto consume = [&](Tuple&& tuple) -> StatusOr<bool> {
        s.meter().Charge(model.join_probe_row_us + model.join_row_overhead_us +
                         (spilled ? model.join_spill_row_us : 0.0));
        std::vector<Value> key;
        key.reserve(keys.size());
        for (const JoinSide& k : keys) {
          auto it = tuple.find(k.inner_column);
          if (it == tuple.end()) return true;  // NULL join key: no match
          key.push_back(it->second);
        }
        auto bucket = table.find(codec::EncodeKey(key));
        if (bucket == table.end()) return true;
        std::vector<Value> right_values = TupleToValues(*step.rel, tuple);
        for (const ExecRow* left : bucket->second) {
          std::vector<Value> copy = right_values;
          SYNERGY_ASSIGN_OR_RETURN(keep, emit_combined(*left, std::move(copy)));
          if (!keep) return false;
        }
        return true;
      };
      SYNERGY_RETURN_IF_ERROR(for_each_table_row(step, consume));
    }
    if (!last) {
      current = std::move(next);
      cur_schema = next_schema;
    }
  }

  QueryResult result;
  SYNERGY_RETURN_IF_ERROR(sink->Finish(&result));
  return result;
}

}  // namespace synergy::exec
