#include "exec/table_adapter.h"

namespace synergy::exec {
namespace {

/// Maps each covered column of `ix` to its slot in `rel.columns` order.
std::vector<int> CoveredSlotMap(const sql::IndexDef& ix,
                                const sql::RelationDef& rel) {
  std::vector<int> map;
  map.reserve(ix.covered_columns.size());
  for (const std::string& name : ix.covered_columns) {
    map.push_back(rel.ColumnIndex(name));
  }
  return map;
}

}  // namespace

StatusOr<bool> TupleScanner::Next(TupleWithMeta* out) {
  hbase::RowResult row;
  while (scanner_.Next(&row)) {
    auto data = row.columns.find(kDataQualifier);
    if (data == row.columns.end()) continue;  // e.g. mark-only residue
    SYNERGY_ASSIGN_OR_RETURN(tuple, DecodeRowValue(columns_, data->second));
    out->tuple = std::move(tuple);
    auto mark = row.columns.find(kMarkQualifier);
    out->marked = mark != row.columns.end() && mark->second == "1";
    return true;
  }
  SYNERGY_RETURN_IF_ERROR(scanner_.status());
  return false;
}

StatusOr<bool> TupleScanner::NextSlots(SlotRow* out) {
  hbase::RowResult row;
  while (scanner_.Next(&row)) {
    // Single pass over the (few) columns: pick out data + mark together.
    const std::string* data = nullptr;
    out->marked = false;
    for (const auto& [qual, value] : row.columns) {
      if (qual == kDataQualifier) {
        data = &value;
      } else if (qual == kMarkQualifier) {
        out->marked = value == "1";
      }
    }
    if (data == nullptr) continue;  // e.g. mark-only residue
    SYNERGY_RETURN_IF_ERROR(DecodeRowSlots(columns_, slot_map_, num_slots_,
                                           *data, &out->values));
    return true;
  }
  SYNERGY_RETURN_IF_ERROR(scanner_.status());
  return false;
}

Status TableAdapter::CreateStorage(const std::string& relation) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  SYNERGY_RETURN_IF_ERROR(cluster_->CreateTable({.name = relation}));
  for (const sql::IndexDef* ix : catalog_->IndexesFor(relation)) {
    SYNERGY_RETURN_IF_ERROR(cluster_->CreateTable({.name = ix->name}));
  }
  return Status::Ok();
}

Status TableAdapter::Insert(hbase::Session& s, const std::string& relation,
                            const Tuple& tuple) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  SYNERGY_ASSIGN_OR_RETURN(key, EncodePkKey(*rel, tuple));
  SYNERGY_RETURN_IF_ERROR(cluster_->Put(
      s, relation, key, {{kDataQualifier, EncodeRowValue(*rel, tuple)}}));
  return WriteIndexRows(s, *rel, tuple);
}

Status TableAdapter::WriteIndexRows(hbase::Session& s,
                                    const sql::RelationDef& rel,
                                    const Tuple& tuple) {
  for (const sql::IndexDef* ix : catalog_->IndexesFor(rel.name)) {
    SYNERGY_ASSIGN_OR_RETURN(ikey, EncodeIndexKey(*ix, rel, tuple));
    SYNERGY_RETURN_IF_ERROR(cluster_->Put(
        s, ix->name, ikey,
        {{kDataQualifier,
          EncodeProjectedValue(ix->covered_columns, rel, tuple)}}));
  }
  return Status::Ok();
}

Status TableAdapter::DeleteIndexRows(hbase::Session& s,
                                     const sql::RelationDef& rel,
                                     const Tuple& tuple) {
  for (const sql::IndexDef* ix : catalog_->IndexesFor(rel.name)) {
    SYNERGY_ASSIGN_OR_RETURN(ikey, EncodeIndexKey(*ix, rel, tuple));
    SYNERGY_RETURN_IF_ERROR(cluster_->Delete(s, ix->name, ikey));
  }
  return Status::Ok();
}

StatusOr<std::optional<TupleWithMeta>> TableAdapter::GetByPk(
    hbase::Session& s, const std::string& relation,
    const std::vector<Value>& pk_values) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  const std::string key = EncodePkKeyFromValues(pk_values);
  StatusOr<hbase::RowResult> row = cluster_->Get(s, relation, key);
  if (!row.ok()) {
    if (row.status().code() == StatusCode::kNotFound) {
      return std::optional<TupleWithMeta>();
    }
    return row.status();
  }
  auto data = row->columns.find(kDataQualifier);
  if (data == row->columns.end()) return std::optional<TupleWithMeta>();
  SYNERGY_ASSIGN_OR_RETURN(tuple, DecodeRowValue(rel->columns, data->second));
  TupleWithMeta out;
  out.tuple = std::move(tuple);
  auto mark = row->columns.find(kMarkQualifier);
  out.marked = mark != row->columns.end() && mark->second == "1";
  return std::optional<TupleWithMeta>(std::move(out));
}

StatusOr<bool> TableAdapter::GetByPkSlots(hbase::Session& s,
                                          const std::string& relation,
                                          const std::vector<Value>& pk_values,
                                          SlotRow* out) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  EncodePkKeyFromValuesInto(pk_values, &out->key_scratch);
  StatusOr<hbase::RowResult> row = cluster_->Get(s, relation, out->key_scratch);
  if (!row.ok()) {
    if (row.status().code() == StatusCode::kNotFound) return false;
    return row.status();
  }
  auto data = row->columns.find(kDataQualifier);
  if (data == row->columns.end()) return false;
  SYNERGY_RETURN_IF_ERROR(DecodeRowSlots(rel->columns, /*slot_map=*/{},
                                         rel->columns.size(), data->second,
                                         &out->values));
  auto mark = row->columns.find(kMarkQualifier);
  out->marked = mark != row->columns.end() && mark->second == "1";
  return true;
}

Status TableAdapter::DeleteByPk(hbase::Session& s, const std::string& relation,
                                const std::vector<Value>& pk_values) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  SYNERGY_ASSIGN_OR_RETURN(existing, GetByPk(s, relation, pk_values));
  if (!existing.has_value()) return Status::Ok();
  SYNERGY_RETURN_IF_ERROR(DeleteIndexRows(s, *rel, existing->tuple));
  return cluster_->Delete(s, relation, EncodePkKeyFromValues(pk_values));
}

Status TableAdapter::UpdateByPk(
    hbase::Session& s, const std::string& relation,
    const std::vector<Value>& pk_values,
    const std::vector<std::pair<std::string, Value>>& sets) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  for (const auto& [col, value] : sets) {
    if (rel->IsPrimaryKeyColumn(col)) {
      return Status::InvalidArgument("cannot update PK column " + col);
    }
    if (!rel->HasColumn(col)) {
      return Status::InvalidArgument("unknown column " + col);
    }
  }
  SYNERGY_ASSIGN_OR_RETURN(existing, GetByPk(s, relation, pk_values));
  if (!existing.has_value()) {
    return Status::Ok();  // SQL UPDATE of an absent row affects zero rows
  }
  // Remove stale index rows if any indexed column changes.
  Tuple updated = existing->tuple;
  for (const auto& [col, value] : sets) {
    if (value.is_null()) {
      updated.erase(col);
    } else {
      updated[col] = value;
    }
  }
  for (const sql::IndexDef* ix : catalog_->IndexesFor(relation)) {
    SYNERGY_ASSIGN_OR_RETURN(old_key, EncodeIndexKey(*ix, *rel, existing->tuple));
    SYNERGY_ASSIGN_OR_RETURN(new_key, EncodeIndexKey(*ix, *rel, updated));
    if (old_key != new_key) {
      SYNERGY_RETURN_IF_ERROR(cluster_->Delete(s, ix->name, old_key));
    }
    SYNERGY_RETURN_IF_ERROR(cluster_->Put(
        s, ix->name, new_key,
        {{kDataQualifier,
          EncodeProjectedValue(ix->covered_columns, *rel, updated)}}));
  }
  return cluster_->Put(
      s, relation, EncodePkKeyFromValues(pk_values),
      {{kDataQualifier, EncodeRowValue(*rel, updated)}});
}

StatusOr<TupleScanner> TableAdapter::ScanAll(hbase::Session& s,
                                             const std::string& relation) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  SYNERGY_ASSIGN_OR_RETURN(scanner, cluster_->OpenScanner(s, relation));
  return TupleScanner(std::move(scanner), rel->columns, /*slot_map=*/{},
                      rel->columns.size());
}

StatusOr<TupleScanner> TableAdapter::ScanIndexPrefix(
    hbase::Session& s, const std::string& index_name,
    const std::vector<Value>& prefix) {
  const sql::IndexDef* ix = catalog_->FindIndex(index_name);
  if (ix == nullptr) return Status::NotFound("index " + index_name);
  const sql::RelationDef* rel = catalog_->FindRelation(ix->relation);
  if (rel == nullptr) return Status::NotFound("relation " + ix->relation);
  auto [start, stop] = IndexPrefixRange(prefix);
  SYNERGY_ASSIGN_OR_RETURN(scanner,
                           cluster_->OpenScanner(s, index_name, start, stop));
  return TupleScanner(std::move(scanner),
                      ProjectColumns(*rel, ix->covered_columns),
                      CoveredSlotMap(*ix, *rel), rel->columns.size());
}

StatusOr<TupleScanner> TableAdapter::ScanPkPrefix(
    hbase::Session& s, const std::string& relation,
    const std::vector<Value>& prefix) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  auto [start, stop] = IndexPrefixRange(prefix);
  SYNERGY_ASSIGN_OR_RETURN(scanner,
                           cluster_->OpenScanner(s, relation, start, stop));
  return TupleScanner(std::move(scanner), rel->columns, /*slot_map=*/{},
                      rel->columns.size());
}

Status TableAdapter::MarkRow(hbase::Session& s, const std::string& relation,
                             const std::vector<Value>& pk_values, bool marked) {
  return cluster_->Put(s, relation, EncodePkKeyFromValues(pk_values),
                       {{kMarkQualifier, marked ? "1" : "0"}});
}

Status TableAdapter::SetMarkWithIndexes(hbase::Session& s,
                                        const std::string& relation,
                                        const std::vector<Value>& pk_values,
                                        bool marked) {
  const sql::RelationDef* rel = catalog_->FindRelation(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  SYNERGY_RETURN_IF_ERROR(MarkRow(s, relation, pk_values, marked));
  SYNERGY_ASSIGN_OR_RETURN(existing, GetByPk(s, relation, pk_values));
  if (!existing.has_value()) return Status::Ok();
  for (const sql::IndexDef* ix : catalog_->IndexesFor(relation)) {
    SYNERGY_ASSIGN_OR_RETURN(ikey, EncodeIndexKey(*ix, *rel, existing->tuple));
    SYNERGY_RETURN_IF_ERROR(cluster_->Put(
        s, ix->name, ikey, {{kMarkQualifier, marked ? "1" : "0"}}));
  }
  return Status::Ok();
}

size_t TableAdapter::RowCount(const std::string& relation) const {
  return cluster_->ApproxRowCount(relation);
}

}  // namespace synergy::exec
