// Binding of single-row write statements (INSERT/UPDATE/DELETE with all key
// attributes specified) to typed operations — shared by every evaluated
// system's write path.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row_codec.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace synergy::exec {

struct BoundWrite {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  std::string relation;
  Tuple tuple;                   // insert: the full tuple
  std::vector<Value> pk_values;  // update/delete: the row key
  std::vector<std::pair<std::string, Value>> sets;  // update

  /// "table/rowkey" identifier (MVCC write sets).
  std::string WriteKey(const sql::Catalog& catalog) const;
};

/// Binds a parameter-free (already literal-bound) write statement. Write
/// statements that do not specify every key attribute are rejected with
/// kUnimplemented (§IV system limitations).
StatusOr<BoundWrite> BindWriteStatement(const sql::Statement& bound_stmt,
                                        const sql::Catalog& catalog);

}  // namespace synergy::exec
