#include "exec/write_binding.h"

#include "exec/expression.h"

namespace synergy::exec {

std::string BoundWrite::WriteKey(const sql::Catalog& catalog) const {
  if (kind == Kind::kInsert) {
    const sql::RelationDef* rel = catalog.FindRelation(relation);
    if (rel != nullptr) {
      StatusOr<std::string> key = EncodePkKey(*rel, tuple);
      if (key.ok()) return relation + "/" + *key;
    }
    return relation + "/?";
  }
  return relation + "/" + EncodePkKeyFromValues(pk_values);
}

StatusOr<BoundWrite> BindWriteStatement(const sql::Statement& bound_stmt,
                                        const sql::Catalog& catalog) {
  BoundWrite out;
  if (const auto* ins = std::get_if<sql::InsertStatement>(&bound_stmt)) {
    out.kind = BoundWrite::Kind::kInsert;
    out.relation = ins->table;
    if (catalog.FindRelation(ins->table) == nullptr) {
      return Status::NotFound("relation " + ins->table);
    }
    for (size_t i = 0; i < ins->columns.size(); ++i) {
      SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(ins->values[i], {}));
      if (!v.is_null()) out.tuple[ins->columns[i]] = std::move(v);
    }
    return out;
  }
  const std::vector<sql::Predicate>* where = nullptr;
  if (const auto* upd = std::get_if<sql::UpdateStatement>(&bound_stmt)) {
    out.kind = BoundWrite::Kind::kUpdate;
    out.relation = upd->table;
    where = &upd->where;
    for (const auto& [col, op] : upd->assignments) {
      SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(op, {}));
      out.sets.emplace_back(col, std::move(v));
    }
  } else if (const auto* del = std::get_if<sql::DeleteStatement>(&bound_stmt)) {
    out.kind = BoundWrite::Kind::kDelete;
    out.relation = del->table;
    where = &del->where;
  } else {
    return Status::InvalidArgument("not a write statement");
  }
  const sql::RelationDef* rel = catalog.FindRelation(out.relation);
  if (rel == nullptr) return Status::NotFound("relation " + out.relation);
  for (const std::string& pk : rel->primary_key) {
    bool found = false;
    for (const sql::Predicate& p : *where) {
      if (p.op != sql::CompareOp::kEq) continue;
      const sql::Operand* col_side = nullptr;
      const sql::Operand* val_side = nullptr;
      if (p.lhs.kind == sql::Operand::Kind::kColumn) {
        col_side = &p.lhs;
        val_side = &p.rhs;
      } else if (p.rhs.kind == sql::Operand::Kind::kColumn) {
        col_side = &p.rhs;
        val_side = &p.lhs;
      }
      if (col_side != nullptr && col_side->column.column == pk &&
          val_side->kind != sql::Operand::Kind::kColumn) {
        SYNERGY_ASSIGN_OR_RETURN(v, ResolveConstOperand(*val_side, {}));
        out.pk_values.push_back(std::move(v));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Unimplemented(
          "write statements must specify all key attributes (relation " +
          out.relation + ", missing " + pk + ")");
    }
  }
  return out;
}

}  // namespace synergy::exec
