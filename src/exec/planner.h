// Query planner: turns a SELECT into a left-deep pipeline of access paths
// and join methods, the way Phoenix compiles SQL onto HBase scans.
//
// Join order follows the FROM clause (the paper's workloads are written
// parent-first). Each step is either the pipeline source, a client-side hash
// join (build on the accumulated intermediate, stream the new table), or an
// index nested-loop join (per-outer-row Get / index-prefix scan).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace synergy::exec {

struct AccessPath {
  enum class Kind { kPkGet, kPkPrefixScan, kIndexPrefixScan, kFullScan };
  Kind kind = Kind::kFullScan;
  std::string index_name;                      // kIndexPrefixScan
  std::vector<std::string> key_columns;        // consumed equality columns
  std::vector<const sql::Predicate*> key_preds;  // aligned with key_columns

  std::string Describe() const;
};

/// Per-outer-row lookup used by index nested-loop joins.
struct JoinLookup {
  AccessPath::Kind kind = AccessPath::Kind::kFullScan;
  std::string index_name;
  /// Columns of the inner table forming the lookup prefix...
  std::vector<std::string> inner_columns;
  /// ...and the outer-side operands supplying their values (column refs
  /// resolved against the accumulated intermediate row).
  std::vector<sql::Operand> outer_operands;
};

struct PlanStep {
  enum class Method { kSource, kHashJoin, kIndexNestedLoop };

  sql::TableRef table;
  const sql::RelationDef* rel = nullptr;
  Method method = Method::kSource;
  AccessPath path;        // how this table is read (source & hash join)
  JoinLookup lookup;      // kIndexNestedLoop only
  std::vector<const sql::Predicate*> equi_joins;  // to prior aliases
  std::vector<const sql::Predicate*> residual;    // filters + non-equi joins
  double estimated_rows = 0;  // cardinality estimate after this step
};

struct SelectPlan {
  const sql::SelectStatement* stmt = nullptr;
  std::vector<PlanStep> steps;
  std::string Explain() const;
};

struct PlannerOptions {
  /// Disable index nested-loop (the micro-benchmark's "join algorithm"
  /// measurement uses full client-side joins).
  bool force_hash_join = false;
  /// Max estimated outer rows for which INL is chosen.
  double inl_max_outer_rows = 2000.0;
};

/// Row-count oracle for cardinality estimation.
using RowCountFn = std::function<size_t(const std::string& relation)>;

StatusOr<SelectPlan> PlanSelect(const sql::SelectStatement& stmt,
                                const sql::Catalog& catalog,
                                const RowCountFn& row_count,
                                const PlannerOptions& options = {});

}  // namespace synergy::exec
