#include "systems/evaluated_system.h"

#include "systems/mvcc_system.h"
#include "systems/synergy_wrapper.h"
#include "systems/voltdb_system.h"

namespace synergy::systems {

StatementOutcome EvaluatedSystem::ExecuteOpen(Client*,
                                              const std::string& stmt_id,
                                              const std::vector<Value>& params) {
  StatementOutcome out;
  StatusOr<StatementResult> r = Execute(stmt_id, params);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.result = *r;
  if (!r->supported) {
    out.status = Status::Unimplemented("statement " + stmt_id +
                                       " unsupported by " + name());
  }
  return out;
}

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVoltDb: return "VoltDB";
    case SystemKind::kSynergy: return "Synergy";
    case SystemKind::kMvccA: return "MVCC-A";
    case SystemKind::kMvccUA: return "MVCC-UA";
    case SystemKind::kBaseline: return "Baseline";
  }
  return "?";
}

std::unique_ptr<EvaluatedSystem> MakeSystem(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVoltDb:
      return std::make_unique<VoltDbSystem>();
    case SystemKind::kSynergy:
      return std::make_unique<SynergyWrapper>();
    case SystemKind::kMvccA:
      return std::make_unique<MvccSystem>("MVCC-A",
                                          MvccSystem::ViewMode::kAware);
    case SystemKind::kMvccUA:
      return std::make_unique<MvccSystem>("MVCC-UA",
                                          MvccSystem::ViewMode::kUnaware);
    case SystemKind::kBaseline:
      return std::make_unique<MvccSystem>("Baseline",
                                          MvccSystem::ViewMode::kNone);
  }
  return nullptr;
}

std::vector<SystemKind> AllSystemKinds() {
  return {SystemKind::kVoltDb, SystemKind::kSynergy, SystemKind::kMvccA,
          SystemKind::kMvccUA, SystemKind::kBaseline};
}

std::vector<SystemKind> HBaseBackedKinds() {
  return {SystemKind::kSynergy, SystemKind::kMvccA, SystemKind::kMvccUA,
          SystemKind::kBaseline};
}

}  // namespace synergy::systems
