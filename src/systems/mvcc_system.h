// The three Phoenix+Tephra-style systems: Baseline (no views), MVCC-A
// (Synergy's views) and MVCC-UA (tuning-advisor views) — all using MVCC
// concurrency control instead of Synergy's hierarchical locking.
#pragma once

#include <memory>
#include <optional>

#include "exec/executor.h"
#include "exec/write_binding.h"
#include "synergy/synergy_system.h"
#include "synergy/unaware_selector.h"
#include "systems/evaluated_system.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"
#include "txn/mvcc.h"

namespace synergy::systems {

class MvccSystem : public EvaluatedSystem {
 public:
  enum class ViewMode { kNone, kAware, kUnaware };

  MvccSystem(std::string name, ViewMode mode)
      : name_(std::move(name)), mode_(mode) {}

  const std::string& name() const override { return name_; }
  Status Setup(const tpcw::ScaleConfig& scale) override;
  StatusOr<StatementResult> Execute(
      const std::string& stmt_id, const std::vector<Value>& params) override;
  double DbSizeBytes() const override;
  std::string Description() const override;
  std::vector<std::string> ViewNames() const override;
  std::string MetricsJson() const override {
    return cluster_ != nullptr ? cluster_->metrics().Snapshot().ToJson() : "";
  }

  /// Installed on every statement session (fresh or persistent), so the
  /// MVCC systems see the same RPC retry / budget / breaker machinery as
  /// Synergy in overload benches.
  void SetRetryPolicy(const hbase::RetryPolicy& policy) override {
    retry_policy_ = policy;
  }

  /// Open-loop clients hold a persistent Session (see SynergyWrapper):
  /// retry-budget tokens and breaker state must survive across statements.
  std::unique_ptr<Client> MakeClient() override;
  StatementOutcome ExecuteOpen(Client* client, const std::string& stmt_id,
                               const std::vector<Value>& params) override;

  const sql::Workload& workload() const { return workload_; }
  const sql::Catalog& catalog() const { return catalog_; }
  hbase::Cluster* cluster() { return cluster_.get(); }

 private:
  Status ExecuteWriteBody(hbase::Session& s, const exec::BoundWrite& write);
  /// Statement body shared by Execute and ExecuteOpen: one Tephra-style
  /// transaction (start, read-or-write, commit/abort) charged to `s`.
  Status RunStatement(hbase::Session& s, const std::string& stmt_id,
                      const std::vector<Value>& params, size_t* rows);

  std::string name_;
  ViewMode mode_;
  std::optional<hbase::RetryPolicy> retry_policy_;
  sql::Catalog catalog_;
  sql::Workload workload_;
  std::unique_ptr<hbase::Cluster> cluster_;
  std::unique_ptr<exec::TableAdapter> adapter_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<core::ViewMaintainer> maintainer_;
  std::unique_ptr<txn::MvccManager> mvcc_;
};

}  // namespace synergy::systems
