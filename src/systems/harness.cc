#include "systems/harness.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace synergy::systems {

Measurement MeasureStatement(EvaluatedSystem& system,
                             tpcw::ParamProvider& params,
                             const std::string& stmt_id, int reps) {
  Measurement m;
  for (int i = 0; i < reps; ++i) {
    StatusOr<std::vector<Value>> p = params.ParamsFor(stmt_id);
    if (!p.ok()) {
      m.error = p.status();
      return m;
    }
    StatusOr<StatementResult> r = system.Execute(stmt_id, *p);
    if (!r.ok()) {
      m.error = r.status();
      return m;
    }
    if (!r->supported) {
      m.supported = false;
      return m;
    }
    m.rt_ms.Add(r->virtual_ms);
    m.rows = r->rows;
  }
  return m;
}

concurrent::WorkloadReport MeasureConcurrent(EvaluatedSystem& system,
                                             const tpcw::ScaleConfig& scale,
                                             const concurrent::MixConfig& mix,
                                             int threads,
                                             size_t ops_per_thread,
                                             uint64_t base_seed) {
  concurrent::DriverConfig driver;
  driver.threads = threads;
  driver.ops_per_thread = ops_per_thread;
  driver.base_seed = base_seed;
  return concurrent::RunTpcwMix(
      driver, scale, mix,
      [&system](int, const std::string& stmt_id,
                const std::vector<Value>& params)
          -> StatusOr<concurrent::OpOutcome> {
        SYNERGY_ASSIGN_OR_RETURN(r, system.Execute(stmt_id, params));
        if (!r.supported) {
          return Status::Unimplemented("statement " + stmt_id +
                                       " unsupported by " + system.name());
        }
        // Cost is reported in virtual µs, alongside robustness counters.
        return concurrent::OpOutcome(r.virtual_ms * 1000.0, r.retries,
                                     r.degraded, r.scan_errors_dropped,
                                     r.rpcs);
      });
}

concurrent::WorkloadReport MeasureOpenLoop(EvaluatedSystem& system,
                                           const tpcw::ScaleConfig& scale,
                                           const concurrent::MixConfig& mix,
                                           const concurrent::OpenLoopConfig&
                                               config) {
  return concurrent::RunTpcwMixOpenLoop(
      config, scale, mix,
      [&system](int) -> concurrent::OpenStatementExecFn {
        // One persistent client per worker thread, created on that thread.
        auto client = std::shared_ptr<EvaluatedSystem::Client>(
            system.MakeClient());
        return [&system, client](const std::string& stmt_id,
                                 const std::vector<Value>& params)
            -> concurrent::OpResult {
          StatementOutcome out =
              system.ExecuteOpen(client.get(), stmt_id, params);
          const StatementResult& r = out.result;
          concurrent::OpOutcome outcome(r.virtual_ms * 1000.0, r.retries,
                                        r.degraded, r.scan_errors_dropped,
                                        r.rpcs);
          if (out.status.ok() && !r.supported) {
            return concurrent::OpResult(
                Status::Unimplemented("statement " + stmt_id +
                                      " unsupported by " + system.name()),
                outcome);
          }
          return concurrent::OpResult(out.status, outcome);
        };
      });
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 100000.0) {
    std::snprintf(buf, sizeof(buf), "%.3g", ms);
  } else if (ms >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  }
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), col_width_(col_width) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", i == 0 ? 14 : col_width_, cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 14 + col_width_ * (headers_.size() - 1);
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

int64_t EnvCustomers(int64_t default_value) {
  const char* env = std::getenv("SYNERGY_TPCW_CUSTOMERS");
  if (env == nullptr) return default_value;
  const int64_t v = std::atoll(env);
  return v > 0 ? v : default_value;
}

int EnvReps(int default_value) {
  const char* env = std::getenv("SYNERGY_BENCH_REPS");
  if (env == nullptr) return default_value;
  const int v = std::atoi(env);
  return v > 0 ? v : default_value;
}

int EnvThreads(int default_value) {
  const char* env = std::getenv("SYNERGY_BENCH_THREADS");
  if (env == nullptr) return default_value;
  const int v = std::atoi(env);
  return v > 0 ? v : default_value;
}

}  // namespace synergy::systems
