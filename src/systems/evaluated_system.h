// The five systems of the paper's evaluation (§IX-D2, Fig. 13) behind one
// interface: VoltDB, Synergy, MVCC-A, MVCC-UA and Baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "hbase/retry_policy.h"
#include "tpcw/generator.h"

namespace synergy::systems {

struct StatementResult {
  double virtual_ms = 0;
  size_t rows = 0;
  bool supported = true;  // false: join not expressible (VoltDB)
  size_t retries = 0;     // RPC/txn retries the statement consumed
  size_t degraded = 0;    // reads served from a degraded (failed-over) region
  size_t scan_errors_dropped = 0;  // scanners dropped with unchecked errors
  size_t rpcs = 0;  // store RPCs the statement issued (incl. retries)
};

/// One statement execution with the cost-even-on-error semantics open-loop
/// accounting needs: `result` (virtual time spent, robustness counters) is
/// valid whether or not `status` is OK, because a failed statement still
/// occupied the client while it failed.
struct StatementOutcome {
  Status status;
  StatementResult result;
};

class EvaluatedSystem {
 public:
  virtual ~EvaluatedSystem() = default;

  virtual const std::string& name() const = 0;

  /// Builds schema (+ views where applicable), creates storage, populates
  /// the TPC-W database and major-compacts.
  virtual Status Setup(const tpcw::ScaleConfig& scale) = 0;

  /// Executes one workload statement by id with bound parameters and
  /// returns its simulated response time.
  virtual StatusOr<StatementResult> Execute(
      const std::string& stmt_id, const std::vector<Value>& params) = 0;

  /// Total storage footprint (Table III).
  virtual double DbSizeBytes() const = 0;

  /// One-line description of the views + concurrency mechanisms (Fig. 13).
  virtual std::string Description() const = 0;

  /// Names of materialized views the system created (diagnostics).
  virtual std::vector<std::string> ViewNames() const { return {}; }

  /// JSON snapshot of the system's metrics registry (obs::MetricsRegistry),
  /// embedded into committed bench-result rows. Empty for systems without a
  /// live cluster (VoltDB's analytical model).
  virtual std::string MetricsJson() const { return ""; }

  /// Arms client-side RPC retries for subsequent Execute calls. Default is
  /// a no-op: systems without a retrying client path just run un-retried,
  /// which is also the correct behaviour for deterministic fault tests.
  virtual void SetRetryPolicy(const hbase::RetryPolicy&) {}

  /// Opaque persistent per-client state for open-loop runs: a live session
  /// whose retry budget and circuit breaker survive across statements (a
  /// breaker that resets every statement could never trip).
  class Client {
   public:
    virtual ~Client() = default;
  };

  /// Creates a persistent client, or nullptr when the system has none
  /// (ExecuteOpen then falls back to per-statement Execute).
  virtual std::unique_ptr<Client> MakeClient() { return nullptr; }

  /// Executes one statement for an open-loop client. Unlike Execute, the
  /// returned outcome carries the virtual cost even when the statement
  /// failed. The default adapts Execute (with zero cost on error — systems
  /// without a persistent client cannot recover the partial cost).
  virtual StatementOutcome ExecuteOpen(Client* client,
                                       const std::string& stmt_id,
                                       const std::vector<Value>& params);
};

enum class SystemKind { kVoltDb, kSynergy, kMvccA, kMvccUA, kBaseline };

const char* SystemKindName(SystemKind kind);
std::unique_ptr<EvaluatedSystem> MakeSystem(SystemKind kind);

/// All five, in the paper's figure order.
std::vector<SystemKind> AllSystemKinds();
/// The four HBase-backed systems (VoltDB excluded, as in Table II).
std::vector<SystemKind> HBaseBackedKinds();

}  // namespace synergy::systems
