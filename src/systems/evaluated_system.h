// The five systems of the paper's evaluation (§IX-D2, Fig. 13) behind one
// interface: VoltDB, Synergy, MVCC-A, MVCC-UA and Baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "hbase/retry_policy.h"
#include "tpcw/generator.h"

namespace synergy::systems {

struct StatementResult {
  double virtual_ms = 0;
  size_t rows = 0;
  bool supported = true;  // false: join not expressible (VoltDB)
  size_t retries = 0;     // RPC/txn retries the statement consumed
  size_t degraded = 0;    // reads served from a degraded (failed-over) region
};

class EvaluatedSystem {
 public:
  virtual ~EvaluatedSystem() = default;

  virtual const std::string& name() const = 0;

  /// Builds schema (+ views where applicable), creates storage, populates
  /// the TPC-W database and major-compacts.
  virtual Status Setup(const tpcw::ScaleConfig& scale) = 0;

  /// Executes one workload statement by id with bound parameters and
  /// returns its simulated response time.
  virtual StatusOr<StatementResult> Execute(
      const std::string& stmt_id, const std::vector<Value>& params) = 0;

  /// Total storage footprint (Table III).
  virtual double DbSizeBytes() const = 0;

  /// One-line description of the views + concurrency mechanisms (Fig. 13).
  virtual std::string Description() const = 0;

  /// Names of materialized views the system created (diagnostics).
  virtual std::vector<std::string> ViewNames() const { return {}; }

  /// Arms client-side RPC retries for subsequent Execute calls. Default is
  /// a no-op: systems without a retrying client path just run un-retried,
  /// which is also the correct behaviour for deterministic fault tests.
  virtual void SetRetryPolicy(const hbase::RetryPolicy&) {}
};

enum class SystemKind { kVoltDb, kSynergy, kMvccA, kMvccUA, kBaseline };

const char* SystemKindName(SystemKind kind);
std::unique_ptr<EvaluatedSystem> MakeSystem(SystemKind kind);

/// All five, in the paper's figure order.
std::vector<SystemKind> AllSystemKinds();
/// The four HBase-backed systems (VoltDB excluded, as in Table II).
std::vector<SystemKind> HBaseBackedKinds();

}  // namespace synergy::systems
