// EvaluatedSystem adapter around the core Synergy system.
#pragma once

#include <memory>
#include <optional>

#include "synergy/synergy_system.h"
#include "systems/evaluated_system.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::systems {

class SynergyWrapper : public EvaluatedSystem {
 public:
  /// `roots` defaults to the paper's Q_TPC-W; ablation benches pass
  /// alternative root sets to probe the sensitivity of root selection.
  /// `txn_slaves` sizes the transaction layer's worker pool (the concurrent
  /// bench raises it so writes from different clients overlap).
  explicit SynergyWrapper(std::vector<std::string> roots = tpcw::Roots(),
                          std::string name = "Synergy", int txn_slaves = 1)
      : name_(std::move(name)), roots_(std::move(roots)),
        txn_slaves_(txn_slaves) {}

  const std::string& name() const override { return name_; }
  Status Setup(const tpcw::ScaleConfig& scale) override;
  StatusOr<StatementResult> Execute(
      const std::string& stmt_id, const std::vector<Value>& params) override;
  double DbSizeBytes() const override;
  std::string Description() const override {
    return "schema-based workload-driven views; hierarchical locking";
  }
  std::vector<std::string> ViewNames() const override;
  std::string MetricsJson() const override {
    return cluster_ != nullptr ? cluster_->metrics().Snapshot().ToJson() : "";
  }

  /// Every Execute builds a fresh Session; an armed policy is installed on
  /// each of them, so RPC and root-txn retries engage for all statements.
  void SetRetryPolicy(const hbase::RetryPolicy& policy) override {
    retry_policy_ = policy;
  }

  /// Open-loop clients hold a persistent Session, so the policy's retry
  /// budget and circuit breaker accumulate state across statements.
  std::unique_ptr<Client> MakeClient() override;
  StatementOutcome ExecuteOpen(Client* client, const std::string& stmt_id,
                               const std::vector<Value>& params) override;

  core::SynergySystem* system() { return system_.get(); }
  hbase::Cluster* cluster() { return cluster_.get(); }

 private:
  /// Statement body shared by Execute (fresh session) and ExecuteOpen
  /// (persistent session): costs/counters accrue on `s` either way.
  Status RunStatement(hbase::Session& s, const std::string& stmt_id,
                      const std::vector<Value>& params, size_t* rows);

  std::string name_;
  std::vector<std::string> roots_;
  int txn_slaves_ = 1;
  std::optional<hbase::RetryPolicy> retry_policy_;
  std::unique_ptr<hbase::Cluster> cluster_;
  std::unique_ptr<core::SynergySystem> system_;
};

}  // namespace synergy::systems
