#include "systems/mvcc_system.h"

#include <map>

#include "synergy/query_rewrite.h"
#include "synergy/view_index.h"

namespace synergy::systems {
namespace {

/// Planned cardinalities for the unaware selector's estimates (selection
/// happens before population, as a tuning advisor would use statistics).
std::map<std::string, size_t> PlannedRowCounts(const tpcw::ScaleConfig& s) {
  return {{"Customer", static_cast<size_t>(s.num_customers)},
          {"Item", static_cast<size_t>(s.num_items())},
          {"Author", static_cast<size_t>(s.num_authors())},
          {"Address", static_cast<size_t>(s.num_addresses())},
          {"Country", static_cast<size_t>(s.num_countries())},
          {"Orders", static_cast<size_t>(s.num_orders())},
          {"Order_line", static_cast<size_t>(s.num_orders() * 3)},
          {"CC_Xacts", static_cast<size_t>(s.num_orders())},
          {"Shopping_cart", static_cast<size_t>(s.num_carts())},
          {"Shopping_cart_line", static_cast<size_t>(s.num_carts() * 2)},
          {"Orders_tmp", static_cast<size_t>(s.num_orders_tmp())}};
}

}  // namespace

Status MvccSystem::Setup(const tpcw::ScaleConfig& scale) {
  const sql::Catalog base = tpcw::BuildCatalog();
  const sql::Workload base_workload = tpcw::BuildWorkload();

  switch (mode_) {
    case ViewMode::kNone: {
      for (const sql::RelationDef* rel : base.Relations()) {
        SYNERGY_RETURN_IF_ERROR(catalog_.AddRelation(*rel));
        for (const sql::IndexDef* ix : base.IndexesFor(rel->name)) {
          SYNERGY_RETURN_IF_ERROR(catalog_.AddIndex(*ix));
        }
      }
      workload_ = base_workload;
      break;
    }
    case ViewMode::kAware: {
      // Exactly the Synergy design (views, rewrites, view-indexes) but run
      // under MVCC (§IX-D2 "MVCC-A").
      SYNERGY_ASSIGN_OR_RETURN(
          design,
          core::DesignSynergySchema(base, base_workload, tpcw::Roots()));
      catalog_ = std::move(design.catalog);
      workload_ = std::move(design.workload);
      break;
    }
    case ViewMode::kUnaware: {
      for (const sql::RelationDef* rel : base.Relations()) {
        SYNERGY_RETURN_IF_ERROR(catalog_.AddRelation(*rel));
        for (const sql::IndexDef* ix : base.IndexesFor(rel->name)) {
          SYNERGY_RETURN_IF_ERROR(catalog_.AddIndex(*ix));
        }
      }
      workload_ = base_workload;
      const auto counts = PlannedRowCounts(scale);
      auto rows = [&counts](const std::string& rel) -> size_t {
        auto it = counts.find(rel);
        return it == counts.end() ? 0 : it->second;
      };
      const std::vector<core::SelectedView> views =
          core::SelectViewsUnaware(workload_, catalog_, rows);
      for (const core::SelectedView& view : views) {
        SYNERGY_ASSIGN_OR_RETURN(defs,
                                 core::MaterializeViewDef(view, catalog_));
        SYNERGY_RETURN_IF_ERROR(catalog_.AddView(defs.first, defs.second));
      }
      // Rewrite queries whose FROM covers a selected view.
      for (sql::WorkloadStatement& stmt : workload_.statements) {
        auto* sel = std::get_if<sql::SelectStatement>(&stmt.ast);
        if (sel == nullptr) continue;
        SYNERGY_ASSIGN_OR_RETURN(rw,
                                 core::RewriteQuery(*sel, catalog_, views));
        if (rw.changed) {
          stmt.ast = sql::Statement(std::move(rw.stmt));
          stmt.sql = sql::StatementToString(stmt.ast);
        }
      }
      for (sql::IndexDef& ix :
           core::RecommendViewIndexes(workload_, catalog_)) {
        SYNERGY_RETURN_IF_ERROR(catalog_.AddIndex(std::move(ix)));
      }
      for (sql::IndexDef& ix :
           core::RecommendMaintenanceIndexes(workload_, catalog_)) {
        SYNERGY_RETURN_IF_ERROR(catalog_.AddIndex(std::move(ix)));
      }
      break;
    }
  }

  cluster_ = std::make_unique<hbase::Cluster>();
  adapter_ = std::make_unique<exec::TableAdapter>(cluster_.get(), &catalog_);
  executor_ = std::make_unique<exec::Executor>(adapter_.get());
  maintainer_ = std::make_unique<core::ViewMaintainer>(adapter_.get());
  mvcc_ = std::make_unique<txn::MvccManager>(cluster_.get());
  for (const sql::RelationDef* rel : catalog_.Relations()) {
    SYNERGY_RETURN_IF_ERROR(adapter_->CreateStorage(rel->name));
  }
  if (scale.load_threads > 1) {
    std::vector<std::unique_ptr<hbase::Session>> sessions;
    for (int i = 0; i < scale.load_threads; ++i) {
      sessions.push_back(std::make_unique<hbase::Session>(cluster_.get()));
    }
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabaseParallel(
        scale, [&](int tid, const std::string& relation,
                   const exec::Tuple& tuple) {
          hbase::Session& s = *sessions[static_cast<size_t>(tid)];
          SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, relation, tuple));
          return maintainer_->ApplyInsert(s, relation, tuple);
        }));
  } else {
    hbase::Session load(cluster_.get());
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabase(
        scale, [&](const std::string& relation, const exec::Tuple& tuple) {
          SYNERGY_RETURN_IF_ERROR(adapter_->Insert(load, relation, tuple));
          return maintainer_->ApplyInsert(load, relation, tuple);
        }));
  }
  cluster_->MajorCompactAll();
  return Status::Ok();
}

Status MvccSystem::ExecuteWriteBody(hbase::Session& s,
                                    const exec::BoundWrite& write) {
  switch (write.kind) {
    case exec::BoundWrite::Kind::kInsert:
      SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, write.relation, write.tuple));
      return maintainer_->ApplyInsert(s, write.relation, write.tuple);
    case exec::BoundWrite::Kind::kDelete:
      SYNERGY_RETURN_IF_ERROR(
          maintainer_->ApplyDelete(s, write.relation, write.pk_values));
      return adapter_->DeleteByPk(s, write.relation, write.pk_values);
    case exec::BoundWrite::Kind::kUpdate: {
      // No mark/unmark protocol: MVCC snapshots provide the isolation.
      SYNERGY_ASSIGN_OR_RETURN(
          affected,
          maintainer_->FindAffected(s, write.relation, write.pk_values));
      SYNERGY_RETURN_IF_ERROR(adapter_->UpdateByPk(s, write.relation,
                                                   write.pk_values,
                                                   write.sets));
      for (const core::ViewMaintainer::AffectedRows& rows : affected) {
        for (const std::vector<Value>& vpk : rows.view_pks) {
          SYNERGY_RETURN_IF_ERROR(
              maintainer_->UpdateViewRow(s, rows.view, vpk, write.sets));
        }
      }
      return Status::Ok();
    }
  }
  return Status::Internal("bad write kind");
}

Status MvccSystem::RunStatement(hbase::Session& s, const std::string& stmt_id,
                                const std::vector<Value>& params,
                                size_t* rows) {
  const sql::WorkloadStatement* stmt = workload_.Find(stmt_id);
  if (stmt == nullptr) return Status::NotFound("statement " + stmt_id);
  // Every statement runs as a Tephra-style transaction: start + commit
  // round trips plus per-row snapshot filtering on reads. Write versions
  // are tagged by the store's logical clock; the transaction's write set
  // drives conflict detection (single-client benches never conflict).
  SYNERGY_ASSIGN_OR_RETURN(txn, mvcc_->Start(s));
  if (const auto* sel = std::get_if<sql::SelectStatement>(&stmt->ast)) {
    hbase::ReadView view;
    view.read_ts = INT64_MAX;  // reads observe the loaded, committed state
    view.exclude = &txn.exclude;
    s.SetReadView(view);
    exec::ExecOptions options;
    options.collect_rows = false;
    auto query = executor_->ExecuteSelect(s, *sel, params, options);
    s.ClearReadView();
    if (!query.ok()) {
      (void)mvcc_->Abort(s, txn);
      return query.status();
    }
    *rows = query->row_count;
  } else {
    const sql::Statement bound = sql::BindParams(stmt->ast, params);
    SYNERGY_ASSIGN_OR_RETURN(write,
                             exec::BindWriteStatement(bound, catalog_));
    txn.write_set.push_back(write.WriteKey(catalog_));
    Status body = ExecuteWriteBody(s, write);
    if (!body.ok()) {
      (void)mvcc_->Abort(s, txn);
      return body;
    }
    *rows = 1;
  }
  return mvcc_->Commit(s, txn);
}

StatusOr<StatementResult> MvccSystem::Execute(
    const std::string& stmt_id, const std::vector<Value>& params) {
  hbase::Session s(cluster_.get());
  if (retry_policy_.has_value()) s.SetRetryPolicy(*retry_policy_);
  StatementResult result;
  SYNERGY_RETURN_IF_ERROR(RunStatement(s, stmt_id, params, &result.rows));
  result.virtual_ms = s.meter().millis();
  result.retries = s.retries();
  result.degraded = s.degraded_reads();
  result.scan_errors_dropped = s.scan_errors_dropped();
  result.rpcs = s.rpc_count();
  return result;
}

namespace {

/// Persistent open-loop client (mirrors SynergyClient): one Session whose
/// counters only grow; per-statement figures are snapshot deltas.
struct MvccClient : public EvaluatedSystem::Client {
  explicit MvccClient(hbase::Cluster* cluster) : session(cluster) {}
  hbase::Session session;
  double last_ms = 0.0;
  uint64_t last_retries = 0;
  uint64_t last_degraded = 0;
  uint64_t last_scan_drops = 0;
  uint64_t last_rpcs = 0;
};

}  // namespace

std::unique_ptr<EvaluatedSystem::Client> MvccSystem::MakeClient() {
  auto client = std::make_unique<MvccClient>(cluster_.get());
  if (retry_policy_.has_value()) {
    client->session.SetRetryPolicy(*retry_policy_);
  }
  return client;
}

StatementOutcome MvccSystem::ExecuteOpen(Client* client,
                                         const std::string& stmt_id,
                                         const std::vector<Value>& params) {
  if (client == nullptr) {
    return EvaluatedSystem::ExecuteOpen(client, stmt_id, params);
  }
  auto* c = static_cast<MvccClient*>(client);
  hbase::Session& s = c->session;
  StatementOutcome out;
  out.status = RunStatement(s, stmt_id, params, &out.result.rows);
  const double ms = s.meter().millis();
  out.result.virtual_ms = ms - c->last_ms;
  c->last_ms = ms;
  out.result.retries = s.retries() - c->last_retries;
  c->last_retries = s.retries();
  out.result.degraded = s.degraded_reads() - c->last_degraded;
  c->last_degraded = s.degraded_reads();
  out.result.scan_errors_dropped = s.scan_errors_dropped() - c->last_scan_drops;
  c->last_scan_drops = s.scan_errors_dropped();
  out.result.rpcs = s.rpc_count() - c->last_rpcs;
  c->last_rpcs = s.rpc_count();
  return out;
}

double MvccSystem::DbSizeBytes() const {
  return static_cast<double>(cluster_->TotalBytes());
}

std::string MvccSystem::Description() const {
  switch (mode_) {
    case ViewMode::kNone:
      return "no materialized views; MVCC (Phoenix+Tephra)";
    case ViewMode::kAware:
      return "schema-relationships-aware views (Synergy's); MVCC";
    case ViewMode::kUnaware:
      return "schema-relationships-unaware views (tuning advisor); MVCC";
  }
  return "?";
}

std::vector<std::string> MvccSystem::ViewNames() const {
  std::vector<std::string> names;
  for (const sql::ViewDef* v : catalog_.Views()) names.push_back(v->name);
  return names;
}

}  // namespace synergy::systems
