// Benchmark harness helpers: repetition/measurement (mean + standard error
// over N runs, as the paper reports) and fixed-width table printing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "concurrent/tpcw_mix.h"
#include "systems/evaluated_system.h"
#include "tpcw/generator.h"

namespace synergy::systems {

struct Measurement {
  RunningStats rt_ms;
  size_t rows = 0;
  bool supported = true;
  Status error;  // first error, if any
};

/// Runs `stmt_id` `reps` times with freshly drawn parameters and collects
/// response-time statistics.
Measurement MeasureStatement(EvaluatedSystem& system,
                             tpcw::ParamProvider& params,
                             const std::string& stmt_id, int reps);

/// Runs `mix` with `threads` concurrent closed-loop clients against the
/// system (each thread gets its own deterministically seeded ParamProvider
/// and a fresh Session per statement). Statements a system cannot execute
/// surface as per-op errors in the report rather than aborting the run.
concurrent::WorkloadReport MeasureConcurrent(EvaluatedSystem& system,
                                             const tpcw::ScaleConfig& scale,
                                             const concurrent::MixConfig& mix,
                                             int threads,
                                             size_t ops_per_thread,
                                             uint64_t base_seed = 7);

/// Runs `mix` through the open-loop (offered-rate) driver. Each worker
/// thread gets one persistent client from system.MakeClient(), so retry
/// budgets and circuit breakers accumulate state across statements; systems
/// without persistent clients fall back to per-statement Execute.
concurrent::WorkloadReport MeasureOpenLoop(EvaluatedSystem& system,
                                           const tpcw::ScaleConfig& scale,
                                           const concurrent::MixConfig& mix,
                                           const concurrent::OpenLoopConfig&
                                               config);

/// "123.4" / "1.2e+04"-style compact ms formatting for table cells.
std::string FormatMs(double ms);

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 12);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int col_width_;
};

/// Environment knobs shared by every bench binary.
int64_t EnvCustomers(int64_t default_value);   // SYNERGY_TPCW_CUSTOMERS
int EnvReps(int default_value);                // SYNERGY_BENCH_REPS
int EnvThreads(int default_value);             // SYNERGY_BENCH_THREADS

}  // namespace synergy::systems
