// EvaluatedSystem adapter around the VoltDB-like engine.
#pragma once

#include <memory>

#include "newsql/voltdb_sim.h"
#include "systems/evaluated_system.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::systems {

class VoltDbSystem : public EvaluatedSystem {
 public:
  VoltDbSystem() : name_("VoltDB") {}

  const std::string& name() const override { return name_; }
  Status Setup(const tpcw::ScaleConfig& scale) override;
  StatusOr<StatementResult> Execute(
      const std::string& stmt_id, const std::vector<Value>& params) override;
  double DbSizeBytes() const override;
  std::string Description() const override {
    return "no views; single-threaded partition processing (3 schemes)";
  }

 private:
  std::string name_;
  std::unique_ptr<newsql::VoltDb> db_;
  sql::Workload workload_;
};

}  // namespace synergy::systems
