#include "systems/synergy_wrapper.h"

namespace synergy::systems {

Status SynergyWrapper::Setup(const tpcw::ScaleConfig& scale) {
  cluster_ = std::make_unique<hbase::Cluster>();
  system_ = std::make_unique<core::SynergySystem>(
      cluster_.get(),
      core::SynergyConfig{.roots = roots_, .txn_slaves = txn_slaves_});
  SYNERGY_RETURN_IF_ERROR(
      system_->Build(tpcw::BuildCatalog(), tpcw::BuildWorkload()));
  SYNERGY_RETURN_IF_ERROR(system_->CreateStorage());
  if (scale.load_threads > 1) {
    std::vector<std::unique_ptr<hbase::Session>> sessions;
    for (int i = 0; i < scale.load_threads; ++i) {
      sessions.push_back(std::make_unique<hbase::Session>(cluster_.get()));
    }
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabaseParallel(
        scale, [&](int tid, const std::string& relation,
                   const exec::Tuple& tuple) {
          return system_->Load(*sessions[static_cast<size_t>(tid)], relation,
                               tuple);
        }));
  } else {
    hbase::Session load(cluster_.get());
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabase(
        scale, [&](const std::string& relation, const exec::Tuple& tuple) {
          return system_->Load(load, relation, tuple);
        }));
  }
  cluster_->MajorCompactAll();
  return Status::Ok();
}

StatusOr<StatementResult> SynergyWrapper::Execute(
    const std::string& stmt_id, const std::vector<Value>& params) {
  const sql::WorkloadStatement* stmt = system_->workload().Find(stmt_id);
  if (stmt == nullptr) return Status::NotFound("statement " + stmt_id);
  hbase::Session s(cluster_.get());
  if (retry_policy_.has_value()) s.SetRetryPolicy(*retry_policy_);
  StatementResult result;
  if (const auto* sel = std::get_if<sql::SelectStatement>(&stmt->ast)) {
    SYNERGY_ASSIGN_OR_RETURN(
        query, system_->ExecuteRead(s, *sel, params, /*collect_rows=*/false));
    result.rows = query.row_count;
  } else {
    SYNERGY_ASSIGN_OR_RETURN(write,
                             system_->ExecuteWrite(s, stmt->ast, params));
    result.rows = write.base_rows_affected;
  }
  result.virtual_ms = s.meter().millis();
  result.retries = s.retries();
  result.degraded = s.degraded_reads();
  return result;
}

double SynergyWrapper::DbSizeBytes() const {
  return static_cast<double>(cluster_->TotalBytes());
}

std::vector<std::string> SynergyWrapper::ViewNames() const {
  std::vector<std::string> names;
  for (const sql::ViewDef* v : system_->catalog().Views()) {
    names.push_back(v->name);
  }
  return names;
}

}  // namespace synergy::systems
