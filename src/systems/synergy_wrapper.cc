#include "systems/synergy_wrapper.h"

namespace synergy::systems {

Status SynergyWrapper::Setup(const tpcw::ScaleConfig& scale) {
  cluster_ = std::make_unique<hbase::Cluster>();
  system_ = std::make_unique<core::SynergySystem>(
      cluster_.get(),
      core::SynergyConfig{.roots = roots_, .txn_slaves = txn_slaves_});
  SYNERGY_RETURN_IF_ERROR(
      system_->Build(tpcw::BuildCatalog(), tpcw::BuildWorkload()));
  SYNERGY_RETURN_IF_ERROR(system_->CreateStorage());
  if (scale.load_threads > 1) {
    std::vector<std::unique_ptr<hbase::Session>> sessions;
    for (int i = 0; i < scale.load_threads; ++i) {
      sessions.push_back(std::make_unique<hbase::Session>(cluster_.get()));
    }
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabaseParallel(
        scale, [&](int tid, const std::string& relation,
                   const exec::Tuple& tuple) {
          return system_->Load(*sessions[static_cast<size_t>(tid)], relation,
                               tuple);
        }));
  } else {
    hbase::Session load(cluster_.get());
    SYNERGY_RETURN_IF_ERROR(tpcw::GenerateDatabase(
        scale, [&](const std::string& relation, const exec::Tuple& tuple) {
          return system_->Load(load, relation, tuple);
        }));
  }
  cluster_->MajorCompactAll();
  return Status::Ok();
}

Status SynergyWrapper::RunStatement(hbase::Session& s,
                                    const std::string& stmt_id,
                                    const std::vector<Value>& params,
                                    size_t* rows) {
  const sql::WorkloadStatement* stmt = system_->workload().Find(stmt_id);
  if (stmt == nullptr) return Status::NotFound("statement " + stmt_id);
  if (const auto* sel = std::get_if<sql::SelectStatement>(&stmt->ast)) {
    SYNERGY_ASSIGN_OR_RETURN(
        query, system_->ExecuteRead(s, *sel, params, /*collect_rows=*/false));
    *rows = query.row_count;
  } else {
    SYNERGY_ASSIGN_OR_RETURN(write,
                             system_->ExecuteWrite(s, stmt->ast, params));
    *rows = write.base_rows_affected;
  }
  return Status::Ok();
}

StatusOr<StatementResult> SynergyWrapper::Execute(
    const std::string& stmt_id, const std::vector<Value>& params) {
  hbase::Session s(cluster_.get());
  if (retry_policy_.has_value()) s.SetRetryPolicy(*retry_policy_);
  StatementResult result;
  SYNERGY_RETURN_IF_ERROR(RunStatement(s, stmt_id, params, &result.rows));
  result.virtual_ms = s.meter().millis();
  result.retries = s.retries();
  result.degraded = s.degraded_reads();
  result.scan_errors_dropped = s.scan_errors_dropped();
  result.rpcs = s.rpc_count();
  return result;
}

namespace {

/// Persistent open-loop client: one Session for the client's lifetime, so
/// retry-budget tokens and breaker state carry across statements. The
/// session's counters and meter only ever grow; per-statement figures are
/// deltas against the previous statement's snapshot.
struct SynergyClient : public EvaluatedSystem::Client {
  explicit SynergyClient(hbase::Cluster* cluster) : session(cluster) {}
  hbase::Session session;
  double last_ms = 0.0;
  uint64_t last_retries = 0;
  uint64_t last_degraded = 0;
  uint64_t last_scan_drops = 0;
  uint64_t last_rpcs = 0;
};

}  // namespace

std::unique_ptr<EvaluatedSystem::Client> SynergyWrapper::MakeClient() {
  auto client = std::make_unique<SynergyClient>(cluster_.get());
  if (retry_policy_.has_value()) {
    client->session.SetRetryPolicy(*retry_policy_);
  }
  return client;
}

StatementOutcome SynergyWrapper::ExecuteOpen(Client* client,
                                             const std::string& stmt_id,
                                             const std::vector<Value>& params) {
  if (client == nullptr) {
    return EvaluatedSystem::ExecuteOpen(client, stmt_id, params);
  }
  auto* c = static_cast<SynergyClient*>(client);
  hbase::Session& s = c->session;
  StatementOutcome out;
  out.status = RunStatement(s, stmt_id, params, &out.result.rows);
  const double ms = s.meter().millis();
  out.result.virtual_ms = ms - c->last_ms;
  c->last_ms = ms;
  out.result.retries = s.retries() - c->last_retries;
  c->last_retries = s.retries();
  out.result.degraded = s.degraded_reads() - c->last_degraded;
  c->last_degraded = s.degraded_reads();
  out.result.scan_errors_dropped = s.scan_errors_dropped() - c->last_scan_drops;
  c->last_scan_drops = s.scan_errors_dropped();
  out.result.rpcs = s.rpc_count() - c->last_rpcs;
  c->last_rpcs = s.rpc_count();
  return out;
}

double SynergyWrapper::DbSizeBytes() const {
  return static_cast<double>(cluster_->TotalBytes());
}

std::vector<std::string> SynergyWrapper::ViewNames() const {
  std::vector<std::string> names;
  for (const sql::ViewDef* v : system_->catalog().Views()) {
    names.push_back(v->name);
  }
  return names;
}

}  // namespace synergy::systems
