#include "systems/voltdb_system.h"

namespace synergy::systems {

Status VoltDbSystem::Setup(const tpcw::ScaleConfig& scale) {
  db_ = std::make_unique<newsql::VoltDb>();
  SYNERGY_RETURN_IF_ERROR(db_->Init(tpcw::BuildCatalog()));
  workload_ = tpcw::BuildWorkload();
  return tpcw::GenerateDatabase(
      scale, [&](const std::string& relation, const exec::Tuple& tuple) {
        return db_->Load(relation, tuple);
      });
}

StatusOr<StatementResult> VoltDbSystem::Execute(
    const std::string& stmt_id, const std::vector<Value>& params) {
  const sql::WorkloadStatement* stmt = workload_.Find(stmt_id);
  if (stmt == nullptr) return Status::NotFound("statement " + stmt_id);
  StatusOr<newsql::VoltDb::ExecResult> r = db_->Execute(stmt->ast, params);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kUnimplemented) {
      StatementResult unsupported;
      unsupported.supported = false;
      return unsupported;
    }
    return r.status();
  }
  StatementResult result;
  result.virtual_ms = r->virtual_ms;
  result.rows = r->rows;
  return result;
}

double VoltDbSystem::DbSizeBytes() const { return db_->DbSizeBytes(); }

}  // namespace synergy::systems
