// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace synergy {

std::vector<std::string> SplitString(std::string_view s, char sep);
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
std::string_view StripWhitespace(std::string_view s);

}  // namespace synergy
