// Mean / standard-error accumulation for benchmark reporting (the paper
// reports mean and standard error over 10 repetitions), plus a log-bucketed
// latency histogram for tail percentiles (p50/p95/p99) under concurrency.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace synergy {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Log-bucketed histogram for latency percentiles (p50/p95/p99). Buckets are
/// geometric with 32 per octave (~2.2% relative resolution), covering
/// [2^-10, 2^38) in whatever unit the caller records (negative or zero
/// values land in the first bucket, larger ones in the last). Add is a few
/// arithmetic ops + one array increment and never allocates, so per-thread
/// instances can sit on a benchmark's hot path; Merge combines thread-local
/// histograms after the workers join.
class LatencyHistogram {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    ++buckets_[BucketIndex(value)];
  }

  void Merge(const LatencyHistogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  size_t count() const { return count_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Value at percentile `p` in [0, 100]: the representative (geometric
  /// midpoint) of the bucket holding the rank-⌈p/100·n⌉ sample, clamped to
  /// the exact observed min/max so p0/p100 are exact.
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return min_;
    if (p >= 100.0) return max_;
    const double rank = p / 100.0 * static_cast<double>(count_);
    const auto target = static_cast<uint64_t>(std::ceil(rank));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target && buckets_[i] > 0) {
        return std::clamp(BucketValue(i), min_, max_);
      }
    }
    return max_;
  }

 private:
  static constexpr int kBucketsPerOctave = 32;
  static constexpr int kMinExponent = -10;  // smallest bucket ~ 2^-10
  static constexpr size_t kNumBuckets = 48U * kBucketsPerOctave;

  static size_t BucketIndex(double value) {
    if (!(value > 0.0)) return 0;  // also catches NaN
    const double idx =
        (std::log2(value) - kMinExponent) * kBucketsPerOctave;
    if (idx < 0.0) return 0;
    if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
    return static_cast<size_t>(idx);
  }

  /// Geometric midpoint of bucket i's [lo, 2^(1/32)·lo) range.
  static double BucketValue(size_t i) {
    return std::exp2((static_cast<double>(i) + 0.5) / kBucketsPerOctave +
                     kMinExponent);
  }

  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<uint64_t, kNumBuckets> buckets_{};
};

}  // namespace synergy
