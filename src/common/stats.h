// Mean / standard-error accumulation for benchmark reporting (the paper
// reports mean and standard error over 10 repetitions).
#pragma once

#include <cmath>
#include <cstddef>

namespace synergy {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace synergy
