#include "common/codec.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace synergy::codec {
namespace {

constexpr char kTypeNull = 0x00;

inline uint64_t ToBigEndian(uint64_t u) {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap64(u);
  } else {
    return u;
  }
}

inline void EncodeUint64BigEndian(uint64_t u, std::string* out) {
  char buf[8];
  u = ToBigEndian(u);
  std::memcpy(buf, &u, 8);
  out->append(buf, 8);
}

inline uint64_t DecodeUint64BigEndian(std::string_view in) {
  uint64_t u;
  std::memcpy(&u, in.data(), 8);
  return ToBigEndian(u);
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(kTypeNull);
      out->push_back(kTypeNull);
      return;
    case DataType::kInt: {
      out->push_back(0x01);
      const uint64_t biased =
          static_cast<uint64_t>(v.as_int()) ^ (uint64_t{1} << 63);
      EncodeUint64BigEndian(biased, out);
      return;
    }
    case DataType::kDouble: {
      out->push_back(0x02);
      double d = v.as_double();
      if (d == 0.0) d = 0.0;  // canonicalize -0.0: it compares equal to +0.0
      if (std::isnan(d)) {
        // One canonical NaN: Value::Compare treats all NaNs as equal and
        // orders them after every non-NaN, which positive quiet-NaN bits
        // preserve under the sign-flip encoding below.
        d = std::numeric_limits<double>::quiet_NaN();
      }
      uint64_t bits = std::bit_cast<uint64_t>(d);
      // Negative doubles: flip all bits; non-negative: flip sign bit only.
      if (bits & (uint64_t{1} << 63)) {
        bits = ~bits;
      } else {
        bits ^= (uint64_t{1} << 63);
      }
      EncodeUint64BigEndian(bits, out);
      return;
    }
    case DataType::kString: {
      out->push_back(0x03);
      // Bulk-append runs between NULs; the common case (no NUL bytes) is a
      // single memcpy instead of a per-character loop.
      const std::string& s = v.as_string();
      const char* p = s.data();
      size_t left = s.size();
      while (left > 0) {
        const char* nul = static_cast<const char*>(std::memchr(p, '\0', left));
        if (nul == nullptr) {
          out->append(p, left);
          break;
        }
        const size_t run = static_cast<size_t>(nul - p);
        out->append(p, run);
        out->append("\0\xFF", 2);  // escaped NUL
        p = nul + 1;
        left -= run + 1;
      }
      out->append("\0\x01", 2);  // terminator
      return;
    }
  }
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  out.reserve(values.size() * 10);
  for (const Value& v : values) EncodeValue(v, &out);
  return out;
}

void EncodeKeyInto(const std::vector<Value>& values, std::string* out) {
  out->clear();
  for (const Value& v : values) EncodeValue(v, out);
}

StatusOr<Value> DecodeValue(std::string_view* in, DataType type) {
  if (in->empty()) return Status::InvalidArgument("empty key buffer");
  const uint8_t tag = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (tag == 0x00) {
    if (in->empty() || (*in)[0] != kTypeNull) {
      return Status::InvalidArgument("bad NULL marker");
    }
    in->remove_prefix(1);
    return Value();
  }
  switch (type) {
    case DataType::kInt: {
      if (tag != 0x01 || in->size() < 8) {
        return Status::InvalidArgument("bad int encoding");
      }
      const uint64_t biased = DecodeUint64BigEndian(*in);
      in->remove_prefix(8);
      return Value(static_cast<int64_t>(biased ^ (uint64_t{1} << 63)));
    }
    case DataType::kDouble: {
      if (tag != 0x02 || in->size() < 8) {
        return Status::InvalidArgument("bad double encoding");
      }
      uint64_t bits = DecodeUint64BigEndian(*in);
      in->remove_prefix(8);
      if (bits & (uint64_t{1} << 63)) {
        bits ^= (uint64_t{1} << 63);
      } else {
        bits = ~bits;
      }
      return Value(std::bit_cast<double>(bits));
    }
    case DataType::kString: {
      if (tag != 0x03) return Status::InvalidArgument("bad string encoding");
      std::string s;
      // Copy whole runs up to the next NUL; each NUL is either an escaped
      // NUL byte (0x00 0xFF) or the terminator (0x00 0x01).
      while (true) {
        if (in->empty()) return Status::InvalidArgument("unterminated string");
        const void* nul = std::memchr(in->data(), '\0', in->size());
        if (nul == nullptr) {
          return Status::InvalidArgument("unterminated string");
        }
        const size_t run =
            static_cast<size_t>(static_cast<const char*>(nul) - in->data());
        s.append(in->data(), run);
        if (run + 1 >= in->size()) {
          return Status::InvalidArgument("unterminated string");
        }
        const char next = (*in)[run + 1];
        in->remove_prefix(run + 2);
        if (next == 0x01) break;           // terminator
        if (next == '\xFF') {
          s.push_back('\0');               // escaped NUL
          continue;
        }
        return Status::InvalidArgument("bad string escape");
      }
      return Value(std::move(s));
    }
    case DataType::kNull:
      return Status::InvalidArgument("cannot decode as NULL type");
  }
  return Status::Internal("unreachable");
}

StatusOr<std::vector<Value>> DecodeKey(std::string_view key,
                                       const std::vector<DataType>& types) {
  std::vector<Value> out;
  out.reserve(types.size());
  for (const DataType t : types) {
    SYNERGY_ASSIGN_OR_RETURN(v, DecodeValue(&key, t));
    out.push_back(std::move(v));
  }
  if (!key.empty()) {
    return Status::InvalidArgument("trailing bytes after key decode");
  }
  return out;
}

std::string PrefixSuccessor(std::string_view prefix) {
  std::string out(prefix);
  while (!out.empty()) {
    if (static_cast<uint8_t>(out.back()) != 0xFF) {
      out.back() = static_cast<char>(static_cast<uint8_t>(out.back()) + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty == unbounded
}

std::string HexDump(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (const char c : bytes) {
    const uint8_t b = static_cast<uint8_t>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
    out.push_back(' ');
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace synergy::codec
