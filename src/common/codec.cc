#include "common/codec.h"

#include <bit>
#include <cstring>

namespace synergy::codec {
namespace {

constexpr char kTypeNull = 0x00;

void EncodeUint64BigEndian(uint64_t u, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((u >> shift) & 0xFF));
  }
}

uint64_t DecodeUint64BigEndian(std::string_view in) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(in[i]);
  }
  return u;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(kTypeNull);
      out->push_back(kTypeNull);
      return;
    case DataType::kInt: {
      out->push_back(0x01);
      const uint64_t biased =
          static_cast<uint64_t>(v.as_int()) ^ (uint64_t{1} << 63);
      EncodeUint64BigEndian(biased, out);
      return;
    }
    case DataType::kDouble: {
      out->push_back(0x02);
      uint64_t bits = std::bit_cast<uint64_t>(v.as_double());
      // Negative doubles: flip all bits; non-negative: flip sign bit only.
      if (bits & (uint64_t{1} << 63)) {
        bits = ~bits;
      } else {
        bits ^= (uint64_t{1} << 63);
      }
      EncodeUint64BigEndian(bits, out);
      return;
    }
    case DataType::kString: {
      out->push_back(0x03);
      for (const char c : v.as_string()) {
        if (c == '\0') {
          out->push_back('\0');
          out->push_back('\xFF');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\0');
      out->push_back(0x01);
      return;
    }
  }
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  out.reserve(values.size() * 10);
  for (const Value& v : values) EncodeValue(v, &out);
  return out;
}

StatusOr<Value> DecodeValue(std::string_view* in, DataType type) {
  if (in->empty()) return Status::InvalidArgument("empty key buffer");
  const uint8_t tag = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (tag == 0x00) {
    if (in->empty() || (*in)[0] != kTypeNull) {
      return Status::InvalidArgument("bad NULL marker");
    }
    in->remove_prefix(1);
    return Value();
  }
  switch (type) {
    case DataType::kInt: {
      if (tag != 0x01 || in->size() < 8) {
        return Status::InvalidArgument("bad int encoding");
      }
      const uint64_t biased = DecodeUint64BigEndian(*in);
      in->remove_prefix(8);
      return Value(static_cast<int64_t>(biased ^ (uint64_t{1} << 63)));
    }
    case DataType::kDouble: {
      if (tag != 0x02 || in->size() < 8) {
        return Status::InvalidArgument("bad double encoding");
      }
      uint64_t bits = DecodeUint64BigEndian(*in);
      in->remove_prefix(8);
      if (bits & (uint64_t{1} << 63)) {
        bits ^= (uint64_t{1} << 63);
      } else {
        bits = ~bits;
      }
      return Value(std::bit_cast<double>(bits));
    }
    case DataType::kString: {
      if (tag != 0x03) return Status::InvalidArgument("bad string encoding");
      std::string s;
      while (true) {
        if (in->size() < 1) return Status::InvalidArgument("unterminated string");
        const char c = (*in)[0];
        in->remove_prefix(1);
        if (c != '\0') {
          s.push_back(c);
          continue;
        }
        if (in->empty()) return Status::InvalidArgument("unterminated string");
        const char next = (*in)[0];
        in->remove_prefix(1);
        if (next == 0x01) break;           // terminator
        if (next == '\xFF') {
          s.push_back('\0');               // escaped NUL
          continue;
        }
        return Status::InvalidArgument("bad string escape");
      }
      return Value(std::move(s));
    }
    case DataType::kNull:
      return Status::InvalidArgument("cannot decode as NULL type");
  }
  return Status::Internal("unreachable");
}

StatusOr<std::vector<Value>> DecodeKey(std::string_view key,
                                       const std::vector<DataType>& types) {
  std::vector<Value> out;
  out.reserve(types.size());
  for (const DataType t : types) {
    SYNERGY_ASSIGN_OR_RETURN(v, DecodeValue(&key, t));
    out.push_back(std::move(v));
  }
  if (!key.empty()) {
    return Status::InvalidArgument("trailing bytes after key decode");
  }
  return out;
}

std::string PrefixSuccessor(std::string_view prefix) {
  std::string out(prefix);
  while (!out.empty()) {
    if (static_cast<uint8_t>(out.back()) != 0xFF) {
      out.back() = static_cast<char>(static_cast<uint8_t>(out.back()) + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty == unbounded
}

std::string HexDump(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (const char c : bytes) {
    const uint8_t b = static_cast<uint8_t>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
    out.push_back(' ');
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace synergy::codec
