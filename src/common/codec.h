// Order-preserving key codec.
//
// HBase sorts rows by raw byte comparison of the row key, so composite keys
// must be encoded such that byte order equals value order:
//   - int64: big-endian with the sign bit flipped
//   - double: IEEE-754 bits, sign-dependent flip (total order on non-NaN)
//   - string: raw bytes with 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x01
//   - NULL: a single 0x00 0x00 marker (sorts before every value)
// Composite keys are the concatenation of the component encodings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace synergy::codec {

/// Appends the order-preserving encoding of `v` to `out`.
void EncodeValue(const Value& v, std::string* out);

/// Encodes a composite key from `values`; byte order == tuple order.
std::string EncodeKey(const std::vector<Value>& values);

/// Like EncodeKey but reuses `out`'s capacity (cleared first). For hot paths
/// that hold one scratch key buffer per operator.
void EncodeKeyInto(const std::vector<Value>& values, std::string* out);

/// Decodes one value from `in` (advancing it). The caller supplies the
/// expected type, which must match what was encoded.
StatusOr<Value> DecodeValue(std::string_view* in, DataType type);

/// Decodes a composite key given the component types.
StatusOr<std::vector<Value>> DecodeKey(std::string_view key,
                                       const std::vector<DataType>& types);

/// Smallest key strictly greater than every key with prefix `prefix`
/// (i.e. the exclusive upper bound for a prefix scan).
std::string PrefixSuccessor(std::string_view prefix);

/// Hex dump for debugging.
std::string HexDump(std::string_view bytes);

}  // namespace synergy::codec
