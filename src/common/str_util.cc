#include "common/str_util.h"

#include <algorithm>
#include <cctype>

namespace synergy {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace synergy
