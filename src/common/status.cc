#include "common/status.h"

namespace synergy {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace synergy
