#include "common/value.h"

#include <cmath>
#include <sstream>

namespace synergy {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INT";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const DataType a = type();
  const DataType b = other.type();
  if (a == DataType::kNull || b == DataType::kNull) {
    // NULL sorts before any non-null; two NULLs compare equal.
    return (a == b) ? 0 : (a == DataType::kNull ? -1 : 1);
  }
  const bool a_num = a == DataType::kInt || a == DataType::kDouble;
  const bool b_num = b == DataType::kInt || b == DataType::kDouble;
  if (a_num && b_num) {
    if (a == DataType::kInt && b == DataType::kInt) {
      const int64_t x = as_int(), y = other.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = numeric(), y = other.numeric();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == DataType::kString && b == DataType::kString) {
    return as_string().compare(other.as_string()) < 0
               ? -1
               : (as_string() == other.as_string() ? 0 : 1);
  }
  // Mixed string/number: order by type tag for a stable total order.
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(as_int());
    case DataType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case DataType::kString: return as_string();
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case DataType::kNull: return 1;
    case DataType::kInt: return 8;
    case DataType::kDouble: return 8;
    case DataType::kString: return as_string().size() + 4;
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace synergy
