#include "common/value.h"

#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string_view>

namespace synergy {

namespace {

/// Exact three-way comparison of an int64 against a double — no precision
/// loss for integers beyond 2^53 (casting either side would make values
/// that differ compare equal, breaking the total order the executor's sort
/// comparators and ValueKey hash tables rely on).
int CompareIntDouble(int64_t x, double d) {
  if (std::isnan(d)) return -1;  // numbers sort before NaN
  if (d >= 9223372036854775808.0) return -1;
  if (d < -9223372036854775808.0) return 1;
  const double fl = std::floor(d);           // exact: |d| < 2^63
  const int64_t di = static_cast<int64_t>(fl);  // in range by the guards
  if (x != di) return x < di ? -1 : 1;
  return d > fl ? -1 : 0;  // x == floor(d): a fraction puts d above x
}

}  // namespace

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INT";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const DataType a = type();
  const DataType b = other.type();
  if (a == DataType::kNull || b == DataType::kNull) {
    // NULL sorts before any non-null; two NULLs compare equal.
    return (a == b) ? 0 : (a == DataType::kNull ? -1 : 1);
  }
  const bool a_num = a == DataType::kInt || a == DataType::kDouble;
  const bool b_num = b == DataType::kInt || b == DataType::kDouble;
  if (a_num && b_num) {
    if (a == DataType::kInt && b == DataType::kInt) {
      const int64_t x = as_int(), y = other.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (a == DataType::kInt) return CompareIntDouble(as_int(), other.as_double());
    if (b == DataType::kInt) return -CompareIntDouble(other.as_int(), as_double());
    const double x = numeric(), y = other.numeric();
    if (x < y) return -1;
    if (x > y) return 1;
    // Neither < nor >: equal, or at least one NaN. NaNs sort after every
    // non-NaN numeric (and compare equal to each other) so the order stays
    // total — vital for sort comparators and ValueKey hash-table equality.
    const bool x_nan = std::isnan(x), y_nan = std::isnan(y);
    if (x_nan == y_nan) return 0;
    return x_nan ? 1 : -1;
  }
  if (a == DataType::kString && b == DataType::kString) {
    return as_string().compare(other.as_string()) < 0
               ? -1
               : (as_string() == other.as_string() ? 0 : 1);
  }
  // Mixed string/number: order by type tag for a stable total order.
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(as_int());
    case DataType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case DataType::kString: return as_string();
  }
  return "?";
}

size_t Value::Hash() const {
  // splitmix64 finalizer: cheap and well-distributed for 64-bit inputs.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  };
  switch (type()) {
    case DataType::kNull:
      return 0x2545f4914f6cdd1dull;
    case DataType::kInt: {
      // Compare() treats ints and doubles as one numeric domain, so an int
      // that a double can represent exactly must hash like that double. An
      // int beyond 2^53 that does NOT round-trip can never compare equal to
      // any double, so it hashes by its integer bits — keeping distinct
      // large ints in distinct buckets instead of collapsing whole double
      // rounding ranges onto one hash.
      const int64_t i = as_int();
      const double d = static_cast<double>(i);
      if (d < 9223372036854775808.0 && static_cast<int64_t>(d) == i) {
        return mix(std::bit_cast<uint64_t>(d));
      }
      return mix(static_cast<uint64_t>(i));
    }
    case DataType::kDouble: {
      double d = as_double();
      if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
      if (std::isnan(d)) {
        // All NaN payloads compare equal; hash them alike.
        d = std::numeric_limits<double>::quiet_NaN();
      }
      return mix(std::bit_cast<uint64_t>(d));
    }
    case DataType::kString:
      return std::hash<std::string_view>{}(as_string());
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case DataType::kNull: return 1;
    case DataType::kInt: return 8;
    case DataType::kDouble: return 8;
    case DataType::kString: return as_string().size() + 4;
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace synergy
