// Lightweight Status / StatusOr error-handling primitives.
//
// All fallible library operations return Status or StatusOr<T> instead of
// throwing; exceptions are reserved for programmer errors (assertion-style).
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace synergy {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kAborted,       // transaction aborted (conflict, dirty read, lock timeout)
  kUnavailable,   // simulated node failure
  kUnimplemented, // e.g. joins not expressible in VoltDB partitioning
  kInternal,
  kDeadlineExceeded, // operation deadline expired while retrying (RetryPolicy)
  // The node reached is alive but refuses more work: admission-control
  // rejection, a full slave work queue, or an open client circuit breaker.
  // Distinct from kUnavailable on purpose — overload rejections must NOT be
  // retried like node failures (retrying amplifies the overload).
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier; cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value or an error Status. Access to value() requires ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define SYNERGY_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::synergy::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define SYNERGY_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_or = (expr);                        \
  if (!lhs##_or.ok()) return lhs##_or.status();  \
  auto& lhs = *lhs##_or

}  // namespace synergy
