// Deterministic splitmix64-based RNG for data generation and workloads.
// Not thread-safe; create one per thread/generator.
#pragma once

#include <cstdint>
#include <string>

namespace synergy {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  double UniformReal(double lo, double hi) {
    const double u =
        static_cast<double>(Next() >> 11) / 9007199254740992.0;  // [0,1)
    return lo + u * (hi - lo);
  }

  /// Random alphabetic string of the given length.
  std::string AlphaString(size_t len) {
    static const char kAlpha[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(kAlpha[Next() % 26]);
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace synergy
