// Typed values used throughout the SQL layer and the store codecs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace synergy {

enum class DataType { kNull = 0, kInt, kDouble, kString };

const char* DataTypeName(DataType t);

/// A SQL value: NULL, 64-bit integer, double, or string.
/// Comparison follows SQL semantics for same-typed values; NULL sorts lowest.
class Value {
 public:
  Value() = default;  // NULL
  Value(int64_t v) : rep_(v) {}             // NOLINT implicit
  Value(int v) : rep_(int64_t{v}) {}        // NOLINT implicit
  Value(double v) : rep_(v) {}              // NOLINT implicit
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT implicit
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT implicit

  DataType type() const {
    switch (rep_.index()) {
      case 0: return DataType::kNull;
      case 1: return DataType::kInt;
      case 2: return DataType::kDouble;
      default: return DataType::kString;
    }
  }
  bool is_null() const { return type() == DataType::kNull; }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric coercion: int or double -> double. Asserts otherwise.
  double numeric() const {
    return type() == DataType::kInt ? static_cast<double>(as_int())
                                    : as_double();
  }

  /// Three-way comparison. NULL < everything; numerics compare numerically
  /// across int/double; strings compare lexicographically.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  std::string ToString() const;

  /// Hash consistent with Compare() equality: values that compare equal hash
  /// equal (int 5 and double 5.0 share a hash; -0.0 hashes as 0.0). Used by
  /// the executor's ValueKey-based hash join and aggregation tables.
  size_t Hash() const;

  /// Approximate in-memory/on-disk footprint in bytes (used by the storage
  /// accounting behind Table III).
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace synergy
