#include "txn/txn_layer.h"

#include <chrono>

#include "testing/fault_injector.h"

namespace synergy::txn {

SlaveNode::SlaveNode(hbase::Cluster* cluster, LockManager* locks, int id)
    : cluster_(cluster), locks_(locks), id_(id),
      wal_(std::make_shared<Wal>(&cluster->cost_model(),
                                 &cluster->metrics())) {
  obs::MetricsRegistry& r = cluster_->metrics();
  c_commits_ = r.GetCounter("txn_slave_commits_total",
                            "write transactions committed by slaves");
  c_crashes_ = r.GetCounter("txn_slave_crashes_total",
                            "slave nodes that died (fault or lost release)");
  c_backpressure_ = r.GetCounter(
      "txn_slave_backpressure_rejected_total",
      "writes rejected because a slave work queue stayed full");
  worker_ = std::thread([this] { WorkerLoop(); });
}

SlaveNode::~SlaveNode() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Every enqueued task has a client blocked on its future, so the queue is
  // necessarily empty by the time the last client reference drops; fail any
  // stragglers defensively anyway.
  for (WriteTask& task : queue_) {
    task.done.set_value(Status::Unavailable("slave shut down"));
  }
}

void SlaveNode::SetFaultInjector(fault::FaultInjector* faults) {
  faults_ = faults;
  wal_->SetFaultInjector(faults);
}

void SlaveNode::WorkerLoop() {
  for (;;) {
    WriteTask task;
    {
      std::unique_lock lock(queue_mutex_);
      queue_not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with no work left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    task.done.set_value(
        ExecuteWrite(*task.session, *task.payload, *task.lock, *task.body));
  }
}

StatusOr<int64_t> SlaveNode::ProcessWrite(hbase::Session& s,
                                          const std::string& payload,
                                          const std::optional<LockSpec>& lock,
                                          const WriteBody& body) {
  std::future<StatusOr<int64_t>> done;
  {
    std::unique_lock qlock(queue_mutex_);
    // Bounded wait: a queue that stays full (saturated worker, or a worker
    // wedged mid-body) must reject with backpressure, not block the
    // producer forever — the client's retry/deadline machinery can only act
    // on an error it actually receives.
    const bool has_room = queue_not_full_.wait_for(
        qlock, std::chrono::milliseconds(enqueue_wait_ms_.load()), [this] {
          return stopping_ || failed_.load() ||
                 queue_.size() < kQueueCapacity;
        });
    if (stopping_) return Status::Unavailable("slave shut down");
    if (failed_.load()) {
      // Crashed slave: retryable, so the root loop routes to a live slave
      // (or waits out recovery) instead of queueing work nobody will run.
      return Status::Unavailable("slave " + std::to_string(id_) + " is down");
    }
    if (!has_room) {
      c_backpressure_->Inc();
      return Status::ResourceExhausted("slave " + std::to_string(id_) +
                                       " work queue full (overloaded)");
    }
    WriteTask task{&s, &payload, &lock, &body, {}};
    done = task.done.get_future();
    queue_.push_back(std::move(task));
  }
  queue_not_empty_.notify_one();
  return done.get();
}

Status SlaveNode::Crash(const std::string& reason) {
  c_crashes_->Inc();
  failed_.store(true);
  // Wake producers waiting for queue room: the slave is dead, they should
  // take the kUnavailable exit instead of sitting out the bounded wait.
  queue_not_full_.notify_all();
  return Status::Unavailable("slave " + std::to_string(id_) +
                             " crashed: " + reason);
}

bool SlaveNode::Fire(fault::FaultPoint point) {
  return faults_ != nullptr && faults_->ShouldFire(point);
}

namespace {

/// Disables session-level RPC retries for the extent of the slave write
/// protocol: mid-body kUnavailable must reach the slave (it is the crash
/// signal that leaks the lock for failover), and the root-level retry in
/// TxnLayer::SubmitWrite already owns the operation's deadline. The worker
/// thread toggles the client's session here; the client is blocked on the
/// submit future, so access is serialized by the queue handoff.
class SuppressRetriesScope {
 public:
  explicit SuppressRetriesScope(hbase::Session& s)
      : session_(&s), prev_(s.retries_suppressed()) {
    s.SuppressRetries(true);
  }
  ~SuppressRetriesScope() { session_->SuppressRetries(prev_); }

 private:
  hbase::Session* session_;
  bool prev_;
};

}  // namespace

StatusOr<int64_t> SlaveNode::ExecuteWrite(hbase::Session& s,
                                          const std::string& payload,
                                          const std::optional<LockSpec>& lock,
                                          const WriteBody& body) {
  if (failed_.load()) return Status::Unavailable("slave is down");
  SuppressRetriesScope no_rpc_retries(s);
  // The collector travels with the session through the queue handoff, so
  // slave-side work shows up in the client's trace. Closed on every exit
  // path by the RAII dtors.
  obs::ScopedSpan slave_span(s.trace(), "txn.slave");
  slave_span.Note("slave", std::to_string(id_));
  s.meter().Charge(cluster_->cost_model().txn_layer_dispatch_us);
  obs::ScopedSpan wal_span(s.trace(), "txn.wal_append");
  SYNERGY_ASSIGN_OR_RETURN(txn_id, wal_->Append(s, payload, lock));
  wal_span.Close();

  if (Fire(fault::FaultPoint::kCrashAfterWalAppend)) {
    // Died before acquiring the lock: nothing leaks, but the logged entry
    // stays uncommitted, so failover re-applies the statement.
    return Crash("after WAL append");
  }

  LockGuard guard;
  if (lock.has_value()) {
    obs::ScopedSpan lock_span(s.trace(), "txn.lock_acquire");
    int attempts = 0;
    SYNERGY_RETURN_IF_ERROR(locks_->Acquire(s, lock->root_relation,
                                            lock->root_key,
                                            /*max_attempts=*/1000, &attempts));
    if (attempts > 1) {
      lock_span.Note("lock_retries", std::to_string(attempts - 1));
    }
    lock_span.Close();
    guard = LockGuard(locks_, &s, lock->root_relation, lock->root_key);
  }

  if (Fire(fault::FaultPoint::kCrashBeforeExecute)) {
    // The slave dies holding the lock: readers keep read-committed semantics
    // because writers cannot sneak in before recovery (§VIII-C).
    guard.Leak();
    return Crash("before execute (lock leaked)");
  }

  obs::ScopedSpan body_span(s.trace(), "txn.body");
  Status body_status = body(s);
  body_span.Close();
  if (!body_status.ok()) {
    if (body_status.code() == StatusCode::kUnavailable) {
      // The store became unreachable mid-transaction (e.g. an injected
      // region fault): the slave cannot tell how much of the body applied,
      // so it dies with the lock held and lets failover replay the entry.
      guard.Leak();
      return Crash("mid-transaction: " + body_status.message());
    }
    // Application-level failure: the write is rejected cleanly, the lock is
    // released and the WAL entry stays uncommitted (replay is a no-op for
    // invalid statements, which fail the same way again).
    Status released = guard.ReleaseNow();
    if (!released.ok()) {
      return Crash("lock release lost: " + released.message());
    }
    return body_status;
  }

  obs::ScopedSpan release_span(s.trace(), "txn.lock_release");
  Status released = guard.ReleaseNow();
  release_span.Close();
  if (!released.ok()) {
    // The release RPC was lost: the slave dies holding the lock, with the
    // entry uncommitted. Replay re-applies the (idempotent) body and frees
    // the orphaned lock.
    return Crash("lock release lost: " + released.message());
  }
  wal_->MarkCommitted(txn_id);
  c_commits_->Inc();
  return txn_id;
}

TxnLayer::TxnLayer(hbase::Cluster* cluster, LockManager* locks, int num_slaves)
    : cluster_(cluster), locks_(locks) {
  for (int i = 0; i < num_slaves; ++i) {
    slaves_.push_back(
        std::make_unique<SlaveNode>(cluster_, locks_, next_slave_id_++));
  }
}

void TxnLayer::SetFaultInjector(fault::FaultInjector* faults) {
  std::shared_lock lock(slaves_mutex_);
  faults_ = faults;
  for (auto& slave : slaves_) slave->SetFaultInjector(faults);
}

StatusOr<int64_t> TxnLayer::SubmitWrite(hbase::Session& s,
                                        const std::string& payload,
                                        const std::optional<LockSpec>& lock,
                                        const WriteBody& body) {
  // Same protected loop as the Cluster entry points (breaker gate, retry
  // budget, overload rejections surfaced unretried); between backoffs the
  // master auto-recovers failed slaves so a drained pool heals instead of
  // failing every retry with "no live slaves".
  return hbase::RunWithRetryProtection(
      *cluster_, s, [&] { return SubmitWriteOnce(s, payload, lock, body); },
      [this] { MaybeAutoRecover(); });
}

StatusOr<int64_t> TxnLayer::SubmitWriteOnce(hbase::Session& s,
                                            const std::string& payload,
                                            const std::optional<LockSpec>& lock,
                                            const WriteBody& body) {
  // Shared lock held across the write: DetectAndRecover cannot destroy the
  // slave out from under us.
  std::shared_lock pool_lock(slaves_mutex_);
  for (size_t attempt = 0; attempt < slaves_.size(); ++attempt) {
    SlaveNode* slave =
        slaves_[next_slave_.fetch_add(1) % slaves_.size()].get();
    if (slave->failed()) continue;
    return slave->ProcessWrite(s, payload, lock, body);
  }
  return Status::Unavailable("no live slaves");
}

void TxnLayer::MaybeAutoRecover() {
  if (!replay_fn_) return;
  {
    std::shared_lock pool_lock(slaves_mutex_);
    bool any_failed = false;
    for (const auto& slave : slaves_) {
      if (slave->failed()) {
        any_failed = true;
        break;
      }
    }
    if (!any_failed) return;
  }
  // Recovery runs on the master's own session: its replay cost is not the
  // retrying client's virtual time. A kUnavailable replay (store regions
  // still mid-reassignment) leaves WAL state untouched; the next backoff
  // simply tries again.
  hbase::Session recovery_session(cluster_);
  (void)DetectAndRecover(recovery_session, replay_fn_);
}

Status TxnLayer::DetectAndRecover(hbase::Session& s, const ReplayFn& replay) {
  std::unique_lock pool_lock(slaves_mutex_);
  for (auto& slave : slaves_) {
    if (!slave->failed()) continue;
    // Start a replacement slave and replay the failed slave's uncommitted
    // WAL suffix. Locks recorded by the dead slave's entries are released
    // after replay.
    auto replacement =
        std::make_unique<SlaveNode>(cluster_, locks_, next_slave_id_++);
    replacement->SetFaultInjector(faults_);
    for (const WalEntry& entry : slave->wal()->UncommittedEntries()) {
      const Status replayed = replay(s, entry.payload);
      if (!replayed.ok()) {
        // kUnavailable means the store itself is unreachable — recovery
        // cannot proceed. Anything else is an application-level rejection:
        // the statement failed the same way at original execution, so the
        // entry is dropped (its lock still gets released below).
        if (replayed.code() == StatusCode::kUnavailable) return replayed;
      }
      if (entry.lock.has_value()) {
        SYNERGY_ASSIGN_OR_RETURN(
            held,
            locks_->IsHeld(s, entry.lock->root_relation, entry.lock->root_key));
        if (held) {
          SYNERGY_RETURN_IF_ERROR(locks_->Release(s, entry.lock->root_relation,
                                                  entry.lock->root_key));
        }
      }
      slave->wal()->MarkCommitted(entry.txn_id);
    }
    slave = std::move(replacement);
  }
  return Status::Ok();
}

}  // namespace synergy::txn
