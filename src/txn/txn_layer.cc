#include "txn/txn_layer.h"

namespace synergy::txn {

StatusOr<int64_t> SlaveNode::ProcessWrite(hbase::Session& s,
                                          const std::string& payload,
                                          const std::optional<LockSpec>& lock,
                                          const WriteBody& body) {
  if (failed_.load()) return Status::Unavailable("slave is down");
  s.meter().Charge(cluster_->cost_model().txn_layer_dispatch_us);
  const int64_t txn_id = wal_->Append(s, payload);

  LockGuard guard;
  if (lock.has_value()) {
    SYNERGY_RETURN_IF_ERROR(
        locks_->Acquire(s, lock->root_relation, lock->root_key));
    guard = LockGuard(locks_, &s, lock->root_relation, lock->root_key);
  }

  if (crash_before_execute_.exchange(false)) {
    failed_.store(true);
    // The slave dies holding the lock: readers keep read-committed semantics
    // because writers cannot sneak in before recovery (§VIII-C).
    guard.Leak();
    return Status::Unavailable("slave crashed mid-transaction");
  }

  SYNERGY_RETURN_IF_ERROR(body(s));
  SYNERGY_RETURN_IF_ERROR(guard.ReleaseNow());
  wal_->MarkCommitted(txn_id);
  return txn_id;
}

TxnLayer::TxnLayer(hbase::Cluster* cluster, LockManager* locks, int num_slaves)
    : cluster_(cluster), locks_(locks) {
  for (int i = 0; i < num_slaves; ++i) {
    slaves_.push_back(
        std::make_unique<SlaveNode>(cluster_, locks_, next_slave_id_++));
  }
}

StatusOr<int64_t> TxnLayer::SubmitWrite(hbase::Session& s,
                                        const std::string& payload,
                                        const std::optional<LockSpec>& lock,
                                        const WriteBody& body) {
  for (size_t attempt = 0; attempt < slaves_.size(); ++attempt) {
    SlaveNode* slave =
        slaves_[next_slave_.fetch_add(1) % slaves_.size()].get();
    if (slave->failed()) continue;
    return slave->ProcessWrite(s, payload, lock, body);
  }
  return Status::Unavailable("no live slaves");
}

Status TxnLayer::DetectAndRecover(hbase::Session& s, const ReplayFn& replay,
                                  const LockOfPayloadFn& lock_of) {
  for (auto& slave : slaves_) {
    if (!slave->failed()) continue;
    // Start a replacement slave and replay the failed slave's uncommitted
    // WAL suffix. Locks held by the dead slave are released after replay.
    auto replacement =
        std::make_unique<SlaveNode>(cluster_, locks_, next_slave_id_++);
    for (const WalEntry& entry : slave->wal()->UncommittedEntries()) {
      SYNERGY_RETURN_IF_ERROR(replay(s, entry.payload));
      if (lock_of) {
        std::optional<LockSpec> lock = lock_of(entry.payload);
        if (lock.has_value()) {
          SYNERGY_ASSIGN_OR_RETURN(
              held, locks_->IsHeld(s, lock->root_relation, lock->root_key));
          if (held) {
            SYNERGY_RETURN_IF_ERROR(
                locks_->Release(s, lock->root_relation, lock->root_key));
          }
        }
      }
      slave->wal()->MarkCommitted(entry.txn_id);
    }
    slave = std::move(replacement);
  }
  return Status::Ok();
}

}  // namespace synergy::txn
