#include "txn/wal.h"

#include "testing/fault_injector.h"

namespace synergy::txn {

StatusOr<int64_t> Wal::Append(hbase::Session& s, const std::string& payload,
                              std::optional<LockSpec> lock_spec) {
  if (faults_ != nullptr &&
      faults_->ShouldFire(fault::FaultPoint::kWalAppendFailure)) {
    if (append_failures_ != nullptr) append_failures_->Inc();
    return faults_->InjectedFault(fault::FaultPoint::kWalAppendFailure);
  }
  s.meter().Charge(model_->wal_append_us);
  if (appends_ != nullptr) appends_->Inc();
  std::lock_guard lock(mutex_);
  const int64_t id = next_id_++;
  entries_.push_back(
      WalEntry{id, payload, std::move(lock_spec), /*committed=*/false});
  return id;
}

void Wal::MarkCommitted(int64_t txn_id) {
  std::lock_guard lock(mutex_);
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->txn_id == txn_id) {
      it->committed = true;
      return;
    }
  }
}

std::vector<WalEntry> Wal::UncommittedEntries() const {
  std::lock_guard lock(mutex_);
  std::vector<WalEntry> out;
  for (const WalEntry& e : entries_) {
    if (!e.committed) out.push_back(e);
  }
  return out;
}

size_t Wal::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<WalEntry> Wal::AllEntries() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

}  // namespace synergy::txn
