// The Synergy transaction layer (§VIII): master + slave nodes, WAL-backed
// write transaction procedures, hierarchical locking, failover.
//
// A client submits a write request to a slave. The slave assigns a
// transaction id, appends the payload to its WAL, acquires the single root
// lock (if the write touches a rooted tree), runs the transaction body
// (base table + views + indexes updates, supplied by the caller), releases
// the lock and acknowledges. The master detects slave failures and starts a
// replacement slave that replays the failed slave's uncommitted WAL suffix;
// the root lock stays held across the failure, preserving read-committed
// semantics (§VIII-C).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"
#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace synergy::txn {

struct LockSpec {
  std::string root_relation;
  std::string root_key;  // encoded row key in the root's lock table
};

/// The transaction body: performs the actual store updates. Invoked while
/// the root lock is held.
using WriteBody = std::function<Status(hbase::Session&)>;

/// Rebuilds and executes the body for a WAL payload during replay.
using ReplayFn = std::function<Status(hbase::Session&, const std::string&)>;

class SlaveNode {
 public:
  SlaveNode(hbase::Cluster* cluster, LockManager* locks, int id)
      : cluster_(cluster), locks_(locks), id_(id),
        wal_(std::make_shared<Wal>(&cluster->cost_model())) {}

  int id() const { return id_; }
  bool failed() const { return failed_.load(); }
  std::shared_ptr<Wal> wal() const { return wal_; }

  /// Arms a simulated crash: the next write fails after WAL append +
  /// lock acquisition but before execution (lock intentionally leaked).
  void InjectCrashBeforeExecute() { crash_before_execute_.store(true); }

  StatusOr<int64_t> ProcessWrite(hbase::Session& s, const std::string& payload,
                                 const std::optional<LockSpec>& lock,
                                 const WriteBody& body);

 private:
  hbase::Cluster* cluster_;
  LockManager* locks_;
  int id_;
  std::shared_ptr<Wal> wal_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> crash_before_execute_{false};
};

/// Master: owns the slave pool, routes writes, performs failover.
class TxnLayer {
 public:
  TxnLayer(hbase::Cluster* cluster, LockManager* locks, int num_slaves = 1);

  LockManager* lock_manager() const { return locks_; }

  /// Client entry point: forwards to a live slave (round robin).
  StatusOr<int64_t> SubmitWrite(hbase::Session& s, const std::string& payload,
                                const std::optional<LockSpec>& lock,
                                const WriteBody& body);

  SlaveNode* slave(int i) { return slaves_[static_cast<size_t>(i)].get(); }
  int num_slaves() const { return static_cast<int>(slaves_.size()); }

  /// Master failure detection + recovery: replaces failed slaves with fresh
  /// ones that replay the uncommitted WAL suffix via `replay`, releasing any
  /// root locks named by `lock_of` for replayed payloads.
  using LockOfPayloadFn =
      std::function<std::optional<LockSpec>(const std::string& payload)>;
  Status DetectAndRecover(hbase::Session& s, const ReplayFn& replay,
                          const LockOfPayloadFn& lock_of);

 private:
  hbase::Cluster* cluster_;
  LockManager* locks_;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
  std::atomic<size_t> next_slave_{0};
  int next_slave_id_ = 0;
};

}  // namespace synergy::txn
