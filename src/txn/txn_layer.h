// The Synergy transaction layer (§VIII): master + slave nodes, WAL-backed
// write transaction procedures, hierarchical locking, failover.
//
// A client submits a write request to a slave. The slave assigns a
// transaction id, appends the payload to its WAL, acquires the single root
// lock (if the write touches a rooted tree), runs the transaction body
// (base table + views + indexes updates, supplied by the caller), releases
// the lock and acknowledges. The master detects slave failures and starts a
// replacement slave that replays the failed slave's uncommitted WAL suffix;
// the root lock stays held across the failure, preserving read-committed
// semantics (§VIII-C).
//
// Fault behaviour (driven by testing/fault_injector.h):
//  - crash-after-wal-append / crash-before-execute kill the slave at the
//    corresponding point of ProcessWrite (the latter while holding the lock).
//  - A body that fails with kUnavailable (e.g. an injected region-RPC fault)
//    is treated as the slave dying mid-transaction: the lock leaks and the
//    WAL entry stays uncommitted for failover replay. Other body errors are
//    application failures — the lock is released and the error propagated.
//  - A lost lock release (drop-lock-release) after a successful body also
//    kills the slave: the entry stays uncommitted so replay (idempotent)
//    re-applies it and frees the orphaned lock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"
#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace synergy::fault {
class FaultInjector;
enum class FaultPoint : int;
}  // namespace synergy::fault

namespace synergy::txn {

/// The transaction body: performs the actual store updates. Invoked while
/// the root lock is held.
using WriteBody = std::function<Status(hbase::Session&)>;

/// Rebuilds and executes the body for a WAL payload during replay.
using ReplayFn = std::function<Status(hbase::Session&, const std::string&)>;

class SlaveNode {
 public:
  SlaveNode(hbase::Cluster* cluster, LockManager* locks, int id)
      : cluster_(cluster), locks_(locks), id_(id),
        wal_(std::make_shared<Wal>(&cluster->cost_model())) {}

  int id() const { return id_; }
  bool failed() const { return failed_.load(); }
  std::shared_ptr<Wal> wal() const { return wal_; }

  /// Installs (or clears) the fault injector consulted at the slave's
  /// crash points and by its WAL.
  void SetFaultInjector(fault::FaultInjector* faults);

  StatusOr<int64_t> ProcessWrite(hbase::Session& s, const std::string& payload,
                                 const std::optional<LockSpec>& lock,
                                 const WriteBody& body);

 private:
  /// Marks the slave dead and returns the Unavailable status the client sees.
  Status Crash(const std::string& reason);
  bool Fire(fault::FaultPoint point);

  hbase::Cluster* cluster_;
  LockManager* locks_;
  int id_;
  std::shared_ptr<Wal> wal_;
  fault::FaultInjector* faults_ = nullptr;
  std::atomic<bool> failed_{false};
};

/// Master: owns the slave pool, routes writes, performs failover.
class TxnLayer {
 public:
  TxnLayer(hbase::Cluster* cluster, LockManager* locks, int num_slaves = 1);

  LockManager* lock_manager() const { return locks_; }

  /// Installs (or clears) the fault injector on every slave, including
  /// replacements spawned by later failovers.
  void SetFaultInjector(fault::FaultInjector* faults);

  /// Client entry point: forwards to a live slave (round robin).
  StatusOr<int64_t> SubmitWrite(hbase::Session& s, const std::string& payload,
                                const std::optional<LockSpec>& lock,
                                const WriteBody& body);

  SlaveNode* slave(int i) { return slaves_[static_cast<size_t>(i)].get(); }
  int num_slaves() const { return static_cast<int>(slaves_.size()); }

  /// Master failure detection + recovery: replaces failed slaves with fresh
  /// ones that replay the uncommitted WAL suffix via `replay` (which must be
  /// idempotent), then release the root lock each entry recorded if it is
  /// still held by the dead slave.
  Status DetectAndRecover(hbase::Session& s, const ReplayFn& replay);

 private:
  hbase::Cluster* cluster_;
  LockManager* locks_;
  fault::FaultInjector* faults_ = nullptr;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
  std::atomic<size_t> next_slave_{0};
  int next_slave_id_ = 0;
};

}  // namespace synergy::txn
