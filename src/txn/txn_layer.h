// The Synergy transaction layer (§VIII): master + slave nodes, WAL-backed
// write transaction procedures, hierarchical locking, failover.
//
// A client submits a write request to a slave. The slave assigns a
// transaction id, appends the payload to its WAL, acquires the single root
// lock (if the write touches a rooted tree), runs the transaction body
// (base table + views + indexes updates, supplied by the caller), releases
// the lock and acknowledges. The master detects slave failures and starts a
// replacement slave that replays the failed slave's uncommitted WAL suffix;
// the root lock stays held across the failure, preserving read-committed
// semantics (§VIII-C).
//
// Fault behaviour (driven by testing/fault_injector.h):
//  - crash-after-wal-append / crash-before-execute kill the slave at the
//    corresponding point of ProcessWrite (the latter while holding the lock).
//  - A body that fails with kUnavailable (e.g. an injected region-RPC fault)
//    is treated as the slave dying mid-transaction: the lock leaks and the
//    WAL entry stays uncommitted for failover replay. Other body errors are
//    application failures — the lock is released and the error propagated.
//  - A lost lock release (drop-lock-release) after a successful body also
//    kills the slave: the entry stays uncommitted so replay (idempotent)
//    re-applies it and frees the orphaned lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"
#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace synergy::fault {
class FaultInjector;
enum class FaultPoint : int;
}  // namespace synergy::fault

namespace synergy::txn {

/// The transaction body: performs the actual store updates. Invoked while
/// the root lock is held.
using WriteBody = std::function<Status(hbase::Session&)>;

/// Rebuilds and executes the body for a WAL payload during replay.
using ReplayFn = std::function<Status(hbase::Session&, const std::string&)>;

/// A slave node runs its own worker thread: clients enqueue write tasks into
/// a bounded queue and block on a future, so writes routed to different
/// slaves overlap while each slave still executes its own WAL order
/// serially. Single-client behaviour is unchanged (the client waits for its
/// future before issuing the next statement).
class SlaveNode {
 public:
  SlaveNode(hbase::Cluster* cluster, LockManager* locks, int id);
  ~SlaveNode();

  int id() const { return id_; }
  bool failed() const { return failed_.load(); }
  std::shared_ptr<Wal> wal() const { return wal_; }

  /// Installs (or clears) the fault injector consulted at the slave's
  /// crash points and by its WAL. Must not race in-flight writes (install
  /// before submitting work, as the harness and tests do).
  void SetFaultInjector(fault::FaultInjector* faults);

  /// Enqueues the write for the worker thread and blocks until it commits
  /// or fails. The caller's stack (payload/lock/body) stays valid for the
  /// duration, so the task only carries pointers. Backpressure: when the
  /// bounded queue stays full past the enqueue wait (saturated or stuck
  /// worker), the write is rejected with kResourceExhausted instead of
  /// blocking the producer indefinitely; a crashed slave rejects with
  /// kUnavailable so the root retry loop routes around it.
  StatusOr<int64_t> ProcessWrite(hbase::Session& s, const std::string& payload,
                                 const std::optional<LockSpec>& lock,
                                 const WriteBody& body);

  static constexpr size_t kQueueCapacity = 8;

  /// Host-time bound on how long an enqueue may wait for queue room before
  /// rejecting with backpressure (liveness guard, not modeled time). Tests
  /// shrink it to keep the queue-full regression fast.
  void SetEnqueueWaitMs(int ms) { enqueue_wait_ms_.store(ms); }

  /// Tasks waiting in the bounded queue, excluding the one the worker is
  /// executing. Lets tests wait for a known backlog before probing the
  /// backpressure path.
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
  }

 private:
  struct WriteTask {
    hbase::Session* session;
    const std::string* payload;
    const std::optional<LockSpec>* lock;
    const WriteBody* body;
    std::promise<StatusOr<int64_t>> done;
  };

  /// Runs on the worker thread: WAL append, lock acquire, body, release.
  StatusOr<int64_t> ExecuteWrite(hbase::Session& s, const std::string& payload,
                                 const std::optional<LockSpec>& lock,
                                 const WriteBody& body);
  void WorkerLoop();

  /// Marks the slave dead and returns the Unavailable status the client sees.
  Status Crash(const std::string& reason);
  bool Fire(fault::FaultPoint point);

  hbase::Cluster* cluster_;
  LockManager* locks_;
  int id_;
  std::shared_ptr<Wal> wal_;
  fault::FaultInjector* faults_ = nullptr;
  std::atomic<bool> failed_{false};
  // Registry handles (cluster->metrics()), resolved at construction.
  obs::Counter* c_commits_;
  obs::Counter* c_crashes_;
  obs::Counter* c_backpressure_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<WriteTask> queue_;
  bool stopping_ = false;
  std::atomic<int> enqueue_wait_ms_{100};
  std::thread worker_;
};

/// Master: owns the slave pool, routes writes, performs failover.
class TxnLayer {
 public:
  TxnLayer(hbase::Cluster* cluster, LockManager* locks, int num_slaves = 1);

  LockManager* lock_manager() const { return locks_; }

  /// Installs (or clears) the fault injector on every slave, including
  /// replacements spawned by later failovers.
  void SetFaultInjector(fault::FaultInjector* faults);

  /// Client entry point: forwards to a live slave (round robin). When the
  /// session carries a RetryPolicy, root-level retries run *here* — one
  /// controller owning one deadline per submitted write — while RPC retries
  /// inside the slave's write body are suppressed (a kUnavailable there must
  /// surface as a slave crash, and nesting both loops would stack their
  /// budgets unboundedly). Between attempts, if a replay fn is registered
  /// (SetReplayFn), the master auto-recovers failed slaves so a drained pool
  /// heals instead of failing every retry with "no live slaves".
  StatusOr<int64_t> SubmitWrite(hbase::Session& s, const std::string& payload,
                                const std::optional<LockSpec>& lock,
                                const WriteBody& body);

  /// Registers the WAL replay function used for *automatic* recovery from
  /// inside SubmitWrite's retry loop (the explicit DetectAndRecover API is
  /// unchanged). Call before concurrent traffic; not synchronized.
  void SetReplayFn(ReplayFn replay) { replay_fn_ = std::move(replay); }

  SlaveNode* slave(int i) {
    std::shared_lock lock(slaves_mutex_);
    return slaves_[static_cast<size_t>(i)].get();
  }
  int num_slaves() const {
    std::shared_lock lock(slaves_mutex_);
    return static_cast<int>(slaves_.size());
  }

  /// Master failure detection + recovery: replaces failed slaves with fresh
  /// ones that replay the uncommitted WAL suffix via `replay` (which must be
  /// idempotent), then release the root lock each entry recorded if it is
  /// still held by the dead slave.
  Status DetectAndRecover(hbase::Session& s, const ReplayFn& replay);

 private:
  StatusOr<int64_t> SubmitWriteOnce(hbase::Session& s,
                                    const std::string& payload,
                                    const std::optional<LockSpec>& lock,
                                    const WriteBody& body);
  /// Runs DetectAndRecover with an internal session iff any slave failed
  /// and a replay fn is registered. Replay refusals (store unreachable
  /// mid-failover) are left for a later attempt.
  void MaybeAutoRecover();

  hbase::Cluster* cluster_;
  LockManager* locks_;
  fault::FaultInjector* faults_ = nullptr;
  ReplayFn replay_fn_;
  // Guards the pool: SubmitWrite routes under a shared lock (held across the
  // write so a slave is never destroyed under an in-flight client);
  // DetectAndRecover swaps failed slaves under an exclusive lock, i.e. after
  // all in-flight writes drained.
  mutable std::shared_mutex slaves_mutex_;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
  std::atomic<size_t> next_slave_{0};
  int next_slave_id_ = 0;
};

}  // namespace synergy::txn
