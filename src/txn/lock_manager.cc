#include "txn/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "testing/fault_injector.h"

namespace synergy::txn {

namespace {
constexpr char kLockColumn[] = "l";
constexpr char kFree[] = "0";
constexpr char kHeld[] = "1";
}  // namespace

LockManager::LockManager(hbase::Cluster* cluster) : cluster_(cluster) {
  obs::MetricsRegistry& r = cluster_->metrics();
  acquire_attempts_ = r.GetCounter("txn_lock_acquire_attempts_total",
                                   "lock CheckAndPut attempts");
  acquires_ = r.GetCounter("txn_lock_acquires_total",
                           "hierarchical locks acquired");
  acquire_timeouts_ = r.GetCounter("txn_lock_acquire_timeouts_total",
                                   "Acquire calls that hit max_attempts");
  releases_ = r.GetCounter("txn_lock_releases_total",
                           "hierarchical locks released");
  release_drops_ = r.GetCounter(
      "txn_lock_release_drops_total",
      "release RPCs lost by the drop-lock-release fault");
  lock_wait_us_ = r.GetHistogram(
      "txn_lock_wait_us", "virtual wait per lock acquisition (contention)");
}

Status LockManager::CreateLockTable(const std::string& root_relation) {
  return cluster_->CreateTable({.name = LockTableName(root_relation)});
}

Status LockManager::CreateLockEntry(hbase::Session& s,
                                    const std::string& root_relation,
                                    const std::string& root_key) {
  // CheckAndPut(absent -> free): never clobbers an existing entry, in
  // particular not the lock the inserting transaction itself holds.
  SYNERGY_ASSIGN_OR_RETURN(
      created, cluster_->CheckAndPut(s, LockTableName(root_relation), root_key,
                                     kLockColumn, std::nullopt, kFree));
  (void)created;  // already-present entries are fine (idempotent)
  return Status::Ok();
}

StatusOr<bool> LockManager::TryAcquire(hbase::Session& s,
                                       const std::string& root_relation,
                                       const std::string& root_key) {
  const std::string table = LockTableName(root_relation);
  SYNERGY_ASSIGN_OR_RETURN(
      won, cluster_->CheckAndPut(s, table, root_key, kLockColumn,
                                 std::string(kFree), kHeld));
  if (won) return true;
  // The entry may not exist yet (root row being inserted right now).
  return cluster_->CheckAndPut(s, table, root_key, kLockColumn, std::nullopt,
                               kHeld);
}

Status LockManager::Acquire(hbase::Session& s,
                            const std::string& root_relation,
                            const std::string& root_key, int max_attempts,
                            int* attempts_out) {
  const double start_us = s.meter().micros();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    acquire_attempts_->Inc();
    if (attempts_out != nullptr) *attempts_out = attempt + 1;
    SYNERGY_ASSIGN_OR_RETURN(won, TryAcquire(s, root_relation, root_key));
    if (won) {
      acquires_->Inc();
      lock_wait_us_->Observe(s.meter().Since(start_us));
      return Status::Ok();
    }
    // Virtual backoff before the next CheckAndPut; the charge is what makes
    // contention visible in reported latencies.
    s.meter().Charge(cluster_->cost_model().lock_rpc_us);
    // Real backoff so the owner thread actually gets the CPU: spin-yield for
    // the first few attempts, then exponential sleep capped at 64us.
    if (attempt < 4) {
      std::this_thread::yield();
    } else {
      const int shift = std::min(attempt - 4, 6);
      std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
    }
  }
  acquire_timeouts_->Inc();
  return Status::Aborted("lock acquisition timed out on " + root_relation);
}

Status LockManager::Release(hbase::Session& s,
                            const std::string& root_relation,
                            const std::string& root_key) {
  if (faults_ != nullptr) {
    const std::string lock_table = LockTableName(root_relation);
    const fault::FaultSite site{lock_table, -1};
    if (faults_->ShouldFire(fault::FaultPoint::kDropLockRelease, site)) {
      // Release RPC lost in flight: the lock stays held in the store.
      release_drops_->Inc();
      return faults_->InjectedFault(fault::FaultPoint::kDropLockRelease);
    }
  }
  SYNERGY_ASSIGN_OR_RETURN(
      ok, cluster_->CheckAndPut(s, LockTableName(root_relation), root_key,
                                kLockColumn, std::string(kHeld), kFree));
  if (!ok) {
    return Status::FailedPrecondition("releasing a lock that is not held");
  }
  releases_->Inc();
  return Status::Ok();
}

StatusOr<bool> LockManager::IsHeld(hbase::Session& s,
                                   const std::string& root_relation,
                                   const std::string& root_key) {
  StatusOr<hbase::RowResult> row =
      cluster_->Get(s, LockTableName(root_relation), root_key);
  if (!row.ok()) {
    if (row.status().code() == StatusCode::kNotFound) return false;
    return row.status();
  }
  auto it = row->columns.find(kLockColumn);
  return it != row->columns.end() && it->second == kHeld;
}

}  // namespace synergy::txn
