// Hierarchical lock manager (§VIII-A).
//
// One lock table per root relation, stored in the cluster itself. A lock-
// table row has the same key as the root row plus a boolean column; locks
// are acquired/released with atomic CheckAndPut, exactly as the paper does
// with HBase's checkAndPut. Because every relation belongs to at most one
// rooted tree, a write transaction holds a single lock: the one on its
// root-relation row key.
#pragma once

#include <string>

#include "common/status.h"
#include "hbase/cluster.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::txn {

/// Names the single hierarchical lock a write transaction holds: the row of
/// the root relation whose tree the write touches.
struct LockSpec {
  std::string root_relation;
  std::string root_key;  // encoded row key in the root's lock table

  bool operator==(const LockSpec&) const = default;
};

class LockManager {
 public:
  explicit LockManager(hbase::Cluster* cluster);

  static std::string LockTableName(const std::string& root_relation) {
    return "__lock_" + root_relation;
  }

  /// Installs (or clears) the fault injector consulted on Release: a fired
  /// drop-lock-release fault loses the release RPC, leaving the lock held
  /// (the caller is expected to treat this as its own crash).
  void SetFaultInjector(fault::FaultInjector* faults) { faults_ = faults; }

  /// Creates the lock table for a root relation.
  Status CreateLockTable(const std::string& root_relation);

  /// Creates the lock entry when a tuple is inserted into the root table.
  Status CreateLockEntry(hbase::Session& s, const std::string& root_relation,
                         const std::string& root_key);

  /// Single CheckAndPut attempt; true if the lock was acquired.
  StatusOr<bool> TryAcquire(hbase::Session& s,
                            const std::string& root_relation,
                            const std::string& root_key);

  /// Acquires with bounded retries. Each retry charges a virtual lock RPC
  /// (contention shows up in reported latency) and backs off the OS thread
  /// (yield, then capped exponential sleep) so concurrent owners progress.
  /// `attempts_out`, when non-null, receives the number of CheckAndPut
  /// attempts made (1 = uncontended) — trace spans report retries from it.
  Status Acquire(hbase::Session& s, const std::string& root_relation,
                 const std::string& root_key, int max_attempts = 1000,
                 int* attempts_out = nullptr);

  /// Releases a held lock; fails if the lock was not held.
  Status Release(hbase::Session& s, const std::string& root_relation,
                 const std::string& root_key);

  /// Whether the lock is currently held (diagnostics/tests).
  StatusOr<bool> IsHeld(hbase::Session& s, const std::string& root_relation,
                        const std::string& root_key);

 private:
  hbase::Cluster* cluster_;
  fault::FaultInjector* faults_ = nullptr;
  // Registry handles (cluster->metrics()), resolved at construction.
  obs::Counter* acquire_attempts_;
  obs::Counter* acquires_;
  obs::Counter* acquire_timeouts_;
  obs::Counter* releases_;
  obs::Counter* release_drops_;
  obs::Histogram* lock_wait_us_;
};

/// RAII guard: releases on destruction if still held.
class LockGuard {
 public:
  LockGuard() = default;
  LockGuard(LockManager* manager, hbase::Session* session, std::string root,
            std::string key)
      : manager_(manager), session_(session), root_(std::move(root)),
        key_(std::move(key)) {}
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  LockGuard(LockGuard&& other) noexcept { *this = std::move(other); }
  LockGuard& operator=(LockGuard&& other) noexcept {
    ReleaseNow();
    manager_ = other.manager_;
    session_ = other.session_;
    root_ = std::move(other.root_);
    key_ = std::move(other.key_);
    other.manager_ = nullptr;
    return *this;
  }
  ~LockGuard() { ReleaseNow(); }

  Status ReleaseNow() {
    if (manager_ == nullptr) return Status::Ok();
    Status s = manager_->Release(*session_, root_, key_);
    manager_ = nullptr;
    return s;
  }

  /// Abandon without releasing (simulated slave crash: lock stays held).
  void Leak() { manager_ = nullptr; }

 private:
  LockManager* manager_ = nullptr;
  hbase::Session* session_ = nullptr;
  std::string root_;
  std::string key_;
};

}  // namespace synergy::txn
