// Write-ahead log for the Synergy transaction layer (§VIII).
//
// Each slave appends the statement payload with its transaction id before
// executing, and marks the entry committed afterwards. On slave failure the
// master replays the uncommitted suffix on a fresh slave. The log is
// in-memory (the simulated HDFS) with a per-append sync cost; thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"
#include "txn/lock_manager.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::txn {

struct WalEntry {
  int64_t txn_id = 0;
  std::string payload;  // statement text + encoded params
  // Root lock the transaction holds while executing. Recorded so failover
  // can release orphaned locks without re-deriving them from the payload
  // (which is impossible for deletes: the root row may already be gone).
  std::optional<LockSpec> lock;
  bool committed = false;
};

class Wal {
 public:
  /// `registry` (normally the owning cluster's) receives the append/failure
  /// counters; null skips publication (standalone construction in tests).
  explicit Wal(const sim::CostModel* model,
               obs::MetricsRegistry* registry = nullptr)
      : model_(model) {
    if (registry != nullptr) {
      appends_ = registry->GetCounter("txn_wal_appends_total",
                                      "WAL entries appended (synced)");
      append_failures_ = registry->GetCounter(
          "txn_wal_append_failures_total",
          "WAL appends failed by the wal-append-failure fault");
    }
  }

  /// Installs (or clears) the fault injector consulted on Append: a fired
  /// wal-append-failure fault fails the append before anything is logged.
  void SetFaultInjector(fault::FaultInjector* faults) { faults_ = faults; }

  /// Appends an entry (charging the WAL sync cost) and returns its id.
  StatusOr<int64_t> Append(hbase::Session& s, const std::string& payload,
                           std::optional<LockSpec> lock = std::nullopt);

  /// Marks a transaction committed. Unknown ids are ignored (idempotent).
  void MarkCommitted(int64_t txn_id);

  /// Uncommitted entries in append order (what a failover must replay).
  std::vector<WalEntry> UncommittedEntries() const;

  size_t size() const;
  std::vector<WalEntry> AllEntries() const;

 private:
  const sim::CostModel* model_;
  fault::FaultInjector* faults_ = nullptr;
  obs::Counter* appends_ = nullptr;
  obs::Counter* append_failures_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<WalEntry> entries_;
  int64_t next_id_ = 1;
};

}  // namespace synergy::txn
