// Write-ahead log for the Synergy transaction layer (§VIII).
//
// Each slave appends the statement payload with its transaction id before
// executing, and marks the entry committed afterwards. On slave failure the
// master replays the uncommitted suffix on a fresh slave. The log is
// in-memory (the simulated HDFS) with a per-append sync cost; thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"

namespace synergy::txn {

struct WalEntry {
  int64_t txn_id = 0;
  std::string payload;  // statement text + encoded params
  bool committed = false;
};

class Wal {
 public:
  explicit Wal(const sim::CostModel* model) : model_(model) {}

  /// Appends an entry (charging the WAL sync cost) and returns its id.
  int64_t Append(hbase::Session& s, const std::string& payload);

  /// Marks a transaction committed. Unknown ids are ignored (idempotent).
  void MarkCommitted(int64_t txn_id);

  /// Uncommitted entries in append order (what a failover must replay).
  std::vector<WalEntry> UncommittedEntries() const;

  size_t size() const;
  std::vector<WalEntry> AllEntries() const;

 private:
  const sim::CostModel* model_;
  mutable std::mutex mutex_;
  std::vector<WalEntry> entries_;
  int64_t next_id_ = 1;
};

}  // namespace synergy::txn
