// Tephra-like MVCC transaction manager used by the Baseline/MVCC-A/MVCC-UA
// systems (Phoenix + Tephra in the paper).
//
// A central transaction server hands out transaction ids (used as HBase
// timestamps) and snapshots of in-flight/invalid transactions. Reads exclude
// writes of excluded transactions; commit performs write-set conflict
// detection (first-committer-wins within the overlap window). The paper
// measures this machinery adding ~800-900 ms to every statement; the
// per-round-trip costs in the cost model reproduce that.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cluster.h"

namespace synergy::txn {

struct MvccTxn {
  int64_t txid = 0;
  /// Txns whose writes must be invisible to this one (in-flight at start,
  /// plus the invalid list).
  std::vector<int64_t> exclude;
  /// Keys written by this transaction ("table/rowkey").
  std::vector<std::string> write_set;

  /// Read view for store sessions (timestamp = txid).
  hbase::ReadView View() const {
    return hbase::ReadView{.read_ts = txid, .exclude = &exclude};
  }
};

class MvccManager {
 public:
  explicit MvccManager(hbase::Cluster* cluster) : cluster_(cluster) {}

  /// startTransaction round trip: allocates the txid and snapshot.
  StatusOr<MvccTxn> Start(hbase::Session& s);

  /// canCommit + commit round trips with conflict detection. On conflict the
  /// transaction is moved to the invalid list and kAborted is returned.
  Status Commit(hbase::Session& s, MvccTxn& txn);

  /// Aborts: the txid joins the invalid list so its writes stay invisible
  /// (Tephra-style; data cleanup happens at compaction).
  Status Abort(hbase::Session& s, MvccTxn& txn);

  size_t InFlightCount() const;
  size_t InvalidCount() const;

 private:
  hbase::Cluster* cluster_;
  mutable std::mutex mutex_;
  std::set<int64_t> in_flight_;
  std::vector<int64_t> invalid_;
  /// Recently committed: txid -> (commit sequence, write set).
  struct Committed {
    int64_t commit_seq;
    std::vector<std::string> write_set;
  };
  std::map<int64_t, Committed> committed_;
  int64_t commit_seq_ = 0;
};

}  // namespace synergy::txn
