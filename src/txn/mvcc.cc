#include "txn/mvcc.h"

#include <algorithm>

namespace synergy::txn {

StatusOr<MvccTxn> MvccManager::Start(hbase::Session& s) {
  s.meter().Charge(cluster_->cost_model().mvcc_start_us);
  std::lock_guard lock(mutex_);
  MvccTxn txn;
  txn.txid = cluster_->NextTimestamp();
  txn.exclude.assign(in_flight_.begin(), in_flight_.end());
  txn.exclude.insert(txn.exclude.end(), invalid_.begin(), invalid_.end());
  in_flight_.insert(txn.txid);
  return txn;
}

Status MvccManager::Commit(hbase::Session& s, MvccTxn& txn) {
  const auto& model = cluster_->cost_model();
  s.meter().Charge(model.mvcc_conflict_check_us + model.mvcc_commit_us);
  std::lock_guard lock(mutex_);
  if (!in_flight_.contains(txn.txid)) {
    return Status::FailedPrecondition("transaction not in flight");
  }
  // Conflict check against transactions that committed after we started
  // (their txid is unknown to our snapshot but their writes overlap ours).
  std::set<std::string> ours(txn.write_set.begin(), txn.write_set.end());
  for (const auto& [txid, info] : committed_) {
    if (txid < txn.txid) continue;  // committed before we started
    for (const std::string& key : info.write_set) {
      if (ours.contains(key)) {
        in_flight_.erase(txn.txid);
        invalid_.push_back(txn.txid);
        return Status::Aborted("write-write conflict on " + key);
      }
    }
  }
  in_flight_.erase(txn.txid);
  committed_[txn.txid] =
      Committed{++commit_seq_, std::move(txn.write_set)};
  // Prune the committed map: entries older than every in-flight txn can no
  // longer conflict with anyone.
  const int64_t oldest =
      in_flight_.empty() ? txn.txid : *in_flight_.begin();
  for (auto it = committed_.begin(); it != committed_.end();) {
    if (it->first < oldest) {
      it = committed_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status MvccManager::Abort(hbase::Session& s, MvccTxn& txn) {
  s.meter().Charge(cluster_->cost_model().mvcc_commit_us);
  std::lock_guard lock(mutex_);
  if (in_flight_.erase(txn.txid) == 0) {
    return Status::FailedPrecondition("transaction not in flight");
  }
  if (!txn.write_set.empty()) invalid_.push_back(txn.txid);
  return Status::Ok();
}

size_t MvccManager::InFlightCount() const {
  std::lock_guard lock(mutex_);
  return in_flight_.size();
}

size_t MvccManager::InvalidCount() const {
  std::lock_guard lock(mutex_);
  return invalid_.size();
}

}  // namespace synergy::txn
