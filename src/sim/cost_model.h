// Virtual-time cost model for the simulated cluster.
//
// Every client-visible operation (RPC to a region server, scan batch,
// transaction-server round trip, lock CheckAndPut, ...) charges virtual
// microseconds to the session's CostMeter. Reported benchmark response times
// are these virtual times, which makes runs deterministic and independent of
// the host machine.
//
// Calibration anchors (see DESIGN.md §5): parameters are chosen so that the
// *shapes* reported by the paper emerge from mechanics:
//   - Fig. 10: view scan 6-12x faster than the client-coordinated join at 50k
//     customers, gap growing with scale.
//   - Fig. 11: per-lock acquire+release ~ a couple of ms plus a fixed client
//     setup term (342 ms at 10 locks, 571 ms at 100, 2182 ms at 1000).
//   - Tephra MVCC adds ~800-900 ms per statement (start/canCommit/commit
//     round trips through a single transaction server plus snapshot work).
//   - VoltDB-like in-memory execution ~10x faster than HBase-backed scans.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace synergy::sim {

struct CostModel {
  // --- HBase layer (per region-server RPC) ---
  double rpc_base_us = 900.0;        // client<->region server round trip
  double rpc_per_kb_us = 28.0;       // network transfer per KiB of payload
  double server_seek_us = 140.0;     // locating a row (memstore+blockcache miss amortized)
  double server_scan_row_us = 3.2;   // sequential next() per row server-side
  double client_row_us = 1.1;        // client-side decode/handling per row
  int scan_batch_rows = 1000;        // rows fetched per scan RPC (Phoenix default-ish)

  // --- Client-side join work (Phoenix-style coordination) ---
  double join_build_row_us = 2.4;    // hash-table insert per build row
  double join_probe_row_us = 1.8;    // probe per probe row
  double join_emit_row_us = 2.6;     // materializing a joined output row
  double sort_row_log_us = 0.9;      // per row*log2(rows) for client sorts
  // Per-row coordination overhead of the client-side join path
  // (intermediate serialization, scan-cache pressure, JVM object churn in
  // the Phoenix client). Calibrated so the Fig. 10 micro-benchmark
  // reproduces the measured view-scan-vs-join gap (6x for the 2-way join,
  // ~12x for the 3-way join whose rows cross two operators).
  double join_row_overhead_us = 35.0;
  // Client joins whose build side exceeds this row count spill to a grace
  // hash join: every build/probe row pays an extra partitioning pass. This
  // is why the paper's deep join (Q2) falls further behind the view scan
  // as scale grows (11.7x vs 6x at 50k customers).
  size_t hash_join_spill_rows = 100000;
  double join_spill_row_us = 20.0;
  double agg_row_us = 1.2;           // hash-aggregate update per row

  // --- Tephra-like MVCC transaction server ---
  double mvcc_start_us = 320000.0;     // startTransaction round trip + snapshot
  double mvcc_commit_us = 350000.0;    // canCommit + commit round trips
  double mvcc_conflict_check_us = 180000.0;  // change-set conflict detection
  double mvcc_read_filter_row_us = 1.6;      // per-row visibility filtering

  // --- Synergy transaction layer ---
  double txn_layer_dispatch_us = 3000.0;  // client -> slave forwarding
  double wal_append_us = 40000.0;         // WAL append + HDFS pipeline sync
  double lock_rpc_us = 900.0;             // one CheckAndPut round trip
  double lock_client_setup_us = 320000.0; // htable/connection setup for a locking batch (Fig. 11 offset)

  // --- VoltDB-like NewSQL engine ---
  double volt_dispatch_us = 450.0;     // client -> partition executor
  double volt_row_us = 0.35;           // in-memory per-row processing
  double volt_replicated_round_us = 900.0;  // multi-partition coordination
  double volt_write_sync_us = 7000.0;  // command-log group commit (writes)

  // --- Storage accounting (Table III) ---
  double hbase_overhead_per_cell = 22.0;  // key+cf+qualifier+ts framing bytes
  double volt_overhead_per_row = 8.0;

  /// EC2-like preset used by all benchmarks (m4.4xlarge-ish cluster).
  static CostModel Ec2Like() { return CostModel{}; }
};

/// Per-session accumulator of virtual time. Each logical client session owns
/// one meter, but charges may arrive from another OS thread (a txn-layer
/// slave worker executes the write body against the client's session), so
/// accumulation is a relaxed atomic add — charges commute and the client
/// only reads the total after the submit future resolves.
class CostMeter {
 public:
  void Charge(double micros) {
    virtual_us_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Reset() { virtual_us_.store(0.0, std::memory_order_relaxed); }

  double micros() const {
    return virtual_us_.load(std::memory_order_relaxed);
  }
  double millis() const { return micros() / 1000.0; }

  /// Scoped measurement helper: returns elapsed virtual µs since `mark`.
  double Since(double mark) const { return micros() - mark; }

 private:
  std::atomic<double> virtual_us_{0.0};
};

/// Payload-size based RPC cost: base latency + transfer time.
double RpcCost(const CostModel& m, size_t payload_bytes);

std::string DescribeCostModel(const CostModel& m);

}  // namespace synergy::sim
