#include "sim/cost_model.h"

#include <sstream>

namespace synergy::sim {

double RpcCost(const CostModel& m, size_t payload_bytes) {
  return m.rpc_base_us +
         m.rpc_per_kb_us * (static_cast<double>(payload_bytes) / 1024.0);
}

std::string DescribeCostModel(const CostModel& m) {
  std::ostringstream os;
  os << "CostModel{rpc_base_us=" << m.rpc_base_us
     << ", rpc_per_kb_us=" << m.rpc_per_kb_us
     << ", server_scan_row_us=" << m.server_scan_row_us
     << ", scan_batch_rows=" << m.scan_batch_rows
     << ", mvcc_start_us=" << m.mvcc_start_us
     << ", mvcc_commit_us=" << m.mvcc_commit_us
     << ", lock_rpc_us=" << m.lock_rpc_us
     << ", volt_row_us=" << m.volt_row_us << "}";
  return os.str();
}

}  // namespace synergy::sim
