#include "concurrent/session_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace synergy::concurrent {

WorkloadReport RunClosedLoop(const DriverConfig& config,
                             const SessionFactory& factory) {
  const int n = config.threads > 0 ? config.threads : 1;
  std::vector<ThreadMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));

  const auto wall_start = std::chrono::steady_clock::now();
  for (int tid = 0; tid < n; ++tid) {
    workers.emplace_back([&, tid] {
      ThreadMetrics& m = metrics[static_cast<size_t>(tid)];
      const uint64_t seed = config.base_seed ^ static_cast<uint64_t>(tid);
      SessionOp op = factory(tid, seed);
      for (size_t i = 0; i < config.ops_per_thread; ++i) {
        ++m.offered;
        StatusOr<OpOutcome> outcome = op(i);
        if (!outcome.ok()) {
          ++m.errors;
          if (outcome.status().code() == StatusCode::kDeadlineExceeded) {
            ++m.deadline_errors;
          }
          if (outcome.status().code() == StatusCode::kResourceExhausted) {
            ++m.shed_errors;
          }
          if (m.first_error.ok()) m.first_error = outcome.status();
          continue;
        }
        ++m.ops;
        m.retries += outcome->retries;
        if (outcome->degraded > 0) ++m.degraded_ops;
        m.scan_errors_dropped += outcome->scan_errors_dropped;
        m.rpcs += outcome->rpcs;
        m.busy_virtual_us += outcome->virtual_us;
        m.latency_us.Add(outcome->virtual_us);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  return Aggregate(metrics, wall_seconds);
}

WorkloadReport RunOpenLoop(const OpenLoopConfig& config,
                           const OpenLoopFactory& factory) {
  const int n = config.threads > 0 ? config.threads : 1;
  const double per_thread_rate =
      config.offered_rate_per_sec / static_cast<double>(n);
  const double mean_gap_us =
      per_thread_rate > 0.0 ? 1e6 / per_thread_rate : 1e9;
  const double horizon_us = config.duration_virtual_sec * 1e6;

  std::vector<ThreadMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));

  const auto wall_start = std::chrono::steady_clock::now();
  for (int tid = 0; tid < n; ++tid) {
    workers.emplace_back([&, tid] {
      ThreadMetrics& m = metrics[static_cast<size_t>(tid)];
      const uint64_t seed = config.base_seed ^ static_cast<uint64_t>(tid);
      OpenLoopOp op = factory(tid, seed);
      // Arrival schedule RNG, decorrelated from the op stream the factory
      // seeds (same constant convention as tpcw_mix's mix RNG).
      Rng arrivals(seed * 0x9E3779B97F4A7C15ULL + 2);
      double clock_us = 0.0;    // the client's virtual clock
      double arrival_us = 0.0;  // next scheduled arrival
      size_t op_index = 0;
      for (;;) {
        const double gap_us =
            config.arrival == ArrivalDist::kPoisson
                ? -std::log(1.0 - arrivals.UniformReal(0.0, 1.0)) *
                      mean_gap_us
                : mean_gap_us;
        arrival_us += gap_us;
        if (arrival_us > horizon_us) break;
        ++m.offered;
        // The client serves arrivals in order; an op that arrives while the
        // previous one is still running waits in queue. Queued-start
        // accounting: its latency includes that wait.
        if (clock_us < arrival_us) clock_us = arrival_us;
        const double queue_delay_us = clock_us - arrival_us;
        if (config.max_queue_delay_us > 0.0 &&
            queue_delay_us > config.max_queue_delay_us) {
          // Client-side shed: the op is already so stale that issuing it
          // would spend capacity on work nobody is waiting for.
          ++m.abandoned;
          continue;
        }
        const OpResult r = op(op_index++);
        // Failed attempts still consumed the client: their cost advances
        // the clock and deepens the backlog behind them.
        clock_us += r.outcome.virtual_us;
        m.busy_virtual_us += r.outcome.virtual_us;
        m.scan_errors_dropped += r.outcome.scan_errors_dropped;
        m.rpcs += r.outcome.rpcs;
        if (!r.status.ok()) {
          ++m.errors;
          if (r.status.code() == StatusCode::kDeadlineExceeded) {
            ++m.deadline_errors;
          }
          if (r.status.code() == StatusCode::kResourceExhausted) {
            ++m.shed_errors;
          }
          if (m.first_error.ok()) m.first_error = r.status;
          continue;
        }
        ++m.ops;
        m.retries += r.outcome.retries;
        if (r.outcome.degraded > 0) ++m.degraded_ops;
        m.latency_us.Add(queue_delay_us + r.outcome.virtual_us);
      }
      // The run spans the arrival horizon plus whatever backlog drained
      // past it — goodput divides by this, so a system that limps through
      // a long drain tail is charged for it.
      m.span_virtual_us = std::max(clock_us, horizon_us);
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  WorkloadReport report = Aggregate(metrics, wall_seconds);
  report.offered_duration_seconds = config.duration_virtual_sec;
  return report;
}

}  // namespace synergy::concurrent
