#include "concurrent/session_driver.h"

#include <chrono>
#include <thread>
#include <vector>

namespace synergy::concurrent {

WorkloadReport RunClosedLoop(const DriverConfig& config,
                             const SessionFactory& factory) {
  const int n = config.threads > 0 ? config.threads : 1;
  std::vector<ThreadMetrics> metrics(static_cast<size_t>(n));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));

  const auto wall_start = std::chrono::steady_clock::now();
  for (int tid = 0; tid < n; ++tid) {
    workers.emplace_back([&, tid] {
      ThreadMetrics& m = metrics[static_cast<size_t>(tid)];
      const uint64_t seed = config.base_seed ^ static_cast<uint64_t>(tid);
      SessionOp op = factory(tid, seed);
      for (size_t i = 0; i < config.ops_per_thread; ++i) {
        StatusOr<OpOutcome> outcome = op(i);
        if (!outcome.ok()) {
          ++m.errors;
          if (outcome.status().code() == StatusCode::kDeadlineExceeded) {
            ++m.deadline_errors;
          }
          if (m.first_error.ok()) m.first_error = outcome.status();
          continue;
        }
        ++m.ops;
        m.retries += outcome->retries;
        if (outcome->degraded > 0) ++m.degraded_ops;
        m.busy_virtual_us += outcome->virtual_us;
        m.latency_us.Add(outcome->virtual_us);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  return Aggregate(metrics, wall_seconds);
}

}  // namespace synergy::concurrent
