#include "concurrent/tpcw_mix.h"

#include <memory>

#include "common/rng.h"

namespace synergy::concurrent {

MixConfig ReadOnlyMix() {
  return MixConfig{
      .name = "read",
      .read_fraction = 1.0,
      .reads = {"S1", "S2", "S6", "S7", "Q1", "Q8"},
      .writes = {},
  };
}

MixConfig MixedMix(double read_fraction) {
  return MixConfig{
      .name = "mixed",
      .read_fraction = read_fraction,
      .reads = {"S1", "S2", "S6", "S7", "Q1", "Q8"},
      .writes = {"W1", "W3", "W6", "W7", "W11", "W13"},
  };
}

MixConfig WriteHeavyMix() {
  return MixConfig{
      .name = "write",
      .read_fraction = 0.2,
      .reads = {"S1", "S2", "S7"},
      .writes = {"W1", "W3", "W6", "W7", "W11", "W13"},
  };
}

std::vector<MixConfig> StandardMixes() {
  return {ReadOnlyMix(), MixedMix(), WriteHeavyMix()};
}

namespace {

/// Thread-local statement chooser shared by both loop shapes: draws
/// read/write per the mix and binds fresh parameters deterministically.
struct StatementDraw {
  const std::string* stmt_id = nullptr;
  StatusOr<std::vector<Value>> params = Status::Internal("unset");
};

StatementDraw DrawStatement(const MixConfig& mix, Rng& rng,
                            tpcw::ParamProvider& params) {
  const bool is_read =
      mix.writes.empty() ||
      (!mix.reads.empty() && rng.UniformReal(0.0, 1.0) < mix.read_fraction);
  const std::vector<std::string>& pool = is_read ? mix.reads : mix.writes;
  StatementDraw draw;
  draw.stmt_id = &pool[static_cast<size_t>(
      rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
  draw.params = params.ParamsFor(*draw.stmt_id);
  return draw;
}

}  // namespace

WorkloadReport RunTpcwMix(const DriverConfig& driver,
                          const tpcw::ScaleConfig& scale, const MixConfig& mix,
                          const StatementExecFn& exec) {
  return RunClosedLoop(
      driver, [&](int thread_id, uint64_t seed) -> SessionOp {
        // All thread-local state lives in shared_ptrs captured by the op
        // closure; the factory runs on the worker thread itself.
        auto params = std::make_shared<tpcw::ParamProvider>(scale, seed);
        params->PartitionFreshIds(thread_id, driver.threads);
        // Decorrelate the mix RNG from the parameter RNG (same base seed
        // would replay the same stream).
        auto rng = std::make_shared<Rng>(seed * 0x9E3779B97F4A7C15ULL + 1);
        return [&exec, &mix, thread_id, params,
                rng](size_t) -> StatusOr<OpOutcome> {
          StatementDraw draw = DrawStatement(mix, *rng, *params);
          if (!draw.params.ok()) return draw.params.status();
          return exec(thread_id, *draw.stmt_id, *draw.params);
        };
      });
}

WorkloadReport RunTpcwMixOpenLoop(const OpenLoopConfig& config,
                                  const tpcw::ScaleConfig& scale,
                                  const MixConfig& mix,
                                  const OpenExecFactory& make_exec) {
  return RunOpenLoop(
      config, [&](int thread_id, uint64_t seed) -> OpenLoopOp {
        // Same thread-local seeding discipline as the closed loop, so a
        // given (seed, thread count) replays the same statement stream in
        // either loop shape.
        auto params = std::make_shared<tpcw::ParamProvider>(scale, seed);
        params->PartitionFreshIds(thread_id, config.threads);
        auto rng = std::make_shared<Rng>(seed * 0x9E3779B97F4A7C15ULL + 1);
        auto exec = std::make_shared<OpenStatementExecFn>(make_exec(thread_id));
        return [&mix, params, rng, exec](size_t) -> OpResult {
          StatementDraw draw = DrawStatement(mix, *rng, *params);
          if (!draw.params.ok()) {
            return OpResult(draw.params.status(), OpOutcome());
          }
          return (*exec)(*draw.stmt_id, *draw.params);
        };
      });
}

}  // namespace synergy::concurrent
