#include "concurrent/tpcw_mix.h"

#include <memory>

#include "common/rng.h"

namespace synergy::concurrent {

MixConfig ReadOnlyMix() {
  return MixConfig{
      .name = "read",
      .read_fraction = 1.0,
      .reads = {"S1", "S2", "S6", "S7", "Q1", "Q8"},
      .writes = {},
  };
}

MixConfig MixedMix(double read_fraction) {
  return MixConfig{
      .name = "mixed",
      .read_fraction = read_fraction,
      .reads = {"S1", "S2", "S6", "S7", "Q1", "Q8"},
      .writes = {"W1", "W3", "W6", "W7", "W11", "W13"},
  };
}

MixConfig WriteHeavyMix() {
  return MixConfig{
      .name = "write",
      .read_fraction = 0.2,
      .reads = {"S1", "S2", "S7"},
      .writes = {"W1", "W3", "W6", "W7", "W11", "W13"},
  };
}

std::vector<MixConfig> StandardMixes() {
  return {ReadOnlyMix(), MixedMix(), WriteHeavyMix()};
}

WorkloadReport RunTpcwMix(const DriverConfig& driver,
                          const tpcw::ScaleConfig& scale, const MixConfig& mix,
                          const StatementExecFn& exec) {
  return RunClosedLoop(
      driver, [&](int thread_id, uint64_t seed) -> SessionOp {
        // All thread-local state lives in shared_ptrs captured by the op
        // closure; the factory runs on the worker thread itself.
        auto params = std::make_shared<tpcw::ParamProvider>(scale, seed);
        params->PartitionFreshIds(thread_id, driver.threads);
        // Decorrelate the mix RNG from the parameter RNG (same base seed
        // would replay the same stream).
        auto rng = std::make_shared<Rng>(seed * 0x9E3779B97F4A7C15ULL + 1);
        return [&exec, &mix, thread_id, params,
                rng](size_t) -> StatusOr<OpOutcome> {
          const bool is_read =
              mix.writes.empty() ||
              (!mix.reads.empty() &&
               rng->UniformReal(0.0, 1.0) < mix.read_fraction);
          const std::vector<std::string>& pool =
              is_read ? mix.reads : mix.writes;
          const std::string& stmt_id = pool[static_cast<size_t>(
              rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
          SYNERGY_ASSIGN_OR_RETURN(p, params->ParamsFor(stmt_id));
          return exec(thread_id, stmt_id, p);
        };
      });
}

}  // namespace synergy::concurrent
