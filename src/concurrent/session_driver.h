// Closed-loop worker-thread driver for concurrent sessions.
//
// RunClosedLoop spawns N OS threads. Each thread asks the factory for its
// own op closure (the factory runs *on the worker thread*, so any state it
// builds — RNG, parameter provider, session — is thread-local by
// construction), then executes a fixed number of operations back-to-back
// with zero think time. Per-thread determinism comes from the seed
// convention: everything a thread randomizes must derive from
// `base_seed ^ thread_id`, so a run is replayable at any thread count.
//
// The driver deliberately knows nothing about SQL, TPC-W, or the systems
// under test: an operation is just a callback returning the op's virtual
// cost in microseconds (or an error). tpcw_mix.h builds TPC-W mixes on top;
// systems/harness.cc adapts EvaluatedSystem. This keeps the module's
// dependencies to common/ only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"
#include "concurrent/metrics.h"

namespace synergy::concurrent {

struct DriverConfig {
  int threads = 1;
  size_t ops_per_thread = 100;
  /// Per-thread seed = base_seed ^ thread_id (thread ids are 0..N-1).
  uint64_t base_seed = 7;
};

/// One client operation; returns the op's outcome (virtual µs cost plus any
/// retry/degraded counters; ops without them return `OpOutcome(cost_us)`).
/// Runs on a worker thread, `op_index` counts that thread's ops from 0.
using SessionOp = std::function<StatusOr<OpOutcome>(size_t op_index)>;

/// Builds the op closure for one worker thread; invoked on the worker
/// thread itself. Receives the thread id and the thread's seed
/// (base_seed ^ thread_id).
using SessionFactory = std::function<SessionOp(int thread_id, uint64_t seed)>;

/// Runs the closed loop and aggregates per-thread metrics. Operation errors
/// are counted (first one retained in the report), not fatal: a contended
/// run where some writes abort still reports the throughput it achieved.
WorkloadReport RunClosedLoop(const DriverConfig& config,
                             const SessionFactory& factory);

// ---------------------------------------------------------- open loop ----

/// Inter-arrival distribution of the open-loop schedule.
enum class ArrivalDist {
  kPoisson,  // exponential gaps (memoryless arrivals; the realistic default)
  kUniform,  // constant gaps (isolates queueing from arrival burstiness)
};

/// Open-loop (arrival-rate) load generation. Unlike the closed loop — where
/// a slow system implicitly throttles its own clients — arrivals here follow
/// a fixed virtual-time schedule that does not care how the system is doing,
/// which is how production traffic behaves and what exposes the goodput
/// cliff past saturation.
///
/// Latency is accounted from the *scheduled arrival*, not from when the op
/// actually started (queued-start accounting): an op that sat behind a
/// backlog reports queue delay + service time. This avoids coordinated
/// omission — a driver that only times service would silently under-report
/// exactly when the system is slowest.
struct OpenLoopConfig {
  int threads = 1;
  /// Aggregate offered arrival rate, ops per virtual second, split evenly
  /// across threads (each thread is an independent arrival process).
  double offered_rate_per_sec = 100.0;
  /// Arrival horizon per thread, virtual seconds. Threads keep draining
  /// their backlog past the horizon; the drain tail counts toward the
  /// run's virtual duration (span).
  double duration_virtual_sec = 10.0;
  ArrivalDist arrival = ArrivalDist::kPoisson;
  /// Per-thread seed = base_seed ^ thread_id, as in the closed loop.
  uint64_t base_seed = 7;
  /// > 0: client-side shedding — an op whose queue delay already exceeds
  /// this is abandoned without being issued (counted, not an error). 0
  /// disables (every arrival is executed no matter how stale).
  double max_queue_delay_us = 0.0;
};

/// One open-loop attempt: the status plus the virtual cost consumed *even
/// when the op failed* — failed work still occupies the client, which is
/// exactly what makes retry storms eat goodput.
struct OpResult {
  OpResult(Status s, OpOutcome o) : status(std::move(s)), outcome(o) {}
  OpResult(OpOutcome o) : outcome(o) {}  // NOLINT: implicit success
  Status status;
  OpOutcome outcome;
};

using OpenLoopOp = std::function<OpResult(size_t op_index)>;
using OpenLoopFactory = std::function<OpenLoopOp(int thread_id, uint64_t seed)>;

/// Runs the open-loop schedule and aggregates per-thread metrics. Reported
/// latencies are queue delay + service time for successful ops; offered,
/// abandoned, shed and error counts are tracked separately so goodput can
/// be compared against the offered rate.
WorkloadReport RunOpenLoop(const OpenLoopConfig& config,
                           const OpenLoopFactory& factory);

}  // namespace synergy::concurrent
