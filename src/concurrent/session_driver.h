// Closed-loop worker-thread driver for concurrent sessions.
//
// RunClosedLoop spawns N OS threads. Each thread asks the factory for its
// own op closure (the factory runs *on the worker thread*, so any state it
// builds — RNG, parameter provider, session — is thread-local by
// construction), then executes a fixed number of operations back-to-back
// with zero think time. Per-thread determinism comes from the seed
// convention: everything a thread randomizes must derive from
// `base_seed ^ thread_id`, so a run is replayable at any thread count.
//
// The driver deliberately knows nothing about SQL, TPC-W, or the systems
// under test: an operation is just a callback returning the op's virtual
// cost in microseconds (or an error). tpcw_mix.h builds TPC-W mixes on top;
// systems/harness.cc adapts EvaluatedSystem. This keeps the module's
// dependencies to common/ only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "concurrent/metrics.h"

namespace synergy::concurrent {

struct DriverConfig {
  int threads = 1;
  size_t ops_per_thread = 100;
  /// Per-thread seed = base_seed ^ thread_id (thread ids are 0..N-1).
  uint64_t base_seed = 7;
};

/// One client operation; returns the op's outcome (virtual µs cost plus any
/// retry/degraded counters; ops without them return `OpOutcome(cost_us)`).
/// Runs on a worker thread, `op_index` counts that thread's ops from 0.
using SessionOp = std::function<StatusOr<OpOutcome>(size_t op_index)>;

/// Builds the op closure for one worker thread; invoked on the worker
/// thread itself. Receives the thread id and the thread's seed
/// (base_seed ^ thread_id).
using SessionFactory = std::function<SessionOp(int thread_id, uint64_t seed)>;

/// Runs the closed loop and aggregates per-thread metrics. Operation errors
/// are counted (first one retained in the report), not fatal: a contended
/// run where some writes abort still reports the throughput it achieved.
WorkloadReport RunClosedLoop(const DriverConfig& config,
                             const SessionFactory& factory);

}  // namespace synergy::concurrent
