// Metrics collection for concurrent workload runs.
//
// Each worker thread owns a ThreadMetrics instance exclusively while its
// closed loop runs — no shared state, no locks, no atomics on the op path.
// After the workers join, the driver merges them into a WorkloadReport.
//
// Throughput is reported in *virtual* time: the run's duration is the
// maximum over threads of per-thread virtual busy time (the slowest client
// determines when the run "ends", exactly as wall-clock would on real
// hardware). On this repo's cost model that makes scaling curves
// host-independent: threads that contend on the same root lock accumulate
// retry charges, so contention lowers virtual throughput the same way it
// would on a real cluster. Wall-clock throughput is also recorded, but on a
// single-vCPU host it measures the simulator, not the modeled system.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace synergy::concurrent {

/// Result of one successful client operation. Constructible from a bare
/// virtual-µs cost so ops that don't track robustness counters stay terse.
struct OpOutcome {
  OpOutcome() = default;
  OpOutcome(double us) : virtual_us(us) {}  // NOLINT: implicit by design
  OpOutcome(double us, size_t r, size_t d)
      : virtual_us(us), retries(r), degraded(d) {}
  OpOutcome(double us, size_t r, size_t d, size_t scan_drops)
      : virtual_us(us), retries(r), degraded(d),
        scan_errors_dropped(scan_drops) {}
  OpOutcome(double us, size_t r, size_t d, size_t scan_drops, size_t rpc_count)
      : virtual_us(us), retries(r), degraded(d),
        scan_errors_dropped(scan_drops), rpcs(rpc_count) {}

  double virtual_us = 0.0;  // simulated cost of the op
  size_t retries = 0;       // RPC/txn retries the op consumed
  size_t degraded = 0;      // reads served at bounded staleness
  size_t scan_errors_dropped = 0;  // scanners dropped with unchecked errors
  size_t rpcs = 0;  // store RPCs the op issued (incl. retried attempts)
};

/// Per-worker-thread counters; exclusively owned by one thread during the
/// run, merged after join.
struct ThreadMetrics {
  LatencyHistogram latency_us;  // virtual µs per completed operation
  size_t offered = 0;           // operations issued (closed) / arrived (open)
  size_t ops = 0;               // completed (successful) operations
  size_t errors = 0;            // failed operations
  size_t retries = 0;           // retries consumed by successful ops
  size_t degraded_ops = 0;      // ops that read degraded (stale-bounded) data
  size_t deadline_errors = 0;   // errors that were deadline expirations
  size_t shed_errors = 0;       // errors that were overload rejections
  size_t abandoned = 0;         // open loop: ops dropped by the client after
                                // waiting out max_queue_delay_us unstarted
  size_t scan_errors_dropped = 0;  // scanners dropped with unchecked errors
  size_t rpcs = 0;              // store RPCs issued (all outcomes, incl.
                                // failed attempts — they hit the store too)
  double busy_virtual_us = 0.0; // sum of per-op virtual time on this thread
  double span_virtual_us = 0.0; // open loop: thread clock when the run ended
                                // (arrival horizon plus backlog drain)
  Status first_error = Status::Ok();
};

/// Aggregate view of one concurrent run.
struct WorkloadReport {
  int threads = 0;
  size_t total_offered = 0;
  size_t total_ops = 0;
  size_t total_errors = 0;
  size_t total_retries = 0;        // retries consumed across all threads
  size_t total_degraded_ops = 0;   // ops served from a degraded region
  size_t total_deadline_errors = 0;  // errors that were deadline expirations
  size_t total_shed_errors = 0;      // errors that were overload rejections
  size_t total_abandoned = 0;        // open loop: client-abandoned arrivals
  size_t total_scan_errors_dropped = 0;  // unchecked scan errors (see Scanner)
  size_t total_rpcs = 0;             // store RPCs issued across all threads
  double wall_seconds = 0.0;
  double virtual_seconds = 0.0;  // open loop: max thread span; closed loop:
                                 // max busy virtual time
  double offered_duration_seconds = 0.0;  // open loop: arrival horizon
  LatencyHistogram latency_us;   // merged across all threads
  Status first_error = Status::Ok();

  /// Operations per simulated second (the primary, host-independent figure).
  double virtual_throughput() const {
    return virtual_seconds > 0.0
               ? static_cast<double>(total_ops) / virtual_seconds
               : 0.0;
  }
  /// Open loop: arrival rate actually generated over the horizon.
  double offered_rate() const {
    return offered_duration_seconds > 0.0
               ? static_cast<double>(total_offered) / offered_duration_seconds
               : 0.0;
  }
  /// Successfully completed ops per simulated second — under overload this
  /// plateaus (graceful degradation) or collapses (retry storms), which is
  /// the curve bench_overload plots against offered_rate().
  double goodput() const { return virtual_throughput(); }
  /// Store RPCs per completed op — the client-coordination overhead figure
  /// benches report next to latency (retried attempts included).
  double rpcs_per_op() const {
    return total_ops > 0
               ? static_cast<double>(total_rpcs) /
                     static_cast<double>(total_ops)
               : 0.0;
  }
  /// Operations per wall second (simulator speed; secondary).
  double wall_throughput() const {
    return wall_seconds > 0.0 ? static_cast<double>(total_ops) / wall_seconds
                              : 0.0;
  }

  double p50_ms() const { return latency_us.Percentile(50) / 1000.0; }
  double p95_ms() const { return latency_us.Percentile(95) / 1000.0; }
  double p99_ms() const { return latency_us.Percentile(99) / 1000.0; }
  double mean_ms() const { return latency_us.mean() / 1000.0; }
};

/// Merges per-thread metrics into a run report.
WorkloadReport Aggregate(const std::vector<ThreadMetrics>& per_thread,
                         double wall_seconds);

}  // namespace synergy::concurrent
