#include "concurrent/metrics.h"

#include <algorithm>

namespace synergy::concurrent {

WorkloadReport Aggregate(const std::vector<ThreadMetrics>& per_thread,
                         double wall_seconds) {
  WorkloadReport report;
  report.threads = static_cast<int>(per_thread.size());
  report.wall_seconds = wall_seconds;
  double max_busy_us = 0.0;
  double max_span_us = 0.0;
  for (const ThreadMetrics& t : per_thread) {
    report.total_offered += t.offered;
    report.total_ops += t.ops;
    report.total_errors += t.errors;
    report.total_retries += t.retries;
    report.total_degraded_ops += t.degraded_ops;
    report.total_deadline_errors += t.deadline_errors;
    report.total_shed_errors += t.shed_errors;
    report.total_abandoned += t.abandoned;
    report.total_scan_errors_dropped += t.scan_errors_dropped;
    report.total_rpcs += t.rpcs;
    report.latency_us.Merge(t.latency_us);
    max_busy_us = std::max(max_busy_us, t.busy_virtual_us);
    max_span_us = std::max(max_span_us, t.span_virtual_us);
    if (report.first_error.ok() && !t.first_error.ok()) {
      report.first_error = t.first_error;
    }
  }
  // Open-loop threads report a span (arrival horizon + backlog drain);
  // closed-loop threads only accumulate busy time.
  report.virtual_seconds =
      (max_span_us > 0.0 ? max_span_us : max_busy_us) / 1e6;
  return report;
}

}  // namespace synergy::concurrent
