// Closed-loop TPC-W mix driver: N concurrent clients drawing reads/writes
// from the workload's statement pool.
//
// Each worker thread owns a deterministically seeded ParamProvider
// (seed = base_seed ^ thread_id, fresh-id stream partitioned by thread) and
// an independent mix RNG, so a run at any thread count is replayable and
// concurrent inserts never collide on generated keys. The system under test
// is abstracted behind StatementExecFn; systems/harness.cc adapts
// EvaluatedSystem so every system (Synergy, Baseline, MVCC-*) can be driven
// without this module depending on them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "concurrent/session_driver.h"
#include "tpcw/generator.h"

namespace synergy::concurrent {

/// A read/write statement mix: an op is a read with probability
/// `read_fraction`, and the statement is drawn uniformly from the
/// corresponding pool.
struct MixConfig {
  std::string name;
  double read_fraction = 1.0;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};

/// The three standard mixes of the concurrent bench. Reads span cheap
/// single-table lookups and the order-display / cart joins; writes center
/// on the ordering path (Orders/Order_line/Shopping_cart inserts, Customer
/// and cart updates) so concurrent clients contend on root locks.
MixConfig ReadOnlyMix();
MixConfig MixedMix(double read_fraction = 0.8);
MixConfig WriteHeavyMix();
std::vector<MixConfig> StandardMixes();

/// Executes one bound statement for a client thread; returns the op outcome
/// (virtual µs plus retry/degraded counters).
using StatementExecFn = std::function<StatusOr<OpOutcome>(
    int thread_id, const std::string& stmt_id,
    const std::vector<Value>& params)>;

/// Runs the closed-loop mix with `driver.threads` concurrent clients.
WorkloadReport RunTpcwMix(const DriverConfig& driver,
                          const tpcw::ScaleConfig& scale,
                          const MixConfig& mix, const StatementExecFn& exec);

/// Executes one bound statement for an open-loop client; the outcome's cost
/// must be valid even on error (failed work still occupies the client).
using OpenStatementExecFn = std::function<OpResult(
    const std::string& stmt_id, const std::vector<Value>& params)>;

/// Builds the per-thread statement executor for the open loop; runs on the
/// worker thread, so persistent client state (a session whose retry budget
/// and circuit breaker survive across statements) is thread-local by
/// construction.
using OpenExecFactory = std::function<OpenStatementExecFn(int thread_id)>;

/// Runs the open-loop (arrival-rate) mix: same statement/parameter draw as
/// the closed loop, driven by RunOpenLoop's virtual-time arrival schedule.
WorkloadReport RunTpcwMixOpenLoop(const OpenLoopConfig& config,
                                  const tpcw::ScaleConfig& scale,
                                  const MixConfig& mix,
                                  const OpenExecFactory& make_exec);

}  // namespace synergy::concurrent
