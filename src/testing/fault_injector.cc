#include "testing/fault_injector.h"

#include <cstdlib>
#include <sstream>

namespace synergy::fault {

namespace {

constexpr const char* kNames[kNumFaultPoints] = {
    "crash-after-wal-append", "crash-before-execute", "drop-lock-release",
    "region-rpc-failure",     "region-rpc-ack-lost",  "wal-append-failure",
    "server-crash",           "heartbeat-loss",       "rpc-timeout",
    "dirty-read-restart",     "overload-burst",
};

constexpr char kInjectedPrefix[] = "injected fault: ";

}  // namespace

const char* FaultPointName(FaultPoint point) {
  const int i = static_cast<int>(point);
  return (i >= 0 && i < kNumFaultPoints) ? kNames[i] : "unknown";
}

std::optional<FaultPoint> FaultPointFromName(std::string_view name) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (name == kNames[i]) return static_cast<FaultPoint>(i);
  }
  return std::nullopt;
}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(ArmedRule{std::move(rule), 0, 0});
}

void FaultInjector::Arm(FaultPoint point, int skip_hits, int max_fires) {
  FaultRule rule;
  rule.point = point;
  rule.skip_hits = skip_hits;
  rule.max_fires = max_fires;
  AddRule(std::move(rule));
}

void FaultInjector::Disarm(FaultPoint point) {
  std::lock_guard lock(mutex_);
  std::erase_if(rules_, [point](const ArmedRule& armed) {
    return armed.rule.point == point;
  });
}

void FaultInjector::DisarmAll() {
  std::lock_guard lock(mutex_);
  rules_.clear();
}

bool FaultInjector::ShouldFire(FaultPoint point, const FaultSite& site) {
  std::lock_guard lock(mutex_);
  ++hits_[static_cast<size_t>(point)];
  bool fire = false;
  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (rule.point != point) continue;
    if (!rule.table_prefix.empty() &&
        site.table.substr(0, rule.table_prefix.size()) != rule.table_prefix) {
      continue;
    }
    if (rule.server_id >= 0 && site.server_id != rule.server_id) continue;
    const int64_t seen = armed.hits_seen++;
    if (seen < rule.skip_hits) continue;
    if (rule.max_fires >= 0 && armed.fires >= rule.max_fires) continue;
    if (rule.probability < 1.0 &&
        rng_.UniformReal(0.0, 1.0) >= rule.probability) {
      continue;
    }
    ++armed.fires;
    fire = true;
  }
  if (fire) ++fires_[static_cast<size_t>(point)];
  return fire;
}

Status FaultInjector::InjectedFault(FaultPoint point) const {
  std::string message = kInjectedPrefix + std::string(FaultPointName(point));
  // Dirty-read restarts are transaction aborts, not node failures: they must
  // drive the executor's §VIII-C restart loop rather than slave failover.
  if (point == FaultPoint::kDirtyReadRestart) {
    return Status::Aborted(std::move(message));
  }
  return Status::Unavailable(std::move(message));
}

int64_t FaultInjector::HitCount(FaultPoint point) const {
  std::lock_guard lock(mutex_);
  return hits_[static_cast<size_t>(point)];
}

int64_t FaultInjector::FireCount(FaultPoint point) const {
  std::lock_guard lock(mutex_);
  return fires_[static_cast<size_t>(point)];
}

int64_t FaultInjector::TotalFires() const {
  std::lock_guard lock(mutex_);
  int64_t total = 0;
  for (const int64_t f : fires_) total += f;
  return total;
}

std::string FaultInjector::Report() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "fault injector (seed " << seed_ << "):";
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (hits_[static_cast<size_t>(i)] == 0) continue;
    out << " " << kNames[i] << "=" << fires_[static_cast<size_t>(i)] << "/"
        << hits_[static_cast<size_t>(i)];
  }
  return out.str();
}

bool IsInjectedFault(const Status& status) {
  return (status.code() == StatusCode::kUnavailable ||
          status.code() == StatusCode::kAborted) &&
         status.message().rfind(kInjectedPrefix, 0) == 0;
}

uint64_t TestSeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("SYNERGY_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return default_seed;
  return static_cast<uint64_t>(parsed);
}

std::vector<uint64_t> TestSeedsFromEnv(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("SYNERGY_TEST_SEED");
  if (env == nullptr || *env == '\0') return defaults;
  const uint64_t sentinel = ~uint64_t{0};
  const uint64_t seed = TestSeedFromEnv(sentinel);
  if (seed == sentinel) return defaults;
  return {seed};
}

int ChaosScaleFromEnv() {
  const char* env = std::getenv("SYNERGY_CHAOS_ITERS");
  if (env == nullptr || *env == '\0') return 1;
  const int scale = std::atoi(env);
  return scale >= 1 ? scale : 1;
}

}  // namespace synergy::fault
