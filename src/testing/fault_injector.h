// Deterministic fault-injection layer for the txn/view stack.
//
// Subsystems expose *named fault points* (slave crashes at specific steps of
// the write protocol, region RPC loss, WAL append failure, dropped lock
// releases) and consult a shared FaultInjector at each one. Tests arm the
// points with a *schedule*: either deterministic ("let N hits pass, then
// fire K times") or probabilistic (fire with probability p, drawn from a
// seeded RNG). Given the same seed and the same sequence of fault-point
// hits, a schedule fires at exactly the same places, so every chaos run is
// replayable from a single integer (see docs/TESTING.md).
//
// The injector is passive when no rules are armed and absent (nullptr) in
// production paths, so the hooks cost one branch on the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace synergy::fault {

/// Every named fault point in the system. Keep FaultPointName in sync.
enum class FaultPoint : int {
  /// Slave dies after appending to its WAL, before acquiring the root lock.
  /// Recovery replays the entry; no lock is orphaned.
  kCrashAfterWalAppend = 0,
  /// Slave dies holding the root lock, before executing the body. The lock
  /// is intentionally leaked (§VIII-C read-committed across failures).
  kCrashBeforeExecute,
  /// The lock-release RPC is lost after the body executed; the slave dies
  /// holding the lock with its WAL entry uncommitted. Recovery re-executes
  /// the body (which must be idempotent) and releases the lock.
  kDropLockRelease,
  /// A store RPC (Put/Get/Delete/CheckAndPut/Increment/Scan) fails before
  /// reaching the region: the request is lost, nothing is applied.
  kRegionRpcFailure,
  /// A mutating store RPC (Put/Delete) is applied by the region but the
  /// acknowledgement is lost: the client sees an error for work that
  /// happened. Never injected on CheckAndPut/Increment, whose effects are
  /// not idempotent and would make the ambiguity unrecoverable.
  kRegionRpcAckLost,
  /// The WAL append itself fails (simulated HDFS hiccup); the write is
  /// rejected before any state changed.
  kWalAppendFailure,
  /// A whole region server crashes: its in-memory stores are wiped and the
  /// failover layer must detect the loss, reassign the regions and replay
  /// their region WALs. Consulted per live server on each heartbeat round;
  /// filter with FaultRule::server_id to target one server.
  kRegionServerCrash,
  /// A live server's heartbeat is lost for one round: the server keeps its
  /// data but the membership layer sees it as silent. Enough consecutive
  /// losses expire the lease and the server is fenced (regions move without
  /// replay — the store is intact, so replaying would duplicate versions).
  kHeartbeatLoss,
  /// A store RPC times out before reaching the region (lost in flight,
  /// nothing applied) — same recovery contract as region-rpc-failure but
  /// surfaced with a timeout message so retry taxonomies can distinguish it.
  kRpcTimeout,
  /// Forces the §VIII-C dirty-read detection path: a scanned row is treated
  /// as dirty, aborting the statement so the executor's restart loop runs.
  /// Surfaces as kAborted (not kUnavailable) — the only point that does.
  kDirtyReadRestart,
  /// A burst of synthetic load slams the serving region server: the
  /// admission controller is told to account `burst_ops` phantom in-flight
  /// operations against it, which drain one per completed real op (or per
  /// shed decision, so oversized bursts clear instead of wedging the
  /// server). Real traffic behind the burst queues or is shed
  /// (kResourceExhausted) until the burst drains. Only has an effect when
  /// admission control is enabled; the burst lands before the triggering
  /// RPC's own admission decision, so that op already feels it.
  kOverloadBurst,
};

inline constexpr int kNumFaultPoints = 11;

/// Stable, kebab-case name used in schedules, logs and docs.
const char* FaultPointName(FaultPoint point);
std::optional<FaultPoint> FaultPointFromName(std::string_view name);

/// Where a fault-point hit happened; rules can filter on it. RPC-level
/// points carry the store table and serving region server; txn-level points
/// leave the defaults.
struct FaultSite {
  std::string_view table = {};
  int server_id = -1;
};

/// One armed schedule entry. Eligible hits are those matching the point and
/// the table/server filters; of these, the first `skip_hits` pass, then each
/// fires with `probability` until `max_fires` faults have been injected.
struct FaultRule {
  FaultPoint point = FaultPoint::kRegionRpcFailure;
  double probability = 1.0;
  int skip_hits = 0;
  int max_fires = -1;        // -1 = unlimited
  std::string table_prefix;  // empty = any table ("__lock_" targets locks)
  int server_id = -1;        // -1 = any region server
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }

  void AddRule(FaultRule rule);
  /// Deterministic shorthand: let `skip_hits` eligible hits pass, then fire
  /// on the next `max_fires` hits.
  void Arm(FaultPoint point, int skip_hits = 0, int max_fires = 1);
  void Disarm(FaultPoint point);
  void DisarmAll();

  /// Consulted by instrumented code at each fault-point hit. Advances every
  /// matching rule and returns true if any of them fires.
  bool ShouldFire(FaultPoint point, const FaultSite& site = {});

  /// The error an injected fault surfaces as (always kUnavailable, message
  /// prefixed "injected fault:" with the point name).
  Status InjectedFault(FaultPoint point) const;

  int64_t HitCount(FaultPoint point) const;
  int64_t FireCount(FaultPoint point) const;
  int64_t TotalFires() const;
  /// Per-point hits/fires summary for failure messages.
  std::string Report() const;

 private:
  struct ArmedRule {
    FaultRule rule;
    int64_t hits_seen = 0;
    int fires = 0;
  };

  uint64_t seed_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<ArmedRule> rules_;
  std::array<int64_t, kNumFaultPoints> hits_{};
  std::array<int64_t, kNumFaultPoints> fires_{};
};

/// True if `status` came from FaultInjector::InjectedFault.
bool IsInjectedFault(const Status& status);

// ---- Seeded-replay helpers (shared by the randomized test suites) ----

/// SYNERGY_TEST_SEED as an integer, or `default_seed` when unset/invalid.
/// Failing randomized tests print their seed; exporting it replays the run.
uint64_t TestSeedFromEnv(uint64_t default_seed);

/// The default seed list, or the single SYNERGY_TEST_SEED override when set
/// (so a whole parameterized suite collapses to the failing instance).
std::vector<uint64_t> TestSeedsFromEnv(std::vector<uint64_t> defaults);

/// SYNERGY_CHAOS_ITERS as a >=1 iteration multiplier (default 1). The
/// scheduled CI job sets this to run the chaos suite at larger counts.
int ChaosScaleFromEnv();

}  // namespace synergy::fault
