#include "newsql/voltdb_sim.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace synergy::newsql {

sim::CostModel VoltCostModel() {
  sim::CostModel m;
  // In-memory stored-procedure engine: no per-RPC network hop per scan
  // batch, sub-microsecond row work, no HBase framing.
  m.rpc_base_us = 2.0;         // local data access inside the partition
  m.rpc_per_kb_us = 2.5;
  m.server_seek_us = 0.8;
  m.server_scan_row_us = 0.35;
  m.client_row_us = 0.05;
  m.scan_batch_rows = 100000;
  m.join_build_row_us = 0.4;
  m.join_probe_row_us = 0.3;
  m.join_emit_row_us = 0.4;
  m.join_row_overhead_us = 0.0;  // no client-coordinated join machinery
  m.sort_row_log_us = 0.15;
  m.agg_row_us = 0.2;
  m.lock_rpc_us = 0.0;
  m.hbase_overhead_per_cell = 0.0;
  m.volt_replicated_round_us = 300.0;  // intra-cluster MP coordination
  return m;
}

std::vector<PartitionScheme> TpcwSchemes() {
  std::vector<PartitionScheme> schemes;
  // P1 "customer-centric": order history and carts by owner chain.
  schemes.push_back(PartitionScheme{
      "P1-customer",
      {{"Customer", "c_id"},
       {"Orders", "o_c_id"},
       {"Order_line", "ol_o_id"},
       {"CC_Xacts", "cx_o_id"},
       {"Address", "addr_id"},
       {"Item", "i_id"},
       {"Author", "a_id"},
       {"Shopping_cart", "sc_id"},
       {"Shopping_cart_line", "scl_sc_id"}}});
  // P2 "item-centric": lines co-partitioned with items.
  schemes.push_back(PartitionScheme{
      "P2-item",
      {{"Customer", "c_id"},
       {"Orders", "o_id"},
       {"Order_line", "ol_i_id"},
       {"CC_Xacts", "cx_o_id"},
       {"Address", "addr_id"},
       {"Item", "i_id"},
       {"Author", "a_id"},
       {"Shopping_cart", "sc_id"},
       {"Shopping_cart_line", "scl_i_id"}}});
  // P3 "author-centric": items co-partitioned with authors.
  schemes.push_back(PartitionScheme{
      "P3-author",
      {{"Customer", "c_id"},
       {"Orders", "o_id"},
       {"Order_line", "ol_o_id"},
       {"CC_Xacts", "cx_o_id"},
       {"Address", "addr_id"},
       {"Item", "i_a_id"},
       {"Author", "a_id"},
       {"Shopping_cart", "sc_id"},
       {"Shopping_cart_line", "scl_sc_id"}}});
  return schemes;
}

namespace {

/// Union-find over (alias index, column) pairs.
class ColumnClasses {
 public:
  int Id(int alias, const std::string& column) {
    const std::string key = std::to_string(alias) + "." + column;
    auto [it, inserted] = ids_.try_emplace(key, static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      x = parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }

 private:
  std::map<std::string, int> ids_;
  std::vector<int> parent_;
};

int AliasOf(const sql::SelectStatement& stmt, const sql::Catalog& catalog,
            const sql::ColumnRef& ref) {
  if (!ref.qualifier.empty()) {
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (stmt.from[i].alias == ref.qualifier) return static_cast<int>(i);
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const sql::RelationDef* rel = catalog.FindRelation(stmt.from[i].table);
    if (rel != nullptr && rel->HasColumn(ref.column)) {
      if (found >= 0) return -1;
      found = static_cast<int>(i);
    }
  }
  return found;
}

}  // namespace

bool IsSupported(const sql::SelectStatement& stmt, const sql::Catalog& catalog,
                 const PartitionScheme& scheme) {
  ColumnClasses classes;
  std::set<int> const_classes;  // classes pinned by a constant equality
  for (const sql::Predicate& p : stmt.where) {
    if (p.op != sql::CompareOp::kEq) continue;
    const bool lhs_col = p.lhs.kind == sql::Operand::Kind::kColumn;
    const bool rhs_col = p.rhs.kind == sql::Operand::Kind::kColumn;
    if (lhs_col && rhs_col) {
      const int la = AliasOf(stmt, catalog, p.lhs.column);
      const int ra = AliasOf(stmt, catalog, p.rhs.column);
      if (la < 0 || ra < 0) continue;
      classes.Union(classes.Id(la, p.lhs.column.column),
                    classes.Id(ra, p.rhs.column.column));
    } else if (lhs_col || rhs_col) {
      const sql::ColumnRef& ref = lhs_col ? p.lhs.column : p.rhs.column;
      const int a = AliasOf(stmt, catalog, ref);
      if (a >= 0) const_classes.insert(classes.Id(a, ref.column));
    }
  }
  // Collect each partitioned alias's partition-column class.
  std::vector<int> part_classes;
  std::vector<bool> pinned;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const std::string& table = stmt.from[i].table;
    if (scheme.IsReplicated(table)) continue;
    const std::string& col = scheme.partition_column.at(table);
    part_classes.push_back(classes.Id(static_cast<int>(i), col));
  }
  if (part_classes.size() <= 1) return true;
  // Re-resolve const pins after all unions.
  std::set<int> pinned_roots;
  for (const int c : const_classes) pinned_roots.insert(classes.Find(c));
  // All partitioned tables joined on partition columns (same class), or
  // each independently pinned to a constant.
  const int first_root = classes.Find(part_classes.front());
  bool all_same = true;
  bool all_pinned = true;
  for (const int c : part_classes) {
    if (classes.Find(c) != first_root) all_same = false;
    if (!pinned_roots.contains(classes.Find(c))) all_pinned = false;
  }
  return all_same || all_pinned;
}

VoltDb::VoltDb(std::vector<PartitionScheme> schemes)
    : schemes_(std::move(schemes)),
      cluster_(std::make_unique<hbase::Cluster>(VoltCostModel())) {}

Status VoltDb::Init(const sql::Catalog& base_catalog) {
  for (const sql::RelationDef* rel : base_catalog.Relations()) {
    if (base_catalog.IsView(rel->name)) continue;
    SYNERGY_RETURN_IF_ERROR(catalog_.AddRelation(*rel));
    for (const sql::IndexDef* ix : base_catalog.IndexesFor(rel->name)) {
      SYNERGY_RETURN_IF_ERROR(catalog_.AddIndex(*ix));
    }
  }
  adapter_ = std::make_unique<exec::TableAdapter>(cluster_.get(), &catalog_);
  executor_ = std::make_unique<exec::Executor>(adapter_.get());
  for (const sql::RelationDef* rel : catalog_.Relations()) {
    SYNERGY_RETURN_IF_ERROR(adapter_->CreateStorage(rel->name));
  }
  return Status::Ok();
}

Status VoltDb::Load(const std::string& relation, const exec::Tuple& tuple) {
  hbase::Session s(cluster_.get());
  return adapter_->Insert(s, relation, tuple);
}

StatusOr<VoltDb::ExecResult> VoltDb::Execute(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  if (const auto* sel = std::get_if<sql::SelectStatement>(&stmt)) {
    return ExecuteSelect(*sel, params);
  }
  return ExecuteWrite(stmt, params);
}

StatusOr<VoltDb::ExecResult> VoltDb::ExecuteSelect(
    const sql::SelectStatement& stmt, const std::vector<Value>& params) {
  const PartitionScheme* chosen = nullptr;
  for (const PartitionScheme& scheme : schemes_) {
    if (IsSupported(stmt, catalog_, scheme)) {
      chosen = &scheme;
      break;
    }
  }
  if (chosen == nullptr) {
    return Status::Unimplemented(
        "join not expressible under any VoltDB partitioning scheme");
  }
  hbase::Session s(cluster_.get());
  const sim::CostModel& m = cluster_->cost_model();
  s.meter().Charge(m.volt_dispatch_us);
  // Multi-partition coordination when no partition column is pinned.
  bool pinned = false;
  for (const sql::Predicate& p : stmt.where) {
    if (p.op != sql::CompareOp::kEq || p.IsColumnColumn()) continue;
    const sql::ColumnRef& ref = p.lhs.kind == sql::Operand::Kind::kColumn
                                    ? p.lhs.column
                                    : p.rhs.column;
    for (const auto& [table, col] : chosen->partition_column) {
      if (ref.column == col) pinned = true;
    }
  }
  if (!pinned) s.meter().Charge(m.volt_replicated_round_us);
  exec::ExecOptions options;
  options.collect_rows = false;
  SYNERGY_ASSIGN_OR_RETURN(result,
                           executor_->ExecuteSelect(s, stmt, params, options));
  ExecResult out;
  out.virtual_ms = s.meter().millis();
  out.rows = result.row_count;
  out.scheme = chosen->name;
  return out;
}

StatusOr<VoltDb::ExecResult> VoltDb::ExecuteWrite(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  hbase::Session s(cluster_.get());
  const sim::CostModel& m = cluster_->cost_model();
  s.meter().Charge(m.volt_dispatch_us + m.volt_write_sync_us);
  const sql::Statement bound = sql::BindParams(stmt, params);
  if (const auto* ins = std::get_if<sql::InsertStatement>(&bound)) {
    exec::Tuple tuple;
    for (size_t i = 0; i < ins->columns.size(); ++i) {
      SYNERGY_ASSIGN_OR_RETURN(v,
                               exec::ResolveConstOperand(ins->values[i], {}));
      if (!v.is_null()) tuple[ins->columns[i]] = std::move(v);
    }
    SYNERGY_RETURN_IF_ERROR(adapter_->Insert(s, ins->table, tuple));
  } else {
    // UPDATE / DELETE keyed by full PK (the workloads guarantee this).
    const sql::RelationDef* rel = nullptr;
    const std::vector<sql::Predicate>* where = nullptr;
    if (const auto* upd = std::get_if<sql::UpdateStatement>(&bound)) {
      rel = catalog_.FindRelation(upd->table);
      where = &upd->where;
    } else if (const auto* del = std::get_if<sql::DeleteStatement>(&bound)) {
      rel = catalog_.FindRelation(del->table);
      where = &del->where;
    } else {
      return Status::InvalidArgument("unsupported statement");
    }
    if (rel == nullptr) return Status::NotFound("relation");
    std::vector<Value> pk;
    for (const std::string& pkcol : rel->primary_key) {
      bool found = false;
      for (const sql::Predicate& p : *where) {
        if (p.op != sql::CompareOp::kEq) continue;
        if (p.lhs.kind == sql::Operand::Kind::kColumn &&
            p.lhs.column.column == pkcol &&
            p.rhs.kind != sql::Operand::Kind::kColumn) {
          SYNERGY_ASSIGN_OR_RETURN(v, exec::ResolveConstOperand(p.rhs, {}));
          pk.push_back(std::move(v));
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Unimplemented("write must bind the full primary key");
      }
    }
    if (const auto* upd = std::get_if<sql::UpdateStatement>(&bound)) {
      std::vector<std::pair<std::string, Value>> sets;
      for (const auto& [col, op] : upd->assignments) {
        SYNERGY_ASSIGN_OR_RETURN(v, exec::ResolveConstOperand(op, {}));
        sets.emplace_back(col, std::move(v));
      }
      SYNERGY_RETURN_IF_ERROR(adapter_->UpdateByPk(s, upd->table, pk, sets));
    } else {
      const auto& del = std::get<sql::DeleteStatement>(bound);
      SYNERGY_RETURN_IF_ERROR(adapter_->DeleteByPk(s, del.table, pk));
    }
  }
  ExecResult out;
  out.virtual_ms = s.meter().millis();
  out.rows = 1;
  return out;
}

double VoltDb::DbSizeBytes() const {
  double total = 0;
  for (const hbase::TableSizeInfo& info : cluster_->SizeReport()) {
    total += static_cast<double>(info.bytes) +
             cluster_->cost_model().volt_overhead_per_row *
                 static_cast<double>(info.rows);
  }
  return total;
}

}  // namespace synergy::newsql
