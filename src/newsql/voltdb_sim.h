// VoltDB-like NewSQL engine simulation.
//
// Models what matters for the paper's comparison: in-memory speed (tiny
// per-row and dispatch costs), single-threaded serial partition execution,
// and the expressiveness restriction that partitioned tables may only be
// joined on equality of their partitioning columns. Three TPC-W
// partitioning schemes are provided (the paper needed three to cover the
// maximum number of joins; under any single scheme fewer than 50% work).
// Queries Q3/Q7/Q9/Q10 are unsupported under every scheme, as in Fig. 12.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "sql/workload.h"

namespace synergy::newsql {

/// Cost model tuned for an in-memory, stored-procedure engine.
sim::CostModel VoltCostModel();

struct PartitionScheme {
  std::string name;
  /// table -> partitioning column; tables absent from the map are
  /// replicated to every site.
  std::map<std::string, std::string> partition_column;

  bool IsReplicated(const std::string& table) const {
    return !partition_column.contains(table);
  }
};

/// The three schemes used for TPC-W.
std::vector<PartitionScheme> TpcwSchemes();

/// Whether a SELECT is expressible under `scheme`: every pair of
/// partitioned FROM tables must be connected through join equalities on
/// their partitioning columns (or each pinned to a constant).
bool IsSupported(const sql::SelectStatement& stmt, const sql::Catalog& catalog,
                 const PartitionScheme& scheme);

class VoltDb {
 public:
  explicit VoltDb(std::vector<PartitionScheme> schemes = TpcwSchemes());

  /// Copies base relations + indexes (no views: VoltDB uses none, Fig. 13).
  Status Init(const sql::Catalog& base_catalog);

  Status Load(const std::string& relation, const exec::Tuple& tuple);

  struct ExecResult {
    double virtual_ms = 0;
    size_t rows = 0;
    std::string scheme;  // scheme that supported the query
  };

  /// Executes a statement; SELECTs fail with kUnimplemented when no scheme
  /// supports them.
  StatusOr<ExecResult> Execute(const sql::Statement& stmt,
                               const std::vector<Value>& params);

  double DbSizeBytes() const;
  hbase::Cluster* storage() { return cluster_.get(); }

 private:
  StatusOr<ExecResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                     const std::vector<Value>& params);
  StatusOr<ExecResult> ExecuteWrite(const sql::Statement& stmt,
                                    const std::vector<Value>& params);

  std::vector<PartitionScheme> schemes_;
  sql::Catalog catalog_;
  std::unique_ptr<hbase::Cluster> cluster_;  // reused as in-memory storage
  std::unique_ptr<exec::TableAdapter> adapter_;
  std::unique_ptr<exec::Executor> executor_;
};

}  // namespace synergy::newsql
