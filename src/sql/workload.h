// Workload model (§II-B): a set of SQL statements, each with an identifier
// and an optional relative frequency used by selection heuristics.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace synergy::sql {

struct WorkloadStatement {
  std::string id;      // e.g. "Q1", "W13"
  std::string sql;
  Statement ast;
  double frequency = 1.0;
};

struct Workload {
  std::vector<WorkloadStatement> statements;

  Status Add(std::string id, const std::string& sql, double frequency = 1.0) {
    SYNERGY_ASSIGN_OR_RETURN(ast, Parse(sql));
    statements.push_back(
        WorkloadStatement{std::move(id), sql, std::move(ast), frequency});
    return Status::Ok();
  }

  const WorkloadStatement* Find(const std::string& id) const {
    for (const WorkloadStatement& s : statements) {
      if (s.id == id) return &s;
    }
    return nullptr;
  }
};

}  // namespace synergy::sql
