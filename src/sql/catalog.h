// Relational catalog: relations, primary/foreign keys, covered indexes.
//
// Models §II-A of the paper: a relation R is a set of attributes with a
// primary key PK(R) and a set of foreign keys F(R); an index X(R) is a set of
// covered attributes indexed on a tuple Xtuple(R), with index key
// Xtuple(R) ++ PK(R). Views are registered as relations plus ViewDef
// metadata (their member path) so the executor can treat them uniformly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace synergy::sql {

struct Column {
  std::string name;
  DataType type = DataType::kString;
};

struct ForeignKey {
  /// Referencing columns, positionally matching the referenced PK.
  std::vector<std::string> columns;
  std::string ref_relation;
};

struct RelationDef {
  std::string name;
  std::vector<Column> columns;
  // Defaulted so designated initializers may omit them (keeps aggregate
  // construction clean under -Wextra's -Wmissing-field-initializers).
  std::vector<std::string> primary_key = {};
  std::vector<ForeignKey> foreign_keys = {};

  bool HasColumn(const std::string& col) const;
  std::optional<DataType> ColumnType(const std::string& col) const;
  /// Position of `col` in `columns`, or -1. Slot index for slot-based rows.
  int ColumnIndex(const std::string& col) const;
  std::vector<DataType> PrimaryKeyTypes() const;
  bool IsPrimaryKeyColumn(const std::string& col) const;
};

/// Coarse statistics hint for planner cardinality estimates.
enum class IndexCardinality {
  kUnknown,  // no statistics: assume rows/100 per key prefix
  kLow,      // few distinct keys (e.g. subject): assume rows/20
  kHigh,     // many distinct keys (e.g. a foreign key): assume rows/1000
};

struct IndexDef {
  std::string name;
  std::string relation;
  /// Xtuple(R): the attributes the index is indexed upon.
  std::vector<std::string> indexed_columns;
  /// X(R): all covered attributes (includes indexed columns and the PK).
  std::vector<std::string> covered_columns = {};
  /// True when the indexed tuple uniquely identifies a row (e.g. c_uname).
  bool unique = false;
  IndexCardinality cardinality = IndexCardinality::kUnknown;
};

/// Metadata for a materialized view (a path of relations in a rooted tree).
struct ViewDef {
  std::string name;
  /// Relation names, root-most first; the view key is the last relation's PK.
  std::vector<std::string> relations;
  /// For i>0, the FK columns of relations[i] referencing relations[i-1].
  std::vector<ForeignKey> edges;
  std::string root;  // root relation of the rooted tree this path came from
};

class Catalog {
 public:
  Status AddRelation(RelationDef def);
  Status AddIndex(IndexDef def);
  Status AddView(ViewDef view, RelationDef storage);

  const RelationDef* FindRelation(const std::string& name) const;
  const IndexDef* FindIndex(const std::string& name) const;
  const ViewDef* FindView(const std::string& name) const;
  bool IsView(const std::string& relation) const;

  std::vector<const IndexDef*> IndexesFor(const std::string& relation) const;
  std::vector<const RelationDef*> Relations() const;
  std::vector<const ViewDef*> Views() const;

  /// The FK of `child` that references `parent`'s PK, if any.
  const ForeignKey* FindForeignKey(const std::string& child,
                                   const std::string& parent) const;

 private:
  std::map<std::string, RelationDef> relations_;
  std::map<std::string, IndexDef> indexes_;
  std::map<std::string, ViewDef> views_;
};

}  // namespace synergy::sql
