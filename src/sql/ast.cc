#include "sql/ast.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace synergy::sql {

namespace {

// Renders a double so that re-lexing it yields the same double again:
// shortest round-trip digits, with a forced ".0" suffix when the result
// would otherwise tokenize as an integer. Statements are replayed from
// their SQL text (WAL payloads), so literal rendering must be lossless.
std::string DoubleLiteralToString(double d) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  std::string out(buf, ptr);
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

std::string StringLiteralToString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone: return "";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kColumn: return column.ToString();
    case Kind::kLiteral:
      if (literal.is_null()) return literal.ToString();
      switch (literal.type()) {
        case DataType::kString:
          return StringLiteralToString(literal.as_string());
        case DataType::kDouble:
          return DoubleLiteralToString(literal.as_double());
        default:
          return literal.ToString();
      }
    case Kind::kParam: return "?";
  }
  return "?";
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + CompareOpName(op) + " " + rhs.ToString();
}

std::string SelectItem::ToString() const {
  std::string body = count_star ? "*" : column.ToString();
  std::string s =
      agg == AggFunc::kNone ? body : std::string(AggFuncName(agg)) + "(" + body + ")";
  if (star) s = "*";
  if (!output_name.empty() && !star) s += " AS " + output_name;
  return s;
}

bool SelectStatement::HasAggregates() const {
  return std::any_of(items.begin(), items.end(), [](const SelectItem& i) {
    return i.agg != AggFunc::kNone;
  });
}

std::string SelectStatement::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i].ToString();
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].table;
    if (from[i].alias != from[i].table) os << " AS " << from[i].alias;
  }
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      os << where[i].ToString();
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i].ToString();
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].column.ToString();
      if (order_by[i].descending) os << " DESC";
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

std::string InsertStatement::ToString() const {
  std::ostringstream os;
  os << "INSERT INTO " << table << " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns[i];
  }
  os << ") VALUES (";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i].ToString();
  }
  os << ")";
  return os.str();
}

std::string UpdateStatement::ToString() const {
  std::ostringstream os;
  os << "UPDATE " << table << " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) os << ", ";
    os << assignments[i].first << " = " << assignments[i].second.ToString();
  }
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      os << where[i].ToString();
    }
  }
  return os.str();
}

std::string DeleteStatement::ToString() const {
  std::ostringstream os;
  os << "DELETE FROM " << table;
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      os << where[i].ToString();
    }
  }
  return os.str();
}

std::string StatementToString(const Statement& stmt) {
  return std::visit([](const auto& s) { return s.ToString(); }, stmt);
}

bool IsReadStatement(const Statement& stmt) {
  return std::holds_alternative<SelectStatement>(stmt);
}

namespace {

int CountOperandParams(const Operand& op) {
  return op.kind == Operand::Kind::kParam ? 1 : 0;
}

int CountPredicateParams(const std::vector<Predicate>& preds) {
  int n = 0;
  for (const Predicate& p : preds) {
    n += CountOperandParams(p.lhs) + CountOperandParams(p.rhs);
  }
  return n;
}

}  // namespace

namespace {

void BindOperand(Operand* op, const std::vector<Value>& params) {
  if (op->kind != Operand::Kind::kParam) return;
  if (op->param_index >= 0 &&
      static_cast<size_t>(op->param_index) < params.size()) {
    *op = Operand::Lit(params[static_cast<size_t>(op->param_index)]);
  }
}

void BindPredicates(std::vector<Predicate>* preds,
                    const std::vector<Value>& params) {
  for (Predicate& p : *preds) {
    BindOperand(&p.lhs, params);
    BindOperand(&p.rhs, params);
  }
}

}  // namespace

Statement BindParams(const Statement& stmt, const std::vector<Value>& params) {
  Statement out = stmt;
  if (auto* sel = std::get_if<SelectStatement>(&out)) {
    BindPredicates(&sel->where, params);
  } else if (auto* ins = std::get_if<InsertStatement>(&out)) {
    for (Operand& v : ins->values) BindOperand(&v, params);
  } else if (auto* upd = std::get_if<UpdateStatement>(&out)) {
    for (auto& [col, v] : upd->assignments) BindOperand(&v, params);
    BindPredicates(&upd->where, params);
  } else if (auto* del = std::get_if<DeleteStatement>(&out)) {
    BindPredicates(&del->where, params);
  }
  return out;
}

int CountParams(const Statement& stmt) {
  if (const auto* sel = std::get_if<SelectStatement>(&stmt)) {
    return CountPredicateParams(sel->where);
  }
  if (const auto* ins = std::get_if<InsertStatement>(&stmt)) {
    int n = 0;
    for (const Operand& v : ins->values) n += CountOperandParams(v);
    return n;
  }
  if (const auto* upd = std::get_if<UpdateStatement>(&stmt)) {
    int n = CountPredicateParams(upd->where);
    for (const auto& [col, v] : upd->assignments) n += CountOperandParams(v);
    return n;
  }
  const auto& del = std::get<DeleteStatement>(stmt);
  return CountPredicateParams(del.where);
}

}  // namespace synergy::sql
