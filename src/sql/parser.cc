#include "sql/parser.h"

#include <cstdlib>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace synergy::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    if (IsKeyword("SELECT")) return ParseSelect();
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("UPDATE")) return ParseUpdate();
    if (IsKeyword("DELETE")) return ParseDelete();
    return Err("expected SELECT/INSERT/UPDATE/DELETE");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool IsKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool IsSymbol(const char* sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool AcceptSymbol(const char* sym) {
    if (!IsSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::Ok();
    return Status::InvalidArgument(std::string("expected ") + kw + " near '" +
                                   Peek().text + "' (offset " +
                                   std::to_string(Peek().offset) + ")");
  }
  Status ExpectSymbol(const char* sym) {
    if (AcceptSymbol(sym)) return Status::Ok();
    return Status::InvalidArgument(std::string("expected '") + sym +
                                   "' near '" + Peek().text + "' (offset " +
                                   std::to_string(Peek().offset) + ")");
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near '" + Peek().text +
                                   "' (offset " +
                                   std::to_string(Peek().offset) + ")");
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) return Err("expected identifier");
    return Advance().text;
  }

  /// colref := ident ['.' ident]
  StatusOr<ColumnRef> ParseColumnRef() {
    SYNERGY_ASSIGN_OR_RETURN(first, ExpectIdent());
    ColumnRef ref;
    if (AcceptSymbol(".")) {
      SYNERGY_ASSIGN_OR_RETURN(col, ExpectIdent());
      ref.qualifier = first;
      ref.column = col;
    } else {
      ref.column = first;
    }
    return ref;
  }

  StatusOr<Operand> ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
      case TokenType::kDouble:
      case TokenType::kString: {
        Operand op = Operand::Lit(t.value);
        Advance();
        return op;
      }
      case TokenType::kSymbol:
        if (t.text == "?") {
          Advance();
          return Operand::Param(next_param_++);
        }
        return Err("expected operand");
      case TokenType::kIdent: {
        if (EqualsIgnoreCase(t.text, "NULL")) {
          Advance();
          return Operand::Lit(Value());
        }
        SYNERGY_ASSIGN_OR_RETURN(col, ParseColumnRef());
        return Operand::Col(col);
      }
      default:
        return Err("expected operand");
    }
  }

  StatusOr<CompareOp> ParseCompareOp() {
    const Token& t = Peek();
    if (t.type != TokenType::kSymbol) return Err("expected comparison");
    CompareOp op;
    if (t.text == "=") op = CompareOp::kEq;
    else if (t.text == "<>") op = CompareOp::kNe;
    else if (t.text == "<") op = CompareOp::kLt;
    else if (t.text == "<=") op = CompareOp::kLe;
    else if (t.text == ">") op = CompareOp::kGt;
    else if (t.text == ">=") op = CompareOp::kGe;
    else return Err("expected comparison operator");
    Advance();
    return op;
  }

  StatusOr<std::vector<Predicate>> ParseWhere() {
    std::vector<Predicate> preds;
    do {
      Predicate p;
      SYNERGY_ASSIGN_OR_RETURN(lhs, ParseOperand());
      p.lhs = lhs;
      SYNERGY_ASSIGN_OR_RETURN(op, ParseCompareOp());
      p.op = op;
      SYNERGY_ASSIGN_OR_RETURN(rhs, ParseOperand());
      p.rhs = rhs;
      preds.push_back(std::move(p));
    } while (AcceptKeyword("AND"));
    return preds;
  }

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
        {"AVG", AggFunc::kAvg}};
    for (const auto& [name, fn] : kAggs) {
      if (IsKeyword(name) && IsSymbol("(", 1)) {
        Advance();  // agg name
        Advance();  // (
        item.agg = fn;
        if (AcceptSymbol("*")) {
          if (fn != AggFunc::kCount) return Err("only COUNT(*) allows *");
          item.count_star = true;
        } else {
          SYNERGY_ASSIGN_OR_RETURN(col, ParseColumnRef());
          item.column = col;
        }
        SYNERGY_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (AcceptKeyword("AS")) {
          SYNERGY_ASSIGN_OR_RETURN(alias, ExpectIdent());
          item.output_name = alias;
        } else {
          item.output_name = std::string(AggFuncName(fn)) + "(" +
                             (item.count_star ? "*" : item.column.ToString()) +
                             ")";
        }
        return item;
      }
    }
    SYNERGY_ASSIGN_OR_RETURN(col, ParseColumnRef());
    item.column = col;
    item.output_name = col.column;
    if (AcceptKeyword("AS")) {
      SYNERGY_ASSIGN_OR_RETURN(alias, ExpectIdent());
      item.output_name = alias;
    }
    return item;
  }

  StatusOr<Statement> ParseSelect() {
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement sel;
    if (AcceptSymbol("*")) {
      SelectItem star;
      star.star = true;
      sel.items.push_back(star);
    } else {
      do {
        SYNERGY_ASSIGN_OR_RETURN(item, ParseSelectItem());
        sel.items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    do {
      SYNERGY_ASSIGN_OR_RETURN(table, ExpectIdent());
      TableRef ref;
      ref.table = table;
      ref.alias = table;
      if (AcceptKeyword("AS")) {
        SYNERGY_ASSIGN_OR_RETURN(alias, ExpectIdent());
        ref.alias = alias;
      } else if (Peek().type == TokenType::kIdent && !IsReservedHere()) {
        ref.alias = Advance().text;  // bare alias: FROM Customer c
      }
      sel.from.push_back(std::move(ref));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      SYNERGY_ASSIGN_OR_RETURN(preds, ParseWhere());
      sel.where = std::move(preds);
    }
    if (AcceptKeyword("GROUP")) {
      SYNERGY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        SYNERGY_ASSIGN_OR_RETURN(col, ParseColumnRef());
        sel.group_by.push_back(col);
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("ORDER")) {
      SYNERGY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        SYNERGY_ASSIGN_OR_RETURN(col, ParseColumnRef());
        item.column = col;
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        sel.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInt) return Err("expected LIMIT count");
      sel.limit = Advance().value.as_int();
    }
    SYNERGY_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(sel));
  }

  /// Whether the next identifier is a clause keyword (so not a bare alias).
  bool IsReservedHere() const {
    for (const char* kw :
         {"WHERE", "GROUP", "ORDER", "LIMIT", "AND", "AS", "FROM"}) {
      if (IsKeyword(kw)) return true;
    }
    return false;
  }

  StatusOr<Statement> ParseInsert() {
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement ins;
    SYNERGY_ASSIGN_OR_RETURN(table, ExpectIdent());
    ins.table = table;
    SYNERGY_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      SYNERGY_ASSIGN_OR_RETURN(col, ExpectIdent());
      ins.columns.push_back(col);
    } while (AcceptSymbol(","));
    SYNERGY_RETURN_IF_ERROR(ExpectSymbol(")"));
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    SYNERGY_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      SYNERGY_ASSIGN_OR_RETURN(op, ParseOperand());
      if (op.kind == Operand::Kind::kColumn) {
        return Err("column reference not allowed in VALUES");
      }
      ins.values.push_back(std::move(op));
    } while (AcceptSymbol(","));
    SYNERGY_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (ins.columns.size() != ins.values.size()) {
      return Status::InvalidArgument("INSERT column/value count mismatch");
    }
    SYNERGY_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(ins));
  }

  StatusOr<Statement> ParseUpdate() {
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStatement upd;
    SYNERGY_ASSIGN_OR_RETURN(table, ExpectIdent());
    upd.table = table;
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      SYNERGY_ASSIGN_OR_RETURN(col, ExpectIdent());
      SYNERGY_RETURN_IF_ERROR(ExpectSymbol("="));
      SYNERGY_ASSIGN_OR_RETURN(val, ParseOperand());
      if (val.kind == Operand::Kind::kColumn) {
        return Err("column expressions not supported in SET");
      }
      upd.assignments.emplace_back(col, std::move(val));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      SYNERGY_ASSIGN_OR_RETURN(preds, ParseWhere());
      upd.where = std::move(preds);
    }
    SYNERGY_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(upd));
  }

  StatusOr<Statement> ParseDelete() {
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    SYNERGY_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement del;
    SYNERGY_ASSIGN_OR_RETURN(table, ExpectIdent());
    del.table = table;
    if (AcceptKeyword("WHERE")) {
      SYNERGY_ASSIGN_OR_RETURN(preds, ParseWhere());
      del.where = std::move(preds);
    }
    SYNERGY_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(del));
  }

  Status ExpectEnd() {
    if (Peek().type == TokenType::kEnd) return Status::Ok();
    return Err("unexpected trailing input");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

StatusOr<Statement> Parse(const std::string& sql) {
  SYNERGY_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Statement MustParse(const std::string& sql) {
  StatusOr<Statement> stmt = Parse(sql);
  if (!stmt.ok()) {
    std::fprintf(stderr, "MustParse(%s): %s\n", sql.c_str(),
                 stmt.status().ToString().c_str());
    std::abort();
  }
  return std::move(*stmt);
}

}  // namespace synergy::sql
