#include "sql/lexer.h"

#include <cctype>

namespace synergy::sql {

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      // Identifiers may embed '-' when followed by a letter/underscore, so
      // view names like "Customer-Orders" lex as one token ('-' before a
      // digit still starts a numeric literal).
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_' ||
                       (sql[j] == '-' && j + 1 < n &&
                        (std::isalpha(static_cast<unsigned char>(sql[j + 1])) ||
                         sql[j + 1] == '_')))) {
        ++j;
      }
      tokens.push_back(
          {TokenType::kIdent, sql.substr(i, j - i), Value(), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_double = true;
        ++j;
      }
      // Exponent suffix ("1e10", "6.95e+08"): only consumed when digits
      // follow, so identifiers such as `e` in `Employee AS e` still lex
      // as their own tokens.
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          ++k;
          while (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) ++k;
          j = k;
          is_double = true;
        }
      }
      const std::string text = sql.substr(i, j - i);
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDouble;
        t.value = Value(std::stod(text));
      } else {
        t.type = TokenType::kInt;
        t.value = Value(static_cast<int64_t>(std::stoll(text)));
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string lit;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            lit.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        lit.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kString, lit, Value(lit), start});
      i = j;
      continue;
    }
    // Symbols, longest match first.
    if (c == '<') {
      if (i + 1 < n && sql[i + 1] == '>') {
        tokens.push_back({TokenType::kSymbol, "<>", Value(), start});
        i += 2;
        continue;
      }
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back({TokenType::kSymbol, "<=", Value(), start});
        i += 2;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, "<", Value(), start});
      ++i;
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back({TokenType::kSymbol, ">=", Value(), start});
        i += 2;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, ">", Value(), start});
      ++i;
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tokens.push_back({TokenType::kSymbol, "<>", Value(), start});
      i += 2;
      continue;
    }
    const std::string singles = ",().*?=";
    if (singles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), Value(), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }
  tokens.push_back({TokenType::kEnd, "", Value(), n});
  return tokens;
}

}  // namespace synergy::sql
