#include "sql/catalog.h"

#include <algorithm>

namespace synergy::sql {

bool RelationDef::HasColumn(const std::string& col) const {
  return std::any_of(columns.begin(), columns.end(),
                     [&](const Column& c) { return c.name == col; });
}

std::optional<DataType> RelationDef::ColumnType(const std::string& col) const {
  for (const Column& c : columns) {
    if (c.name == col) return c.type;
  }
  return std::nullopt;
}

int RelationDef::ColumnIndex(const std::string& col) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col) return static_cast<int>(i);
  }
  return -1;
}

std::vector<DataType> RelationDef::PrimaryKeyTypes() const {
  std::vector<DataType> types;
  types.reserve(primary_key.size());
  for (const std::string& pk : primary_key) {
    types.push_back(ColumnType(pk).value_or(DataType::kString));
  }
  return types;
}

bool RelationDef::IsPrimaryKeyColumn(const std::string& col) const {
  return std::find(primary_key.begin(), primary_key.end(), col) !=
         primary_key.end();
}

Status Catalog::AddRelation(RelationDef def) {
  if (def.name.empty()) return Status::InvalidArgument("empty relation name");
  if (def.primary_key.empty()) {
    return Status::InvalidArgument("relation " + def.name + " has no PK");
  }
  for (const std::string& pk : def.primary_key) {
    if (!def.HasColumn(pk)) {
      return Status::InvalidArgument("PK column " + pk + " not in relation " +
                                     def.name);
    }
  }
  if (relations_.contains(def.name)) {
    return Status::AlreadyExists("relation " + def.name);
  }
  relations_.emplace(def.name, std::move(def));
  return Status::Ok();
}

Status Catalog::AddIndex(IndexDef def) {
  const RelationDef* rel = FindRelation(def.relation);
  if (rel == nullptr) {
    return Status::NotFound("relation " + def.relation + " for index " +
                            def.name);
  }
  for (const std::string& col : def.indexed_columns) {
    if (!rel->HasColumn(col)) {
      return Status::InvalidArgument("index column " + col + " not in " +
                                     def.relation);
    }
  }
  // Covered columns default to indexed + PK; always include both.
  for (const std::string& col : def.indexed_columns) {
    if (std::find(def.covered_columns.begin(), def.covered_columns.end(),
                  col) == def.covered_columns.end()) {
      def.covered_columns.push_back(col);
    }
  }
  for (const std::string& col : rel->primary_key) {
    if (std::find(def.covered_columns.begin(), def.covered_columns.end(),
                  col) == def.covered_columns.end()) {
      def.covered_columns.push_back(col);
    }
  }
  if (indexes_.contains(def.name)) {
    return Status::AlreadyExists("index " + def.name);
  }
  indexes_.emplace(def.name, std::move(def));
  return Status::Ok();
}

Status Catalog::AddView(ViewDef view, RelationDef storage) {
  if (view.name != storage.name) {
    return Status::InvalidArgument("view/storage name mismatch");
  }
  SYNERGY_RETURN_IF_ERROR(AddRelation(std::move(storage)));
  views_.emplace(view.name, std::move(view));
  return Status::Ok();
}

const RelationDef* Catalog::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const IndexDef* Catalog::FindIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second;
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

bool Catalog::IsView(const std::string& relation) const {
  return views_.contains(relation);
}

std::vector<const IndexDef*> Catalog::IndexesFor(
    const std::string& relation) const {
  std::vector<const IndexDef*> out;
  for (const auto& [name, def] : indexes_) {
    if (def.relation == relation) out.push_back(&def);
  }
  return out;
}

std::vector<const RelationDef*> Catalog::Relations() const {
  std::vector<const RelationDef*> out;
  out.reserve(relations_.size());
  for (const auto& [name, def] : relations_) out.push_back(&def);
  return out;
}

std::vector<const ViewDef*> Catalog::Views() const {
  std::vector<const ViewDef*> out;
  out.reserve(views_.size());
  for (const auto& [name, def] : views_) out.push_back(&def);
  return out;
}

const ForeignKey* Catalog::FindForeignKey(const std::string& child,
                                          const std::string& parent) const {
  const RelationDef* rel = FindRelation(child);
  if (rel == nullptr) return nullptr;
  for (const ForeignKey& fk : rel->foreign_keys) {
    if (fk.ref_relation == parent) return &fk;
  }
  return nullptr;
}

}  // namespace synergy::sql
