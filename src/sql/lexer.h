// SQL tokenizer for the supported subset.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace synergy::sql {

enum class TokenType {
  kIdent,    // keyword or identifier (case preserved; compared case-insensitively)
  kInt,
  kDouble,
  kString,   // 'quoted'
  kSymbol,   // one of: , ( ) . * ? = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier text or symbol spelling
  Value value;        // literal value for kInt/kDouble/kString
  size_t offset = 0;  // position in the input, for error messages
};

StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace synergy::sql
