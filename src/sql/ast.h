// Abstract syntax for the SQL subset the paper's workloads use:
// single-statement SELECT (equi joins, conjunctive filters, GROUP BY,
// ORDER BY, LIMIT, aggregates), INSERT, UPDATE, DELETE, with `?` parameters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/value.h"

namespace synergy::sql {

struct TableRef {
  std::string table;
  std::string alias;  // equals `table` when no alias was written
};

struct ColumnRef {
  std::string qualifier;  // table alias; empty if unqualified
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  bool operator==(const ColumnRef&) const = default;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CompareOpName(CompareOp op);

/// A predicate operand: column reference, literal, or `?` parameter.
struct Operand {
  enum class Kind { kColumn, kLiteral, kParam };
  Kind kind = Kind::kLiteral;
  ColumnRef column;   // kColumn
  Value literal;      // kLiteral
  int param_index = -1;  // kParam

  static Operand Col(ColumnRef c) {
    return Operand{Kind::kColumn, std::move(c), Value(), -1};
  }
  static Operand Lit(Value v) {
    return Operand{Kind::kLiteral, ColumnRef{}, std::move(v), -1};
  }
  static Operand Param(int index) {
    return Operand{Kind::kParam, ColumnRef{}, Value(), index};
  }
  std::string ToString() const;
};

/// One conjunct of the WHERE clause.
struct Predicate {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  bool IsColumnColumn() const {
    return lhs.kind == Operand::Kind::kColumn &&
           rhs.kind == Operand::Kind::kColumn;
  }
  /// True for col = col predicates (join candidates).
  bool IsEquiJoin() const { return op == CompareOp::kEq && IsColumnColumn(); }
  std::string ToString() const;
};

enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };
const char* AggFuncName(AggFunc f);

struct SelectItem {
  bool star = false;      // SELECT *
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;       // unused when star (and for COUNT(*))
  bool count_star = false;
  std::string output_name;  // AS alias, or derived
  std::string ToString() const;
};

struct OrderItem {
  ColumnRef column;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Predicate> where;  // conjunctive
  std::vector<ColumnRef> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  bool HasAggregates() const;
  std::string ToString() const;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;
  std::vector<Operand> values;  // literals or params
  std::string ToString() const;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Operand>> assignments;
  std::vector<Predicate> where;
  std::string ToString() const;
};

struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;
  std::string ToString() const;
};

using Statement = std::variant<SelectStatement, InsertStatement,
                               UpdateStatement, DeleteStatement>;

std::string StatementToString(const Statement& stmt);
bool IsReadStatement(const Statement& stmt);

/// Number of `?` parameters the statement expects.
int CountParams(const Statement& stmt);

/// Returns a copy of the statement with every `?` replaced by the matching
/// literal from `params` (used for WAL payloads and replay).
Statement BindParams(const Statement& stmt, const std::vector<Value>& params);

}  // namespace synergy::sql
