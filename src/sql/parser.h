// Recursive-descent parser for the supported SQL subset.
//
// Grammar (case-insensitive keywords):
//   select  := SELECT items FROM table_refs [WHERE conj] [GROUP BY cols]
//              [ORDER BY col [DESC|ASC] (, ...)] [LIMIT n]
//   items   := '*' | item (',' item)*
//   item    := [agg '('] colref | '*' [')'] [AS ident]
//   insert  := INSERT INTO ident '(' cols ')' VALUES '(' operands ')'
//   update  := UPDATE ident SET ident '=' operand (',' ...)* [WHERE conj]
//   delete  := DELETE FROM ident [WHERE conj]
//   conj    := pred (AND pred)*
//   pred    := operand cmp operand
//   operand := colref | literal | '?'
#pragma once

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace synergy::sql {

StatusOr<Statement> Parse(const std::string& sql);

/// Convenience: parse, asserting success (tests/examples with known-good SQL).
Statement MustParse(const std::string& sql);

}  // namespace synergy::sql
