// Per-region-server admission control with deadline-aware load shedding.
//
// Each region server gets a bounded budget of in-flight operations. An op
// that arrives while the budget is full joins a (virtual) queue: the
// controller estimates its queue wait from the backlog depth and the mean
// service time, charges that wait to the client's CostMeter, and admits it —
// unless the backlog already exceeds `max_queue_depth` (queue-full shed) or
// the estimated wait overshoots what is left of the op's deadline
// (deadline-aware shed: an op whose deadline is already hopeless is rejected
// *now*, before it wastes server capacity and then times out anyway). Both
// sheds surface kResourceExhausted, which the client retry layer treats as
// "back off, do not retry" — see hbase/retry_policy.h.
//
// The queue is virtual on purpose: the simulated cluster has no real server
// threads to saturate, so queueing delay is modeled the same way every other
// cost is — as virtual microseconds — which keeps bench results
// host-independent while still producing the goodput/latency curves of a
// real admission queue.
//
// The overload-burst fault point injects `burst_ops` phantom in-flight ops
// against one server; they drain one per completed real op — or one per shed
// decision, so a burst wider than inflight+queue still clears instead of
// wedging the server — making a burst behave like a transient stampede from
// elsewhere in the cluster.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace synergy::hbase {

struct AdmissionConfig {
  bool enabled = false;            // Cluster::ConfigureAdmission gates on this
  int max_inflight_per_server = 8; // concurrent ops served without queueing
  int max_queue_depth = 16;        // backlog beyond which ops are shed
  double est_service_us = 1200.0;  // mean per-op service estimate (queue wait)
  int burst_ops = 12;              // phantom ops per overload-burst fire
};

/// Admission tallies, reassembled from the backing registry counters by
/// stats() — the registry is the single source of truth (ResetAll on it
/// resets these too, so a mid-run reset can't desynchronize the views).
struct AdmissionStats {
  int64_t admitted = 0;            // total ops admitted (incl. queued)
  int64_t queued = 0;              // admitted after a virtual queue wait
  int64_t shed_queue_full = 0;     // rejected: backlog at max_queue_depth
  int64_t shed_deadline = 0;       // rejected: deadline already hopeless
  int64_t burst_ops_injected = 0;  // phantom ops from overload-burst fires
};

/// Verdict for one op: OK (possibly with a virtual queue wait to charge) or
/// kResourceExhausted when shed.
struct AdmissionDecision {
  Status status;
  double queue_wait_us = 0.0;  // meaningful only when status is OK
};

class AdmissionController {
 public:
  /// `registry` is where the admission counters are published — normally the
  /// owning Cluster's registry. Null (standalone construction in tests)
  /// falls back to a private registry so per-instance stats still work.
  AdmissionController(int num_servers, AdmissionConfig config,
                      obs::MetricsRegistry* registry = nullptr);

  const AdmissionConfig& config() const { return config_; }

  /// Decide whether the op may proceed against `server_id`.
  /// `deadline_remaining_us` is the op's remaining virtual-time budget
  /// (+infinity when the op has no deadline). On OK the caller owns one
  /// in-flight slot and must Release it (use AdmissionSlot).
  AdmissionDecision Admit(int server_id, double deadline_remaining_us);

  /// Returns the in-flight slot taken by Admit and drains one phantom
  /// burst op, if any. (Shed decisions inside Admit also drain a phantom,
  /// so a burst clears even while every arrival is being rejected.)
  void Release(int server_id);

  /// Adds `ops` phantom in-flight ops to the server (overload-burst fault).
  void InjectBurst(int server_id, int ops);

  /// Current occupancy (in-flight + phantom burst) of one server.
  int Occupancy(int server_id) const;

  AdmissionStats stats() const;

 private:
  struct ServerLoad {
    int inflight = 0;  // real admitted ops not yet released
    int burst = 0;     // phantom ops injected by overload-burst
  };

  AdmissionConfig config_;
  // Fallback for standalone (cluster-less) construction; unused otherwise.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* admitted_;
  obs::Counter* queued_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* burst_ops_injected_;
  mutable std::mutex mutex_;
  std::vector<ServerLoad> servers_;
};

/// RAII in-flight slot: releases on destruction. Default-constructed slots
/// own nothing (op was not admitted through a controller).
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionController* controller, int server_id)
      : controller_(controller), server_id_(server_id) {}

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  AdmissionSlot(AdmissionSlot&& other) noexcept { *this = std::move(other); }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    Release();
    controller_ = other.controller_;
    server_id_ = other.server_id_;
    other.controller_ = nullptr;
    return *this;
  }
  ~AdmissionSlot() { Release(); }

  void Release() {
    if (controller_ != nullptr) {
      controller_->Release(server_id_);
      controller_ = nullptr;
    }
  }

 private:
  AdmissionController* controller_ = nullptr;
  int server_id_ = -1;
};

}  // namespace synergy::hbase
