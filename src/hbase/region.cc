#include "hbase/region.h"

#include <charconv>
#include <mutex>

namespace synergy::hbase {
namespace {

std::optional<RowResult> ResolveRow(const std::string& key, const RowData& row,
                                    const ReadView& view) {
  RowResult out;
  out.row_key = key;
  out.columns.reserve(row.size());
  for (const auto& [qual, cell] : row) {
    std::optional<std::string> v = cell.LatestVisible(view.read_ts, view.exclude);
    if (v.has_value()) out.columns.Append(qual, std::move(*v));
  }
  if (out.columns.empty()) return std::nullopt;
  return out;
}

}  // namespace

void Region::Put(
    const std::string& row_key,
    const std::vector<std::pair<std::string, std::string>>& columns,
    std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  const int64_t t = AllocTs(ts);
  RowData& row = rows_[row_key];
  for (const auto& [qual, value] : columns) {
    row[qual].AddVersion(CellVersion{t, value, /*tombstone=*/false});
  }
  AppendEdit(RegionEdit{row_key, columns, t, /*tombstone=*/false});
}

void Region::Delete(const std::string& row_key, std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return;
  const int64_t t = AllocTs(ts);
  RegionEdit edit{row_key, {}, t, /*tombstone=*/true};
  for (auto& [qual, cell] : it->second) {
    cell.AddVersion(CellVersion{t, "", /*tombstone=*/true});
    edit.columns.emplace_back(qual, "");
  }
  AppendEdit(std::move(edit));
}

void Region::DeleteColumn(const std::string& row_key,
                          const std::string& qualifier,
                          std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return;
  auto cit = it->second.find(qualifier);
  if (cit == it->second.end()) return;
  const int64_t t = AllocTs(ts);
  cit->second.AddVersion(CellVersion{t, "", /*tombstone=*/true});
  AppendEdit(RegionEdit{row_key, {{qualifier, ""}}, t, /*tombstone=*/true});
}

std::optional<RowResult> Region::Get(const std::string& row_key,
                                     const ReadView& view) const {
  std::shared_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return std::nullopt;
  return ResolveRow(row_key, it->second, view);
}

bool Region::CheckAndPut(const std::string& row_key,
                         const std::string& qualifier,
                         const std::optional<std::string>& expected,
                         const std::string& new_value) {
  std::unique_lock lock(mutex_);
  RowData& row = rows_[row_key];
  std::optional<std::string> current;
  auto cit = row.find(qualifier);
  if (cit != row.end()) current = cit->second.Latest();
  if (current != expected) return false;
  const int64_t t = AllocTs(std::nullopt);
  row[qualifier].AddVersion(CellVersion{t, new_value, /*tombstone=*/false});
  AppendEdit(
      RegionEdit{row_key, {{qualifier, new_value}}, t, /*tombstone=*/false});
  return true;
}

StatusOr<int64_t> Region::Increment(const std::string& row_key,
                                    const std::string& qualifier,
                                    int64_t delta) {
  std::unique_lock lock(mutex_);
  RowData& row = rows_[row_key];
  int64_t current = 0;
  auto cit = row.find(qualifier);
  if (cit != row.end()) {
    std::optional<std::string> v = cit->second.Latest();
    if (v.has_value()) {
      auto [ptr, ec] =
          std::from_chars(v->data(), v->data() + v->size(), current);
      if (ec != std::errc{}) {
        return Status::InvalidArgument("Increment on non-integer column");
      }
    }
  }
  const int64_t next = current + delta;
  const int64_t t = AllocTs(std::nullopt);
  std::string encoded = std::to_string(next);
  row[qualifier].AddVersion(CellVersion{t, encoded, /*tombstone=*/false});
  AppendEdit(RegionEdit{row_key, {{qualifier, std::move(encoded)}}, t,
                        /*tombstone=*/false});
  return next;
}

ScanBatchResult Region::ScanBatch(const std::string& from,
                                  const std::string& stop, size_t limit,
                                  const ReadView& view) const {
  std::shared_lock lock(mutex_);
  ScanBatchResult out;
  out.rows.reserve(std::min(limit, rows_.size()));
  auto it = rows_.lower_bound(std::max(from, start_key_));
  for (; it != rows_.end(); ++it) {
    if (!end_key_.empty() && it->first >= end_key_) break;
    if (!stop.empty() && it->first >= stop) break;
    ++out.rows_examined;
    std::optional<RowResult> row = ResolveRow(it->first, it->second, view);
    if (row.has_value()) {
      out.rows.push_back(std::move(*row));
      if (out.rows.size() >= limit) {
        ++it;
        break;
      }
    }
  }
  if (it == rows_.end() || (!end_key_.empty() && it->first >= end_key_) ||
      (!stop.empty() && it->first >= stop)) {
    out.exhausted = true;
  } else {
    out.next_start_key = it->first;
  }
  return out;
}

void Region::MajorCompact(int max_versions) {
  std::unique_lock lock(mutex_);
  for (auto row_it = rows_.begin(); row_it != rows_.end();) {
    RowData& row = row_it->second;
    for (auto cell_it = row.begin(); cell_it != row.end();) {
      cell_it->second.Compact(max_versions);
      if (cell_it->second.versions().empty()) {
        cell_it = row.erase(cell_it);
      } else {
        ++cell_it;
      }
    }
    if (row.empty()) {
      row_it = rows_.erase(row_it);
    } else {
      ++row_it;
    }
  }
}

size_t Region::RowCount() const {
  std::shared_lock lock(mutex_);
  size_t live = 0;
  for (const auto& [key, row] : rows_) {
    for (const auto& [qual, cell] : row) {
      if (cell.Latest().has_value()) {
        ++live;
        break;
      }
    }
  }
  return live;
}

size_t Region::ByteSize() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& [key, row] : rows_) {
    total += key.size();
    for (const auto& [qual, cell] : row) total += qual.size() + cell.ByteSize();
  }
  return total;
}

size_t Region::ApproxRowCount() const {
  std::shared_lock lock(mutex_);
  return rows_.size();
}

std::string Region::MedianKey() const {
  std::shared_lock lock(mutex_);
  if (rows_.size() < 2) return {};
  auto it = rows_.begin();
  std::advance(it, rows_.size() / 2);
  return it->first;
}

void Region::SplitInto(const std::string& split, Region* right) {
  std::unique_lock lock(mutex_);
  std::unique_lock rlock(right->mutex_);
  auto it = rows_.lower_bound(split);
  right->rows_.insert(std::make_move_iterator(it),
                      std::make_move_iterator(rows_.end()));
  rows_.erase(it, rows_.end());
  // Partition the edit log with the rows so each daughter can replay its own
  // half after a crash (append order within each half is preserved).
  std::vector<RegionEdit> keep;
  keep.reserve(log_.size());
  for (RegionEdit& edit : log_) {
    if (edit.row_key >= split) {
      right->log_.push_back(std::move(edit));
    } else {
      keep.push_back(std::move(edit));
    }
  }
  log_ = std::move(keep);
}

void Region::DropStore() {
  std::unique_lock lock(mutex_);
  rows_.clear();
  store_lost_.store(true, std::memory_order_release);
}

void Region::ReplayEdits() {
  std::unique_lock lock(mutex_);
  for (const RegionEdit& edit : log_) {
    RowData& row = rows_[edit.row_key];
    for (const auto& [qual, value] : edit.columns) {
      row[qual].AddVersion(CellVersion{edit.ts, value, edit.tombstone});
    }
  }
  store_lost_.store(false, std::memory_order_release);
}

size_t Region::EditLogSize() const {
  std::shared_lock lock(mutex_);
  return log_.size();
}

}  // namespace synergy::hbase
