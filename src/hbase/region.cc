#include "hbase/region.h"

#include <charconv>
#include <mutex>

namespace synergy::hbase {
namespace {

std::optional<RowResult> ResolveRow(const std::string& key, const RowData& row,
                                    const ReadView& view) {
  RowResult out;
  out.row_key = key;
  out.columns.reserve(row.size());
  for (const auto& [qual, cell] : row) {
    std::optional<std::string> v = cell.LatestVisible(view.read_ts, view.exclude);
    if (v.has_value()) out.columns.Append(qual, std::move(*v));
  }
  if (out.columns.empty()) return std::nullopt;
  return out;
}

}  // namespace

void Region::Put(
    const std::string& row_key,
    const std::vector<std::pair<std::string, std::string>>& columns,
    std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  const int64_t t = AllocTs(ts);
  RowData& row = rows_[row_key];
  for (const auto& [qual, value] : columns) {
    row[qual].AddVersion(CellVersion{t, value, /*tombstone=*/false});
  }
}

void Region::Delete(const std::string& row_key, std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return;
  const int64_t t = AllocTs(ts);
  for (auto& [qual, cell] : it->second) {
    cell.AddVersion(CellVersion{t, "", /*tombstone=*/true});
  }
}

void Region::DeleteColumn(const std::string& row_key,
                          const std::string& qualifier,
                          std::optional<int64_t> ts) {
  std::unique_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return;
  auto cit = it->second.find(qualifier);
  if (cit == it->second.end()) return;
  cit->second.AddVersion(CellVersion{AllocTs(ts), "", /*tombstone=*/true});
}

std::optional<RowResult> Region::Get(const std::string& row_key,
                                     const ReadView& view) const {
  std::shared_lock lock(mutex_);
  auto it = rows_.find(row_key);
  if (it == rows_.end()) return std::nullopt;
  return ResolveRow(row_key, it->second, view);
}

bool Region::CheckAndPut(const std::string& row_key,
                         const std::string& qualifier,
                         const std::optional<std::string>& expected,
                         const std::string& new_value) {
  std::unique_lock lock(mutex_);
  RowData& row = rows_[row_key];
  std::optional<std::string> current;
  auto cit = row.find(qualifier);
  if (cit != row.end()) current = cit->second.Latest();
  if (current != expected) return false;
  row[qualifier].AddVersion(
      CellVersion{AllocTs(std::nullopt), new_value, /*tombstone=*/false});
  return true;
}

StatusOr<int64_t> Region::Increment(const std::string& row_key,
                                    const std::string& qualifier,
                                    int64_t delta) {
  std::unique_lock lock(mutex_);
  RowData& row = rows_[row_key];
  int64_t current = 0;
  auto cit = row.find(qualifier);
  if (cit != row.end()) {
    std::optional<std::string> v = cit->second.Latest();
    if (v.has_value()) {
      auto [ptr, ec] =
          std::from_chars(v->data(), v->data() + v->size(), current);
      if (ec != std::errc{}) {
        return Status::InvalidArgument("Increment on non-integer column");
      }
    }
  }
  const int64_t next = current + delta;
  row[qualifier].AddVersion(CellVersion{AllocTs(std::nullopt),
                                        std::to_string(next),
                                        /*tombstone=*/false});
  return next;
}

ScanBatchResult Region::ScanBatch(const std::string& from,
                                  const std::string& stop, size_t limit,
                                  const ReadView& view) const {
  std::shared_lock lock(mutex_);
  ScanBatchResult out;
  out.rows.reserve(std::min(limit, rows_.size()));
  auto it = rows_.lower_bound(std::max(from, start_key_));
  for (; it != rows_.end(); ++it) {
    if (!end_key_.empty() && it->first >= end_key_) break;
    if (!stop.empty() && it->first >= stop) break;
    ++out.rows_examined;
    std::optional<RowResult> row = ResolveRow(it->first, it->second, view);
    if (row.has_value()) {
      out.rows.push_back(std::move(*row));
      if (out.rows.size() >= limit) {
        ++it;
        break;
      }
    }
  }
  if (it == rows_.end() || (!end_key_.empty() && it->first >= end_key_) ||
      (!stop.empty() && it->first >= stop)) {
    out.exhausted = true;
  } else {
    out.next_start_key = it->first;
  }
  return out;
}

void Region::MajorCompact(int max_versions) {
  std::unique_lock lock(mutex_);
  for (auto row_it = rows_.begin(); row_it != rows_.end();) {
    RowData& row = row_it->second;
    for (auto cell_it = row.begin(); cell_it != row.end();) {
      cell_it->second.Compact(max_versions);
      if (cell_it->second.versions().empty()) {
        cell_it = row.erase(cell_it);
      } else {
        ++cell_it;
      }
    }
    if (row.empty()) {
      row_it = rows_.erase(row_it);
    } else {
      ++row_it;
    }
  }
}

size_t Region::RowCount() const {
  std::shared_lock lock(mutex_);
  size_t live = 0;
  for (const auto& [key, row] : rows_) {
    for (const auto& [qual, cell] : row) {
      if (cell.Latest().has_value()) {
        ++live;
        break;
      }
    }
  }
  return live;
}

size_t Region::ByteSize() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& [key, row] : rows_) {
    total += key.size();
    for (const auto& [qual, cell] : row) total += qual.size() + cell.ByteSize();
  }
  return total;
}

size_t Region::ApproxRowCount() const {
  std::shared_lock lock(mutex_);
  return rows_.size();
}

std::string Region::MedianKey() const {
  std::shared_lock lock(mutex_);
  if (rows_.size() < 2) return {};
  auto it = rows_.begin();
  std::advance(it, rows_.size() / 2);
  return it->first;
}

void Region::SplitInto(const std::string& split, Region* right) {
  std::unique_lock lock(mutex_);
  std::unique_lock rlock(right->mutex_);
  auto it = rows_.lower_bound(split);
  right->rows_.insert(std::make_move_iterator(it),
                      std::make_move_iterator(rows_.end()));
  rows_.erase(it, rows_.end());
}

}  // namespace synergy::hbase
