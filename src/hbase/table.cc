#include "hbase/table.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace synergy::hbase {

Table::Table(TableDescriptor desc, const std::vector<std::string>& split_keys,
             std::atomic<int64_t>* clock, int num_region_servers)
    : desc_(std::move(desc)), clock_(clock),
      num_region_servers_(num_region_servers) {
  std::vector<std::string> splits = split_keys;
  std::sort(splits.begin(), splits.end());
  splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
  std::string start;
  for (const std::string& split : splits) {
    if (split.empty()) continue;
    regions_.push_back(
        std::make_unique<Region>(start, split, clock_, NextServerId()));
    start = split;
  }
  regions_.push_back(std::make_unique<Region>(start, "", clock_,
                                              NextServerId()));
}

Region* Table::RouteKey(const std::string& key) {
  std::shared_lock lock(mutex_);
  // Last region whose start_key <= key.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), key,
      [](const std::string& k, const std::unique_ptr<Region>& r) {
        return k < r->start_key();
      });
  assert(it != regions_.begin());
  return std::prev(it)->get();
}

const Region* Table::RouteKey(const std::string& key) const {
  return const_cast<Table*>(this)->RouteKey(key);
}

Region* Table::RouteScanStart(const std::string& key) { return RouteKey(key); }

size_t Table::RegionCount() const {
  std::shared_lock lock(mutex_);
  return regions_.size();
}

size_t Table::RowCount() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& r : regions_) total += r->RowCount();
  return total;
}

size_t Table::ApproxRowCount() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& r : regions_) total += r->ApproxRowCount();
  return total;
}

size_t Table::ByteSize() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& r : regions_) total += r->ByteSize();
  return total;
}

void Table::MajorCompact() {
  std::shared_lock lock(mutex_);
  for (const auto& r : regions_) r->MajorCompact(desc_.max_versions);
}

std::vector<Region*> Table::SnapshotRegions() const {
  std::shared_lock lock(mutex_);
  std::vector<Region*> out;
  out.reserve(regions_.size());
  for (const auto& r : regions_) out.push_back(r.get());
  return out;
}

void Table::MaybeSplit() {
  if (desc_.split_threshold_rows == 0) return;
  std::unique_lock lock(mutex_);
  for (size_t i = 0; i < regions_.size(); ++i) {
    Region* region = regions_[i].get();
    if (region->RowCount() <= desc_.split_threshold_rows) continue;
    const std::string median = region->MedianKey();
    if (median.empty() || median == region->start_key()) continue;
    auto right = std::make_unique<Region>(median, region->end_key(), clock_,
                                          NextServerId());
    region->SplitInto(median, right.get());
    region->SetEndKey(median);
    regions_.insert(regions_.begin() + static_cast<long>(i) + 1,
                    std::move(right));
    ++i;  // skip the freshly created right sibling this pass
  }
}

}  // namespace synergy::hbase
