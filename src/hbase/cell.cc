#include "hbase/cell.h"

#include <algorithm>

namespace synergy::hbase {

void Cell::AddVersion(CellVersion v) {
  auto it = std::lower_bound(
      versions_.begin(), versions_.end(), v.timestamp,
      [](const CellVersion& a, int64_t ts) { return a.timestamp > ts; });
  if (it != versions_.end() && it->timestamp == v.timestamp) {
    *it = std::move(v);
  } else {
    versions_.insert(it, std::move(v));
  }
}

std::optional<std::string> Cell::Latest() const {
  if (versions_.empty() || versions_.front().tombstone) return std::nullopt;
  return versions_.front().value;
}

std::optional<std::string> Cell::LatestVisible(
    int64_t ts, const std::vector<int64_t>* exclude_ids) const {
  for (const CellVersion& v : versions_) {
    if (v.timestamp > ts) continue;
    if (exclude_ids != nullptr &&
        std::find(exclude_ids->begin(), exclude_ids->end(), v.timestamp) !=
            exclude_ids->end()) {
      continue;  // version written by an invalid/in-flight transaction
    }
    if (v.tombstone) return std::nullopt;
    return v.value;
  }
  return std::nullopt;
}

size_t Cell::Compact(int max_versions) {
  size_t freed = 0;
  std::vector<CellVersion> kept;
  kept.reserve(versions_.size());
  for (const CellVersion& v : versions_) {
    if (v.tombstone) {
      freed += v.value.size() + 16;
      break;  // tombstone and everything older is dropped
    }
    if (static_cast<int>(kept.size()) < max_versions) {
      kept.push_back(v);
    } else {
      freed += v.value.size() + 16;
    }
  }
  versions_ = std::move(kept);
  return freed;
}

size_t Cell::ByteSize() const {
  size_t total = 0;
  for (const CellVersion& v : versions_) total += v.value.size() + 16;
  return total;
}

size_t RowResult::PayloadBytes() const {
  size_t total = row_key.size();
  for (const auto& [qual, value] : columns) total += qual.size() + value.size();
  return total;
}

}  // namespace synergy::hbase
