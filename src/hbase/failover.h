// Region-server membership, failure detection and region reassignment.
//
// The simulated cluster has no wall clock, so heartbeats are driven by
// *virtual activity*: every client RPC ticks the FailoverManager, and every
// `heartbeat_every_rpcs` ticks runs one heartbeat round. A round asks the
// fault injector whether a server crashes (server-crash) or a live server's
// heartbeat is lost (heartbeat-loss), refreshes the heartbeat counter of
// every responsive server, expires the lease of servers that missed
// `lease_missed_rounds` consecutive rounds, and incrementally reassigns the
// regions of declared-dead servers to live ones.
//
// Failure taxonomy:
//   - crashed: the process died (stores wiped; region WALs survive). Until
//     the lease expires the master doesn't know, and RPCs to its regions
//     fail retryably. After detection, each region is moved to a live
//     server and its edit log replayed, so no acknowledged write is lost.
//   - fenced: the server is alive but silent (heartbeat loss). Its store is
//     intact, so reassignment moves the regions *without* replay (replaying
//     into an intact store would duplicate versions). Until a region moves,
//     reads may be served degraded (bounded staleness — the fenced server
//     cannot accept new writes) while writes queue behind the client's
//     retry deadline.
//
// Retry backoffs pump virtual time into the tick counter
// (PumpVirtualTime), so a single blocked client's exponential backoff
// advances failure detection the same way a busy cluster's RPC stream does.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "hbase/region.h"
#include "obs/metrics.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::hbase {

class Cluster;

struct FailoverConfig {
  int heartbeat_every_rpcs = 32;     // ticks per heartbeat round
  int lease_missed_rounds = 3;       // missed rounds before declared dead
  int reassign_regions_per_round = 8;  // staggered batch; <= 0 freezes sweep
  bool allow_degraded_reads = true;  // serve intact regions during failover
  double us_per_tick = 900.0;        // backoff-µs → ticks (≈ one RPC each)
};

enum class ServerState {
  kLive,     // heartbeating, serving
  kCrashed,  // process gone (store wiped), lease not yet expired
  kDead,     // lease expired; regions are being / have been reassigned
};

/// Verdict for one RPC against one region during (possible) failover.
struct RegionAccess {
  Status status;          // non-OK: refuse the RPC (always retryable)
  bool degraded = false;  // OK but served at bounded staleness
};

/// Failover tallies, reassembled by stats() from the owning Cluster's
/// metrics registry (the registry is the single source of truth).
struct FailoverStats {
  int64_t heartbeat_rounds = 0;
  int64_t crashes = 0;            // servers that lost their store
  int64_t fenced = 0;             // servers declared dead with store intact
  int64_t regions_reassigned = 0;
  int64_t edits_replayed = 0;     // region-WAL entries replayed
  int64_t degraded_reads = 0;     // reads served stale during failover
  int64_t writes_rejected = 0;    // writes refused mid-reassignment
};

class FailoverManager {
 public:
  FailoverManager(Cluster* cluster, int num_servers,
                  FailoverConfig config = {});

  const FailoverConfig& config() const { return config_; }

  /// Called by the cluster at every RPC entry point. Cheap (one atomic
  /// increment) except every heartbeat_every_rpcs-th call.
  void OnRpc();

  /// Credits `us` virtual µs of elapsed time (a retry backoff) to the tick
  /// counter and runs any heartbeat rounds that interval covers, so blocked
  /// clients waiting out a backoff still advance failure detection.
  void PumpVirtualTime(double us);

  /// Gate an RPC that routes to `region`. One relaxed load when the whole
  /// cluster is healthy.
  RegionAccess CheckAccess(const Region* region, bool is_write);

  /// Directly crash a server (bench/test API): wipes its region stores as
  /// the server-crash fault point would. Refuses to crash the last live
  /// server; returns whether the crash happened.
  bool CrashServer(int server_id);

  /// Directly silence a server's heartbeats (permanent heartbeat loss): the
  /// lease expires naturally and the regions move without replay.
  void FenceServer(int server_id);

  bool AllHealthy() const {
    return !any_server_down_.load(std::memory_order_relaxed);
  }
  int LiveServerCount() const;
  ServerState state(int server_id) const;
  FailoverStats stats() const;
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  struct ServerInfo {
    ServerState state = ServerState::kLive;
    int64_t last_beat_round = 0;
    bool muted = false;  // FenceServer: heartbeats never arrive again
  };

  void HeartbeatRound();
  // All *Locked helpers require mutex_.
  bool CrashLocked(int server_id);
  int CountLiveLocked() const;
  int NextLiveTargetLocked();
  void SweepLocked();

  Cluster* cluster_;
  FailoverConfig config_;
  std::atomic<int64_t> ticks_{0};
  // Fast-path flag: false until any server leaves kLive (never unset — dead
  // servers stay dead and splits may still land regions on them, so the
  // sweep keeps running).
  std::atomic<bool> any_server_down_{false};
  // Lock order: mutex_ -> Cluster::tables_mutex_ (shared, via AllRegions)
  // -> Region::mutex_. Client RPC paths acquire mutex_ only while holding
  // no table/region locks.
  mutable std::mutex mutex_;
  std::vector<ServerInfo> servers_;
  int64_t rounds_ = 0;
  int next_target_ = 0;  // round-robin cursor over live servers
  // Registry handles, resolved from cluster->metrics() at construction.
  obs::Counter* c_heartbeat_rounds_;
  obs::Counter* c_crashes_;
  obs::Counter* c_fenced_;
  obs::Counter* c_regions_reassigned_;
  obs::Counter* c_edits_replayed_;
  obs::Counter* c_degraded_reads_;
  obs::Counter* c_writes_rejected_;
  obs::Gauge* g_live_servers_;
};

}  // namespace synergy::hbase
