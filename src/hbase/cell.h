// Cells, versions and rows for the column-family store.
//
// Mirrors HBase's data model: a row is a set of (column qualifier -> cell)
// entries, each cell holding multiple timestamped versions sorted newest
// first. Deletes write tombstone versions that major compaction removes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace synergy::hbase {

struct CellVersion {
  int64_t timestamp = 0;
  std::string value;
  bool tombstone = false;
};

/// Versions of one column, newest (highest timestamp) first.
class Cell {
 public:
  /// Inserts a version, keeping descending timestamp order. Equal timestamps
  /// overwrite (HBase semantics: same coordinates replace).
  void AddVersion(CellVersion v);

  /// Latest non-tombstone version, or nullopt if deleted/absent.
  std::optional<std::string> Latest() const;

  /// Latest version visible at or below `ts` that passes `visible` (which may
  /// be null). Tombstones hide older versions.
  std::optional<std::string> LatestVisible(
      int64_t ts, const std::vector<int64_t>* exclude_ids) const;

  const std::vector<CellVersion>& versions() const { return versions_; }

  /// Drops tombstones and versions beyond `max_versions`. Returns bytes freed.
  size_t Compact(int max_versions);

  size_t ByteSize() const;

 private:
  std::vector<CellVersion> versions_;
};

/// A full row: qualifier -> cell. Row keys live in the enclosing Region map.
using RowData = std::map<std::string, Cell>;

/// Client-visible snapshot of one row (already version-resolved).
struct RowResult {
  std::string row_key;
  std::map<std::string, std::string> columns;
  bool empty() const { return columns.empty(); }
  size_t PayloadBytes() const;
};

}  // namespace synergy::hbase
