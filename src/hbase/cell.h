// Cells, versions and rows for the column-family store.
//
// Mirrors HBase's data model: a row is a set of (column qualifier -> cell)
// entries, each cell holding multiple timestamped versions sorted newest
// first. Deletes write tombstone versions that major compaction removes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace synergy::hbase {

struct CellVersion {
  int64_t timestamp = 0;
  std::string value;
  bool tombstone = false;
};

/// Versions of one column, newest (highest timestamp) first.
class Cell {
 public:
  /// Inserts a version, keeping descending timestamp order. Equal timestamps
  /// overwrite (HBase semantics: same coordinates replace).
  void AddVersion(CellVersion v);

  /// Latest non-tombstone version, or nullopt if deleted/absent.
  std::optional<std::string> Latest() const;

  /// Latest version visible at or below `ts` that passes `visible` (which may
  /// be null). Tombstones hide older versions.
  std::optional<std::string> LatestVisible(
      int64_t ts, const std::vector<int64_t>* exclude_ids) const;

  const std::vector<CellVersion>& versions() const { return versions_; }

  /// Drops tombstones and versions beyond `max_versions`. Returns bytes freed.
  size_t Compact(int max_versions);

  size_t ByteSize() const;

 private:
  std::vector<CellVersion> versions_;
};

/// A full row: qualifier -> cell. Row keys live in the enclosing Region map.
using RowData = std::map<std::string, Cell>;

/// Qualifier -> value container for client-visible rows: a flat vector of
/// pairs with a map-like interface, kept in insertion order. Rows carry a
/// handful of columns, so contiguous storage + linear find beats std::map's
/// per-node allocations on the scan hot path (one RowResult per scanned
/// row). No caller depends on qualifier-sorted iteration; store-produced
/// rows arrive sorted anyway because RowData is a std::map.
class ColumnMap {
 public:
  using value_type = std::pair<std::string, std::string>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  ColumnMap() = default;
  ColumnMap(std::initializer_list<value_type> init) {
    for (const value_type& e : init) emplace(e.first, e.second);
  }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void reserve(size_t n) { entries_.reserve(n); }

  const_iterator find(std::string_view qualifier) const {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == qualifier) return it;
    }
    return entries_.end();
  }
  bool contains(std::string_view qualifier) const {
    return find(qualifier) != end();
  }
  const std::string& at(std::string_view qualifier) const {
    const_iterator it = find(qualifier);
    if (it == end()) {
      throw std::out_of_range("no column " + std::string(qualifier));
    }
    return it->second;
  }

  /// Map semantics: an existing qualifier is left unchanged.
  void emplace(std::string qualifier, std::string value) {
    if (contains(qualifier)) return;
    entries_.emplace_back(std::move(qualifier), std::move(value));
  }

  /// Unchecked append for callers that guarantee qualifier uniqueness
  /// (e.g. iteration over a std::map) — skips the duplicate scan on the
  /// per-scanned-row hot path.
  void Append(std::string qualifier, std::string value) {
    entries_.emplace_back(std::move(qualifier), std::move(value));
  }

 private:
  std::vector<value_type> entries_;
};

/// Client-visible snapshot of one row (already version-resolved).
struct RowResult {
  std::string row_key;
  ColumnMap columns;
  bool empty() const { return columns.empty(); }
  size_t PayloadBytes() const;
};

}  // namespace synergy::hbase
