// A table: ordered set of regions covering the full key space.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/region.h"

namespace synergy::hbase {

struct TableDescriptor {
  std::string name;
  std::string column_family = "cf";
  int max_versions = 3;
  // Auto-split threshold (rows per region); 0 disables auto-split.
  size_t split_threshold_rows = 250000;
};

class Table {
 public:
  /// Regions are assigned to the `num_region_servers` servers round-robin,
  /// both at creation and on split (fault schedules target server ids).
  Table(TableDescriptor desc, const std::vector<std::string>& split_keys,
        std::atomic<int64_t>* clock, int num_region_servers = 1);

  const TableDescriptor& descriptor() const { return desc_; }

  /// Region responsible for `key`. The returned pointer remains valid for the
  /// table's lifetime (regions are never destroyed, only split).
  Region* RouteKey(const std::string& key);
  const Region* RouteKey(const std::string& key) const;

  /// First region whose range intersects keys >= `key`.
  Region* RouteScanStart(const std::string& key);

  size_t RegionCount() const;
  size_t RowCount() const;
  size_t ApproxRowCount() const;
  size_t ByteSize() const;

  void MajorCompact();

  /// Splits any region exceeding the descriptor threshold at its median key.
  void MaybeSplit();

  /// Stable pointers to every current region (failover reassignment sweeps).
  /// Regions are never destroyed, so the pointers outlive the snapshot; a
  /// region split racing the snapshot is picked up on the next sweep.
  std::vector<Region*> SnapshotRegions() const;

 private:
  int NextServerId() {
    return num_region_servers_ > 0 ? next_server_++ % num_region_servers_ : 0;
  }

  TableDescriptor desc_;
  std::atomic<int64_t>* clock_;
  int num_region_servers_ = 1;
  int next_server_ = 0;
  mutable std::shared_mutex mutex_;  // guards regions_ topology
  std::vector<std::unique_ptr<Region>> regions_;  // sorted by start_key
};

}  // namespace synergy::hbase
