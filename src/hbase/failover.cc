#include "hbase/failover.h"

#include <algorithm>
#include <string>

#include "hbase/cluster.h"
#include "testing/fault_injector.h"

namespace synergy::hbase {

FailoverManager::FailoverManager(Cluster* cluster, int num_servers,
                                 FailoverConfig config)
    : cluster_(cluster), config_(config),
      servers_(static_cast<size_t>(std::max(num_servers, 1))) {
  obs::MetricsRegistry& r = cluster_->metrics();
  c_heartbeat_rounds_ = r.GetCounter("hbase_failover_heartbeat_rounds_total",
                                     "virtual-time heartbeat rounds run");
  c_crashes_ = r.GetCounter("hbase_failover_crashes_total",
                            "region servers that lost their store");
  c_fenced_ = r.GetCounter("hbase_failover_fenced_total",
                           "servers declared dead with store intact");
  c_regions_reassigned_ = r.GetCounter(
      "hbase_failover_regions_reassigned_total",
      "regions moved off dead servers");
  c_edits_replayed_ = r.GetCounter("hbase_failover_edits_replayed_total",
                                   "region-WAL entries replayed");
  c_degraded_reads_ = r.GetCounter(
      "hbase_failover_degraded_reads_total",
      "reads served at bounded staleness during failover");
  c_writes_rejected_ = r.GetCounter("hbase_failover_writes_rejected_total",
                                    "writes refused mid-reassignment");
  g_live_servers_ = r.GetGauge("hbase_live_region_servers",
                               "region servers currently in the kLive state");
  g_live_servers_->Set(static_cast<double>(servers_.size()));
}

void FailoverManager::OnRpc() {
  const int64_t t = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (t % config_.heartbeat_every_rpcs == 0) HeartbeatRound();
}

void FailoverManager::PumpVirtualTime(double us) {
  if (us <= 0.0) return;
  const auto n = static_cast<int64_t>(
      std::max(1.0, us / std::max(config_.us_per_tick, 1.0)));
  const int64_t before = ticks_.fetch_add(n, std::memory_order_relaxed);
  const int64_t every = config_.heartbeat_every_rpcs;
  int64_t rounds = (before + n) / every - before / every;
  // A huge backoff covers many rounds, but after a few the cluster state is
  // quiescent again; cap the catch-up work.
  rounds = std::min<int64_t>(rounds, 16);
  for (int64_t i = 0; i < rounds; ++i) HeartbeatRound();
}

int FailoverManager::CountLiveLocked() const {
  int live = 0;
  for (const ServerInfo& s : servers_) {
    if (s.state == ServerState::kLive) ++live;
  }
  return live;
}

bool FailoverManager::CrashLocked(int server_id) {
  ServerInfo& info = servers_[static_cast<size_t>(server_id)];
  if (info.state != ServerState::kLive) return false;
  // Never crash the last live server: with nowhere to reassign, the cluster
  // could not make progress again and every retry budget would be lost.
  if (CountLiveLocked() <= 1) return false;
  info.state = ServerState::kCrashed;
  any_server_down_.store(true, std::memory_order_relaxed);
  c_crashes_->Inc();
  g_live_servers_->Set(static_cast<double>(CountLiveLocked()));
  for (Region* region : cluster_->AllRegions()) {
    if (region->server_id() == server_id) region->DropStore();
  }
  return true;
}

bool FailoverManager::CrashServer(int server_id) {
  if (server_id < 0 || server_id >= static_cast<int>(servers_.size())) {
    return false;
  }
  std::lock_guard lock(mutex_);
  return CrashLocked(server_id);
}

void FailoverManager::FenceServer(int server_id) {
  if (server_id < 0 || server_id >= static_cast<int>(servers_.size())) return;
  std::lock_guard lock(mutex_);
  servers_[static_cast<size_t>(server_id)].muted = true;
}

int FailoverManager::NextLiveTargetLocked() {
  const int n = static_cast<int>(servers_.size());
  for (int i = 0; i < n; ++i) {
    const int candidate = (next_target_ + i) % n;
    if (servers_[static_cast<size_t>(candidate)].state == ServerState::kLive) {
      next_target_ = (candidate + 1) % n;
      return candidate;
    }
  }
  return -1;
}

void FailoverManager::SweepLocked() {
  // A non-positive batch freezes reassignment entirely, holding regions in
  // the declared-dead-but-unmoved window (tests rely on this to probe the
  // degraded-read path deterministically).
  if (config_.reassign_regions_per_round <= 0) return;
  int moved = 0;
  for (Region* region : cluster_->AllRegions()) {
    const int sid = region->server_id();
    if (sid < 0 || sid >= static_cast<int>(servers_.size())) continue;
    if (servers_[static_cast<size_t>(sid)].state != ServerState::kDead) {
      continue;
    }
    const int target = NextLiveTargetLocked();
    if (target < 0) return;  // no live server; wait for a later round
    if (region->store_lost()) {
      c_edits_replayed_->Inc(static_cast<uint64_t>(region->EditLogSize()));
      region->ReplayEdits();  // rebuild before clients can route here
    }
    region->set_server_id(target);
    c_regions_reassigned_->Inc();
    if (++moved >= config_.reassign_regions_per_round) return;
  }
}

void FailoverManager::HeartbeatRound() {
  std::lock_guard lock(mutex_);
  ++rounds_;
  c_heartbeat_rounds_->Inc();
  fault::FaultInjector* inj = cluster_->fault_injector();
  const int n = static_cast<int>(servers_.size());
  // 1. Fault-driven crashes (the server-crash point, per live server).
  if (inj != nullptr) {
    for (int s = 0; s < n; ++s) {
      if (servers_[static_cast<size_t>(s)].state != ServerState::kLive) {
        continue;
      }
      fault::FaultSite site;
      site.server_id = s;
      if (inj->ShouldFire(fault::FaultPoint::kRegionServerCrash, site)) {
        CrashLocked(s);
      }
    }
  }
  // 2. Heartbeats from live, unmuted servers (heartbeat-loss may drop one).
  bool any_down = false;
  for (int s = 0; s < n; ++s) {
    ServerInfo& info = servers_[static_cast<size_t>(s)];
    if (info.state != ServerState::kLive) {
      any_down = true;
      continue;
    }
    bool lost = info.muted;
    if (!lost && inj != nullptr) {
      fault::FaultSite site;
      site.server_id = s;
      lost = inj->ShouldFire(fault::FaultPoint::kHeartbeatLoss, site);
    }
    if (!lost) info.last_beat_round = rounds_;
  }
  // 3. Lease expiry: silent too long => declared dead.
  for (int s = 0; s < n; ++s) {
    ServerInfo& info = servers_[static_cast<size_t>(s)];
    if (info.state == ServerState::kDead) continue;
    if (rounds_ - info.last_beat_round >= config_.lease_missed_rounds) {
      // A live-but-silent server is *fenced*: store intact, no replay. Keep
      // one live server even if every heartbeat is lost.
      if (info.state == ServerState::kLive && CountLiveLocked() <= 1) continue;
      if (info.state == ServerState::kLive) c_fenced_->Inc();
      info.state = ServerState::kDead;
      any_server_down_.store(true, std::memory_order_relaxed);
      g_live_servers_->Set(static_cast<double>(CountLiveLocked()));
      any_down = true;
    }
  }
  // 4. Staggered reassignment of dead servers' regions (also catches
  // regions that later land on a dead server via splits).
  if (any_down || any_server_down_.load(std::memory_order_relaxed)) {
    SweepLocked();
  }
}

RegionAccess FailoverManager::CheckAccess(const Region* region,
                                          bool is_write) {
  if (!any_server_down_.load(std::memory_order_relaxed)) return {};
  std::lock_guard lock(mutex_);
  const int sid = region->server_id();
  if (sid < 0 || sid >= static_cast<int>(servers_.size())) return {};
  const ServerInfo& info = servers_[static_cast<size_t>(sid)];
  switch (info.state) {
    case ServerState::kLive:
      return {};
    case ServerState::kCrashed:
      // The master hasn't noticed yet; clients just see a dead endpoint.
      return {Status::Unavailable("region server " + std::to_string(sid) +
                                  " not responding (failure detection "
                                  "pending)"),
              false};
    case ServerState::kDead:
      if (is_write) {
        c_writes_rejected_->Inc();
        return {Status::Unavailable("region moving off dead server " +
                                    std::to_string(sid) +
                                    " (reassignment in progress)"),
                false};
      }
      if (config_.allow_degraded_reads && !region->store_lost()) {
        c_degraded_reads_->Inc();
        return {Status::Ok(), /*degraded=*/true};
      }
      return {Status::Unavailable("region store lost with server " +
                                  std::to_string(sid) +
                                  "; WAL replay in progress"),
              false};
  }
  return {};
}

int FailoverManager::LiveServerCount() const {
  std::lock_guard lock(mutex_);
  return CountLiveLocked();
}

ServerState FailoverManager::state(int server_id) const {
  std::lock_guard lock(mutex_);
  return servers_[static_cast<size_t>(server_id)].state;
}

FailoverStats FailoverManager::stats() const {
  // Reassembled from the registry counters — no second tally to drift.
  FailoverStats s;
  s.heartbeat_rounds = static_cast<int64_t>(c_heartbeat_rounds_->Value());
  s.crashes = static_cast<int64_t>(c_crashes_->Value());
  s.fenced = static_cast<int64_t>(c_fenced_->Value());
  s.regions_reassigned =
      static_cast<int64_t>(c_regions_reassigned_->Value());
  s.edits_replayed = static_cast<int64_t>(c_edits_replayed_->Value());
  s.degraded_reads = static_cast<int64_t>(c_degraded_reads_->Value());
  s.writes_rejected = static_cast<int64_t>(c_writes_rejected_->Value());
  return s;
}

}  // namespace synergy::hbase
