// The simulated HBase cluster: table catalog, region-server inventory, and
// the client API (Get/Put/Scan/Delete/Increment/CheckAndPut).
//
// Every operation goes through a Session, which carries the client's virtual
// CostMeter and optional MVCC read view. The store itself is thread-safe;
// sessions are not (one per logical client).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hbase/admission.h"
#include "hbase/failover.h"
#include "hbase/retry_policy.h"
#include "hbase/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::hbase {

class Cluster;

/// Registry handles for the cluster-wide tallies published at the RPC
/// boundary and by the client retry stack. Resolved once per Cluster so the
/// hot path pays one relaxed add per event; session-level counters mirror
/// into these (satellite of PR 10: one registry is the source of truth for
/// cluster-wide robustness tallies, so ResetMetrics can't desynchronize
/// them).
struct ClusterOpCounters {
  obs::Counter* rpcs = nullptr;
  obs::Counter* scan_batches = nullptr;
  obs::Counter* faults_injected = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* degraded_reads = nullptr;
  obs::Counter* deadline_exceeded = nullptr;
  obs::Counter* overload_rejected = nullptr;
  obs::Counter* scan_errors_dropped = nullptr;
  obs::Counter* breaker_fastfail = nullptr;
  obs::Counter* retry_budget_exhausted = nullptr;
  obs::Histogram* admission_queue_wait_us = nullptr;

  static ClusterOpCounters Resolve(obs::MetricsRegistry& registry);
};

/// A logical client connection: owns the virtual-time meter and read view.
class Session {
 public:
  explicit Session(Cluster* cluster) : cluster_(cluster) {}

  Cluster* cluster() const { return cluster_; }
  sim::CostMeter& meter() { return meter_; }
  const sim::CostMeter& meter() const { return meter_; }

  /// MVCC visibility: read timestamp + excluded (in-flight/invalid) txn ids.
  void SetReadView(ReadView view) { view_ = view; }
  void ClearReadView() { view_ = ReadView{}; }
  const ReadView& read_view() const { return view_; }

  /// Opt-in retries: with a policy installed, every Cluster entry point
  /// (Get/Put/Delete/CheckAndPut/Increment/scan batches) retries retryable
  /// errors with backoff charged as virtual time. Default: no retries, so
  /// deterministic fault schedules see every error exactly once. Policies
  /// with overload-protection knobs enabled also instantiate the session's
  /// retry budget and circuit breaker.
  void SetRetryPolicy(const RetryPolicy& policy) {
    retry_policy_ = policy;
    retry_budget_ = policy.retry_budget_max > 0.0
                        ? std::make_unique<RetryBudget>(policy)
                        : nullptr;
    breaker_ = policy.breaker_trip_overloads > 0
                   ? std::make_unique<CircuitBreaker>(policy)
                   : nullptr;
  }
  void ClearRetryPolicy() {
    retry_policy_.reset();
    retry_budget_.reset();
    breaker_.reset();
  }
  const std::optional<RetryPolicy>& retry_policy() const {
    return retry_policy_;
  }
  /// Null unless the installed policy enables the corresponding knob. Same
  /// single-driver threading contract as SuppressRetries.
  RetryBudget* retry_budget() { return retry_budget_.get(); }
  CircuitBreaker* circuit_breaker() { return breaker_.get(); }

  /// Absolute virtual-time deadline of the op currently in flight (0 =
  /// none). Set by the retry loop at op start and read by the admission
  /// controller for deadline-aware shedding — including from the slave
  /// worker thread, which inherits it through the queue handoff (same
  /// contract as SuppressRetries).
  void SetOpDeadline(double abs_us) { op_deadline_us_ = abs_us; }
  void ClearOpDeadline() { op_deadline_us_ = 0.0; }
  double OpDeadlineRemaining() const {
    if (op_deadline_us_ <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return op_deadline_us_ - meter_.micros();
  }

  /// While suppressed, entry points skip their retry loops even with a
  /// policy installed. The txn layer sets this around root-write bodies:
  /// a kUnavailable there must surface as a slave crash (§VIII), and the
  /// root-level retry in TxnLayer::SubmitWrite already owns the deadline —
  /// nested RPC retries would stack unboundedly. Not synchronized: only
  /// the thread currently driving the session may toggle it (the slave
  /// worker is handed the session via the queue's happens-before).
  void SuppressRetries(bool on) { retry_suppressed_ = on; }
  bool retries_suppressed() const { return retry_suppressed_; }

  /// Attaches (or detaches, with nullptr) a trace collector: layers below
  /// emit spans/annotations for this session's ops. Same single-driver
  /// threading contract as SuppressRetries — the slave worker inherits the
  /// collector through the queue handoff.
  void SetTrace(obs::TraceCollector* trace) { trace_ = trace; }
  obs::TraceCollector* trace() const { return trace_; }
  /// Non-null only when per-RPC leaf spans were opted into (they can run
  /// into the thousands for scan-heavy statements).
  obs::TraceCollector* rpc_trace() const {
    return trace_ != nullptr && trace_->rpc_spans() ? trace_ : nullptr;
  }

  // Availability counters. Atomic because txn-slave workers execute write
  // bodies against the client's session from another thread (same contract
  // as CostMeter: commuting adds, read after the submit future resolves).
  // Each also mirrors into the cluster's registry counters, so per-session
  // tallies and cluster-wide metrics can't drift apart (bodies follow the
  // Cluster definition below).
  void CountRetry();
  void CountDegradedRead();
  void CountDeadlineExceeded();
  void CountOverloadRejected();
  void CountScanErrorDropped();
  /// One completed RPC attempt at the region-server boundary (the paper's
  /// Table 2 denominator: RPCs per operation).
  void CountRpc();
  uint64_t rpc_count() const { return rpcs_.load(std::memory_order_relaxed); }
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_reads() const {
    return degraded_reads_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_exceeded() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  uint64_t overload_rejections() const {
    return overload_rejections_.load(std::memory_order_relaxed);
  }
  uint64_t scan_errors_dropped() const {
    return scan_errors_dropped_.load(std::memory_order_relaxed);
  }
  void ResetOpStats() {
    retries_.store(0, std::memory_order_relaxed);
    degraded_reads_.store(0, std::memory_order_relaxed);
    deadline_exceeded_.store(0, std::memory_order_relaxed);
    overload_rejections_.store(0, std::memory_order_relaxed);
    scan_errors_dropped_.store(0, std::memory_order_relaxed);
    rpcs_.store(0, std::memory_order_relaxed);
  }

 private:
  Cluster* cluster_;
  sim::CostMeter meter_;
  ReadView view_;
  std::optional<RetryPolicy> retry_policy_;
  std::unique_ptr<RetryBudget> retry_budget_;
  std::unique_ptr<CircuitBreaker> breaker_;
  obs::TraceCollector* trace_ = nullptr;
  bool retry_suppressed_ = false;
  double op_deadline_us_ = 0.0;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> degraded_reads_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> overload_rejections_{0};
  std::atomic<uint64_t> scan_errors_dropped_{0};
  std::atomic<uint64_t> rpcs_{0};
};

/// Streaming scanner with per-batch RPC cost accounting. Obtain via
/// Cluster::OpenScanner; iterate with Next until it returns false.
class Scanner {
 public:
  /// Advances to the next row; returns false when the scan is exhausted.
  /// A false return can also mean a failed batch RPC — check status().
  bool Next(RowResult* out);

  /// Non-OK when the scan terminated on a batch-RPC error (e.g. an injected
  /// region fault) rather than genuine exhaustion. Every consumer must call
  /// this before dropping a scanner: destroying one that hit an error
  /// without looking is the silent-truncation bug PR 6's error channel was
  /// built to kill. A drop without a check increments the session's
  /// scan_errors_dropped counter, which the bench reports surface — visible
  /// in release builds, unlike the debug assert it replaced.
  const Status& status() const {
    status_checked_ = true;
    return status_;
  }

  size_t rows_returned() const { return rows_returned_; }

  Scanner(const Scanner&) = delete;
  Scanner& operator=(const Scanner&) = delete;
  Scanner(Scanner&& other) noexcept { *this = std::move(other); }
  Scanner& operator=(Scanner&& other) noexcept {
    cluster_ = other.cluster_;
    session_ = other.session_;
    table_ = std::move(other.table_);
    next_start_ = std::move(other.next_start_);
    stop_ = std::move(other.stop_);
    batch_rows_ = other.batch_rows_;
    buffer_ = std::move(other.buffer_);
    buffer_pos_ = other.buffer_pos_;
    exhausted_ = other.exhausted_;
    rows_returned_ = other.rows_returned_;
    status_ = std::move(other.status_);
    status_checked_ = other.status_checked_;
    other.status_checked_ = true;  // responsibility moved with the status
    return *this;
  }
  ~Scanner() {
    if (!status_.ok() && !status_checked_ && session_ != nullptr) {
      session_->CountScanErrorDropped();
    }
  }

 private:
  friend class Cluster;
  Scanner(Cluster* cluster, Session* session, std::string table,
          std::string start, std::string stop, size_t batch_rows)
      : cluster_(cluster),
        session_(session),
        table_(std::move(table)),
        next_start_(std::move(start)),
        stop_(std::move(stop)),
        batch_rows_(batch_rows) {}

  bool FetchBatch();

  Cluster* cluster_;
  Session* session_;
  std::string table_;
  std::string next_start_;
  std::string stop_;
  size_t batch_rows_;
  std::vector<RowResult> buffer_;
  size_t buffer_pos_ = 0;
  bool exhausted_ = false;
  size_t rows_returned_ = 0;
  Status status_ = Status::Ok();
  mutable bool status_checked_ = false;
};

struct TableSizeInfo {
  std::string name;
  size_t rows = 0;
  size_t bytes = 0;  // includes per-cell HBase framing overhead
  size_t regions = 0;
};

class Cluster {
 public:
  explicit Cluster(sim::CostModel model = sim::CostModel::Ec2Like(),
                   int num_region_servers = 5)
      : model_(model), num_region_servers_(num_region_servers),
        counters_(ClusterOpCounters::Resolve(metrics_)),
        failover_(std::make_unique<FailoverManager>(this,
                                                    num_region_servers)) {}

  const sim::CostModel& cost_model() const { return model_; }
  int num_region_servers() const { return num_region_servers_; }

  /// The cluster-wide metrics registry. Every layer touching this cluster
  /// (admission, failover, txn WAL/locks/slaves, executor, view maintenance)
  /// publishes its tallies here; Snapshot() renders them all at once.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Pre-resolved handles for the RPC-boundary and client-retry counters.
  const ClusterOpCounters& counters() const { return counters_; }
  /// Zeroes every counter/histogram in the registry — the one reset that
  /// cannot desynchronize admission/failover/client tallies, since they all
  /// read through the registry.
  void ResetMetrics() { metrics_.ResetAll(); }

  /// Membership/failure-detection layer. Always on; heartbeat rounds are
  /// driven by RPC ticks, so a healthy idle cluster does no work.
  FailoverManager& failover() { return *failover_; }
  const FailoverManager& failover() const { return *failover_; }

  /// Replaces the failover manager with one using `config` (tests tune the
  /// heartbeat cadence / lease length). Not thread-safe: call before any
  /// concurrent traffic.
  void ConfigureFailover(FailoverConfig config) {
    failover_ =
        std::make_unique<FailoverManager>(this, num_region_servers_, config);
  }

  /// Installs per-region-server admission control (config.enabled == false
  /// removes it). Off by default: every op is admitted and the hot path
  /// costs one pointer check. Not thread-safe: call before concurrent
  /// traffic, like ConfigureFailover.
  void ConfigureAdmission(AdmissionConfig config) {
    admission_ = config.enabled
                     ? std::make_unique<AdmissionController>(
                           num_region_servers_, config, &metrics_)
                     : nullptr;
  }
  AdmissionController* admission() { return admission_.get(); }

  /// Stable pointers to every region of every table (failover sweeps).
  std::vector<Region*> AllRegions() const;

  /// Installs (or clears, with nullptr) the fault injector consulted at the
  /// RPC boundary of every store operation. Injected request-lost faults
  /// fail the RPC before it reaches the region; ack-lost faults apply the
  /// mutation and fail the acknowledgement. The injector must outlive its
  /// installation; injection sites are read-only for the cluster state.
  void SetFaultInjector(fault::FaultInjector* faults) { faults_ = faults; }
  fault::FaultInjector* fault_injector() const { return faults_; }

  /// Monotonic logical timestamp source (shared by all writers).
  int64_t NextTimestamp() { return clock_.fetch_add(1) + 1; }

  // --- DDL ---
  Status CreateTable(const TableDescriptor& desc,
                     const std::vector<std::string>& split_keys = {});
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- DML (all charge virtual time to the session) ---
  Status Put(Session& s, const std::string& table, const std::string& row_key,
             const std::vector<std::pair<std::string, std::string>>& columns,
             std::optional<int64_t> ts = std::nullopt);

  StatusOr<RowResult> Get(Session& s, const std::string& table,
                          const std::string& row_key);

  Status Delete(Session& s, const std::string& table,
                const std::string& row_key,
                std::optional<int64_t> ts = std::nullopt);

  StatusOr<bool> CheckAndPut(Session& s, const std::string& table,
                             const std::string& row_key,
                             const std::string& qualifier,
                             const std::optional<std::string>& expected,
                             const std::string& new_value);

  StatusOr<int64_t> Increment(Session& s, const std::string& table,
                              const std::string& row_key,
                              const std::string& qualifier, int64_t delta);

  /// Scan rows with key in [start, stop); empty stop = to end of table.
  StatusOr<Scanner> OpenScanner(Session& s, const std::string& table,
                                const std::string& start = "",
                                const std::string& stop = "");

  // --- admin ---
  void MajorCompactAll();
  void MaybeSplitAll();
  std::vector<TableSizeInfo> SizeReport() const;
  size_t TotalBytes() const;
  /// Cheap per-table row count for planner estimates (O(#regions)).
  size_t ApproxRowCount(const std::string& table) const;
  /// Server hosting the table's first region (failover benches/tests pick
  /// their crash victim by the table they intend to disrupt).
  StatusOr<int> RegionServerOf(const std::string& table) const;

 private:
  friend class Scanner;

  StatusOr<Table*> FindTable(const std::string& name) const;

  /// Fault hook before an RPC touches `region`: non-OK = request lost
  /// (region-rpc-failure) or timed out in flight (rpc-timeout). Either way
  /// nothing was applied, so the error is retry-safe.
  Status InjectRequestFault(const std::string& table, const Region* region);
  /// Fault hook after a mutation applied: non-OK = acknowledgement lost.
  Status InjectAckFault(const std::string& table, const Region* region);

  /// Admission gate for one RPC against `region`'s server. No-op without a
  /// configured controller. May shed (kResourceExhausted), charge a virtual
  /// queue wait, and fire the overload-burst fault point. On OK, `slot`
  /// holds the in-flight budget unit until the op completes.
  Status AdmitOp(Session& s, const std::string& table, const Region* region,
                 AdmissionSlot* slot);

  /// Runs `fn` (one RPC attempt returning Status or StatusOr<T>) under the
  /// session's retry policy, charging backoff as virtual time and pumping
  /// failover heartbeats through the waits.
  template <typename Fn>
  auto RunWithRetries(Session& s, Fn&& fn) -> decltype(fn());

  // Single-attempt bodies of the public entry points.
  Status PutOnce(Session& s, const std::string& table,
                 const std::string& row_key,
                 const std::vector<std::pair<std::string, std::string>>&
                     columns,
                 std::optional<int64_t> ts);
  StatusOr<RowResult> GetOnce(Session& s, const std::string& table,
                              const std::string& row_key);
  Status DeleteOnce(Session& s, const std::string& table,
                    const std::string& row_key, std::optional<int64_t> ts);
  StatusOr<bool> CheckAndPutOnce(Session& s, const std::string& table,
                                 const std::string& row_key,
                                 const std::string& qualifier,
                                 const std::optional<std::string>& expected,
                                 const std::string& new_value);
  StatusOr<int64_t> IncrementOnce(Session& s, const std::string& table,
                                  const std::string& row_key,
                                  const std::string& qualifier, int64_t delta);

  /// One scan RPC: fetch up to `limit` visible rows starting at `from`.
  /// Retries per batch under the session policy (a failed batch applied
  /// nothing, so the resume key is still valid).
  StatusOr<ScanBatchResult> ScanBatchRpc(Session& s, const std::string& table,
                                         const std::string& from,
                                         const std::string& stop,
                                         size_t limit);
  StatusOr<ScanBatchResult> ScanBatchRpcOnce(Session& s,
                                             const std::string& table,
                                             const std::string& from,
                                             const std::string& stop,
                                             size_t limit);

  sim::CostModel model_;
  int num_region_servers_;
  // Registry + resolved handles are declared (and thus initialized) before
  // failover_: the FailoverManager constructor resolves its own counters
  // from cluster->metrics().
  obs::MetricsRegistry metrics_;
  ClusterOpCounters counters_;
  fault::FaultInjector* faults_ = nullptr;
  std::unique_ptr<FailoverManager> failover_;
  std::unique_ptr<AdmissionController> admission_;
  std::atomic<int64_t> clock_{0};
  // Reader-writer latch on the table catalog: every DML op resolves its
  // table here, so concurrent sessions take it shared; only DDL is exclusive.
  mutable std::shared_mutex tables_mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

// Session counter bodies live below Cluster because each mirrors into the
// cluster-wide registry handles in addition to its per-session atomic.
inline void Session::CountRetry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().retries->Inc();
}
inline void Session::CountDegradedRead() {
  degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().degraded_reads->Inc();
}
inline void Session::CountDeadlineExceeded() {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().deadline_exceeded->Inc();
}
inline void Session::CountOverloadRejected() {
  overload_rejections_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().overload_rejected->Inc();
}
inline void Session::CountScanErrorDropped() {
  scan_errors_dropped_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().scan_errors_dropped->Inc();
}
inline void Session::CountRpc() {
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  cluster_->counters().rpcs->Inc();
}

namespace detail {

// Uniform status access over Status and StatusOr<T> attempt results.
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}

// Clears the session's op deadline on every exit path of the retry loop.
class OpDeadlineScope {
 public:
  OpDeadlineScope(Session& s, double deadline_us) : session_(&s) {
    if (deadline_us > 0.0) {
      s.SetOpDeadline(s.meter().micros() + deadline_us);
    }
  }
  ~OpDeadlineScope() { session_->ClearOpDeadline(); }

 private:
  Session* session_;
};

}  // namespace detail

/// The one retry loop shared by Cluster entry points and TxnLayer root
/// submits: runs `fn` (a single attempt returning Status or StatusOr<T>)
/// under the session's RetryPolicy with the full overload-protection stack:
///  - circuit breaker gate: fails fast while the breaker is open;
///  - op deadline published on the session for deadline-aware shedding;
///  - overload rejections (kResourceExhausted) are surfaced, never retried,
///    and trip the breaker;
///  - each granted retry must also clear the token-bucket retry budget;
///  - backoffs are charged as virtual time and pump failover heartbeats,
///    then `on_backoff` runs (TxnLayer hooks slave auto-recovery there).
template <typename Fn, typename OnBackoff>
auto RunWithRetryProtection(Cluster& cluster, Session& s, Fn&& fn,
                            OnBackoff&& on_backoff) -> decltype(fn()) {
  using Result = decltype(fn());
  if (!s.retry_policy().has_value() || s.retries_suppressed()) return fn();
  if (CircuitBreaker* breaker = s.circuit_breaker()) {
    Status gate = breaker->Admit(s.meter().micros());
    if (!gate.ok()) {
      s.CountOverloadRejected();
      cluster.counters().breaker_fastfail->Inc();
      return Result(std::move(gate));
    }
  }
  const RetryPolicy& policy = *s.retry_policy();
  RetryController retry(policy, s.meter().micros());
  detail::OpDeadlineScope deadline_scope(s, policy.deadline_us);
  for (;;) {
    Result result = fn();
    const Status& st = detail::StatusOf(result);
    if (st.ok()) {
      if (RetryBudget* budget = s.retry_budget()) budget->OnSuccess();
      if (CircuitBreaker* breaker = s.circuit_breaker()) breaker->OnSuccess();
      return result;
    }
    if (IsOverloaded(st)) {
      // Overload rejections are terminal here: retrying against a saturated
      // server amplifies the overload (the opposite of what the rejection
      // asked for). The breaker counts the streak and eventually fails fast.
      s.CountOverloadRejected();
      if (CircuitBreaker* breaker = s.circuit_breaker()) {
        breaker->OnOverload(s.meter().micros());
      }
      return result;
    }
    const RetryController::Decision d =
        retry.OnFailure(st, s.meter().micros());
    if (!d.retry) {
      if (d.final_status.code() == StatusCode::kDeadlineExceeded) {
        s.CountDeadlineExceeded();
        return Result(d.final_status);
      }
      return result;
    }
    if (RetryBudget* budget = s.retry_budget();
        budget != nullptr && !budget->TrySpend()) {
      // Budget empty: the recent success rate no longer pays for retries,
      // so surface the error instead of adding retry load to a brown-out.
      cluster.counters().retry_budget_exhausted->Inc();
      return result;
    }
    s.CountRetry();
    // The backoff is virtual wait: the client's clock advances, and so does
    // the cluster's — heartbeat rounds keep running while we sleep, which
    // is what lets a lone blocked client ride out failure detection plus
    // region reassignment instead of livelocking.
    s.meter().Charge(d.backoff_us);
    cluster.failover().PumpVirtualTime(d.backoff_us);
    on_backoff();
  }
}

}  // namespace synergy::hbase
