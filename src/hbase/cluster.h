// The simulated HBase cluster: table catalog, region-server inventory, and
// the client API (Get/Put/Scan/Delete/Increment/CheckAndPut).
//
// Every operation goes through a Session, which carries the client's virtual
// CostMeter and optional MVCC read view. The store itself is thread-safe;
// sessions are not (one per logical client).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hbase/failover.h"
#include "hbase/retry_policy.h"
#include "hbase/table.h"
#include "sim/cost_model.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::hbase {

class Cluster;

/// A logical client connection: owns the virtual-time meter and read view.
class Session {
 public:
  explicit Session(Cluster* cluster) : cluster_(cluster) {}

  Cluster* cluster() const { return cluster_; }
  sim::CostMeter& meter() { return meter_; }
  const sim::CostMeter& meter() const { return meter_; }

  /// MVCC visibility: read timestamp + excluded (in-flight/invalid) txn ids.
  void SetReadView(ReadView view) { view_ = view; }
  void ClearReadView() { view_ = ReadView{}; }
  const ReadView& read_view() const { return view_; }

  /// Opt-in retries: with a policy installed, every Cluster entry point
  /// (Get/Put/Delete/CheckAndPut/Increment/scan batches) retries retryable
  /// errors with backoff charged as virtual time. Default: no retries, so
  /// deterministic fault schedules see every error exactly once.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  void ClearRetryPolicy() { retry_policy_.reset(); }
  const std::optional<RetryPolicy>& retry_policy() const {
    return retry_policy_;
  }

  /// While suppressed, entry points skip their retry loops even with a
  /// policy installed. The txn layer sets this around root-write bodies:
  /// a kUnavailable there must surface as a slave crash (§VIII), and the
  /// root-level retry in TxnLayer::SubmitWrite already owns the deadline —
  /// nested RPC retries would stack unboundedly. Not synchronized: only
  /// the thread currently driving the session may toggle it (the slave
  /// worker is handed the session via the queue's happens-before).
  void SuppressRetries(bool on) { retry_suppressed_ = on; }
  bool retries_suppressed() const { return retry_suppressed_; }

  // Availability counters. Atomic because txn-slave workers execute write
  // bodies against the client's session from another thread (same contract
  // as CostMeter: commuting adds, read after the submit future resolves).
  void CountRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void CountDegradedRead() {
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountDeadlineExceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_reads() const {
    return degraded_reads_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_exceeded() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  void ResetOpStats() {
    retries_.store(0, std::memory_order_relaxed);
    degraded_reads_.store(0, std::memory_order_relaxed);
    deadline_exceeded_.store(0, std::memory_order_relaxed);
  }

 private:
  Cluster* cluster_;
  sim::CostMeter meter_;
  ReadView view_;
  std::optional<RetryPolicy> retry_policy_;
  bool retry_suppressed_ = false;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> degraded_reads_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
};

/// Streaming scanner with per-batch RPC cost accounting. Obtain via
/// Cluster::OpenScanner; iterate with Next until it returns false.
class Scanner {
 public:
  /// Advances to the next row; returns false when the scan is exhausted.
  /// A false return can also mean a failed batch RPC — check status().
  bool Next(RowResult* out);

  /// Non-OK when the scan terminated on a batch-RPC error (e.g. an injected
  /// region fault) rather than genuine exhaustion. Every consumer must call
  /// this before dropping a scanner: destroying one that hit an error
  /// without looking is the silent-truncation bug PR 6's error channel was
  /// built to kill, and the destructor asserts against it in debug builds.
  const Status& status() const {
    status_checked_ = true;
    return status_;
  }

  size_t rows_returned() const { return rows_returned_; }

  Scanner(const Scanner&) = delete;
  Scanner& operator=(const Scanner&) = delete;
  Scanner(Scanner&& other) noexcept { *this = std::move(other); }
  Scanner& operator=(Scanner&& other) noexcept {
    cluster_ = other.cluster_;
    session_ = other.session_;
    table_ = std::move(other.table_);
    next_start_ = std::move(other.next_start_);
    stop_ = std::move(other.stop_);
    batch_rows_ = other.batch_rows_;
    buffer_ = std::move(other.buffer_);
    buffer_pos_ = other.buffer_pos_;
    exhausted_ = other.exhausted_;
    rows_returned_ = other.rows_returned_;
    status_ = std::move(other.status_);
    status_checked_ = other.status_checked_;
    other.status_checked_ = true;  // responsibility moved with the status
    return *this;
  }
  ~Scanner() {
    assert((status_.ok() || status_checked_) &&
           "Scanner dropped with an unchecked error status — call status()");
  }

 private:
  friend class Cluster;
  Scanner(Cluster* cluster, Session* session, std::string table,
          std::string start, std::string stop, size_t batch_rows)
      : cluster_(cluster),
        session_(session),
        table_(std::move(table)),
        next_start_(std::move(start)),
        stop_(std::move(stop)),
        batch_rows_(batch_rows) {}

  bool FetchBatch();

  Cluster* cluster_;
  Session* session_;
  std::string table_;
  std::string next_start_;
  std::string stop_;
  size_t batch_rows_;
  std::vector<RowResult> buffer_;
  size_t buffer_pos_ = 0;
  bool exhausted_ = false;
  size_t rows_returned_ = 0;
  Status status_ = Status::Ok();
  mutable bool status_checked_ = false;
};

struct TableSizeInfo {
  std::string name;
  size_t rows = 0;
  size_t bytes = 0;  // includes per-cell HBase framing overhead
  size_t regions = 0;
};

class Cluster {
 public:
  explicit Cluster(sim::CostModel model = sim::CostModel::Ec2Like(),
                   int num_region_servers = 5)
      : model_(model), num_region_servers_(num_region_servers),
        failover_(std::make_unique<FailoverManager>(this,
                                                    num_region_servers)) {}

  const sim::CostModel& cost_model() const { return model_; }
  int num_region_servers() const { return num_region_servers_; }

  /// Membership/failure-detection layer. Always on; heartbeat rounds are
  /// driven by RPC ticks, so a healthy idle cluster does no work.
  FailoverManager& failover() { return *failover_; }
  const FailoverManager& failover() const { return *failover_; }

  /// Replaces the failover manager with one using `config` (tests tune the
  /// heartbeat cadence / lease length). Not thread-safe: call before any
  /// concurrent traffic.
  void ConfigureFailover(FailoverConfig config) {
    failover_ =
        std::make_unique<FailoverManager>(this, num_region_servers_, config);
  }

  /// Stable pointers to every region of every table (failover sweeps).
  std::vector<Region*> AllRegions() const;

  /// Installs (or clears, with nullptr) the fault injector consulted at the
  /// RPC boundary of every store operation. Injected request-lost faults
  /// fail the RPC before it reaches the region; ack-lost faults apply the
  /// mutation and fail the acknowledgement. The injector must outlive its
  /// installation; injection sites are read-only for the cluster state.
  void SetFaultInjector(fault::FaultInjector* faults) { faults_ = faults; }
  fault::FaultInjector* fault_injector() const { return faults_; }

  /// Monotonic logical timestamp source (shared by all writers).
  int64_t NextTimestamp() { return clock_.fetch_add(1) + 1; }

  // --- DDL ---
  Status CreateTable(const TableDescriptor& desc,
                     const std::vector<std::string>& split_keys = {});
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- DML (all charge virtual time to the session) ---
  Status Put(Session& s, const std::string& table, const std::string& row_key,
             const std::vector<std::pair<std::string, std::string>>& columns,
             std::optional<int64_t> ts = std::nullopt);

  StatusOr<RowResult> Get(Session& s, const std::string& table,
                          const std::string& row_key);

  Status Delete(Session& s, const std::string& table,
                const std::string& row_key,
                std::optional<int64_t> ts = std::nullopt);

  StatusOr<bool> CheckAndPut(Session& s, const std::string& table,
                             const std::string& row_key,
                             const std::string& qualifier,
                             const std::optional<std::string>& expected,
                             const std::string& new_value);

  StatusOr<int64_t> Increment(Session& s, const std::string& table,
                              const std::string& row_key,
                              const std::string& qualifier, int64_t delta);

  /// Scan rows with key in [start, stop); empty stop = to end of table.
  StatusOr<Scanner> OpenScanner(Session& s, const std::string& table,
                                const std::string& start = "",
                                const std::string& stop = "");

  // --- admin ---
  void MajorCompactAll();
  void MaybeSplitAll();
  std::vector<TableSizeInfo> SizeReport() const;
  size_t TotalBytes() const;
  /// Cheap per-table row count for planner estimates (O(#regions)).
  size_t ApproxRowCount(const std::string& table) const;
  /// Server hosting the table's first region (failover benches/tests pick
  /// their crash victim by the table they intend to disrupt).
  StatusOr<int> RegionServerOf(const std::string& table) const;

 private:
  friend class Scanner;

  StatusOr<Table*> FindTable(const std::string& name) const;

  /// Fault hook before an RPC touches `region`: non-OK = request lost
  /// (region-rpc-failure) or timed out in flight (rpc-timeout). Either way
  /// nothing was applied, so the error is retry-safe.
  Status InjectRequestFault(const std::string& table, const Region* region);
  /// Fault hook after a mutation applied: non-OK = acknowledgement lost.
  Status InjectAckFault(const std::string& table, const Region* region);

  /// Runs `fn` (one RPC attempt returning Status or StatusOr<T>) under the
  /// session's retry policy, charging backoff as virtual time and pumping
  /// failover heartbeats through the waits.
  template <typename Fn>
  auto RunWithRetries(Session& s, Fn&& fn) -> decltype(fn());

  // Single-attempt bodies of the public entry points.
  Status PutOnce(Session& s, const std::string& table,
                 const std::string& row_key,
                 const std::vector<std::pair<std::string, std::string>>&
                     columns,
                 std::optional<int64_t> ts);
  StatusOr<RowResult> GetOnce(Session& s, const std::string& table,
                              const std::string& row_key);
  Status DeleteOnce(Session& s, const std::string& table,
                    const std::string& row_key, std::optional<int64_t> ts);
  StatusOr<bool> CheckAndPutOnce(Session& s, const std::string& table,
                                 const std::string& row_key,
                                 const std::string& qualifier,
                                 const std::optional<std::string>& expected,
                                 const std::string& new_value);
  StatusOr<int64_t> IncrementOnce(Session& s, const std::string& table,
                                  const std::string& row_key,
                                  const std::string& qualifier, int64_t delta);

  /// One scan RPC: fetch up to `limit` visible rows starting at `from`.
  /// Retries per batch under the session policy (a failed batch applied
  /// nothing, so the resume key is still valid).
  StatusOr<ScanBatchResult> ScanBatchRpc(Session& s, const std::string& table,
                                         const std::string& from,
                                         const std::string& stop,
                                         size_t limit);
  StatusOr<ScanBatchResult> ScanBatchRpcOnce(Session& s,
                                             const std::string& table,
                                             const std::string& from,
                                             const std::string& stop,
                                             size_t limit);

  sim::CostModel model_;
  int num_region_servers_;
  fault::FaultInjector* faults_ = nullptr;
  std::unique_ptr<FailoverManager> failover_;
  std::atomic<int64_t> clock_{0};
  // Reader-writer latch on the table catalog: every DML op resolves its
  // table here, so concurrent sessions take it shared; only DDL is exclusive.
  mutable std::shared_mutex tables_mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace synergy::hbase
