// The simulated HBase cluster: table catalog, region-server inventory, and
// the client API (Get/Put/Scan/Delete/Increment/CheckAndPut).
//
// Every operation goes through a Session, which carries the client's virtual
// CostMeter and optional MVCC read view. The store itself is thread-safe;
// sessions are not (one per logical client).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/table.h"
#include "sim/cost_model.h"

namespace synergy::fault {
class FaultInjector;
}  // namespace synergy::fault

namespace synergy::hbase {

class Cluster;

/// A logical client connection: owns the virtual-time meter and read view.
class Session {
 public:
  explicit Session(Cluster* cluster) : cluster_(cluster) {}

  Cluster* cluster() const { return cluster_; }
  sim::CostMeter& meter() { return meter_; }
  const sim::CostMeter& meter() const { return meter_; }

  /// MVCC visibility: read timestamp + excluded (in-flight/invalid) txn ids.
  void SetReadView(ReadView view) { view_ = view; }
  void ClearReadView() { view_ = ReadView{}; }
  const ReadView& read_view() const { return view_; }

 private:
  Cluster* cluster_;
  sim::CostMeter meter_;
  ReadView view_;
};

/// Streaming scanner with per-batch RPC cost accounting. Obtain via
/// Cluster::OpenScanner; iterate with Next until it returns false.
class Scanner {
 public:
  /// Advances to the next row; returns false when the scan is exhausted.
  /// A false return can also mean a failed batch RPC — check status().
  bool Next(RowResult* out);

  /// Non-OK when the scan terminated on a batch-RPC error (e.g. an injected
  /// region fault) rather than genuine exhaustion.
  const Status& status() const { return status_; }

  size_t rows_returned() const { return rows_returned_; }

 private:
  friend class Cluster;
  Scanner(Cluster* cluster, Session* session, std::string table,
          std::string start, std::string stop, size_t batch_rows)
      : cluster_(cluster),
        session_(session),
        table_(std::move(table)),
        next_start_(std::move(start)),
        stop_(std::move(stop)),
        batch_rows_(batch_rows) {}

  bool FetchBatch();

  Cluster* cluster_;
  Session* session_;
  std::string table_;
  std::string next_start_;
  std::string stop_;
  size_t batch_rows_;
  std::vector<RowResult> buffer_;
  size_t buffer_pos_ = 0;
  bool exhausted_ = false;
  size_t rows_returned_ = 0;
  Status status_ = Status::Ok();
};

struct TableSizeInfo {
  std::string name;
  size_t rows = 0;
  size_t bytes = 0;  // includes per-cell HBase framing overhead
  size_t regions = 0;
};

class Cluster {
 public:
  explicit Cluster(sim::CostModel model = sim::CostModel::Ec2Like(),
                   int num_region_servers = 5)
      : model_(model), num_region_servers_(num_region_servers) {}

  const sim::CostModel& cost_model() const { return model_; }
  int num_region_servers() const { return num_region_servers_; }

  /// Installs (or clears, with nullptr) the fault injector consulted at the
  /// RPC boundary of every store operation. Injected request-lost faults
  /// fail the RPC before it reaches the region; ack-lost faults apply the
  /// mutation and fail the acknowledgement. The injector must outlive its
  /// installation; injection sites are read-only for the cluster state.
  void SetFaultInjector(fault::FaultInjector* faults) { faults_ = faults; }
  fault::FaultInjector* fault_injector() const { return faults_; }

  /// Monotonic logical timestamp source (shared by all writers).
  int64_t NextTimestamp() { return clock_.fetch_add(1) + 1; }

  // --- DDL ---
  Status CreateTable(const TableDescriptor& desc,
                     const std::vector<std::string>& split_keys = {});
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- DML (all charge virtual time to the session) ---
  Status Put(Session& s, const std::string& table, const std::string& row_key,
             const std::vector<std::pair<std::string, std::string>>& columns,
             std::optional<int64_t> ts = std::nullopt);

  StatusOr<RowResult> Get(Session& s, const std::string& table,
                          const std::string& row_key);

  Status Delete(Session& s, const std::string& table,
                const std::string& row_key,
                std::optional<int64_t> ts = std::nullopt);

  StatusOr<bool> CheckAndPut(Session& s, const std::string& table,
                             const std::string& row_key,
                             const std::string& qualifier,
                             const std::optional<std::string>& expected,
                             const std::string& new_value);

  StatusOr<int64_t> Increment(Session& s, const std::string& table,
                              const std::string& row_key,
                              const std::string& qualifier, int64_t delta);

  /// Scan rows with key in [start, stop); empty stop = to end of table.
  StatusOr<Scanner> OpenScanner(Session& s, const std::string& table,
                                const std::string& start = "",
                                const std::string& stop = "");

  // --- admin ---
  void MajorCompactAll();
  void MaybeSplitAll();
  std::vector<TableSizeInfo> SizeReport() const;
  size_t TotalBytes() const;
  /// Cheap per-table row count for planner estimates (O(#regions)).
  size_t ApproxRowCount(const std::string& table) const;

 private:
  friend class Scanner;

  StatusOr<Table*> FindTable(const std::string& name) const;

  /// Fault hook before an RPC touches `region`: non-OK = request lost.
  Status InjectRequestFault(const std::string& table, const Region* region);
  /// Fault hook after a mutation applied: non-OK = acknowledgement lost.
  Status InjectAckFault(const std::string& table, const Region* region);

  /// One scan RPC: fetch up to `limit` visible rows starting at `from`.
  StatusOr<ScanBatchResult> ScanBatchRpc(Session& s, const std::string& table,
                                         const std::string& from,
                                         const std::string& stop,
                                         size_t limit);

  sim::CostModel model_;
  int num_region_servers_;
  fault::FaultInjector* faults_ = nullptr;
  std::atomic<int64_t> clock_{0};
  // Reader-writer latch on the table catalog: every DML op resolves its
  // table here, so concurrent sessions take it shared; only DDL is exclusive.
  mutable std::shared_mutex tables_mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace synergy::hbase
