// A region: one contiguous row-key range of a table, with its own latch.
//
// Regions provide the atomicity granule of the store: single-row operations
// (Put/Get/Delete/CheckAndPut/Increment) are atomic under the region latch,
// matching HBase's row-level atomicity guarantees.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hbase/cell.h"

namespace synergy::hbase {

/// Visibility control for reads: resolve versions at/below `read_ts`,
/// skipping versions whose timestamp is in `exclude` (MVCC invalid list).
struct ReadView {
  int64_t read_ts = INT64_MAX;
  const std::vector<int64_t>* exclude = nullptr;
};

struct ScanBatchResult {
  std::vector<RowResult> rows;
  std::string next_start_key;  // exclusive resume point; empty => exhausted
  bool exhausted = false;
  size_t rows_examined = 0;  // server-side work including filtered rows
};

/// One durably-logged mutation of a region, recorded under the region latch
/// with the exact cell timestamp it applied at. Replaying a region's edit
/// log in order reproduces the store byte-for-byte (same versions, same
/// timestamps), which is what lets failover move a dead server's regions
/// without losing acknowledged writes. CheckAndPut/Increment log their
/// *resulting* value, so replay needs no re-evaluation.
struct RegionEdit {
  std::string row_key;
  std::vector<std::pair<std::string, std::string>> columns;
  int64_t ts = 0;
  bool tombstone = false;  // true: each column entry is a tombstone marker
};

class Region {
 public:
  /// `clock` allocates write timestamps *inside* the region latch when the
  /// caller does not supply one, guaranteeing per-cell monotonicity under
  /// concurrency (a pre-allocated timestamp could be written after a newer
  /// one and be silently hidden). `server_id` names the region server this
  /// region is assigned to; fault schedules use it to take down all regions
  /// of one server at once (see testing/fault_injector.h).
  Region(std::string start_key, std::string end_key,
         std::atomic<int64_t>* clock, int server_id = 0)
      : start_key_(std::move(start_key)), end_key_(std::move(end_key)),
        clock_(clock), server_id_(server_id) {}

  const std::string& start_key() const { return start_key_; }
  const std::string& end_key() const { return end_key_; }
  int server_id() const { return server_id_.load(std::memory_order_acquire); }
  /// Reassigns the region to another server (failover). The release store
  /// pairs with the acquire load in server_id(): a client that routes to the
  /// new server sees the replayed store.
  void set_server_id(int id) {
    server_id_.store(id, std::memory_order_release);
  }

  /// Key containment: [start_key, end_key); empty end_key = unbounded.
  bool Contains(const std::string& key) const {
    return key >= start_key_ && (end_key_.empty() || key < end_key_);
  }

  /// ts == nullopt allocates from the clock inside the latch (the normal
  /// path); explicit timestamps are for MVCC writes tagged with a txid.
  void Put(const std::string& row_key,
           const std::vector<std::pair<std::string, std::string>>& columns,
           std::optional<int64_t> ts = std::nullopt);

  void Delete(const std::string& row_key,
              std::optional<int64_t> ts = std::nullopt);
  void DeleteColumn(const std::string& row_key, const std::string& qualifier,
                    std::optional<int64_t> ts = std::nullopt);

  std::optional<RowResult> Get(const std::string& row_key,
                               const ReadView& view) const;

  /// Atomic compare-and-set: writes iff the current latest value of
  /// `qualifier` equals `expected` (nullopt expected == column absent).
  bool CheckAndPut(const std::string& row_key, const std::string& qualifier,
                   const std::optional<std::string>& expected,
                   const std::string& new_value);

  /// Atomic add on a decimal-encoded integer column; returns new value.
  StatusOr<int64_t> Increment(const std::string& row_key,
                              const std::string& qualifier, int64_t delta);

  /// Returns up to `limit` rows with key in [from, end) ∩ [start_key_,
  /// end_key_), resolved through `view`. Rows with no visible cells are
  /// skipped but counted in rows_examined.
  ScanBatchResult ScanBatch(const std::string& from, const std::string& stop,
                            size_t limit, const ReadView& view) const;

  /// Drops tombstones/excess versions; removes rows left empty.
  void MajorCompact(int max_versions);

  /// Number of live rows (rows whose cells are all tombstoned don't count).
  size_t RowCount() const;
  /// O(1) row count including not-yet-compacted deleted rows (planner
  /// estimates; exact liveness does not matter there).
  size_t ApproxRowCount() const;
  size_t ByteSize() const;

  /// Median row key, for region splits. Empty if too few rows.
  std::string MedianKey() const;

  /// Moves rows with key >= split into `right`. Caller fixes key ranges.
  void SplitInto(const std::string& split, Region* right);

  /// Shrinks this region's upper bound after a split.
  void SetEndKey(std::string end_key) { end_key_ = std::move(end_key); }

  // ---- Failover support (see hbase/failover.h) ----

  /// Simulates the server process dying: the in-memory store is wiped but
  /// the edit log (the region WAL, durably replicated in real HBase)
  /// survives. Reads/writes are fenced by the failover layer until
  /// ReplayEdits() rebuilds the store on the new server.
  void DropStore();

  /// Rebuilds the store by replaying the edit log in append order with the
  /// original timestamps. Idempotent only from an empty store: callers must
  /// not replay into an intact store (it would duplicate versions), which is
  /// why fenced-but-alive servers (heartbeat loss) skip replay.
  void ReplayEdits();

  /// True between DropStore() and ReplayEdits(): the store content is gone
  /// and even stale reads would be wrong (silently empty).
  bool store_lost() const {
    return store_lost_.load(std::memory_order_acquire);
  }

  size_t EditLogSize() const;

 private:
  int64_t AllocTs(std::optional<int64_t> ts) {
    return ts.has_value() ? *ts : clock_->fetch_add(1) + 1;
  }

  /// Records one mutation in the edit log. Caller holds mutex_ exclusively.
  void AppendEdit(RegionEdit edit) { log_.push_back(std::move(edit)); }

  std::string start_key_;
  std::string end_key_;
  std::atomic<int64_t>* clock_;
  std::atomic<int> server_id_{0};
  std::atomic<bool> store_lost_{false};
  mutable std::shared_mutex mutex_;
  std::map<std::string, RowData> rows_;
  std::vector<RegionEdit> log_;  // region WAL; split-partitioned with rows_
};

}  // namespace synergy::hbase
