#include "hbase/cluster.h"

#include <cmath>

#include "testing/fault_injector.h"

namespace synergy::hbase {

ClusterOpCounters ClusterOpCounters::Resolve(obs::MetricsRegistry& registry) {
  ClusterOpCounters c;
  c.rpcs = registry.GetCounter(
      "hbase_rpcs_total", "RPC attempts at the region-server boundary");
  c.scan_batches = registry.GetCounter(
      "hbase_scan_batches_total", "scan batch RPCs (subset of hbase_rpcs)");
  c.faults_injected = registry.GetCounter(
      "hbase_faults_injected_total",
      "injected RPC faults (request-lost, timeout, ack-lost)");
  c.retries = registry.GetCounter(
      "client_retries_total", "retry attempts granted by session policies");
  c.degraded_reads = registry.GetCounter(
      "client_degraded_reads_total",
      "bounded-staleness reads served mid-reassignment");
  c.deadline_exceeded = registry.GetCounter(
      "client_deadline_exceeded_total", "ops that exhausted their deadline");
  c.overload_rejected = registry.GetCounter(
      "client_overload_rejected_total",
      "ops shed by admission control or a tripped breaker");
  c.scan_errors_dropped = registry.GetCounter(
      "client_scan_errors_dropped_total",
      "scanners destroyed with an unchecked error status");
  c.breaker_fastfail = registry.GetCounter(
      "client_breaker_fastfail_total",
      "ops failed fast by an open circuit breaker");
  c.retry_budget_exhausted = registry.GetCounter(
      "client_retry_budget_exhausted_total",
      "retries denied by an empty token-bucket budget");
  c.admission_queue_wait_us = registry.GetHistogram(
      "hbase_admission_queue_wait_us",
      "virtual queueing delay charged per admitted RPC");
  return c;
}

template <typename Fn>
auto Cluster::RunWithRetries(Session& s, Fn&& fn) -> decltype(fn()) {
  return RunWithRetryProtection(*this, s, std::forward<Fn>(fn), [] {});
}

Status Cluster::CreateTable(const TableDescriptor& desc,
                            const std::vector<std::string>& split_keys) {
  std::unique_lock lock(tables_mutex_);
  if (tables_.contains(desc.name)) {
    return Status::AlreadyExists("table " + desc.name);
  }
  tables_.emplace(desc.name,
                  std::make_unique<Table>(desc, split_keys, &clock_,
                                          num_region_servers_));
  return Status::Ok();
}

Status Cluster::InjectRequestFault(const std::string& table,
                                   const Region* region) {
  if (faults_ == nullptr) return Status::Ok();
  const fault::FaultSite site{table, region->server_id()};
  if (faults_->ShouldFire(fault::FaultPoint::kRegionRpcFailure, site)) {
    counters_.faults_injected->Inc();
    return faults_->InjectedFault(fault::FaultPoint::kRegionRpcFailure);
  }
  if (faults_->ShouldFire(fault::FaultPoint::kRpcTimeout, site)) {
    counters_.faults_injected->Inc();
    return faults_->InjectedFault(fault::FaultPoint::kRpcTimeout);
  }
  return Status::Ok();
}

Status Cluster::InjectAckFault(const std::string& table,
                               const Region* region) {
  if (faults_ == nullptr) return Status::Ok();
  const fault::FaultSite site{table, region->server_id()};
  if (faults_->ShouldFire(fault::FaultPoint::kRegionRpcAckLost, site)) {
    counters_.faults_injected->Inc();
    return faults_->InjectedFault(fault::FaultPoint::kRegionRpcAckLost);
  }
  return Status::Ok();
}

Status Cluster::AdmitOp(Session& s, const std::string& table,
                        const Region* region, AdmissionSlot* slot) {
  if (admission_ == nullptr) return Status::Ok();
  const int server = region->server_id();
  // The overload-burst fault slams this server with phantom load *before*
  // the admission decision, so the triggering op already feels the burst.
  if (faults_ != nullptr &&
      faults_->ShouldFire(fault::FaultPoint::kOverloadBurst,
                          fault::FaultSite{table, server})) {
    admission_->InjectBurst(server, admission_->config().burst_ops);
  }
  AdmissionDecision d = admission_->Admit(server, s.OpDeadlineRemaining());
  SYNERGY_RETURN_IF_ERROR(d.status);
  counters_.admission_queue_wait_us->Observe(d.queue_wait_us);
  if (d.queue_wait_us > 0.0) {
    // Queueing delay is modeled time like any other cost, and it advances
    // failure detection the same way retry backoffs do.
    s.meter().Charge(d.queue_wait_us);
    failover_->PumpVirtualTime(d.queue_wait_us);
    if (obs::TraceCollector* trace = s.trace()) {
      trace->NoteCurrent("queue_wait_us", std::to_string(d.queue_wait_us));
    }
  }
  *slot = AdmissionSlot(admission_.get(), server);
  return Status::Ok();
}

Status Cluster::DropTable(const std::string& name) {
  std::unique_lock lock(tables_mutex_);
  if (tables_.erase(name) == 0) return Status::NotFound("table " + name);
  return Status::Ok();
}

bool Cluster::HasTable(const std::string& name) const {
  std::shared_lock lock(tables_mutex_);
  return tables_.contains(name);
}

std::vector<std::string> Cluster::TableNames() const {
  std::shared_lock lock(tables_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<Table*> Cluster::FindTable(const std::string& name) const {
  std::shared_lock lock(tables_mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Status Cluster::Put(
    Session& s, const std::string& table, const std::string& row_key,
    const std::vector<std::pair<std::string, std::string>>& columns,
    std::optional<int64_t> ts) {
  return RunWithRetries(
      s, [&] { return PutOnce(s, table, row_key, columns, ts); });
}

Status Cluster::PutOnce(
    Session& s, const std::string& table, const std::string& row_key,
    const std::vector<std::pair<std::string, std::string>>& columns,
    std::optional<int64_t> ts) {
  failover_->OnRpc();
  s.CountRpc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.put");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  size_t payload = row_key.size();
  for (const auto& [qual, value] : columns) payload += qual.size() + value.size();
  s.meter().Charge(sim::RpcCost(model_, payload) + model_.server_seek_us);
  Region* region = t->RouteKey(row_key);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access = failover_->CheckAccess(region, /*is_write=*/true);
  SYNERGY_RETURN_IF_ERROR(access.status);
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  region->Put(row_key, columns, ts);
  return InjectAckFault(table, region);
}

StatusOr<RowResult> Cluster::Get(Session& s, const std::string& table,
                                 const std::string& row_key) {
  return RunWithRetries(s, [&] { return GetOnce(s, table, row_key); });
}

StatusOr<RowResult> Cluster::GetOnce(Session& s, const std::string& table,
                                     const std::string& row_key) {
  failover_->OnRpc();
  s.CountRpc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.get");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  Region* region = t->RouteKey(row_key);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access =
      failover_->CheckAccess(region, /*is_write=*/false);
  SYNERGY_RETURN_IF_ERROR(access.status);
  if (access.degraded) {
    s.CountDegradedRead();
    rpc_span.Note("degraded", "1");
  }
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  std::optional<RowResult> row = region->Get(row_key, s.read_view());
  const size_t payload = row.has_value() ? row->PayloadBytes() : 0;
  s.meter().Charge(sim::RpcCost(model_, payload) + model_.server_seek_us);
  if (!row.has_value()) {
    return Status::NotFound("row in " + table);
  }
  return std::move(*row);
}

Status Cluster::Delete(Session& s, const std::string& table,
                       const std::string& row_key, std::optional<int64_t> ts) {
  return RunWithRetries(s, [&] { return DeleteOnce(s, table, row_key, ts); });
}

Status Cluster::DeleteOnce(Session& s, const std::string& table,
                           const std::string& row_key,
                           std::optional<int64_t> ts) {
  failover_->OnRpc();
  s.CountRpc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.delete");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  s.meter().Charge(sim::RpcCost(model_, row_key.size()) +
                   model_.server_seek_us);
  Region* region = t->RouteKey(row_key);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access = failover_->CheckAccess(region, /*is_write=*/true);
  SYNERGY_RETURN_IF_ERROR(access.status);
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  region->Delete(row_key, ts);
  return InjectAckFault(table, region);
}

StatusOr<bool> Cluster::CheckAndPut(Session& s, const std::string& table,
                                    const std::string& row_key,
                                    const std::string& qualifier,
                                    const std::optional<std::string>& expected,
                                    const std::string& new_value) {
  return RunWithRetries(s, [&] {
    return CheckAndPutOnce(s, table, row_key, qualifier, expected, new_value);
  });
}

StatusOr<bool> Cluster::CheckAndPutOnce(
    Session& s, const std::string& table, const std::string& row_key,
    const std::string& qualifier, const std::optional<std::string>& expected,
    const std::string& new_value) {
  failover_->OnRpc();
  s.CountRpc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.check_and_put");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  s.meter().Charge(model_.lock_rpc_us);
  // No ack-lost injection here: a CheckAndPut that applies but reports
  // failure is unresolvable ambiguity for the caller (non-idempotent CAS).
  // Request-lost/timeout/failover refusals happen before the CAS applies,
  // so the client retry loop stays safe.
  Region* region = t->RouteKey(row_key);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access = failover_->CheckAccess(region, /*is_write=*/true);
  SYNERGY_RETURN_IF_ERROR(access.status);
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  return region->CheckAndPut(row_key, qualifier, expected, new_value);
}

StatusOr<int64_t> Cluster::Increment(Session& s, const std::string& table,
                                     const std::string& row_key,
                                     const std::string& qualifier,
                                     int64_t delta) {
  return RunWithRetries(
      s, [&] { return IncrementOnce(s, table, row_key, qualifier, delta); });
}

StatusOr<int64_t> Cluster::IncrementOnce(Session& s, const std::string& table,
                                         const std::string& row_key,
                                         const std::string& qualifier,
                                         int64_t delta) {
  failover_->OnRpc();
  s.CountRpc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.increment");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  s.meter().Charge(sim::RpcCost(model_, row_key.size() + 16) +
                   model_.server_seek_us);
  Region* region = t->RouteKey(row_key);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access = failover_->CheckAccess(region, /*is_write=*/true);
  SYNERGY_RETURN_IF_ERROR(access.status);
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  return region->Increment(row_key, qualifier, delta);
}

StatusOr<Scanner> Cluster::OpenScanner(Session& s, const std::string& table,
                                       const std::string& start,
                                       const std::string& stop) {
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  (void)t;
  return Scanner(this, &s, table, start, stop,
                 static_cast<size_t>(model_.scan_batch_rows));
}

StatusOr<ScanBatchResult> Cluster::ScanBatchRpc(Session& s,
                                                const std::string& table,
                                                const std::string& from,
                                                const std::string& stop,
                                                size_t limit) {
  return RunWithRetries(
      s, [&] { return ScanBatchRpcOnce(s, table, from, stop, limit); });
}

StatusOr<ScanBatchResult> Cluster::ScanBatchRpcOnce(Session& s,
                                                    const std::string& table,
                                                    const std::string& from,
                                                    const std::string& stop,
                                                    size_t limit) {
  failover_->OnRpc();
  s.CountRpc();
  counters_.scan_batches->Inc();
  obs::ScopedSpan rpc_span(s.rpc_trace(), "rpc.scan_batch");
  rpc_span.Note("table", table);
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  Region* region = t->RouteScanStart(from);
  rpc_span.Note("server", std::to_string(region->server_id()));
  const RegionAccess access =
      failover_->CheckAccess(region, /*is_write=*/false);
  SYNERGY_RETURN_IF_ERROR(access.status);
  if (access.degraded) {
    s.CountDegradedRead();
    rpc_span.Note("degraded", "1");
  }
  AdmissionSlot slot;
  SYNERGY_RETURN_IF_ERROR(AdmitOp(s, table, region, &slot));
  SYNERGY_RETURN_IF_ERROR(InjectRequestFault(table, region));
  ScanBatchResult batch = region->ScanBatch(from, stop, limit, s.read_view());
  // If the region was exhausted but the table continues, resume from the
  // region's end key on the next RPC.
  if (batch.exhausted && !region->end_key().empty() &&
      (stop.empty() || region->end_key() < stop)) {
    batch.exhausted = false;
    batch.next_start_key = region->end_key();
  }
  size_t payload = 0;
  for (const RowResult& row : batch.rows) payload += row.PayloadBytes();
  double cost = sim::RpcCost(model_, payload) +
                model_.server_scan_row_us *
                    static_cast<double>(batch.rows_examined) +
                model_.client_row_us * static_cast<double>(batch.rows.size());
  if (s.read_view().exclude != nullptr) {
    // MVCC visibility filtering work per examined row.
    cost += model_.mvcc_read_filter_row_us *
            static_cast<double>(batch.rows_examined);
  }
  s.meter().Charge(cost);
  return batch;
}

bool Scanner::FetchBatch() {
  while (!exhausted_) {
    StatusOr<ScanBatchResult> batch =
        cluster_->ScanBatchRpc(*session_, table_, next_start_, stop_,
                               batch_rows_);
    if (!batch.ok()) {
      status_ = batch.status();
      exhausted_ = true;
      return false;
    }
    buffer_ = std::move(batch->rows);
    buffer_pos_ = 0;
    if (batch->exhausted) {
      exhausted_ = true;
    } else {
      // Resume strictly after the last delivered row, or at the region
      // boundary if the batch ended at one.
      next_start_ = batch->next_start_key;
      if (next_start_.empty()) {
        if (buffer_.empty()) {
          exhausted_ = true;
        } else {
          next_start_ = buffer_.back().row_key + std::string(1, '\0');
        }
      }
    }
    if (!buffer_.empty()) return true;
  }
  return false;
}

bool Scanner::Next(RowResult* out) {
  if (buffer_pos_ >= buffer_.size() && !FetchBatch()) return false;
  *out = std::move(buffer_[buffer_pos_++]);
  ++rows_returned_;
  return true;
}

std::vector<Region*> Cluster::AllRegions() const {
  std::shared_lock lock(tables_mutex_);
  std::vector<Region*> out;
  for (const auto& [name, table] : tables_) {
    for (Region* region : table->SnapshotRegions()) out.push_back(region);
  }
  return out;
}

void Cluster::MajorCompactAll() {
  std::shared_lock lock(tables_mutex_);
  for (auto& [name, table] : tables_) table->MajorCompact();
}

void Cluster::MaybeSplitAll() {
  std::shared_lock lock(tables_mutex_);
  for (auto& [name, table] : tables_) table->MaybeSplit();
}

std::vector<TableSizeInfo> Cluster::SizeReport() const {
  std::shared_lock lock(tables_mutex_);
  std::vector<TableSizeInfo> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    TableSizeInfo info;
    info.name = name;
    info.rows = table->RowCount();
    info.regions = table->RegionCount();
    const size_t raw = table->ByteSize();
    // Approximate HFile framing: per-cell key/cf/qualifier/timestamp overhead.
    info.bytes = raw + static_cast<size_t>(
                           model_.hbase_overhead_per_cell *
                           static_cast<double>(info.rows) * 4.0);
    out.push_back(info);
  }
  return out;
}

size_t Cluster::ApproxRowCount(const std::string& table) const {
  StatusOr<Table*> t = FindTable(table);
  if (!t.ok()) return 0;
  return (*t)->ApproxRowCount();
}

StatusOr<int> Cluster::RegionServerOf(const std::string& table) const {
  SYNERGY_ASSIGN_OR_RETURN(t, FindTable(table));
  const std::vector<Region*> regions = t->SnapshotRegions();
  if (regions.empty()) return Status::NotFound("table has no regions");
  return regions.front()->server_id();
}

size_t Cluster::TotalBytes() const {
  size_t total = 0;
  for (const TableSizeInfo& info : SizeReport()) total += info.bytes;
  return total;
}

}  // namespace synergy::hbase
