#include "hbase/admission.h"

#include <algorithm>
#include <string>

namespace synergy::hbase {

AdmissionController::AdmissionController(int num_servers,
                                         AdmissionConfig config)
    : config_(config),
      servers_(static_cast<size_t>(std::max(num_servers, 1))) {}

AdmissionDecision AdmissionController::Admit(int server_id,
                                             double deadline_remaining_us) {
  std::lock_guard lock(mutex_);
  ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  const int occupancy = server.inflight + server.burst;
  if (occupancy < config_.max_inflight_per_server) {
    ++server.inflight;
    ++stats_.admitted;
    return {Status::Ok(), 0.0};
  }
  const int queue_len = occupancy - config_.max_inflight_per_server;
  if (queue_len >= config_.max_queue_depth) {
    ++stats_.shed_queue_full;
    // A shed also drains one phantom burst op: the server spent that slot of
    // attention serving the stampede. Without this, a burst larger than
    // inflight+queue would wedge the server forever — nothing could be
    // admitted, so nothing would ever Release and drain the phantoms.
    if (server.burst > 0) --server.burst;
    return {Status::ResourceExhausted(
                "server " + std::to_string(server_id) +
                " admission queue full (" + std::to_string(queue_len) +
                " waiting)"),
            0.0};
  }
  // Position in queue -> estimated wait. Shedding the op whose deadline the
  // wait already blows is the cheapest point to fail it: no server capacity
  // spent, and the client learns immediately instead of at its deadline.
  const double est_wait_us =
      static_cast<double>(queue_len + 1) * config_.est_service_us;
  if (est_wait_us > deadline_remaining_us) {
    ++stats_.shed_deadline;
    if (server.burst > 0) --server.burst;  // see queue-full shed above
    return {Status::ResourceExhausted(
                "server " + std::to_string(server_id) +
                " overloaded: estimated queue wait " +
                std::to_string(static_cast<int64_t>(est_wait_us)) +
                "us exceeds remaining deadline"),
            0.0};
  }
  ++server.inflight;
  ++stats_.admitted;
  ++stats_.queued;
  return {Status::Ok(), est_wait_us};
}

void AdmissionController::Release(int server_id) {
  std::lock_guard lock(mutex_);
  ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  if (server.inflight > 0) --server.inflight;
  if (server.burst > 0) --server.burst;
}

void AdmissionController::InjectBurst(int server_id, int ops) {
  if (ops <= 0) return;
  std::lock_guard lock(mutex_);
  servers_.at(static_cast<size_t>(server_id)).burst += ops;
  stats_.burst_ops_injected += ops;
}

int AdmissionController::Occupancy(int server_id) const {
  std::lock_guard lock(mutex_);
  const ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  return server.inflight + server.burst;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace synergy::hbase
