#include "hbase/admission.h"

#include <algorithm>
#include <string>

namespace synergy::hbase {

AdmissionController::AdmissionController(int num_servers,
                                         AdmissionConfig config,
                                         obs::MetricsRegistry* registry)
    : config_(config),
      own_registry_(registry == nullptr
                        ? std::make_unique<obs::MetricsRegistry>()
                        : nullptr),
      servers_(static_cast<size_t>(std::max(num_servers, 1))) {
  obs::MetricsRegistry& r =
      registry != nullptr ? *registry : *own_registry_;
  admitted_ = r.GetCounter("hbase_admission_admitted_total",
                           "ops admitted (incl. queued)");
  queued_ = r.GetCounter("hbase_admission_queued_total",
                         "ops admitted after a virtual queue wait");
  shed_queue_full_ = r.GetCounter("hbase_admission_shed_queue_full_total",
                                  "ops shed: backlog at max_queue_depth");
  shed_deadline_ = r.GetCounter("hbase_admission_shed_deadline_total",
                                "ops shed: deadline already hopeless");
  burst_ops_injected_ =
      r.GetCounter("hbase_admission_burst_ops_total",
                   "phantom ops injected by overload-burst faults");
}

AdmissionDecision AdmissionController::Admit(int server_id,
                                             double deadline_remaining_us) {
  std::lock_guard lock(mutex_);
  ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  const int occupancy = server.inflight + server.burst;
  if (occupancy < config_.max_inflight_per_server) {
    ++server.inflight;
    admitted_->Inc();
    return {Status::Ok(), 0.0};
  }
  const int queue_len = occupancy - config_.max_inflight_per_server;
  if (queue_len >= config_.max_queue_depth) {
    shed_queue_full_->Inc();
    // A shed also drains one phantom burst op: the server spent that slot of
    // attention serving the stampede. Without this, a burst larger than
    // inflight+queue would wedge the server forever — nothing could be
    // admitted, so nothing would ever Release and drain the phantoms.
    if (server.burst > 0) --server.burst;
    return {Status::ResourceExhausted(
                "server " + std::to_string(server_id) +
                " admission queue full (" + std::to_string(queue_len) +
                " waiting)"),
            0.0};
  }
  // Position in queue -> estimated wait. Shedding the op whose deadline the
  // wait already blows is the cheapest point to fail it: no server capacity
  // spent, and the client learns immediately instead of at its deadline.
  const double est_wait_us =
      static_cast<double>(queue_len + 1) * config_.est_service_us;
  if (est_wait_us > deadline_remaining_us) {
    shed_deadline_->Inc();
    if (server.burst > 0) --server.burst;  // see queue-full shed above
    return {Status::ResourceExhausted(
                "server " + std::to_string(server_id) +
                " overloaded: estimated queue wait " +
                std::to_string(static_cast<int64_t>(est_wait_us)) +
                "us exceeds remaining deadline"),
            0.0};
  }
  ++server.inflight;
  admitted_->Inc();
  queued_->Inc();
  return {Status::Ok(), est_wait_us};
}

void AdmissionController::Release(int server_id) {
  std::lock_guard lock(mutex_);
  ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  if (server.inflight > 0) --server.inflight;
  if (server.burst > 0) --server.burst;
}

void AdmissionController::InjectBurst(int server_id, int ops) {
  if (ops <= 0) return;
  std::lock_guard lock(mutex_);
  servers_.at(static_cast<size_t>(server_id)).burst += ops;
  burst_ops_injected_->Inc(static_cast<uint64_t>(ops));
}

int AdmissionController::Occupancy(int server_id) const {
  std::lock_guard lock(mutex_);
  const ServerLoad& server = servers_.at(static_cast<size_t>(server_id));
  return server.inflight + server.burst;
}

AdmissionStats AdmissionController::stats() const {
  // Reassembled from the registry counters — no second tally to drift.
  AdmissionStats s;
  s.admitted = static_cast<int64_t>(admitted_->Value());
  s.queued = static_cast<int64_t>(queued_->Value());
  s.shed_queue_full = static_cast<int64_t>(shed_queue_full_->Value());
  s.shed_deadline = static_cast<int64_t>(shed_deadline_->Value());
  s.burst_ops_injected = static_cast<int64_t>(burst_ops_injected_->Value());
  return s;
}

}  // namespace synergy::hbase
