// Client-side retry/deadline policy for cluster RPCs and root transactions.
//
// Every Cluster entry point (Get/Put/Scan/CheckAndPut/Increment) and the
// txn-layer submit path share one taxonomy: kUnavailable errors (lost RPCs,
// dead/fenced region servers, crashed txn slaves, regions mid-reassignment)
// are *retryable*; everything else (NotFound, Aborted, FailedPrecondition,
// ...) passes through untouched. Retries back off exponentially with seeded
// jitter, capped, against a per-operation virtual-time deadline. Backoff is
// charged to the session's CostMeter as virtual time, so retries show up in
// benchmark tail latencies instead of hiding in host sleeps.
//
// Policies are opt-in per Session (default: no retries), so deterministic
// fault schedules in existing tests keep their exact hit sequences.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace synergy::hbase {

/// Tunable knobs for one client's retry behavior. Values are virtual µs.
struct RetryPolicy {
  int max_attempts = 8;              // total attempts, including the first
  double initial_backoff_us = 2000;  // first retry delay
  double max_backoff_us = 256000;    // cap for the exponential growth
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;     // each delay *= 1 ± U(0,jitter_fraction)
  double deadline_us = 10000000;     // per-operation budget; <= 0 disables
  uint64_t jitter_seed = 0xC0FFEE;   // seeds the jitter stream (deterministic)

  // ---- Overload protection (all opt-in; 0 disables) ----
  // Token-bucket retry budget: each granted retry spends one token, each
  // successful op refills `retry_budget_refill` tokens (capped at the max).
  // Bounds retry traffic to a fraction of fresh traffic, so a brown-out
  // cannot be amplified into a retry storm. 0 = unlimited retries.
  double retry_budget_max = 0.0;
  double retry_budget_refill = 0.1;
  // Circuit breaker: after this many *consecutive* overload rejections
  // (kResourceExhausted) the session fails fast without issuing RPCs, then
  // half-opens after `breaker_cooldown_us` of virtual time to let one probe
  // through. 0 = no breaker.
  int breaker_trip_overloads = 0;
  double breaker_cooldown_us = 500000.0;
};

/// True for errors the policy may retry: kUnavailable (lost RPC, timeout,
/// dead server, region mid-move, crashed slave). kDeadlineExceeded itself is
/// terminal, as is every application-level code — including
/// kResourceExhausted: retrying an overloaded server amplifies the overload.
bool IsRetryable(const Status& status);

/// True for overload rejections (admission shed, full slave queue, open
/// circuit breaker). Never retried; trips the session's circuit breaker.
bool IsOverloaded(const Status& status);

/// Per-operation retry state: owns the jitter RNG and the deadline anchor.
/// Usage:
///   RetryController retry(policy, meter.micros());
///   for (;;) {
///     Status s = DoRpc();
///     if (s.ok()) break;
///     auto d = retry.OnFailure(s, meter.micros());
///     if (!d.retry) return d.final_status;
///     meter.Charge(d.backoff_us);
///   }
class RetryController {
 public:
  RetryController(const RetryPolicy& policy, double start_virtual_us)
      : policy_(policy),
        start_us_(start_virtual_us),
        next_backoff_us_(policy.initial_backoff_us),
        rng_(policy.jitter_seed) {}

  struct Decision {
    bool retry = false;
    double backoff_us = 0.0;  // virtual time to charge before the next try
    Status final_status;      // meaningful only when !retry
  };

  /// Decide what to do after a failed attempt at virtual time `now_us`.
  /// Non-retryable statuses pass through unchanged; exhausted attempts
  /// surface the last error; a blown deadline surfaces kDeadlineExceeded
  /// (wrapping the last error's message for replay forensics).
  Decision OnFailure(const Status& status, double now_us);

  /// Attempts made so far (1 after the first OnFailure call).
  int attempts() const { return attempts_; }
  /// Retries granted so far (attempts - 1, never negative).
  int retries_granted() const { return attempts_ > 0 ? attempts_ - 1 : 0; }

  /// Virtual µs left before the deadline, or a large value when disabled.
  double DeadlineRemaining(double now_us) const;

 private:
  RetryPolicy policy_;
  double start_us_;
  double next_backoff_us_;
  int attempts_ = 0;
  Rng rng_;
};

/// Session-scoped token bucket bounding retry traffic. Not synchronized:
/// only the thread currently driving the session touches it (the retry
/// loops run on the client thread; slave write bodies run with retries
/// suppressed and never reach it).
class RetryBudget {
 public:
  explicit RetryBudget(const RetryPolicy& policy)
      : max_(policy.retry_budget_max),
        refill_(policy.retry_budget_refill),
        tokens_(policy.retry_budget_max) {}

  /// Spend one token for a retry; false when the bucket is empty (the
  /// caller must surface the error instead of retrying).
  bool TrySpend() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Each success earns back a fraction of a token.
  void OnSuccess() { tokens_ = std::min(max_, tokens_ + refill_); }

  double tokens() const { return tokens_; }

 private:
  double max_;
  double refill_;
  double tokens_;
};

/// Session-scoped circuit breaker over overload rejections. Closed: ops flow
/// normally. Open: ops fail fast with kResourceExhausted, without touching
/// the cluster, until `breaker_cooldown_us` of virtual time has passed.
/// Half-open: one probe op is let through; success closes the breaker,
/// another overload re-opens it. Same single-driver threading contract as
/// RetryBudget.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const RetryPolicy& policy)
      : trip_threshold_(policy.breaker_trip_overloads),
        cooldown_us_(policy.breaker_cooldown_us) {}

  /// Gate before the first attempt of an op. OK while closed (or when the
  /// cooldown elapsed — the op becomes the half-open probe); fails fast with
  /// kResourceExhausted while open.
  Status Admit(double now_us);

  void OnSuccess();
  void OnOverload(double now_us);

  State state() const { return state_; }
  int consecutive_overloads() const { return consecutive_; }
  int64_t trips() const { return trips_; }
  int64_t fast_failures() const { return fast_failures_; }

 private:
  int trip_threshold_;
  double cooldown_us_;
  State state_ = State::kClosed;
  int consecutive_ = 0;
  double opened_at_us_ = 0.0;
  int64_t trips_ = 0;
  int64_t fast_failures_ = 0;
};

}  // namespace synergy::hbase
