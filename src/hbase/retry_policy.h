// Client-side retry/deadline policy for cluster RPCs and root transactions.
//
// Every Cluster entry point (Get/Put/Scan/CheckAndPut/Increment) and the
// txn-layer submit path share one taxonomy: kUnavailable errors (lost RPCs,
// dead/fenced region servers, crashed txn slaves, regions mid-reassignment)
// are *retryable*; everything else (NotFound, Aborted, FailedPrecondition,
// ...) passes through untouched. Retries back off exponentially with seeded
// jitter, capped, against a per-operation virtual-time deadline. Backoff is
// charged to the session's CostMeter as virtual time, so retries show up in
// benchmark tail latencies instead of hiding in host sleeps.
//
// Policies are opt-in per Session (default: no retries), so deterministic
// fault schedules in existing tests keep their exact hit sequences.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace synergy::hbase {

/// Tunable knobs for one client's retry behavior. Values are virtual µs.
struct RetryPolicy {
  int max_attempts = 8;              // total attempts, including the first
  double initial_backoff_us = 2000;  // first retry delay
  double max_backoff_us = 256000;    // cap for the exponential growth
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;     // each delay *= 1 ± U(0,jitter_fraction)
  double deadline_us = 10000000;     // per-operation budget; <= 0 disables
  uint64_t jitter_seed = 0xC0FFEE;   // seeds the jitter stream (deterministic)
};

/// True for errors the policy may retry: kUnavailable (lost RPC, timeout,
/// dead server, region mid-move, crashed slave). kDeadlineExceeded itself is
/// terminal, as is every application-level code.
bool IsRetryable(const Status& status);

/// Per-operation retry state: owns the jitter RNG and the deadline anchor.
/// Usage:
///   RetryController retry(policy, meter.micros());
///   for (;;) {
///     Status s = DoRpc();
///     if (s.ok()) break;
///     auto d = retry.OnFailure(s, meter.micros());
///     if (!d.retry) return d.final_status;
///     meter.Charge(d.backoff_us);
///   }
class RetryController {
 public:
  RetryController(const RetryPolicy& policy, double start_virtual_us)
      : policy_(policy),
        start_us_(start_virtual_us),
        next_backoff_us_(policy.initial_backoff_us),
        rng_(policy.jitter_seed) {}

  struct Decision {
    bool retry = false;
    double backoff_us = 0.0;  // virtual time to charge before the next try
    Status final_status;      // meaningful only when !retry
  };

  /// Decide what to do after a failed attempt at virtual time `now_us`.
  /// Non-retryable statuses pass through unchanged; exhausted attempts
  /// surface the last error; a blown deadline surfaces kDeadlineExceeded
  /// (wrapping the last error's message for replay forensics).
  Decision OnFailure(const Status& status, double now_us);

  /// Attempts made so far (1 after the first OnFailure call).
  int attempts() const { return attempts_; }
  /// Retries granted so far (attempts - 1, never negative).
  int retries_granted() const { return attempts_ > 0 ? attempts_ - 1 : 0; }

  /// Virtual µs left before the deadline, or a large value when disabled.
  double DeadlineRemaining(double now_us) const;

 private:
  RetryPolicy policy_;
  double start_us_;
  double next_backoff_us_;
  int attempts_ = 0;
  Rng rng_;
};

}  // namespace synergy::hbase
