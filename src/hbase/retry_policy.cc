#include "hbase/retry_policy.h"

#include <algorithm>
#include <limits>
#include <string>

namespace synergy::hbase {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

bool IsOverloaded(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

Status CircuitBreaker::Admit(double now_us) {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return Status::Ok();
    case State::kOpen:
      if (now_us - opened_at_us_ >= cooldown_us_) {
        state_ = State::kHalfOpen;  // this op is the probe
        return Status::Ok();
      }
      ++fast_failures_;
      return Status::ResourceExhausted(
          "circuit breaker open (failing fast after " +
          std::to_string(consecutive_) + " consecutive overload rejections)");
  }
  return Status::Ok();
}

void CircuitBreaker::OnSuccess() {
  consecutive_ = 0;
  state_ = State::kClosed;
}

void CircuitBreaker::OnOverload(double now_us) {
  ++consecutive_;
  if (trip_threshold_ <= 0) return;
  if (state_ == State::kHalfOpen || consecutive_ >= trip_threshold_) {
    // A failed probe re-opens immediately; in the closed state the trip
    // waits for the configured streak of consecutive rejections.
    if (state_ != State::kOpen) ++trips_;
    state_ = State::kOpen;
    opened_at_us_ = now_us;
  }
}

double RetryController::DeadlineRemaining(double now_us) const {
  if (policy_.deadline_us <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return policy_.deadline_us - (now_us - start_us_);
}

RetryController::Decision RetryController::OnFailure(const Status& status,
                                                     double now_us) {
  ++attempts_;
  if (!IsRetryable(status)) {
    return {false, 0.0, status};
  }
  // Deadline first: a blown budget outranks remaining attempts, so tightly
  // budgeted operations fail fast with kDeadlineExceeded instead of
  // burning the full attempt count.
  const double remaining = DeadlineRemaining(now_us);
  double backoff = next_backoff_us_;
  if (policy_.jitter_fraction > 0.0) {
    backoff *= 1.0 + rng_.UniformReal(-policy_.jitter_fraction,
                                      policy_.jitter_fraction);
  }
  backoff = std::max(backoff, 0.0);
  if (backoff > remaining) {
    return {false, 0.0,
            Status::DeadlineExceeded("operation deadline exceeded after " +
                                     std::to_string(attempts_) +
                                     " attempt(s); last error: " +
                                     status.ToString())};
  }
  if (attempts_ >= policy_.max_attempts) {
    return {false, 0.0, status};
  }
  next_backoff_us_ = std::min(next_backoff_us_ * policy_.backoff_multiplier,
                              policy_.max_backoff_us);
  return {true, backoff, Status::Ok()};
}

}  // namespace synergy::hbase
