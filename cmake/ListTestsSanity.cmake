# Asserts every registered gtest binary runs `--gtest_list_tests` cleanly and
# reports at least one test. Invoked by the build_sanity_list_tests ctest entry.
if(NOT TEST_BINARIES)
  message(FATAL_ERROR "No test binaries were registered")
endif()
foreach(bin ${TEST_BINARIES})
  execute_process(COMMAND ${bin} --gtest_list_tests
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${bin} --gtest_list_tests failed (rc=${rc}): ${err}")
  endif()
  if(NOT out MATCHES "\\.")
    message(FATAL_ERROR "${bin} lists no tests:\n${out}")
  endif()
endforeach()
message(STATUS "All test binaries list tests cleanly")
