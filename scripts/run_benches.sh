#!/usr/bin/env bash
# Runs every paper benchmark and saves its output under bench-results/.
#
# Usage:
#   scripts/run_benches.sh [build_dir]
#
# Scale knobs (see docs/BENCHMARKS.md):
#   SYNERGY_TPCW_CUSTOMERS  TPC-W scale (default: each bench's own default)
#   SYNERGY_BENCH_REPS      repetitions per statement (paper: 10)
set -euo pipefail

build_dir="${1:-build}"
out_dir="bench-results"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found; run cmake first" >&2
  exit 1
fi

mkdir -p "$out_dir"
shopt -s nullglob
benches=("$build_dir"/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in '$build_dir'" >&2
  exit 1
fi

for bench in "${benches[@]}"; do
  name="$(basename "$bench")"
  echo "=== $name"
  "$bench" | tee "$out_dir/$name.txt"
  echo
done
echo "Results written to $out_dir/"
