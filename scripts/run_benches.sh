#!/usr/bin/env bash
# Runs every paper benchmark and saves its output under bench-results/.
#
# Usage:
#   scripts/run_benches.sh [build_dir]
#
# Scale knobs (see docs/BENCHMARKS.md):
#   SYNERGY_TPCW_CUSTOMERS  TPC-W scale (default: each bench's own default)
#   SYNERGY_BENCH_REPS      repetitions per statement (paper: 10)
#
# Besides the per-bench .txt transcripts, this appends one machine-readable
# datapoint per invocation to bench-results/BENCH_exec_hotpath.json (rows/sec
# for the executor hash join, aggregation, top-N and the key codec), giving
# the repo a perf trajectory across PRs. bench_concurrent_tpcw and
# bench_overload likewise append to BENCH_concurrent_tpcw.json and
# BENCH_overload.json themselves (the overload sweep also enforces its
# goodput/p99 acceptance gate past saturation — a regression fails the run).
set -euo pipefail

build_dir="${1:-build}"
out_dir="bench-results"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found; run cmake first" >&2
  exit 1
fi

mkdir -p "$out_dir"
# Stale JSON from a previous invocation must not be re-appended to the
# trajectory under this run's git rev/label.
rm -f "$out_dir/bench_micro_components.json"

# Benches that append their own trajectory datapoints (bench_concurrent_tpcw)
# record the rev they measured. A dirty tree (incl. staged/untracked files)
# means the measured code is not the commit's code.
git_rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
[[ -z "$(git status --porcelain 2>/dev/null)" ]] || git_rev="${git_rev}-dirty"
export SYNERGY_GIT_REV="$git_rev"
shopt -s nullglob
benches=("$build_dir"/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in '$build_dir'" >&2
  exit 1
fi

for bench in "${benches[@]}"; do
  name="$(basename "$bench")"
  echo "=== $name"
  if [[ "$name" == "bench_micro_components" ]]; then
    # Tee the human-readable table AND capture the structured JSON.
    "$bench" --benchmark_out="$out_dir/$name.json" \
             --benchmark_out_format=json | tee "$out_dir/$name.txt"
  else
    "$bench" | tee "$out_dir/$name.txt"
  fi
  echo
done

# --------------------------------------------------------------------------
# Fold the micro-component numbers into BENCH_exec_hotpath.json: an array of
# runs, one appended per invocation, each recording rows/sec (items_per_second
# where the benchmark sets it) and ns/op for the executor hot-path and codec
# benchmarks. This file is committed so the perf trajectory survives in git.
# --------------------------------------------------------------------------
if [[ -f "$out_dir/bench_micro_components.json" ]]; then
  python3 - "$out_dir" "$git_rev" <<'PYEOF'
import json, sys, datetime, os

out_dir, git_rev = sys.argv[1], sys.argv[2]
src = os.path.join(out_dir, "bench_micro_components.json")
dst = os.path.join(out_dir, "BENCH_exec_hotpath.json")

with open(src) as f:
    raw = json.load(f)

keep = ("BM_ExecutorHashJoin", "BM_ExecutorAgg", "BM_ExecutorTopN",
        "BM_ExecutorPointLookup", "BM_CodecEncodeKey", "BM_CodecDecodeKey")
metrics = {}
for b in raw.get("benchmarks", []):
    name = b.get("name", "")
    if name not in keep:
        continue
    entry = {"ns_per_op": round(b["real_time"], 2)}
    if "items_per_second" in b:
        entry["rows_per_sec"] = round(b["items_per_second"], 1)
    metrics[name] = entry

run = {
    "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"),
    "git_rev": git_rev,
    "label": os.environ.get("SYNERGY_BENCH_LABEL", ""),
    "metrics": metrics,
}

doc = {"description":
       "Executor hot-path throughput trajectory (see docs/BENCHMARKS.md)",
       "runs": []}
if os.path.exists(dst):
    try:
        with open(dst) as f:
            doc = json.load(f)
    except json.JSONDecodeError:
        pass
doc.setdefault("runs", []).append(run)
with open(dst, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"Appended hot-path datapoint to {dst}:")
for name, m in metrics.items():
    rps = f"  {m['rows_per_sec']:>14,.0f} rows/s" if "rows_per_sec" in m else ""
    print(f"  {name:<24} {m['ns_per_op']:>12,.0f} ns/op{rps}")
PYEOF
fi
echo "Results written to $out_dir/"
