// Ablation (§III design choices): lock number & granularity, and the MVCC
// alternative.
//
// Compares, on the most view-maintenance-heavy write (W13, update customer,
// which fans out to every Customer-Orders view row of that customer):
//   1. Synergy's hierarchical locking — a single root lock per transaction;
//   2. row-level locking — one lock per touched base/view/index row
//      (what a views-oblivious locking scheme would pay);
//   3. database-level lock — one lock, but every transaction serializes
//      (reported as the throughput ceiling, 1/RT);
//   4. MVCC — no locks, but the per-statement transaction-server tax.
#include <cstdio>

#include "systems/harness.h"
#include "systems/mvcc_system.h"
#include "systems/synergy_wrapper.h"

int main() {
  using namespace synergy;
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(1000);
  const int reps = systems::EnvReps(5);
  std::printf(
      "=== Ablation: concurrency-control choices on write W13 "
      "(update customer) ===\nNUM_CUST=%lld, %d reps.\n\n",
      static_cast<long long>(scale.num_customers), reps);

  systems::SynergyWrapper synergy;
  if (!synergy.Setup(scale).ok()) return 1;
  systems::MvccSystem mvcc("MVCC-A", systems::MvccSystem::ViewMode::kAware);
  if (!mvcc.Setup(scale).ok()) return 1;

  tpcw::ParamProvider p1(scale, 11), p2(scale, 11);
  systems::Measurement synergy_w13 =
      systems::MeasureStatement(synergy, p1, "W13", reps);
  systems::Measurement mvcc_w13 =
      systems::MeasureStatement(mvcc, p2, "W13", reps);
  if (!synergy_w13.error.ok() || !mvcc_w13.error.ok()) {
    std::fprintf(stderr, "W13 failed\n");
    return 1;
  }

  // Row-level locking alternative: each affected row (base + ~10 view rows
  // + their index rows) needs an acquire+release CheckAndPut pair.
  const sim::CostModel model;  // EC2-like defaults
  const int view_rows_touched = 10;  // Customer:Orders = 1:10
  const int index_rows_touched = view_rows_touched * 2;  // vix + mix
  const int row_locks = 1 + view_rows_touched + index_rows_touched;
  const double row_lock_overhead_ms =
      2.0 * row_locks * model.lock_rpc_us / 1000.0;
  const double single_lock_overhead_ms = 2.0 * model.lock_rpc_us / 1000.0;

  systems::TablePrinter table({"mechanism", "locks/txn", "lock_ms",
                               "W13_total_ms", "serialized_txn/s"},
                              16);
  char buf[4][32];
  std::snprintf(buf[0], 32, "%.1f", single_lock_overhead_ms);
  std::snprintf(buf[1], 32, "%.1f", synergy_w13.rt_ms.mean());
  std::snprintf(buf[2], 32, "%.0f", 1000.0 / synergy_w13.rt_ms.mean());
  table.AddRow({"hierarchical (Synergy)", "1", buf[0], buf[1], "unbounded*"});
  std::snprintf(buf[0], 32, "%.1f", row_lock_overhead_ms);
  std::snprintf(buf[1], 32, "%.1f",
                synergy_w13.rt_ms.mean() - single_lock_overhead_ms +
                    row_lock_overhead_ms);
  table.AddRow({"row-level locks", std::to_string(row_locks), buf[0], buf[1],
                "unbounded*"});
  std::snprintf(buf[0], 32, "%.1f", single_lock_overhead_ms);
  std::snprintf(buf[1], 32, "%.1f", synergy_w13.rt_ms.mean());
  std::snprintf(buf[2], 32, "%.0f", 1000.0 / synergy_w13.rt_ms.mean());
  table.AddRow({"database lock", "1", buf[0], buf[1], buf[2]});
  std::snprintf(buf[0], 32, "%.1f", mvcc_w13.rt_ms.mean());
  table.AddRow({"MVCC (Tephra)", "0", "0", buf[0], "unbounded*"});
  table.Print();
  std::printf(
      "\n* unbounded = only same-root (or same-row) writers serialize; the\n"
      "  database lock serializes every write in the system.\n"
      "Takeaway (paper §III): row-level locking pays ~%.0fx the lock cost\n"
      "of hierarchical locking on this transaction, and MVCC pays a fixed\n"
      "%.0f ms tax — motivating one lock per transaction.\n",
      row_lock_overhead_ms / single_lock_overhead_ms,
      mvcc_w13.rt_ms.mean() - synergy_w13.rt_ms.mean());
  return 0;
}
