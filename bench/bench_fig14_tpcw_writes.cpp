// Figure 14: TPC-W write statements W1-W13 across the five systems —
// the overhead of lock management and view maintenance in Synergy vs the
// MVCC tax in the Phoenix+Tephra systems.
//
// Paper: Synergy writes on average 9x / 8.6x / 8.6x cheaper than MVCC-UA /
// MVCC-A / Baseline (Tephra adds 800-900 ms per statement) and 9.4x more
// expensive than VoltDB; W6/W11 are Synergy's cheapest writes because
// Shopping_cart is in no view.
#include <cstdio>

#include "systems/harness.h"
#include "tpcw/workload.h"

int main() {
  using namespace synergy;
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(2000);
  const int reps = systems::EnvReps(5);
  std::printf(
      "=== Figure 14: TPC-W write statement response times (simulated ms) "
      "===\nNUM_CUST=%lld, %d reps.\n\n",
      static_cast<long long>(scale.num_customers), reps);

  std::vector<std::unique_ptr<systems::EvaluatedSystem>> evaluated;
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    evaluated.push_back(std::move(system));
  }

  std::vector<std::string> headers = {"statement"};
  for (const auto& system : evaluated) headers.push_back(system->name());
  systems::TablePrinter table(headers, 14);

  std::map<std::string, std::map<std::string, double>> rt;
  for (const std::string& id : tpcw::WriteStatementIds()) {
    std::vector<std::string> row = {id};
    for (const auto& system : evaluated) {
      tpcw::ParamProvider params(scale, /*seed=*/314159);
      systems::Measurement m =
          systems::MeasureStatement(*system, params, id, reps);
      if (!m.error.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", system->name().c_str(), id.c_str(),
                     m.error.ToString().c_str());
        return 1;
      }
      rt[id][system->name()] = m.rt_ms.mean();
      row.push_back(FormatMs(m.rt_ms.mean()) + "+-" +
                    FormatMs(m.rt_ms.stderr_mean()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  auto avg_ratio = [&](const std::string& num, const std::string& den) {
    double sum = 0;
    int n = 0;
    for (const auto& [stmt, by_system] : rt) {
      sum += by_system.at(num) / by_system.at(den);
      ++n;
    }
    return sum / n;
  };
  std::printf(
      "\nWrite cost of other systems relative to Synergy "
      "(mean of per-statement ratios):\n"
      "  MVCC-UA / Synergy : %.1fx (paper: 9x)\n"
      "  MVCC-A  / Synergy : %.1fx (paper: 8.6x)\n"
      "  Baseline/ Synergy : %.1fx (paper: 8.6x)\n"
      "  Synergy / VoltDB  : %.1fx (paper: 9.4x)\n",
      avg_ratio("MVCC-UA", "Synergy"), avg_ratio("MVCC-A", "Synergy"),
      avg_ratio("Baseline", "Synergy"), avg_ratio("Synergy", "VoltDB"));
  std::printf(
      "Cheapest Synergy writes: W6/W11 (Shopping_cart is outside every "
      "rooted-tree view): W6=%.1f ms, W11=%.1f ms vs W13=%.1f ms.\n",
      rt["W6"]["Synergy"], rt["W11"]["Synergy"], rt["W13"]["Synergy"]);
  return 0;
}
