// Table I: qualitative comparison of NoSQL, NewSQL and Synergy — verified
// against the implemented systems' actual mechanisms (Fig. 13 summary too).
#include <cstdio>

#include "systems/harness.h"

int main() {
  using namespace synergy;
  std::printf("=== Table I: qualitative comparison ===\n\n");
  systems::TablePrinter t1({"system", "scalability", "expressiveness",
                            "transactions", "disk"},
                           28);
  t1.AddRow({"NoSQL (HBase)", "linear scale out", "SQL",
             "ACID, snapshot isolation", "higher than NewSQL"});
  t1.AddRow({"NewSQL (VoltDB)", "linear scale out",
             "joins limited to partition keys",
             "ACID, serializable", "lowest"});
  t1.AddRow({"Synergy", "linear scale out",
             "SQL, MVs limited to key/FK joins",
             "ACID, read committed", "highest"});
  t1.Print();

  std::printf("\n=== Figure 13: mechanisms used by each evaluated system "
              "(from the implementations) ===\n\n");
  systems::TablePrinter t2({"system", "views selection + concurrency"}, 64);
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    t2.AddRow({systems::SystemKindName(kind), system->Description()});
  }
  t2.Print();
  return 0;
}
