// Google-benchmark microbenchmarks of the substrate components (real CPU
// time, not simulated time): key codec, store operations, SQL parsing and
// the executor fast path. These guard against wall-clock regressions in
// the simulator itself.
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "exec/executor.h"
#include "sql/parser.h"

namespace {

using namespace synergy;

void BM_CodecEncodeKey(benchmark::State& state) {
  const std::vector<Value> key = {Value(123456), Value("USER12345"),
                                  Value(3.25)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::EncodeKey(key));
  }
}
BENCHMARK(BM_CodecEncodeKey);

void BM_CodecDecodeKey(benchmark::State& state) {
  const std::string key =
      codec::EncodeKey({Value(123456), Value("USER12345"), Value(3.25)});
  const std::vector<DataType> types = {DataType::kInt, DataType::kString,
                                       DataType::kDouble};
  for (auto _ : state) {
    auto decoded = codec::DecodeKey(key, types);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecDecodeKey);

void BM_RegionPut(benchmark::State& state) {
  std::atomic<int64_t> clock{0};
  hbase::Region region("", "", &clock);
  int64_t i = 0;
  for (auto _ : state) {
    region.Put("key" + std::to_string(i++ % 10000), {{"d", "payload"}});
  }
}
BENCHMARK(BM_RegionPut);

void BM_RegionGet(benchmark::State& state) {
  std::atomic<int64_t> clock{0};
  hbase::Region region("", "", &clock);
  for (int i = 0; i < 10000; ++i) {
    region.Put("key" + std::to_string(i), {{"d", "payload"}});
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto row = region.Get("key" + std::to_string(i++ % 10000),
                          hbase::ReadView{});
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_RegionGet);

void BM_RegionScan1k(benchmark::State& state) {
  std::atomic<int64_t> clock{0};
  hbase::Region region("", "", &clock);
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    region.Put(key, {{"d", "payload-value"}});
  }
  for (auto _ : state) {
    auto batch = region.ScanBatch("", "", 1000, hbase::ReadView{});
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_RegionScan1k);

void BM_SqlParseJoin(benchmark::State& state) {
  const std::string sql =
      "SELECT * FROM Customer as c, Orders as o, Order_line as ol "
      "WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id AND c.c_uname = ? "
      "ORDER BY o_date DESC LIMIT 10";
  for (auto _ : state) {
    auto stmt = sql::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseJoin);

// --- executor hot-path benchmarks -----------------------------------------
// These three guard the per-row cost of the scan -> join -> sink pipeline
// (rows/sec is reported via items_per_second). scripts/run_benches.sh
// extracts them into bench-results/BENCH_exec_hotpath.json.

/// Client hash join: build on 2000 customers, probe 4000 orders.
void BM_ExecutorHashJoin(benchmark::State& state) {
  sql::Catalog catalog;
  if (!catalog
           .AddRelation({.name = "C",
                         .columns = {{"c_id", DataType::kInt},
                                     {"c_name", DataType::kString},
                                     {"c_city", DataType::kString}},
                         .primary_key = {"c_id"}})
           .ok() ||
      !catalog
           .AddRelation({.name = "O",
                         .columns = {{"o_id", DataType::kInt},
                                     {"o_c_id", DataType::kInt},
                                     {"o_total", DataType::kDouble}},
                         .primary_key = {"o_id"}})
           .ok()) {
    state.SkipWithError("catalog");
    return;
  }
  hbase::Cluster cluster;
  exec::TableAdapter adapter(&cluster, &catalog);
  if (!adapter.CreateStorage("C").ok() || !adapter.CreateStorage("O").ok()) {
    state.SkipWithError("storage");
    return;
  }
  constexpr int kCustomers = 2000;
  constexpr int kOrders = 4000;
  hbase::Session load(&cluster);
  for (int i = 0; i < kCustomers; ++i) {
    (void)adapter.Insert(load, "C",
                         {{"c_id", Value(i)},
                          {"c_name", Value("name" + std::to_string(i))},
                          {"c_city", Value(i % 2 ? "NYC" : "SF")}});
  }
  for (int i = 0; i < kOrders; ++i) {
    (void)adapter.Insert(load, "O",
                         {{"o_id", Value(i)},
                          {"o_c_id", Value(i % kCustomers)},
                          {"o_total", Value(i * 1.25)}});
  }
  exec::Executor executor(&adapter);
  const sql::Statement stmt = sql::MustParse(
      "SELECT c_name, o_total FROM C as c, O as o WHERE c.c_id = o.o_c_id");
  const auto& sel = std::get<sql::SelectStatement>(stmt);
  exec::ExecOptions opts;
  opts.collect_rows = false;
  opts.force_hash_join = true;
  hbase::Session s(&cluster);
  for (auto _ : state) {
    auto result = executor.ExecuteSelect(s, sel, {}, opts);
    if (!result.ok() || result->row_count != kOrders) {
      state.SkipWithError("join result");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (kCustomers + kOrders));
}
BENCHMARK(BM_ExecutorHashJoin);

/// Hash aggregation: 8192 rows into 64 groups with COUNT/SUM/MIN.
void BM_ExecutorAgg(benchmark::State& state) {
  sql::Catalog catalog;
  if (!catalog
           .AddRelation({.name = "T",
                         .columns = {{"id", DataType::kInt},
                                     {"g", DataType::kString},
                                     {"v", DataType::kDouble}},
                         .primary_key = {"id"}})
           .ok()) {
    state.SkipWithError("catalog");
    return;
  }
  hbase::Cluster cluster;
  exec::TableAdapter adapter(&cluster, &catalog);
  if (!adapter.CreateStorage("T").ok()) {
    state.SkipWithError("storage");
    return;
  }
  constexpr int kRows = 8192;
  hbase::Session load(&cluster);
  for (int i = 0; i < kRows; ++i) {
    (void)adapter.Insert(load, "T",
                         {{"id", Value(i)},
                          {"g", Value("grp" + std::to_string(i % 64))},
                          {"v", Value(i * 0.5)}});
  }
  exec::Executor executor(&adapter);
  const sql::Statement stmt = sql::MustParse(
      "SELECT g, COUNT(*) as n, SUM(v) as sv, MIN(v) as mv FROM T GROUP BY g");
  const auto& sel = std::get<sql::SelectStatement>(stmt);
  exec::ExecOptions opts;
  opts.collect_rows = false;
  hbase::Session s(&cluster);
  for (auto _ : state) {
    auto result = executor.ExecuteSelect(s, sel, {}, opts);
    if (!result.ok() || result->row_count != 64) {
      state.SkipWithError("agg result");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ExecutorAgg);

/// ORDER BY + LIMIT 10 over an 8192-row scan (top-N path).
void BM_ExecutorTopN(benchmark::State& state) {
  sql::Catalog catalog;
  if (!catalog
           .AddRelation({.name = "T",
                         .columns = {{"id", DataType::kInt},
                                     {"v", DataType::kDouble}},
                         .primary_key = {"id"}})
           .ok()) {
    state.SkipWithError("catalog");
    return;
  }
  hbase::Cluster cluster;
  exec::TableAdapter adapter(&cluster, &catalog);
  if (!adapter.CreateStorage("T").ok()) {
    state.SkipWithError("storage");
    return;
  }
  constexpr int kRows = 8192;
  hbase::Session load(&cluster);
  for (int i = 0; i < kRows; ++i) {
    (void)adapter.Insert(load, "T",
                         {{"id", Value(i)},
                          {"v", Value(((i * 2654435761u) % 100003) * 0.1)}});
  }
  exec::Executor executor(&adapter);
  const sql::Statement stmt =
      sql::MustParse("SELECT id, v FROM T ORDER BY v DESC LIMIT 10");
  const auto& sel = std::get<sql::SelectStatement>(stmt);
  hbase::Session s(&cluster);
  for (auto _ : state) {
    auto result = executor.ExecuteSelect(s, sel, {});
    if (!result.ok() || result->row_count != 10) {
      state.SkipWithError("topn result");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ExecutorTopN);

void BM_ExecutorPointLookup(benchmark::State& state) {
  sql::Catalog catalog;
  if (!catalog
           .AddRelation({.name = "T",
                         .columns = {{"id", DataType::kInt},
                                     {"v", DataType::kString}},
                         .primary_key = {"id"}})
           .ok()) {
    state.SkipWithError("catalog");
    return;
  }
  hbase::Cluster cluster;
  exec::TableAdapter adapter(&cluster, &catalog);
  if (!adapter.CreateStorage("T").ok()) {
    state.SkipWithError("storage");
    return;
  }
  hbase::Session load(&cluster);
  for (int i = 0; i < 10000; ++i) {
    (void)adapter.Insert(load, "T", {{"id", Value(i)}, {"v", Value("x")}});
  }
  exec::Executor executor(&adapter);
  const sql::Statement stmt = sql::MustParse("SELECT * FROM T WHERE id = ?");
  const auto& sel = std::get<sql::SelectStatement>(stmt);
  hbase::Session s(&cluster);
  int64_t i = 0;
  for (auto _ : state) {
    std::vector<Value> params = {Value(i++ % 10000)};
    auto result = executor.ExecuteSelect(s, sel, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecutorPointLookup);

}  // namespace

BENCHMARK_MAIN();
