// Concurrent TPC-W closed loop: N client threads per system x mix, virtual
// throughput + latency percentiles.
//
// This is the contention companion to Fig. 11/Fig. 14: single-session
// benches reproduce lock overhead as an isolated cost, here concurrent
// sessions race for the same root locks (lock retries charge virtual time,
// so contention shows up in p95/p99 and in lost throughput). Throughput is
// reported in *virtual* time — run duration is the slowest thread's virtual
// busy time — which keeps the scaling curves host-independent (wall ops/s
// on the side measures only the simulator).
//
// Knobs: SYNERGY_BENCH_THREADS (max client threads, default 8; the sweep is
// {1,2,4,8} capped by it), SYNERGY_TPCW_CUSTOMERS, SYNERGY_BENCH_REPS (ops
// per thread), SYNERGY_BENCH_RESULTS_DIR / SYNERGY_BENCH_LABEL /
// SYNERGY_GIT_REV for the JSON trajectory appended to
// bench-results/BENCH_concurrent_tpcw.json.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "concurrent/tpcw_mix.h"
#include "hbase/retry_policy.h"
#include "systems/harness.h"
#include "systems/mvcc_system.h"
#include "systems/synergy_wrapper.h"
#include "testing/fault_injector.h"

namespace {

using namespace synergy;

struct ResultRow {
  std::string system;
  std::string mix;
  int threads = 0;
  concurrent::WorkloadReport report;
};

std::string JsonRun(const std::vector<ResultRow>& rows,
                    const tpcw::ScaleConfig& scale, size_t ops_per_thread,
                    const std::vector<std::pair<std::string, std::string>>&
                        metrics) {
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  }
  const char* rev = std::getenv("SYNERGY_GIT_REV");
  const char* label = std::getenv("SYNERGY_BENCH_LABEL");

  std::ostringstream out;
  out << "    {\n"
      << "      \"timestamp\": \"" << stamp << "\",\n"
      << "      \"git_rev\": \"" << (rev != nullptr ? rev : "unknown")
      << "\",\n"
      << "      \"label\": \"" << (label != nullptr ? label : "run") << "\",\n"
      << "      \"num_customers\": " << scale.num_customers << ",\n"
      << "      \"ops_per_thread\": " << ops_per_thread << ",\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "        {\"system\": \"%s\", \"mix\": \"%s\", \"threads\": %d, "
        "\"vthroughput_ops_s\": %.1f, \"p50_ms\": %.2f, \"p95_ms\": %.2f, "
        "\"p99_ms\": %.2f, \"mean_ms\": %.2f, \"errors\": %zu, "
        "\"retries\": %zu, \"degraded_ops\": %zu, \"deadline_errors\": %zu, "
        "\"rpcs_per_op\": %.1f, \"wall_ops_s\": %.0f}%s\n",
        r.system.c_str(), r.mix.c_str(), r.threads,
        r.report.virtual_throughput(), r.report.p50_ms(), r.report.p95_ms(),
        r.report.p99_ms(), r.report.mean_ms(), r.report.total_errors,
        r.report.total_retries, r.report.total_degraded_ops,
        r.report.total_deadline_errors, r.report.rpcs_per_op(),
        r.report.wall_throughput(), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "      ],\n      \"metrics\": {\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "        \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "      }\n    }";
  return out.str();
}

/// Appends the run object into the trajectory file's `runs` array, creating
/// the file if needed.
bool AppendJson(const std::string& path, const std::string& run) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::string out;
  const size_t close = existing.rfind(']');
  if (close == std::string::npos) {
    out = "{\n  \"description\": \"Concurrent TPC-W closed-loop trajectory "
          "(see docs/BENCHMARKS.md)\",\n  \"runs\": [\n" +
          run + "\n  ]\n}\n";
  } else {
    const bool empty_array =
        existing.find('{', existing.find("\"runs\"")) == std::string::npos ||
        existing.find('{', existing.find('[')) > close;
    std::string insert = (empty_array ? "\n" : ",\n") + run + "\n  ";
    out = existing.substr(0, close);
    // Trim trailing whitespace before the close bracket.
    while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
      out.pop_back();
    }
    out += insert + existing.substr(close);
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return true;
}

std::string ResultsDir() {
  const char* env = std::getenv("SYNERGY_BENCH_RESULTS_DIR");
  if (env != nullptr) return env;
  struct stat st{};
  if (stat("bench-results", &st) == 0 && S_ISDIR(st.st_mode)) {
    return "bench-results";
  }
  if (stat("../bench-results", &st) == 0 && S_ISDIR(st.st_mode)) {
    return "../bench-results";
  }
  return "bench-results";  // will fail to open; reported by caller
}

}  // namespace

int main() {
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(300);
  const int max_threads = systems::EnvThreads(8);
  const size_t ops_per_thread = static_cast<size_t>(systems::EnvReps(80));
  scale.load_threads = std::min(4, max_threads);

  std::vector<int> sweep;
  for (const int t : {1, 2, 4, 8}) {
    if (t <= max_threads) sweep.push_back(t);
  }

  std::printf(
      "=== Concurrent TPC-W closed loop (virtual-time throughput) ===\n"
      "NUM_CUST=%lld, ops/thread=%zu, threads in {",
      static_cast<long long>(scale.num_customers), ops_per_thread);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", sweep[i]);
  }
  std::printf("}.\n\n");

  // Synergy gets a worker slave per client pair so distributed writes
  // overlap; Baseline (no views, Phoenix+Tephra MVCC) is the comparator.
  std::vector<std::unique_ptr<systems::EvaluatedSystem>> evaluated;
  evaluated.push_back(std::make_unique<systems::SynergyWrapper>(
      tpcw::Roots(), "Synergy", std::max(1, max_threads / 2)));
  evaluated.push_back(std::make_unique<systems::MvccSystem>(
      "Baseline", systems::MvccSystem::ViewMode::kNone));
  for (const auto& system : evaluated) {
    const Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
  }

  std::vector<ResultRow> rows;
  // Registry snapshots (name -> JSON) embedded into the committed run row.
  std::vector<std::pair<std::string, std::string>> metrics_json;
  double synergy_read_t1 = 0.0, synergy_read_t4 = 0.0;
  for (const concurrent::MixConfig& mix : concurrent::StandardMixes()) {
    std::printf("--- mix: %s (read fraction %.0f%%) ---\n", mix.name.c_str(),
                mix.read_fraction * 100.0);
    systems::TablePrinter table({"system", "threads", "ops/vsec", "p50 ms",
                                 "p95 ms", "p99 ms", "mean ms", "errors",
                                 "retries", "degraded", "rpc/op"});
    for (const auto& system : evaluated) {
      for (const int threads : sweep) {
        const concurrent::WorkloadReport report = systems::MeasureConcurrent(
            *system, scale, mix, threads, ops_per_thread,
            /*base_seed=*/scale.seed ^ 0xC0FFEE);
        if (report.total_ops == 0) {
          std::fprintf(stderr, "%s/%s/%d: no op completed: %s\n",
                       system->name().c_str(), mix.name.c_str(), threads,
                       report.first_error.ToString().c_str());
          return 1;
        }
        rows.push_back({system->name(), mix.name, threads, report});
        if (system->name() == "Synergy" && mix.name == "read") {
          if (threads == 1) synergy_read_t1 = report.virtual_throughput();
          if (threads == 4) synergy_read_t4 = report.virtual_throughput();
        }
        table.AddRow({system->name(), std::to_string(threads),
                      FormatMs(report.virtual_throughput()),
                      FormatMs(report.p50_ms()), FormatMs(report.p95_ms()),
                      FormatMs(report.p99_ms()), FormatMs(report.mean_ms()),
                      std::to_string(report.total_errors),
                      std::to_string(report.total_retries),
                      std::to_string(report.total_degraded_ops),
                      FormatMs(report.rpcs_per_op())});
      }
    }
    table.Print();
    std::printf("\n");
  }

  if (synergy_read_t1 > 0.0 && synergy_read_t4 > 0.0) {
    const double scaling = synergy_read_t4 / synergy_read_t1;
    std::printf(
        "Read-mix virtual throughput scaling, Synergy 1 -> 4 threads: %.2fx "
        "(readers share the region latch; >1x expected)\n",
        scaling);
    if (scaling <= 1.0) {
      std::fprintf(stderr, "FAIL: read-mix scaling %.2fx is not > 1x\n",
                   scaling);
      return 1;
    }
  }

  // --- failover: region-server crash under the write-heavy mix ----------
  //
  // A fresh Synergy instance takes a server crash a few heartbeat rounds
  // into a write storm. Clients run with the default RetryPolicy, so RPCs
  // that land on the dead server's regions back off while the lease
  // expires, regions reassign and their WALs replay; the run must keep
  // nonzero goodput with a degraded (but finite) p99.
  {
    auto failover_sys = std::make_unique<systems::SynergyWrapper>(
        tpcw::Roots(), "Synergy", std::max(1, max_threads / 2));
    const Status setup = failover_sys->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "failover setup failed: %s\n",
                   setup.ToString().c_str());
      return 1;
    }
    // Crash the server hosting Orders — the write mix's hottest insert
    // target — so the outage is on the critical path, not a cold shard.
    int victim = 1;
    if (StatusOr<int> host = failover_sys->cluster()->RegionServerOf("Orders");
        host.ok()) {
      victim = *host;
    }
    std::printf("--- failover: server-%d crash (hosts Orders), %s mix, "
                "%d threads ---\n",
                victim, concurrent::WriteHeavyMix().name.c_str(), max_threads);
    // Installed after load so the crash lands mid-run, not mid-population:
    // the victim dies on its third heartbeat round under client traffic.
    fault::FaultInjector faults(static_cast<uint64_t>(scale.seed) ^ 0xFA11);
    faults.AddRule({.point = fault::FaultPoint::kRegionServerCrash,
                    .probability = 1.0,
                    .skip_hits = 2,
                    .max_fires = 1,
                    .table_prefix = "",
                    .server_id = victim});
    failover_sys->system()->SetFaultInjector(&faults);
    failover_sys->SetRetryPolicy(hbase::RetryPolicy{});

    const concurrent::WorkloadReport report = systems::MeasureConcurrent(
        *failover_sys, scale, concurrent::WriteHeavyMix(), max_threads,
        ops_per_thread, /*base_seed=*/scale.seed ^ 0xFA11CAFE);
    const hbase::FailoverStats fstats =
        failover_sys->cluster()->failover().stats();
    std::printf(
        "goodput %.1f ops/vsec, p99 %s ms, errors %zu (deadline %zu), "
        "retries %zu, degraded reads %zu\n"
        "cluster: crashes %lld, regions reassigned %lld, WAL edits replayed "
        "%lld, writes rejected mid-reassignment %lld\n\n",
        report.virtual_throughput(), FormatMs(report.p99_ms()).c_str(),
        report.total_errors, report.total_deadline_errors,
        report.total_retries, report.total_degraded_ops,
        static_cast<long long>(fstats.crashes),
        static_cast<long long>(fstats.regions_reassigned),
        static_cast<long long>(fstats.edits_replayed),
        static_cast<long long>(fstats.writes_rejected));
    if (report.total_ops == 0) {
      std::fprintf(stderr, "FAIL: no goodput through the server crash: %s\n",
                   report.first_error.ToString().c_str());
      return 1;
    }
    rows.push_back({"Synergy+crash", "failover-write", max_threads, report});
    metrics_json.emplace_back("Synergy+crash", failover_sys->MetricsJson());
  }

  for (const auto& system : evaluated) {
    metrics_json.emplace_back(system->name(), system->MetricsJson());
  }

  const std::string path = ResultsDir() + "/BENCH_concurrent_tpcw.json";
  if (AppendJson(path, JsonRun(rows, scale, ops_per_thread, metrics_json))) {
    std::printf("Appended datapoint to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", path.c_str());
  }
  return 0;
}
