// Figure 10: TPC-W micro-benchmark — view scan vs join algorithm in HBase.
//
// Schema: Customer, Orders, Order_line with 1:10 cardinality between
// consecutive relations (Fig. 8). Workload: Q1 = Customer x Orders,
// Q2 = Customer x Orders x Order_line (Fig. 9), evaluated (a) with the
// client-coordinated join algorithm over base tables and (b) as a scan of
// the corresponding materialized view.
//
// Scales: customers multiply by 10 starting at 500 (paper: up to 50 000;
// default caps at 20 000 for bench wall-time — set SYNERGY_MICRO_MAX_CUST
// to raise). Reported times are simulated milliseconds (mean +/- stderr).
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/stats.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "synergy/view_maintenance.h"
#include "systems/harness.h"

namespace {

using namespace synergy;

sql::Catalog MicroCatalog() {
  sql::Catalog cat;
  auto must = [](Status s) {
    if (!s.ok()) std::abort();
  };
  must(cat.AddRelation({.name = "Customer",
                        .columns = {{"c_id", DataType::kInt},
                                    {"c_uname", DataType::kString},
                                    {"c_data", DataType::kString}},
                        .primary_key = {"c_id"}}));
  must(cat.AddRelation({.name = "Orders",
                        .columns = {{"o_id", DataType::kInt},
                                    {"o_c_id", DataType::kInt},
                                    {"o_total", DataType::kDouble},
                                    {"o_status", DataType::kString}},
                        .primary_key = {"o_id"},
                        .foreign_keys = {{{"o_c_id"}, "Customer"}}}));
  must(cat.AddRelation({.name = "Order_line",
                        .columns = {{"ol_id", DataType::kInt},
                                    {"ol_o_id", DataType::kInt},
                                    {"ol_qty", DataType::kInt},
                                    {"ol_comments", DataType::kString}},
                        .primary_key = {"ol_id"},
                        .foreign_keys = {{{"ol_o_id"}, "Orders"}}}));
  // Materialized views for Q1 and Q2 (Fig. 9).
  must(cat.AddView(
      {.name = "Customer-Orders",
       .relations = {"Customer", "Orders"},
       .edges = {{}, {{"o_c_id"}, "Customer"}},
       .root = "Customer"},
      {.name = "Customer-Orders",
       .columns = {{"c_id", DataType::kInt},
                   {"c_uname", DataType::kString},
                   {"c_data", DataType::kString},
                   {"o_id", DataType::kInt},
                   {"o_c_id", DataType::kInt},
                   {"o_total", DataType::kDouble},
                   {"o_status", DataType::kString}},
       .primary_key = {"o_id"}}));
  must(cat.AddView(
      {.name = "Customer-Orders-Order_line",
       .relations = {"Customer", "Orders", "Order_line"},
       .edges = {{}, {{"o_c_id"}, "Customer"}, {{"ol_o_id"}, "Orders"}},
       .root = "Customer"},
      {.name = "Customer-Orders-Order_line",
       .columns = {{"c_id", DataType::kInt},
                   {"c_uname", DataType::kString},
                   {"c_data", DataType::kString},
                   {"o_id", DataType::kInt},
                   {"o_c_id", DataType::kInt},
                   {"o_total", DataType::kDouble},
                   {"o_status", DataType::kString},
                   {"ol_id", DataType::kInt},
                   {"ol_o_id", DataType::kInt},
                   {"ol_qty", DataType::kInt},
                   {"ol_comments", DataType::kString}},
       .primary_key = {"ol_id"}}));
  return cat;
}

void Populate(exec::TableAdapter& adapter, core::ViewMaintainer& maintainer,
              hbase::Cluster& cluster, int64_t customers) {
  Rng rng(42);
  hbase::Session s(&cluster);
  auto must = [](Status st) {
    if (!st.ok()) {
      std::fprintf(stderr, "populate: %s\n", st.ToString().c_str());
      std::abort();
    }
  };
  auto load = [&](const std::string& rel, const exec::Tuple& t) {
    must(adapter.Insert(s, rel, t));
    must(maintainer.ApplyInsert(s, rel, t));
  };
  int64_t next_order = 1, next_line = 1;
  for (int64_t c = 1; c <= customers; ++c) {
    load("Customer", {{"c_id", Value(c)},
                      {"c_uname", Value("USER" + std::to_string(c))},
                      {"c_data", Value(rng.AlphaString(24))}});
    for (int k = 0; k < 10; ++k) {  // cardinality 1:10
      const int64_t o = next_order++;
      load("Orders", {{"o_id", Value(o)},
                      {"o_c_id", Value(c)},
                      {"o_total", Value(rng.UniformReal(1, 500))},
                      {"o_status", Value(rng.AlphaString(6))}});
      for (int j = 0; j < 10; ++j) {  // cardinality 1:10
        load("Order_line", {{"ol_id", Value(next_line++)},
                            {"ol_o_id", Value(o)},
                            {"ol_qty", Value(rng.Uniform(1, 9))},
                            {"ol_comments", Value(rng.AlphaString(12))}});
      }
    }
  }
  cluster.MajorCompactAll();
}

double RunQuery(exec::Executor& executor, hbase::Cluster& cluster,
                const sql::Statement& stmt, bool force_hash_join) {
  hbase::Session s(&cluster);
  exec::ExecOptions options;
  options.collect_rows = false;
  options.force_hash_join = force_hash_join;
  auto result = executor.ExecuteSelect(
      s, std::get<sql::SelectStatement>(stmt), {}, options);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return s.meter().millis();
}

}  // namespace

int main() {
  using systems::FormatMs;
  const int reps = systems::EnvReps(2);
  int64_t max_cust = 50000;
  if (const char* env = std::getenv("SYNERGY_MICRO_MAX_CUST")) {
    max_cust = std::atoll(env);
  }
  std::printf(
      "=== Figure 10: micro-benchmark — view scan vs join algorithm ===\n"
      "Cardinality 1:10 per level; times are simulated ms (mean +/- stderr"
      ", %d reps).\nPaper anchors at 50k customers: view scan 6x (Q1) and "
      "11.7x (Q2) faster.\n\n",
      reps);
  systems::TablePrinter table({"customers", "query", "join_ms", "view_ms",
                               "speedup"});

  const sql::Statement q1_join = sql::MustParse(
      "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id");
  const sql::Statement q1_view = sql::MustParse("SELECT * FROM Customer-Orders");
  const sql::Statement q2_join = sql::MustParse(
      "SELECT * FROM Customer as c, Orders as o, Order_line as ol "
      "WHERE c.c_id = o.o_c_id and o.o_id = ol.ol_o_id");
  const sql::Statement q2_view =
      sql::MustParse("SELECT * FROM Customer-Orders-Order_line");

  for (int64_t customers = 500; customers <= max_cust; customers *= 10) {
    sql::Catalog catalog = MicroCatalog();
    hbase::Cluster cluster;
    exec::TableAdapter adapter(&cluster, &catalog);
    core::ViewMaintainer maintainer(&adapter);
    for (const sql::RelationDef* rel : catalog.Relations()) {
      if (!adapter.CreateStorage(rel->name).ok()) std::abort();
    }
    Populate(adapter, maintainer, cluster, customers);
    exec::Executor executor(&adapter);

    struct Case {
      const char* name;
      const sql::Statement* join;
      const sql::Statement* view;
    };
    for (const Case& c : {Case{"Q1", &q1_join, &q1_view},
                          Case{"Q2", &q2_join, &q2_view}}) {
      RunningStats join_ms, view_ms;
      for (int r = 0; r < reps; ++r) {
        join_ms.Add(RunQuery(executor, cluster, *c.join,
                             /*force_hash_join=*/true));
        view_ms.Add(RunQuery(executor, cluster, *c.view, false));
      }
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    join_ms.mean() / view_ms.mean());
      table.AddRow({std::to_string(customers), c.name,
                    FormatMs(join_ms.mean()) + "+-" +
                        FormatMs(join_ms.stderr_mean()),
                    FormatMs(view_ms.mean()) + "+-" +
                        FormatMs(view_ms.stderr_mean()),
                    speedup});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: the view scan wins at every scale and the gap grows\n"
      "with both scale and join depth (Q2 > Q1), as in the paper.\n");
  return 0;
}
