// Table III: database sizes across the evaluated systems.
//
// Paper (1M customers): VoltDB 31.8 GB, Synergy 92 GB, MVCC-A 91.8 GB,
// MVCC-UA 45.73 GB, Baseline 43.8 GB — Synergy's views+indexes roughly
// double the footprint (2.1x Baseline), while VoltDB (no HBase cell
// framing, no covered indexes doubled into views) is smallest.
#include <cstdio>

#include "systems/harness.h"

int main() {
  using namespace synergy;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(2000);
  std::printf(
      "=== Table III: database sizes across evaluated systems ===\n"
      "NUM_CUST=%lld; measured bytes plus a linear extrapolation to the "
      "paper's 1M customers.\n\n",
      static_cast<long long>(scale.num_customers));
  systems::TablePrinter table(
      {"system", "size_MB", "extrap_1M_GB", "paper_GB", "x_baseline"});
  const std::map<std::string, double> paper = {
      {"VoltDB", 31.8}, {"Synergy", 92.0}, {"MVCC-A", 91.8},
      {"MVCC-UA", 45.73}, {"Baseline", 43.8}};

  std::map<std::string, double> sizes;
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    sizes[system->name()] = system->DbSizeBytes();
  }
  const double baseline = sizes["Baseline"];
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    const std::string name = systems::SystemKindName(kind);
    const double bytes = sizes[name];
    const double extrap_gb = bytes / 1e9 *
                             (1000000.0 / static_cast<double>(scale.num_customers));
    char mb[32], gb[32], pgb[32], ratio[32];
    std::snprintf(mb, sizeof(mb), "%.1f", bytes / 1e6);
    std::snprintf(gb, sizeof(gb), "%.1f", extrap_gb);
    std::snprintf(pgb, sizeof(pgb), "%.1f", paper.at(name));
    std::snprintf(ratio, sizeof(ratio), "%.2fx", bytes / baseline);
    table.AddRow({name, mb, gb, pgb, ratio});
  }
  table.Print();
  std::printf(
      "\nShape check: VoltDB < Baseline <= MVCC-UA << MVCC-A ~= Synergy, "
      "with Synergy ~2x Baseline (paper: 2.1x).\n");
  return 0;
}
