// Overload robustness: open-loop arrival-rate sweep under -> past saturation,
// with the protection stack (admission control + load shedding + retry
// budgets + circuit breaker + client abandon) on vs off.
//
// The closed-loop benches cannot see the overload cliff: a slow system
// throttles its own clients, so offered load never exceeds capacity. Here
// each client thread follows a fixed virtual-time arrival schedule
// (Poisson by default) that does not care how the system is doing, and
// latency is accounted from the scheduled arrival (queued-start), so queue
// delay past saturation shows up instead of being coordinated-omitted away.
//
// Each system is first calibrated with a short closed-loop run to estimate
// its saturation throughput; the sweep offers multiples of that estimate.
// Every point runs under a light rpc-timeout drizzle plus overload-burst
// fires (same fault seed in both configs), so the unprotected config can
// amplify transient faults into retry storms while the protected config
// sheds, bounds retries and fails fast:
//
//   unprotected: default retry policy (unlimited budget, 10s deadline),
//                no admission control, clients never abandon.
//   protected:   admission control with deadline-aware shedding on every
//                region server, token-bucket retry budget, circuit breaker,
//                2s op deadline, client abandon past 2s queue delay.
//
// At >= 1.5x saturation the protected config must keep goodput at least as
// high as the unprotected one with a strictly lower p99 for admitted ops —
// the bench exits nonzero otherwise.
//
// Knobs: SYNERGY_TPCW_CUSTOMERS, SYNERGY_BENCH_THREADS (open-loop client
// threads), SYNERGY_BENCH_RATE (comma-separated multipliers of the measured
// saturation rate, default "0.7,1.0,1.5,2.0"), SYNERGY_OVERLOAD_ARRIVAL
// (poisson|uniform), SYNERGY_OVERLOAD_SHED (on|off|both: which protection
// configs to run), SYNERGY_OVERLOAD_DURATION (virtual seconds of arrivals
// per point), SYNERGY_BENCH_RESULTS_DIR / SYNERGY_BENCH_LABEL /
// SYNERGY_GIT_REV for the JSON trajectory appended to
// bench-results/BENCH_overload.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "concurrent/tpcw_mix.h"
#include "hbase/admission.h"
#include "hbase/retry_policy.h"
#include "systems/harness.h"
#include "systems/mvcc_system.h"
#include "systems/synergy_wrapper.h"
#include "testing/fault_injector.h"

namespace {

using namespace synergy;

struct ResultRow {
  std::string system;
  std::string config;  // "protected" | "unprotected"
  double rate_multiplier = 0.0;
  double offered_rate = 0.0;
  concurrent::WorkloadReport report;
};

std::vector<double> RateMultipliers() {
  const char* env = std::getenv("SYNERGY_BENCH_RATE");
  const std::string spec = env != nullptr ? env : "0.7,1.0,1.5,2.0";
  std::vector<double> out;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const double v = std::atof(tok.c_str());
    if (v > 0.0) out.push_back(v);
  }
  if (out.empty()) out = {0.7, 1.0, 1.5, 2.0};
  return out;
}

concurrent::ArrivalDist ArrivalFromEnv() {
  const char* env = std::getenv("SYNERGY_OVERLOAD_ARRIVAL");
  if (env != nullptr && std::strcmp(env, "uniform") == 0) {
    return concurrent::ArrivalDist::kUniform;
  }
  return concurrent::ArrivalDist::kPoisson;
}

/// Which protection configs to run: {"unprotected"}, {"protected"}, or both.
std::vector<bool> ShedConfigsFromEnv() {
  const char* env = std::getenv("SYNERGY_OVERLOAD_SHED");
  if (env != nullptr && std::strcmp(env, "on") == 0) return {true};
  if (env != nullptr && std::strcmp(env, "off") == 0) return {false};
  return {false, true};
}

double DurationFromEnv() {
  const char* env = std::getenv("SYNERGY_OVERLOAD_DURATION");
  if (env == nullptr) return 2.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 2.0;
}

/// Arms the shared fault drizzle: a light rpc-timeout storm (the transient
/// the unprotected retry loop amplifies) plus periodic overload bursts (the
/// stampede the admission controller absorbs). Fresh injector per run, same
/// seed everywhere, so both configs face the identical schedule.
std::unique_ptr<fault::FaultInjector> MakeDrizzle(uint64_t seed) {
  auto faults = std::make_unique<fault::FaultInjector>(seed);
  faults->AddRule({.point = fault::FaultPoint::kRpcTimeout,
                   .probability = 0.05,
                   .skip_hits = 0,
                   .max_fires = -1,
                   .table_prefix = "",
                   .server_id = -1});
  // Three deterministic stampedes at increasing depths into the run, so
  // every config faces the same bursts at the same points of its schedule.
  for (const int skip : {500, 2500, 5000}) {
    faults->AddRule({.point = fault::FaultPoint::kOverloadBurst,
                     .probability = 1.0,
                     .skip_hits = skip,
                     .max_fires = 1,
                     .table_prefix = "",
                     .server_id = -1});
  }
  return faults;
}

/// Applies one protection config to a system. The retry policy keeps the
/// same backoff/jitter schedule in both configs — only the protection knobs
/// (budget, breaker, deadline, admission, abandon) differ.
void ApplyConfig(systems::EvaluatedSystem& system, hbase::Cluster* cluster,
                 bool protected_mode) {
  hbase::RetryPolicy policy;
  hbase::AdmissionConfig admission;
  if (protected_mode) {
    policy.deadline_us = 2000000;     // 2s op budget
    policy.retry_budget_max = 12.0;   // bounded retry amplification
    policy.retry_budget_refill = 0.2;
    policy.breaker_trip_overloads = 8;
    policy.breaker_cooldown_us = 250000;
    admission.enabled = true;
    admission.max_inflight_per_server = 8;
    admission.max_queue_depth = 32;
    // Mean statement service is tens of ms (scan-heavy mix), so a stampede
    // of phantom ops produces queue-wait estimates that overshoot the 2s op
    // deadline — exercising the deadline-aware shed, not just queue-full.
    admission.est_service_us = 20000.0;
    admission.burst_ops = 80;
  }
  system.SetRetryPolicy(policy);
  cluster->ConfigureAdmission(admission);
}

std::string JsonRun(const std::vector<ResultRow>& rows,
                    const tpcw::ScaleConfig& scale, int threads,
                    double duration_vsec, const char* arrival,
                    const std::vector<std::pair<std::string, std::string>>&
                        metrics) {
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  }
  const char* rev = std::getenv("SYNERGY_GIT_REV");
  const char* label = std::getenv("SYNERGY_BENCH_LABEL");

  std::ostringstream out;
  out << "    {\n"
      << "      \"timestamp\": \"" << stamp << "\",\n"
      << "      \"git_rev\": \"" << (rev != nullptr ? rev : "unknown")
      << "\",\n"
      << "      \"label\": \"" << (label != nullptr ? label : "run") << "\",\n"
      << "      \"num_customers\": " << scale.num_customers << ",\n"
      << "      \"threads\": " << threads << ",\n"
      << "      \"duration_vsec\": " << duration_vsec << ",\n"
      << "      \"arrival\": \"" << arrival << "\",\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "        {\"system\": \"%s\", \"config\": \"%s\", "
        "\"rate_multiplier\": %.2f, \"offered_rate\": %.1f, "
        "\"goodput_ops_s\": %.1f, \"p50_ms\": %.2f, \"p95_ms\": %.2f, "
        "\"p99_ms\": %.2f, \"offered\": %zu, \"completed\": %zu, "
        "\"errors\": %zu, \"shed\": %zu, \"abandoned\": %zu, "
        "\"deadline_errors\": %zu, \"retries\": %zu, "
        "\"scan_errors_dropped\": %zu, \"rpcs_per_op\": %.1f}%s\n",
        r.system.c_str(), r.config.c_str(), r.rate_multiplier, r.offered_rate,
        r.report.goodput(), r.report.p50_ms(), r.report.p95_ms(),
        r.report.p99_ms(), r.report.total_offered, r.report.total_ops,
        r.report.total_errors, r.report.total_shed_errors,
        r.report.total_abandoned, r.report.total_deadline_errors,
        r.report.total_retries, r.report.total_scan_errors_dropped,
        r.report.rpcs_per_op(), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "      ],\n      \"metrics\": {\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out << "        \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "      }\n    }";
  return out.str();
}

bool AppendJson(const std::string& path, const std::string& run) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::string out;
  const size_t close = existing.rfind(']');
  if (close == std::string::npos) {
    out = "{\n  \"description\": \"Open-loop overload sweep trajectory "
          "(see docs/BENCHMARKS.md)\",\n  \"runs\": [\n" +
          run + "\n  ]\n}\n";
  } else {
    const bool empty_array =
        existing.find('{', existing.find("\"runs\"")) == std::string::npos ||
        existing.find('{', existing.find('[')) > close;
    std::string insert = (empty_array ? "\n" : ",\n") + run + "\n  ";
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
      out.pop_back();
    }
    out += insert + existing.substr(close);
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return true;
}

std::string ResultsDir() {
  const char* env = std::getenv("SYNERGY_BENCH_RESULTS_DIR");
  if (env != nullptr) return env;
  struct stat st{};
  if (stat("bench-results", &st) == 0 && S_ISDIR(st.st_mode)) {
    return "bench-results";
  }
  if (stat("../bench-results", &st) == 0 && S_ISDIR(st.st_mode)) {
    return "../bench-results";
  }
  return "bench-results";  // will fail to open; reported by caller
}

}  // namespace

int main() {
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(200);
  const int threads = systems::EnvThreads(4);
  const double duration_vsec = DurationFromEnv();
  const concurrent::ArrivalDist arrival = ArrivalFromEnv();
  const char* arrival_name =
      arrival == concurrent::ArrivalDist::kUniform ? "uniform" : "poisson";
  const std::vector<double> multipliers = RateMultipliers();
  const std::vector<bool> configs = ShedConfigsFromEnv();
  const concurrent::MixConfig mix = concurrent::MixedMix();

  std::printf(
      "=== Open-loop overload sweep (%s arrivals, %d client threads, "
      "%.1f vsec/point) ===\n\n",
      arrival_name, threads, duration_vsec);

  struct SystemUnderTest {
    std::unique_ptr<systems::EvaluatedSystem> system;
    hbase::Cluster* cluster = nullptr;
    core::SynergySystem* core = nullptr;  // non-null: faults go via the stack
    double saturation = 0.0;              // closed-loop ops/vsec estimate
  };
  std::vector<SystemUnderTest> suts;
  {
    auto synergy_sys = std::make_unique<systems::SynergyWrapper>(
        tpcw::Roots(), "Synergy", std::max(1, threads / 2));
    auto baseline = std::make_unique<systems::MvccSystem>(
        "Baseline", systems::MvccSystem::ViewMode::kNone);
    suts.push_back({std::move(synergy_sys)});
    suts.push_back({std::move(baseline)});
  }
  for (SystemUnderTest& sut : suts) {
    const Status setup = sut.system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n",
                   sut.system->name().c_str(), setup.ToString().c_str());
      return 1;
    }
    if (auto* sw = dynamic_cast<systems::SynergyWrapper*>(sut.system.get())) {
      sut.cluster = sw->cluster();
      sut.core = sw->system();
    } else if (auto* mv =
                   dynamic_cast<systems::MvccSystem*>(sut.system.get())) {
      sut.cluster = mv->cluster();
    }
    // Calibrate: a fault-free closed loop at the same concurrency saturates
    // the system by construction; its virtual throughput is the saturation
    // estimate the sweep's offered rates are multiples of.
    const concurrent::WorkloadReport cal = systems::MeasureConcurrent(
        *sut.system, scale, mix, threads, /*ops_per_thread=*/120,
        /*base_seed=*/scale.seed ^ 0xCA11B);
    sut.saturation = cal.virtual_throughput();
    if (sut.saturation <= 0.0) {
      std::fprintf(stderr, "%s calibration produced no throughput: %s\n",
                   sut.system->name().c_str(),
                   cal.first_error.ToString().c_str());
      return 1;
    }
    std::printf("%-10s saturation estimate: %.1f ops/vsec\n",
                sut.system->name().c_str(), sut.saturation);
  }
  std::printf("\n");

  std::vector<ResultRow> rows;
  // Highest-multiplier Synergy reports, for the protection acceptance check
  // (copies — `rows` reallocates as it grows).
  concurrent::WorkloadReport synergy_hot_protected;
  concurrent::WorkloadReport synergy_hot_unprotected;
  bool have_hot_protected = false, have_hot_unprotected = false;
  double hot_multiplier = 0.0;
  for (const double m : multipliers) hot_multiplier = std::max(hot_multiplier, m);

  for (SystemUnderTest& sut : suts) {
    systems::TablePrinter table({"config", "xsat", "offered/s", "goodput/s",
                                 "p50 ms", "p99 ms", "shed", "abandoned",
                                 "errors", "retries"});
    for (const bool protected_mode : configs) {
      for (const double mult : multipliers) {
        const double rate = mult * sut.saturation;
        // Cap the per-point op count so far-past-saturation points stay
        // affordable: shorten the horizon, never the rate.
        double horizon = duration_vsec;
        const double max_ops = 6000.0;
        if (rate * horizon > max_ops) horizon = max_ops / rate;

        ApplyConfig(*sut.system, sut.cluster, protected_mode);
        std::unique_ptr<fault::FaultInjector> faults =
            MakeDrizzle(static_cast<uint64_t>(scale.seed) ^ 0x0E11);
        if (sut.core != nullptr) {
          sut.core->SetFaultInjector(faults.get());
        } else {
          sut.cluster->SetFaultInjector(faults.get());
        }

        concurrent::OpenLoopConfig config;
        config.threads = threads;
        config.offered_rate_per_sec = rate;
        config.duration_virtual_sec = horizon;
        config.arrival = arrival;
        config.base_seed = scale.seed ^ 0x0FFE12ED;
        config.max_queue_delay_us = protected_mode ? 2000000.0 : 0.0;

        const concurrent::WorkloadReport report =
            systems::MeasureOpenLoop(*sut.system, scale, mix, config);
        if (sut.core != nullptr) {
          sut.core->SetFaultInjector(nullptr);
        } else {
          sut.cluster->SetFaultInjector(nullptr);
        }
        if (report.total_offered == 0) {
          std::fprintf(stderr, "%s/%s/%.2fx: no op offered\n",
                       sut.system->name().c_str(),
                       protected_mode ? "protected" : "unprotected", mult);
          return 1;
        }

        rows.push_back({sut.system->name(),
                        protected_mode ? "protected" : "unprotected", mult,
                        rate, report});
        const ResultRow& row = rows.back();
        table.AddRow({row.config, FormatMs(mult), FormatMs(rate),
                      FormatMs(report.goodput()), FormatMs(report.p50_ms()),
                      FormatMs(report.p99_ms()),
                      std::to_string(report.total_shed_errors),
                      std::to_string(report.total_abandoned),
                      std::to_string(report.total_errors),
                      std::to_string(report.total_retries)});
        if (sut.system->name() == "Synergy" && mult == hot_multiplier) {
          if (protected_mode) {
            synergy_hot_protected = report;
            have_hot_protected = true;
          } else {
            synergy_hot_unprotected = report;
            have_hot_unprotected = true;
          }
        }
      }
    }
    std::printf("--- %s (saturation %.1f ops/vsec) ---\n",
                sut.system->name().c_str(), sut.saturation);
    table.Print();
    std::printf("\n");
  }

  // Acceptance: past saturation, the protection stack must not cost goodput
  // and must bound the admitted-op tail.
  if (have_hot_protected && have_hot_unprotected && hot_multiplier >= 1.5) {
    const double g_prot = synergy_hot_protected.goodput();
    const double g_unprot = synergy_hot_unprotected.goodput();
    const double p99_prot = synergy_hot_protected.p99_ms();
    const double p99_unprot = synergy_hot_unprotected.p99_ms();
    std::printf(
        "Synergy @ %.1fx saturation: goodput %s -> %s ops/vsec, "
        "p99 %s -> %s ms (unprotected -> protected)\n",
        hot_multiplier, FormatMs(g_unprot).c_str(), FormatMs(g_prot).c_str(),
        FormatMs(p99_unprot).c_str(), FormatMs(p99_prot).c_str());
    if (g_prot < g_unprot) {
      std::fprintf(stderr,
                   "FAIL: protection cost goodput past saturation "
                   "(%.1f < %.1f ops/vsec)\n",
                   g_prot, g_unprot);
      return 1;
    }
    if (p99_prot >= p99_unprot) {
      std::fprintf(stderr,
                   "FAIL: protected p99 (%.1f ms) not below unprotected "
                   "(%.1f ms) past saturation\n",
                   p99_prot, p99_unprot);
      return 1;
    }
  }

  // Registry snapshots embedded into the committed run row (cumulative over
  // the whole sweep — calibration plus every rate point).
  std::vector<std::pair<std::string, std::string>> metrics_json;
  for (const SystemUnderTest& sut : suts) {
    metrics_json.emplace_back(sut.system->name(), sut.system->MetricsJson());
  }

  const std::string path = ResultsDir() + "/BENCH_overload.json";
  if (AppendJson(path, JsonRun(rows, scale, threads, duration_vsec,
                               arrival_name, metrics_json))) {
    std::printf("Appended datapoint to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", path.c_str());
  }
  return 0;
}
