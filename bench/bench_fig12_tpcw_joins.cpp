// Figure 12: TPC-W join queries Q1-Q11 across the five evaluated systems.
//
// The paper reports (at 1M customers): Synergy join queries on average
// 19.5x faster than MVCC-UA, 6.2x than MVCC-A and 28.2x than Baseline;
// VoltDB ~11x faster than Synergy on the joins it supports; Q3/Q7/Q9/Q10
// unsupported in VoltDB ("X" cells).
#include <cstdio>

#include "systems/harness.h"
#include "tpcw/workload.h"

int main() {
  using namespace synergy;
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(2000);
  const int reps = systems::EnvReps(5);
  std::printf(
      "=== Figure 12: TPC-W join query response times (simulated ms) ===\n"
      "NUM_CUST=%lld (NUM_ITEMS=%lld), %d reps; X = join not expressible in "
      "VoltDB.\n\n",
      static_cast<long long>(scale.num_customers),
      static_cast<long long>(scale.num_items()), reps);

  std::vector<std::unique_ptr<systems::EvaluatedSystem>> evaluated;
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    evaluated.push_back(std::move(system));
  }

  std::vector<std::string> headers = {"query"};
  for (const auto& system : evaluated) headers.push_back(system->name());
  systems::TablePrinter table(headers, 14);

  // Per-system mean over queries (for the ratio summary). Synergy ratios
  // are computed per-query then averaged, like the paper's "on average".
  std::map<std::string, std::map<std::string, double>> rt;  // query -> sys -> ms
  for (const std::string& id : tpcw::JoinQueryIds()) {
    std::vector<std::string> row = {id};
    for (const auto& system : evaluated) {
      tpcw::ParamProvider params(scale, /*seed=*/271828);
      systems::Measurement m =
          systems::MeasureStatement(*system, params, id, reps);
      if (!m.error.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", system->name().c_str(), id.c_str(),
                     m.error.ToString().c_str());
        return 1;
      }
      if (!m.supported) {
        row.push_back("X");
        continue;
      }
      rt[id][system->name()] = m.rt_ms.mean();
      row.push_back(FormatMs(m.rt_ms.mean()) + "+-" +
                    FormatMs(m.rt_ms.stderr_mean()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  auto avg_ratio = [&](const std::string& base, const std::string& other,
                       bool require_other_support) {
    double sum = 0;
    int n = 0;
    for (const auto& [query, by_system] : rt) {
      if (!by_system.contains(base)) continue;
      if (!by_system.contains(other)) {
        if (require_other_support) continue;
        continue;
      }
      sum += by_system.at(other) / by_system.at(base);
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };
  std::printf(
      "\nSynergy speedup over other systems (mean of per-query ratios):\n"
      "  vs MVCC-UA : %.1fx   (paper: 19.5x)\n"
      "  vs MVCC-A  : %.1fx   (paper:  6.2x)\n"
      "  vs Baseline: %.1fx   (paper: 28.2x)\n",
      avg_ratio("Synergy", "MVCC-UA", false),
      avg_ratio("Synergy", "MVCC-A", false),
      avg_ratio("Synergy", "Baseline", false));
  std::printf(
      "VoltDB speedup over Synergy on supported joins: %.1fx (paper: 11x)\n",
      avg_ratio("VoltDB", "Synergy", true));
  return 0;
}
