// Table II: sum of the response times of ALL TPC-W statements (joins,
// writes and single-table reads) for the four HBase-backed systems —
// quantifying the read-gain vs write-overhead trade-off of views.
//
// Paper (1M customers): Synergy 33.7 s, MVCC-A 77.4 s, MVCC-UA 132.4 s,
// Baseline 173.4 s — Synergy improves 56.3-80.5% over the others. VoltDB
// is excluded because it cannot run every statement.
#include <cstdio>

#include "common/stats.h"
#include "systems/harness.h"
#include "tpcw/workload.h"

int main() {
  using namespace synergy;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(2000);
  const int reps = systems::EnvReps(5);
  std::printf(
      "=== Table II: sum of RT of all TPC-W statements (simulated s) ===\n"
      "NUM_CUST=%lld, %d reps. VoltDB excluded (does not support all "
      "statements).\n\n",
      static_cast<long long>(scale.num_customers), reps);

  sql::Workload workload = tpcw::BuildWorkload();
  systems::TablePrinter table(
      {"system", "mean_total_s", "stderr_s", "improvement_vs"});
  std::map<std::string, double> totals;
  for (const systems::SystemKind kind : systems::HBaseBackedKinds()) {
    auto system = systems::MakeSystem(kind);
    Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    RunningStats total_s;
    for (int r = 0; r < reps; ++r) {
      tpcw::ParamProvider params(scale, /*seed=*/1000 + r);
      double sum_ms = 0;
      for (const sql::WorkloadStatement& stmt : workload.statements) {
        auto p = params.ParamsFor(stmt.id);
        if (!p.ok()) return 1;
        auto result = system->Execute(stmt.id, *p);
        if (!result.ok()) {
          std::fprintf(stderr, "%s %s: %s\n", system->name().c_str(),
                       stmt.id.c_str(), result.status().ToString().c_str());
          return 1;
        }
        sum_ms += result->virtual_ms;
      }
      total_s.Add(sum_ms / 1000.0);
    }
    totals[system->name()] = total_s.mean();
    char mean[32], se[32];
    std::snprintf(mean, sizeof(mean), "%.2f", total_s.mean());
    std::snprintf(se, sizeof(se), "%.3f", total_s.stderr_mean());
    table.AddRow({system->name(), mean, se, ""});
  }
  table.Print();

  const double synergy = totals["Synergy"];
  std::printf(
      "\nSynergy improvement: vs MVCC-UA %.1f%% (paper 74.5%%), vs MVCC-A "
      "%.1f%% (paper 56.3%%), vs Baseline %.1f%% (paper 80.5%%)\n",
      100.0 * (1.0 - synergy / totals["MVCC-UA"]),
      100.0 * (1.0 - synergy / totals["MVCC-A"]),
      100.0 * (1.0 - synergy / totals["Baseline"]));
  std::printf("Expected ordering: Synergy < MVCC-A < MVCC-UA < Baseline: %s\n",
              (synergy < totals["MVCC-A"] &&
               totals["MVCC-A"] < totals["MVCC-UA"] &&
               totals["MVCC-UA"] < totals["Baseline"])
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
