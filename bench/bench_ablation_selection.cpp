// Ablation (§V-A): sensitivity of Synergy to the designer-provided roots
// set. "The usability of generated candidate views for join materialization
// is dependent on roots selection" — we quantify it by rebuilding the
// system with alternative root sets and re-measuring representative joins.
#include <cstdio>

#include "systems/harness.h"
#include "systems/synergy_wrapper.h"

int main() {
  using namespace synergy;
  using systems::FormatMs;
  tpcw::ScaleConfig scale;
  scale.num_customers = systems::EnvCustomers(1000);
  const int reps = systems::EnvReps(5);
  std::printf(
      "=== Ablation: roots-set sensitivity of the views selection ===\n"
      "NUM_CUST=%lld, %d reps. Paper roots: {Author, Customer, Country}.\n\n",
      static_cast<long long>(scale.num_customers), reps);

  struct Variant {
    std::string label;
    std::vector<std::string> roots;
  };
  const std::vector<Variant> variants = {
      {"paper", {"Author", "Customer", "Country"}},
      {"customer-only", {"Customer"}},
      {"item-only", {"Item"}},
      {"all-parents", {"Author", "Customer", "Country", "Item",
                       "Shopping_cart"}},
  };
  const std::vector<std::string> queries = {"Q1", "Q2", "Q4", "Q8", "Q10"};

  std::vector<std::string> headers = {"roots", "views"};
  for (const std::string& q : queries) headers.push_back(q + "_ms");
  systems::TablePrinter table(headers, 12);

  for (const Variant& variant : variants) {
    systems::SynergyWrapper system(variant.roots,
                                   "Synergy[" + variant.label + "]");
    Status setup = system.Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", variant.label.c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {variant.label,
                                    std::to_string(system.ViewNames().size())};
    for (const std::string& q : queries) {
      tpcw::ParamProvider params(scale, 42);
      systems::Measurement m = systems::MeasureStatement(system, params, q, reps);
      if (!m.error.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", variant.label.c_str(), q.c_str(),
                     m.error.ToString().c_str());
        return 1;
      }
      row.push_back(FormatMs(m.rt_ms.mean()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nTakeaway: fewer/poorly-placed roots materialize fewer of the\n"
      "workload's joins, pushing those queries back to live join plans.\n");
  return 0;
}
