// Figure 11: overhead of two-phase row locking in HBase.
//
// One lock table with an id + boolean lock-status column; locks are
// acquired and released with checkAndPut from the client, increasing the
// number of locks in multiples of 10 starting at 10 (paper: 342 ms at 10,
// 571 ms at 100, 2182 ms at 1000 — a fixed client/HTable setup term plus a
// per-lock round-trip pair).
#include <cstdio>

#include "common/stats.h"
#include "systems/harness.h"
#include "txn/lock_manager.h"

int main() {
  using namespace synergy;
  const int reps = systems::EnvReps(10);
  std::printf(
      "=== Figure 11: two-phase row locking overhead in HBase ===\n"
      "Simulated ms to acquire + release N row locks via checkAndPut "
      "(mean over %d reps).\nPaper: 10 -> 342 ms, 100 -> 571 ms, "
      "1000 -> 2182 ms.\n\n",
      reps);
  systems::TablePrinter table({"locks", "overhead_ms", "paper_ms"});
  const double paper[] = {342, 571, 2182};
  int row = 0;
  for (int locks = 10; locks <= 1000; locks *= 10, ++row) {
    RunningStats overhead;
    for (int r = 0; r < reps; ++r) {
      hbase::Cluster cluster;
      txn::LockManager manager(&cluster);
      if (!manager.CreateLockTable("bench").ok()) return 1;
      hbase::Session s(&cluster);
      for (int i = 0; i < locks; ++i) {
        if (!manager.CreateLockEntry(s, "bench", "k" + std::to_string(i)).ok())
          return 1;
      }
      s.meter().Reset();
      // Client-side connection/HTable setup for the locking batch (the
      // fixed term visible at 10 locks in the paper).
      s.meter().Charge(cluster.cost_model().lock_client_setup_us);
      for (int i = 0; i < locks; ++i) {
        const std::string key = "k" + std::to_string(i);
        if (!manager.Acquire(s, "bench", key).ok()) return 1;
      }
      for (int i = 0; i < locks; ++i) {
        const std::string key = "k" + std::to_string(i);
        if (!manager.Release(s, "bench", key).ok()) return 1;
      }
      overhead.Add(s.meter().millis());
    }
    table.AddRow({std::to_string(locks),
                  systems::FormatMs(overhead.mean()),
                  systems::FormatMs(paper[row])});
  }
  table.Print();
  std::printf(
      "\nShape check: a fixed setup term dominates at 10 locks; growth is\n"
      "linear in the lock count — motivating one lock per transaction.\n");
  return 0;
}
