// TPC-W demo: stand up all five evaluated systems at a small scale and run
// a representative slice of the workload side by side.
#include <cstdio>

#include "systems/harness.h"
#include "tpcw/workload.h"

int main() {
  using namespace synergy;
  tpcw::ScaleConfig scale;
  scale.num_customers = 200;
  std::printf("Setting up the five evaluated systems (TPC-W, %lld customers)"
              "...\n\n",
              static_cast<long long>(scale.num_customers));

  std::vector<std::unique_ptr<systems::EvaluatedSystem>> evaluated;
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    Status setup = system->Setup(scale);
    if (!setup.ok()) {
      std::fprintf(stderr, "%s: %s\n", system->name().c_str(),
                   setup.ToString().c_str());
      return 1;
    }
    std::printf("  %-9s ready — %s\n", system->name().c_str(),
                system->Description().c_str());
    const auto views = system->ViewNames();
    if (!views.empty()) {
      std::printf("            views:");
      for (const std::string& v : views) std::printf(" %s", v.c_str());
      std::printf("\n");
    }
    evaluated.push_back(std::move(system));
  }

  std::printf("\nResponse times (simulated ms; X = unsupported join):\n\n");
  systems::TablePrinter table([&] {
    std::vector<std::string> headers = {"statement"};
    for (const auto& system : evaluated) headers.push_back(system->name());
    return headers;
  }());
  for (const char* id : {"Q1", "Q2", "Q4", "Q7", "Q10", "S1", "W1", "W6",
                         "W13"}) {
    std::vector<std::string> row = {id};
    for (const auto& system : evaluated) {
      tpcw::ParamProvider params(scale, 7);
      systems::Measurement m =
          systems::MeasureStatement(*system, params, id, 2);
      if (!m.error.ok()) {
        row.push_back("ERR");
      } else if (!m.supported) {
        row.push_back("X");
      } else {
        row.push_back(systems::FormatMs(m.rt_ms.mean()));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nNote how the MVCC systems carry a fixed per-statement transaction\n"
      "tax, Synergy serves joins from views at a fraction of Baseline's\n"
      "cost, and VoltDB is fastest where the join is expressible at all.\n");
  return 0;
}
