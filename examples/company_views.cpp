// Walkthrough of the paper's running example: the Company database
// (Figure 2) through the candidate-views generation mechanism (Figures 4-5)
// and view selection / query rewriting (Figure 6 procedure applied to the
// Company workload W1-W3 of Section V-B2).
#include <cstdio>

#include "synergy/query_rewrite.h"
#include "synergy/view_index.h"
#include "synergy/view_selection.h"

using namespace synergy;

namespace {

sql::Catalog CompanyCatalog();
sql::Workload CompanyWorkload();

void Must(Status s) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
}

sql::Catalog CompanyCatalog() {
  using DT = DataType;
  sql::Catalog cat;
  Must(cat.AddRelation({.name = "Address",
                        .columns = {{"AID", DT::kInt},
                                    {"Street", DT::kString},
                                    {"City", DT::kString},
                                    {"Zip", DT::kString}},
                        .primary_key = {"AID"}}));
  Must(cat.AddRelation({.name = "Department",
                        .columns = {{"DNo", DT::kInt}, {"DName", DT::kString}},
                        .primary_key = {"DNo"}}));
  Must(cat.AddRelation({.name = "Department_Location",
                        .columns = {{"DL_DNo", DT::kInt},
                                    {"DLocation", DT::kString}},
                        .primary_key = {"DL_DNo", "DLocation"},
                        .foreign_keys = {{{"DL_DNo"}, "Department"}}}));
  Must(cat.AddRelation({.name = "Employee",
                        .columns = {{"EID", DT::kInt},
                                    {"EName", DT::kString},
                                    {"EHome_AID", DT::kInt},
                                    {"EOffice_AID", DT::kInt},
                                    {"E_DNo", DT::kInt}},
                        .primary_key = {"EID"},
                        .foreign_keys = {{{"EHome_AID"}, "Address"},
                                         {{"EOffice_AID"}, "Address"},
                                         {{"E_DNo"}, "Department"}}}));
  Must(cat.AddRelation({.name = "Project",
                        .columns = {{"PNo", DT::kInt},
                                    {"PName", DT::kString},
                                    {"P_DNo", DT::kInt}},
                        .primary_key = {"PNo"},
                        .foreign_keys = {{{"P_DNo"}, "Department"}}}));
  Must(cat.AddRelation({.name = "Works_On",
                        .columns = {{"WO_EID", DT::kInt},
                                    {"WO_PNo", DT::kInt},
                                    {"Hours", DT::kInt}},
                        .primary_key = {"WO_EID", "WO_PNo"},
                        .foreign_keys = {{{"WO_EID"}, "Employee"},
                                         {{"WO_PNo"}, "Project"}}}));
  Must(cat.AddRelation({.name = "Dependent",
                        .columns = {{"DP_EID", DT::kInt},
                                    {"DPName", DT::kString},
                                    {"DPHome_AID", DT::kInt}},
                        .primary_key = {"DP_EID", "DPName"},
                        .foreign_keys = {{{"DP_EID"}, "Employee"},
                                         {{"DPHome_AID"}, "Address"}}}));
  return cat;
}

sql::Workload CompanyWorkload() {
  sql::Workload w;
  Must(w.Add("W1",
             "SELECT * FROM Employee as e, Address as a "
             "WHERE a.AID = e.EHome_AID and e.EID = ?"));
  Must(w.Add("W2",
             "SELECT * FROM Department as d, Employee as e, Works_On as wo "
             "WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?"));
  Must(w.Add("W3",
             "SELECT * FROM Employee as e, Works_On as wo "
             "WHERE e.EID = wo.WO_EID and wo.Hours = ?"));
  return w;
}

}  // namespace

int main() {
  sql::Catalog catalog = CompanyCatalog();
  sql::Workload workload = CompanyWorkload();

  std::printf("== Schema graph (Figure 4a) ==\n");
  core::SchemaGraph graph = core::SchemaGraph::FromCatalog(catalog);
  for (const core::SchemaEdge& e : graph.edges()) {
    std::printf("  %s\n", e.Label().c_str());
  }

  std::printf("\n== Rooted trees for Q = {Address, Department} (Figure 4b) "
              "==\n");
  auto result = core::GenerateCandidateViews(graph, workload, catalog,
                                             {"Address", "Department"});
  Must(result.status());
  for (const core::RootedTree& tree : result->trees) {
    std::printf("  %s\n", tree.ToString().c_str());
    for (const auto& path : core::EnumerateCandidatePaths(tree)) {
      std::printf("    candidate view:");
      for (const std::string& rel : path) std::printf(" %s", rel.c_str());
      std::printf("\n");
    }
  }

  std::printf("\n== Views selected for the workload (Section VI-A) ==\n");
  auto views = core::SelectViews(workload, catalog, result->trees);
  for (const core::SelectedView& view : views) {
    std::printf("  %s (root %s)\n", view.Name().c_str(), view.root.c_str());
    auto defs = core::MaterializeViewDef(view, catalog);
    Must(defs.status());
    Must(catalog.AddView(defs->first, defs->second));
  }

  std::printf("\n== Queries re-written using the views (Section VI-B) ==\n");
  auto rewritten = core::RewriteWorkload(&workload, catalog, result->trees);
  Must(rewritten.status());
  for (const sql::WorkloadStatement& stmt : workload.statements) {
    std::printf("  %s: %s\n", stmt.id.c_str(), stmt.sql.c_str());
  }

  std::printf("\n== Additional view-indexes (Section VI-C) ==\n");
  for (const sql::IndexDef& ix :
       core::RecommendViewIndexes(workload, catalog)) {
    std::printf("  %s ON %s(%s)\n", ix.name.c_str(), ix.relation.c_str(),
                ix.indexed_columns.front().c_str());
  }
  return 0;
}
