// Interactive SQL shell over a Synergy system loaded with a small TPC-W
// database. Type SQL (single statement per line), `\plan <sql>` to see the
// executor's plan, `\views` to list materialized views, `\q` to quit.
//
//   $ ./examples/sql_shell
//   synergy> SELECT * FROM Customer WHERE c_id = 3
#include <cstdio>
#include <iostream>
#include <string>

#include "synergy/synergy_system.h"
#include "systems/harness.h"
#include "tpcw/generator.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

using namespace synergy;

int main() {
  tpcw::ScaleConfig scale;
  scale.num_customers = 100;
  std::printf("Loading TPC-W (%lld customers) into a Synergy system...\n",
              static_cast<long long>(scale.num_customers));
  hbase::Cluster cluster;
  core::SynergySystem system(&cluster, {.roots = tpcw::Roots()});
  if (!system.Build(tpcw::BuildCatalog(), tpcw::BuildWorkload()).ok() ||
      !system.CreateStorage().ok()) {
    return 1;
  }
  hbase::Session load(&cluster);
  if (!tpcw::GenerateDatabase(scale, [&](const std::string& rel,
                                         const exec::Tuple& t) {
         return system.Load(load, rel, t);
       }).ok()) {
    return 1;
  }
  exec::Executor executor(system.adapter());
  std::printf("Ready. \\views lists views, \\plan <sql> explains, \\q quits.\n");

  std::string line;
  while (std::printf("synergy> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\views") {
      for (const sql::ViewDef* v : system.catalog().Views()) {
        std::printf("  %s (root %s)\n", v->name.c_str(), v->root.c_str());
      }
      continue;
    }
    const bool explain = line.rfind("\\plan ", 0) == 0;
    const std::string text = explain ? line.substr(6) : line;
    StatusOr<sql::Statement> stmt = sql::Parse(text);
    if (!stmt.ok()) {
      std::printf("parse error: %s\n", stmt.status().ToString().c_str());
      continue;
    }
    if (const auto* sel = std::get_if<sql::SelectStatement>(&*stmt)) {
      if (explain) {
        auto plan = executor.Explain(*sel);
        std::printf("%s", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
        continue;
      }
      hbase::Session s(&cluster);
      auto result = system.ExecuteRead(s, *sel, {});
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      for (size_t c = 0; c < result->columns.size(); ++c) {
        std::printf("%s%s", c ? " | " : "", result->columns[c].c_str());
      }
      std::printf("\n");
      const size_t show = std::min<size_t>(result->rows.size(), 20);
      for (size_t r = 0; r < show; ++r) {
        for (size_t c = 0; c < result->rows[r].size(); ++c) {
          std::printf("%s%s", c ? " | " : "",
                      result->rows[r][c].ToString().c_str());
        }
        std::printf("\n");
      }
      std::printf("(%zu rows, %.2f simulated ms)\n", result->row_count,
                  s.meter().millis());
    } else {
      hbase::Session s(&cluster);
      auto result = system.ExecuteWrite(s, *stmt, {});
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("OK, txn %lld (%.2f simulated ms)\n",
                    static_cast<long long>(result->txn_id),
                    s.meter().millis());
      }
    }
  }
  return 0;
}
