// Concurrency demo: the read-committed machinery of Section VIII in action.
//   1. Dirty-read detection — a reader restarts when it sees marked rows.
//   2. Hierarchical lock contention — concurrent writers to the same root
//      serialize on a single lock.
//   3. Slave failure + WAL replay — the lock stays held across the crash,
//      preserving read-committed semantics, and failover completes the
//      transaction.
#include <cstdio>

#include <thread>

#include "synergy/synergy_system.h"
#include "testing/fault_injector.h"

using namespace synergy;

namespace {

void Must(Status s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

int main() {
  // Schema: Account (root) -> Entry, with an Account-Entry view.
  sql::Catalog catalog;
  Must(catalog.AddRelation({.name = "Account",
                            .columns = {{"a_id", DataType::kInt},
                                        {"a_owner", DataType::kString}},
                            .primary_key = {"a_id"}}));
  Must(catalog.AddRelation({.name = "Entry",
                            .columns = {{"e_id", DataType::kInt},
                                        {"e_a_id", DataType::kInt},
                                        {"e_amount", DataType::kInt}},
                            .primary_key = {"e_id"},
                            .foreign_keys = {{{"e_a_id"}, "Account"}}}));
  sql::Workload workload;
  Must(workload.Add("ledger",
                    "SELECT * FROM Account as a, Entry as e "
                    "WHERE a.a_id = e.e_a_id AND a.a_id = ?"));

  hbase::Cluster cluster;
  core::SynergySystem system(&cluster, {.roots = {"Account"}, .txn_slaves = 2});
  Must(system.Build(catalog, workload));
  Must(system.CreateStorage());

  hbase::Session s(&cluster);
  Must(system.Load(s, "Account", {{"a_id", Value(1)}, {"a_owner", "alice"}}));
  for (int e = 1; e <= 5; ++e) {
    Must(system.Load(s, "Entry", {{"e_id", Value(e)},
                                  {"e_a_id", Value(1)},
                                  {"e_amount", Value(100 * e)}}));
  }

  // --- 1. Dirty-read detection ---------------------------------------
  std::printf("1) Dirty-read detection\n");
  Must(system.adapter()->SetMarkWithIndexes(s, "Account-Entry", {Value(3)},
                                            true));
  const auto& q = std::get<sql::SelectStatement>(
      system.workload().Find("ledger")->ast);
  std::vector<Value> params = {Value(1)};
  auto dirty = system.ExecuteRead(s, q, params);
  std::printf("   read with a marked view row: %s\n",
              dirty.ok() ? "returned (unexpected)"
                         : dirty.status().ToString().c_str());
  Must(system.adapter()->SetMarkWithIndexes(s, "Account-Entry", {Value(3)},
                                            false));
  auto clean = system.ExecuteRead(s, q, params);
  Must(clean.status());
  std::printf("   after un-marking: %zu rows (read restarts succeeded)\n\n",
              clean->row_count);

  // --- 2. Lock contention --------------------------------------------
  std::printf("2) Hierarchical lock contention (8 writers, one root)\n");
  std::vector<std::thread> writers;
  std::atomic<int> committed{0};
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&, t] {
      hbase::Session ws(&cluster);
      auto stmt = sql::MustParse(
          "INSERT INTO Entry (e_id, e_a_id, e_amount) VALUES (?, ?, ?)");
      auto result = system.ExecuteWrite(
          ws, stmt, {Value(100 + t), Value(1), Value(7)});
      if (result.ok()) committed.fetch_add(1);
    });
  }
  for (auto& t : writers) t.join();
  auto after = system.ExecuteRead(s, q, params);
  Must(after.status());
  std::printf("   %d/8 writers committed; ledger now has %zu rows\n\n",
              committed.load(), after->row_count);

  // --- 3. Failure + WAL replay ----------------------------------------
  std::printf("3) Slave crash and WAL failover\n");
  fault::FaultInjector faults(1);
  system.SetFaultInjector(&faults);
  faults.Arm(fault::FaultPoint::kCrashBeforeExecute);
  hbase::Session ws(&cluster);
  auto stmt = sql::MustParse(
      "INSERT INTO Entry (e_id, e_a_id, e_amount) VALUES (?, ?, ?)");
  auto crashed = system.ExecuteWrite(ws, stmt,
                                     {Value(999), Value(1), Value(1)});
  std::printf("   write during crash: %s\n",
              crashed.ok() ? "committed (unexpected)"
                           : crashed.status().ToString().c_str());
  system.SetFaultInjector(nullptr);
  Must(system.txn_layer()->DetectAndRecover(
      ws, [&](hbase::Session& rs, const std::string& payload) {
        return system.ReplayPayload(rs, payload);
      }));
  auto recovered = system.ExecuteRead(s, q, params);
  Must(recovered.status());
  std::printf("   after failover+replay the ledger has %zu rows — the WAL'd "
              "write survived.\n",
              recovered->row_count);
  return 0;
}
