// Quickstart: build a Synergy system over a tiny blog schema, load data,
// and watch a join query run against an automatically-selected view.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "synergy/synergy_system.h"

using namespace synergy;

int main() {
  // 1. Describe the relational schema (relations, PKs, FKs).
  sql::Catalog catalog;
  const sql::RelationDef blog = {.name = "Blog",
                                 .columns = {{"b_id", DataType::kInt},
                                             {"b_title", DataType::kString}},
                                 .primary_key = {"b_id"}};
  const sql::RelationDef post = {.name = "Post",
                                 .columns = {{"p_id", DataType::kInt},
                                             {"p_b_id", DataType::kInt},
                                             {"p_text", DataType::kString}},
                                 .primary_key = {"p_id"},
                                 .foreign_keys = {{{"p_b_id"}, "Blog"}}};
  if (!catalog.AddRelation(blog).ok() || !catalog.AddRelation(post).ok()) {
    return 1;
  }

  // 2. Describe the workload; Synergy selects views for its equi joins.
  sql::Workload workload;
  if (!workload
           .Add("posts_of_blog",
                "SELECT * FROM Blog as b, Post as p "
                "WHERE b.b_id = p.p_b_id AND b.b_id = ?")
           .ok()) {
    return 1;
  }

  // 3. Build the system on a simulated HBase cluster; Blog is the root.
  hbase::Cluster cluster;
  core::SynergySystem system(&cluster, {.roots = {"Blog"}});
  if (!system.Build(catalog, workload).ok()) return 1;
  if (!system.CreateStorage().ok()) return 1;
  std::printf("Views selected by the schema-based/workload-driven mechanism:\n");
  for (const sql::ViewDef* view : system.catalog().Views()) {
    std::printf("  %s\n", view->name.c_str());
  }
  std::printf("Rewritten workload:\n  %s\n",
              system.workload().Find("posts_of_blog")->sql.c_str());

  // 4. Load data (views and indexes are maintained automatically).
  hbase::Session s(&cluster);
  for (int b = 1; b <= 3; ++b) {
    (void)system.Load(s, "Blog",
                      {{"b_id", Value(b)},
                       {"b_title", Value("blog-" + std::to_string(b))}});
    for (int p = 0; p < 4; ++p) {
      (void)system.Load(s, "Post", {{"p_id", Value(b * 10 + p)},
                                    {"p_b_id", Value(b)},
                                    {"p_text", Value("hello world")}});
    }
  }

  // 5. Reads use the view; writes are single-lock ACID transactions.
  const sql::WorkloadStatement* q = system.workload().Find("posts_of_blog");
  std::vector<Value> params = {Value(2)};
  hbase::Session qs(&cluster);
  auto result = system.ExecuteRead(
      qs, std::get<sql::SelectStatement>(q->ast), params);
  if (!result.ok()) return 1;
  std::printf("Query returned %zu rows in %.2f simulated ms\n",
              result->row_count, qs.meter().millis());

  auto insert = sql::MustParse(
      "INSERT INTO Post (p_id, p_b_id, p_text) VALUES (?, ?, ?)");
  hbase::Session ws(&cluster);
  auto write = system.ExecuteWrite(
      ws, insert, {Value(99), Value(2), Value("new post")});
  if (!write.ok()) return 1;
  std::printf("Insert committed as txn %lld (%.2f simulated ms); ",
              static_cast<long long>(write->txn_id), ws.meter().millis());

  hbase::Session rs(&cluster);
  auto again = system.ExecuteRead(
      rs, std::get<sql::SelectStatement>(q->ast), params);
  if (!again.ok()) return 1;
  std::printf("the view now serves %zu rows.\n", again->row_count);
  return 0;
}
