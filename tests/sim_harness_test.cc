#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "systems/harness.h"

namespace synergy {
namespace {

TEST(CostModelTest, RpcCostIsBasePlusTransfer) {
  sim::CostModel m;
  EXPECT_DOUBLE_EQ(sim::RpcCost(m, 0), m.rpc_base_us);
  EXPECT_DOUBLE_EQ(sim::RpcCost(m, 1024), m.rpc_base_us + m.rpc_per_kb_us);
  EXPECT_GT(sim::RpcCost(m, 4096), sim::RpcCost(m, 1024));
}

TEST(CostModelTest, Ec2PresetIsSane) {
  sim::CostModel m = sim::CostModel::Ec2Like();
  EXPECT_GT(m.rpc_base_us, 0);
  EXPECT_GT(m.mvcc_start_us + m.mvcc_commit_us + m.mvcc_conflict_check_us,
            600000.0);  // the Tephra tax sits in the paper's 800-900ms band
  EXPECT_LT(m.mvcc_start_us + m.mvcc_commit_us + m.mvcc_conflict_check_us,
            1000000.0);
  EXPECT_FALSE(sim::DescribeCostModel(m).empty());
}

TEST(CostMeterTest, AccumulatesAndResets) {
  sim::CostMeter meter;
  EXPECT_DOUBLE_EQ(meter.micros(), 0.0);
  meter.Charge(1500.0);
  meter.Charge(500.0);
  EXPECT_DOUBLE_EQ(meter.micros(), 2000.0);
  EXPECT_DOUBLE_EQ(meter.millis(), 2.0);
  const double mark = meter.micros();
  meter.Charge(100.0);
  EXPECT_DOUBLE_EQ(meter.Since(mark), 100.0);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.micros(), 0.0);
}

TEST(HarnessTest, FormatMsRanges) {
  EXPECT_EQ(systems::FormatMs(0.123), "0.12");
  EXPECT_EQ(systems::FormatMs(5.25), "5.2");
  EXPECT_EQ(systems::FormatMs(512.3), "512");
  EXPECT_EQ(systems::FormatMs(2.5e6), "2.5e+06");
}

TEST(HarnessTest, EnvKnobsFallBackToDefaults) {
  unsetenv("SYNERGY_TPCW_CUSTOMERS");
  unsetenv("SYNERGY_BENCH_REPS");
  EXPECT_EQ(systems::EnvCustomers(1234), 1234);
  EXPECT_EQ(systems::EnvReps(7), 7);
  setenv("SYNERGY_TPCW_CUSTOMERS", "99", 1);
  setenv("SYNERGY_BENCH_REPS", "3", 1);
  EXPECT_EQ(systems::EnvCustomers(1234), 99);
  EXPECT_EQ(systems::EnvReps(7), 3);
  setenv("SYNERGY_TPCW_CUSTOMERS", "garbage", 1);
  EXPECT_EQ(systems::EnvCustomers(1234), 1234);
  unsetenv("SYNERGY_TPCW_CUSTOMERS");
  unsetenv("SYNERGY_BENCH_REPS");
}

TEST(HarnessTest, SystemKindNamesAreStable) {
  using systems::SystemKind;
  EXPECT_STREQ(systems::SystemKindName(SystemKind::kVoltDb), "VoltDB");
  EXPECT_STREQ(systems::SystemKindName(SystemKind::kSynergy), "Synergy");
  EXPECT_STREQ(systems::SystemKindName(SystemKind::kMvccA), "MVCC-A");
  EXPECT_STREQ(systems::SystemKindName(SystemKind::kMvccUA), "MVCC-UA");
  EXPECT_STREQ(systems::SystemKindName(SystemKind::kBaseline), "Baseline");
  EXPECT_EQ(systems::AllSystemKinds().size(), 5u);
  EXPECT_EQ(systems::HBaseBackedKinds().size(), 4u);
}

TEST(HarnessTest, MakeSystemCoversEveryKind) {
  for (const systems::SystemKind kind : systems::AllSystemKinds()) {
    auto system = systems::MakeSystem(kind);
    ASSERT_NE(system, nullptr);
    EXPECT_EQ(system->name(), systems::SystemKindName(kind));
    EXPECT_FALSE(system->Description().empty());
  }
}

}  // namespace
}  // namespace synergy
