#include "txn/txn_layer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "testing/fault_injector.h"

namespace synergy::txn {
namespace {

class TxnLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "data"}).ok());
    locks_ = std::make_unique<LockManager>(&cluster_);
    ASSERT_TRUE(locks_->CreateLockTable("Root").ok());
    layer_ = std::make_unique<TxnLayer>(&cluster_, locks_.get(), 2);
    layer_->SetFaultInjector(&faults_);
  }

  /// Arms a crash-before-execute on the next `count` writes (one per slave).
  void CrashNextWrites(int count) {
    faults_.Arm(fault::FaultPoint::kCrashBeforeExecute, /*skip_hits=*/0,
                /*max_fires=*/count);
  }

  WriteBody PutBody(const std::string& key, const std::string& value) {
    return [this, key, value](hbase::Session& s) {
      return cluster_.Put(s, "data", key, {{"v", value}});
    };
  }

  std::string ReadData(const std::string& key) {
    hbase::Session s(&cluster_);
    auto row = cluster_.Get(s, "data", key);
    if (!row.ok()) return "<missing>";
    return row->columns.at("v");
  }

  hbase::Cluster cluster_;
  fault::FaultInjector faults_{42};
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TxnLayer> layer_;
};

TEST_F(TxnLayerTest, WriteGoesThroughWalAndCommits) {
  hbase::Session s(&cluster_);
  auto id = layer_->SubmitWrite(s, "put k1 v1",
                                LockSpec{"Root", "rk"}, PutBody("k1", "v1"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(ReadData("k1"), "v1");
  // Lock released after commit.
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(TxnLayerTest, WritesWithoutLockSpecAlsoWork) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "put k2 v2", std::nullopt, PutBody("k2", "v2"))
          .ok());
  EXPECT_EQ(ReadData("k2"), "v2");
}

TEST_F(TxnLayerTest, RoundRobinAcrossSlaves) {
  hbase::Session s(&cluster_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(layer_
                    ->SubmitWrite(s, "w" + std::to_string(i), std::nullopt,
                                  PutBody("k" + std::to_string(i), "v"))
                    .ok());
  }
  EXPECT_GE(layer_->slave(0)->wal()->size() +
                layer_->slave(1)->wal()->size(),
            4u);
  EXPECT_GT(layer_->slave(0)->wal()->size(), 0u);
  EXPECT_GT(layer_->slave(1)->wal()->size(), 0u);
}

TEST_F(TxnLayerTest, CrashLeavesLockHeldUntilRecovery) {
  hbase::Session s(&cluster_);
  CrashNextWrites(1);
  // The slave that takes this write crashes holding the lock.
  auto result = layer_->SubmitWrite(s, "put kc vc", LockSpec{"Root", "rk"},
                                    PutBody("kc", "vc"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);  // read-committed preserved during failure (§VIII-C)
  EXPECT_EQ(ReadData("kc"), "<missing>");

  // Master failover: replay the WAL suffix, then release the lock the
  // entry recorded.
  ASSERT_TRUE(layer_
                  ->DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string& payload) {
                        EXPECT_EQ(payload, "put kc vc");
                        return cluster_.Put(rs, "data", "kc", {{"v", "vc"}});
                      })
                  .ok());
  EXPECT_EQ(ReadData("kc"), "vc");
  held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(TxnLayerTest, RecoveredLayerAcceptsNewWrites) {
  hbase::Session s(&cluster_);
  CrashNextWrites(2);
  (void)layer_->SubmitWrite(s, "w", std::nullopt, PutBody("k", "v"));
  (void)layer_->SubmitWrite(s, "w2", std::nullopt, PutBody("k2", "v2"));
  ASSERT_TRUE(layer_
                  ->DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string&) {
                        return cluster_.Put(rs, "data", "replayed",
                                            {{"v", "1"}});
                      })
                  .ok());
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "w3", std::nullopt, PutBody("k3", "v3")).ok());
  EXPECT_EQ(ReadData("k3"), "v3");
}

TEST_F(TxnLayerTest, AllSlavesDownIsUnavailable) {
  hbase::Session s(&cluster_);
  CrashNextWrites(2);
  (void)layer_->SubmitWrite(s, "a", std::nullopt, PutBody("a", "1"));
  (void)layer_->SubmitWrite(s, "b", std::nullopt, PutBody("b", "1"));
  auto r = layer_->SubmitWrite(s, "c", std::nullopt, PutBody("c", "1"));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(TxnLayerTest, WalRecordsCommitState) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "ok-write", std::nullopt, PutBody("k", "v")).ok());
  size_t committed = 0, total = 0;
  for (int i = 0; i < layer_->num_slaves(); ++i) {
    for (const WalEntry& e : layer_->slave(i)->wal()->AllEntries()) {
      ++total;
      if (e.committed) ++committed;
    }
  }
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(committed, 1u);
}

// Shared scaffolding for the backpressure tests: a single-slave layer whose
// worker is stuck executing a body that blocks until released, with the
// bounded queue filled to capacity behind it.
class SlaveBackpressureTest : public TxnLayerTest {
 protected:
  void StartStuckLayer(Status release_status) {
    layer1_ = std::make_unique<TxnLayer>(&cluster_, locks_.get(), 1);
    release_status_ = release_status;
    blocker_ = std::thread([this] {
      hbase::Session s(&cluster_);
      WriteBody body = [this](hbase::Session&) {
        worker_blocked_.store(true);
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return released_; });
        return release_status_;
      };
      blocker_result_ = layer1_->SubmitWrite(s, "stuck", std::nullopt, body);
    });
    while (!worker_blocked_.load()) std::this_thread::yield();

    // With the worker wedged, exactly kQueueCapacity concurrent producers
    // fill the bounded queue (each blocks on its commit future).
    filler_status_.resize(SlaveNode::kQueueCapacity, Status::Ok());
    for (size_t i = 0; i < SlaveNode::kQueueCapacity; ++i) {
      fillers_.emplace_back([this, i] {
        hbase::Session s(&cluster_);
        filler_status_[i] =
            layer1_
                ->SubmitWrite(s, "fill" + std::to_string(i), std::nullopt,
                              PutBody("f" + std::to_string(i), "v"))
                .status();
      });
    }
    while (layer1_->slave(0)->QueueDepth() < SlaveNode::kQueueCapacity) {
      std::this_thread::yield();
    }
  }

  void ReleaseWorker() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  void TearDown() override {
    if (!released_) ReleaseWorker();
    if (blocker_.joinable()) blocker_.join();
    for (auto& t : fillers_) {
      if (t.joinable()) t.join();
    }
  }

  std::unique_ptr<TxnLayer> layer1_;
  std::thread blocker_;
  std::vector<std::thread> fillers_;
  std::vector<Status> filler_status_;
  StatusOr<int64_t> blocker_result_ = Status::Internal("not run");
  Status release_status_ = Status::Ok();
  std::atomic<bool> worker_blocked_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST_F(SlaveBackpressureTest, FullQueueRejectsWithResourceExhausted) {
  // Regression: a saturated slave once blocked producers indefinitely in
  // Enqueue; the bounded wait must convert that into an overload rejection
  // the client's retry/deadline machinery can act on.
  StartStuckLayer(Status::Ok());
  layer1_->slave(0)->SetEnqueueWaitMs(20);

  hbase::Session s(&cluster_);
  auto late =
      layer1_->SubmitWrite(s, "late", std::nullopt, PutBody("late", "v"));
  EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted)
      << late.status();

  // Once the worker unwedges, the queued writes all commit: shedding the
  // overflow lost nothing that was already accepted.
  ReleaseWorker();
  blocker_.join();
  for (auto& t : fillers_) t.join();
  EXPECT_TRUE(blocker_result_.ok()) << blocker_result_.status();
  for (const Status& st : filler_status_) EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(ReadData("f0"), "v");
  EXPECT_EQ(ReadData("f" + std::to_string(SlaveNode::kQueueCapacity - 1)),
            "v");
}

TEST_F(SlaveBackpressureTest, SlaveCrashWakesWaitingProducers) {
  // A producer sitting out the bounded enqueue wait must be woken the
  // moment the slave dies — with kUnavailable (retryable, so the root loop
  // can route around the corpse), not kResourceExhausted.
  StartStuckLayer(Status::Unavailable("injected mid-body crash"));
  layer1_->slave(0)->SetEnqueueWaitMs(60000);  // only a wake ends the wait

  Status probe_status = Status::Internal("not run");
  std::thread probe([this, &probe_status] {
    hbase::Session s(&cluster_);
    probe_status =
        layer1_->SubmitWrite(s, "probe", std::nullopt, PutBody("p", "v"))
            .status();
  });
  // Give the probe time to park in the enqueue wait (the crash-wake path is
  // correct even if it loses this race: a failed slave rejects on entry).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto released_at = std::chrono::steady_clock::now();
  ReleaseWorker();  // body returns kUnavailable -> the slave crashes
  probe.join();
  const auto waited = std::chrono::steady_clock::now() - released_at;

  EXPECT_EQ(probe_status.code(), StatusCode::kUnavailable) << probe_status;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            10000)
      << "the producer must be woken by the crash, not time out";
  EXPECT_TRUE(layer1_->slave(0)->failed());

  blocker_.join();
  for (auto& t : fillers_) t.join();
  EXPECT_EQ(blocker_result_.status().code(), StatusCode::kUnavailable);
  // The queued writes were drained by the dead slave's worker as failures.
  for (const Status& st : filler_status_) {
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  }
}

TEST_F(TxnLayerTest, BodyFailurePropagates) {
  hbase::Session s(&cluster_);
  auto r = layer_->SubmitWrite(s, "bad", LockSpec{"Root", "rk"},
                               [](hbase::Session&) {
                                 return Status::InvalidArgument("boom");
                               });
  EXPECT_FALSE(r.ok());
  // The lock guard still released the lock.
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

}  // namespace
}  // namespace synergy::txn
