#include "txn/txn_layer.h"

#include <gtest/gtest.h>

#include "testing/fault_injector.h"

namespace synergy::txn {
namespace {

class TxnLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "data"}).ok());
    locks_ = std::make_unique<LockManager>(&cluster_);
    ASSERT_TRUE(locks_->CreateLockTable("Root").ok());
    layer_ = std::make_unique<TxnLayer>(&cluster_, locks_.get(), 2);
    layer_->SetFaultInjector(&faults_);
  }

  /// Arms a crash-before-execute on the next `count` writes (one per slave).
  void CrashNextWrites(int count) {
    faults_.Arm(fault::FaultPoint::kCrashBeforeExecute, /*skip_hits=*/0,
                /*max_fires=*/count);
  }

  WriteBody PutBody(const std::string& key, const std::string& value) {
    return [this, key, value](hbase::Session& s) {
      return cluster_.Put(s, "data", key, {{"v", value}});
    };
  }

  std::string ReadData(const std::string& key) {
    hbase::Session s(&cluster_);
    auto row = cluster_.Get(s, "data", key);
    if (!row.ok()) return "<missing>";
    return row->columns.at("v");
  }

  hbase::Cluster cluster_;
  fault::FaultInjector faults_{42};
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TxnLayer> layer_;
};

TEST_F(TxnLayerTest, WriteGoesThroughWalAndCommits) {
  hbase::Session s(&cluster_);
  auto id = layer_->SubmitWrite(s, "put k1 v1",
                                LockSpec{"Root", "rk"}, PutBody("k1", "v1"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(ReadData("k1"), "v1");
  // Lock released after commit.
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(TxnLayerTest, WritesWithoutLockSpecAlsoWork) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "put k2 v2", std::nullopt, PutBody("k2", "v2"))
          .ok());
  EXPECT_EQ(ReadData("k2"), "v2");
}

TEST_F(TxnLayerTest, RoundRobinAcrossSlaves) {
  hbase::Session s(&cluster_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(layer_
                    ->SubmitWrite(s, "w" + std::to_string(i), std::nullopt,
                                  PutBody("k" + std::to_string(i), "v"))
                    .ok());
  }
  EXPECT_GE(layer_->slave(0)->wal()->size() +
                layer_->slave(1)->wal()->size(),
            4u);
  EXPECT_GT(layer_->slave(0)->wal()->size(), 0u);
  EXPECT_GT(layer_->slave(1)->wal()->size(), 0u);
}

TEST_F(TxnLayerTest, CrashLeavesLockHeldUntilRecovery) {
  hbase::Session s(&cluster_);
  CrashNextWrites(1);
  // The slave that takes this write crashes holding the lock.
  auto result = layer_->SubmitWrite(s, "put kc vc", LockSpec{"Root", "rk"},
                                    PutBody("kc", "vc"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);  // read-committed preserved during failure (§VIII-C)
  EXPECT_EQ(ReadData("kc"), "<missing>");

  // Master failover: replay the WAL suffix, then release the lock the
  // entry recorded.
  ASSERT_TRUE(layer_
                  ->DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string& payload) {
                        EXPECT_EQ(payload, "put kc vc");
                        return cluster_.Put(rs, "data", "kc", {{"v", "vc"}});
                      })
                  .ok());
  EXPECT_EQ(ReadData("kc"), "vc");
  held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(TxnLayerTest, RecoveredLayerAcceptsNewWrites) {
  hbase::Session s(&cluster_);
  CrashNextWrites(2);
  (void)layer_->SubmitWrite(s, "w", std::nullopt, PutBody("k", "v"));
  (void)layer_->SubmitWrite(s, "w2", std::nullopt, PutBody("k2", "v2"));
  ASSERT_TRUE(layer_
                  ->DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string&) {
                        return cluster_.Put(rs, "data", "replayed",
                                            {{"v", "1"}});
                      })
                  .ok());
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "w3", std::nullopt, PutBody("k3", "v3")).ok());
  EXPECT_EQ(ReadData("k3"), "v3");
}

TEST_F(TxnLayerTest, AllSlavesDownIsUnavailable) {
  hbase::Session s(&cluster_);
  CrashNextWrites(2);
  (void)layer_->SubmitWrite(s, "a", std::nullopt, PutBody("a", "1"));
  (void)layer_->SubmitWrite(s, "b", std::nullopt, PutBody("b", "1"));
  auto r = layer_->SubmitWrite(s, "c", std::nullopt, PutBody("c", "1"));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(TxnLayerTest, WalRecordsCommitState) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(
      layer_->SubmitWrite(s, "ok-write", std::nullopt, PutBody("k", "v")).ok());
  size_t committed = 0, total = 0;
  for (int i = 0; i < layer_->num_slaves(); ++i) {
    for (const WalEntry& e : layer_->slave(i)->wal()->AllEntries()) {
      ++total;
      if (e.committed) ++committed;
    }
  }
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(committed, 1u);
}

TEST_F(TxnLayerTest, BodyFailurePropagates) {
  hbase::Session s(&cluster_);
  auto r = layer_->SubmitWrite(s, "bad", LockSpec{"Root", "rk"},
                               [](hbase::Session&) {
                                 return Status::InvalidArgument("boom");
                               });
  EXPECT_FALSE(r.ok());
  // The lock guard still released the lock.
  auto held = locks_->IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

}  // namespace
}  // namespace synergy::txn
