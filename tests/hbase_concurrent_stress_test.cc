// Concurrency stress tests for the cluster primitives: the per-region latch
// must make Put/Get/Scan/CheckAndPut/Increment atomic under real threads.
//
// gtest fatal assertions are not thread-safe off the main thread, so worker
// threads only collect Status/values; all assertions happen after join.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hbase/cluster.h"

namespace synergy::hbase {
namespace {

class ConcurrentStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "T"}).ok());
  }

  Cluster cluster_;
};

TEST_F(ConcurrentStressTest, IncrementIsAtomicAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<Status> errors(kThreads, Status::Ok());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Session s(&cluster_);
      for (int i = 0; i < kPerThread; ++i) {
        StatusOr<int64_t> v = cluster_.Increment(s, "T", "counter", "n", 1);
        if (!v.ok()) {
          errors[static_cast<size_t>(t)] = v.status();
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const Status& e : errors) ASSERT_TRUE(e.ok()) << e.message();

  Session s(&cluster_);
  StatusOr<int64_t> final_value = cluster_.Increment(s, "T", "counter", "n", 0);
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(*final_value, kThreads * kPerThread);
}

TEST_F(ConcurrentStressTest, CheckAndPutElectsExactlyOneWinnerPerRound) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    const std::string row = "race" + std::to_string(round);
    {
      Session s(&cluster_);
      ASSERT_TRUE(cluster_.Put(s, "T", row, {{"v", "free"}}).ok());
    }
    std::atomic<int> winners{0};
    std::vector<Status> errors(kThreads, Status::Ok());
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Session s(&cluster_);
        StatusOr<bool> won = cluster_.CheckAndPut(
            s, "T", row, "v", std::string("free"), "t" + std::to_string(t));
        if (!won.ok()) {
          errors[static_cast<size_t>(t)] = won.status();
        } else if (*won) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const Status& e : errors) ASSERT_TRUE(e.ok()) << e.message();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST_F(ConcurrentStressTest, ScansNeverObserveTornRows) {
  // A writer rewrites rows with two always-equal columns; scanners must
  // never see a row where the columns disagree (the region latch makes the
  // multi-column Put atomic).
  constexpr int kRows = 20;
  constexpr int kWriterIters = 300;
  auto row_key = [](int r) { return "row" + std::to_string(100 + r); };
  {
    Session s(&cluster_);
    for (int r = 0; r < kRows; ++r) {
      ASSERT_TRUE(
          cluster_.Put(s, "T", row_key(r), {{"a", "0"}, {"b", "0"}}).ok());
    }
  }

  std::atomic<bool> stop{false};
  Status writer_error = Status::Ok();
  std::thread writer([&] {
    Session s(&cluster_);
    for (int i = 1; i <= kWriterIters; ++i) {
      const std::string v = std::to_string(i);
      for (int r = 0; r < kRows; ++r) {
        Status put = cluster_.Put(s, "T", row_key(r), {{"a", v}, {"b", v}});
        if (!put.ok()) {
          writer_error = put;
          return;
        }
      }
    }
  });

  constexpr int kScanners = 3;
  std::vector<Status> scan_errors(kScanners, Status::Ok());
  std::vector<int> torn(kScanners, 0);
  std::vector<std::thread> scanners;
  for (int t = 0; t < kScanners; ++t) {
    scanners.emplace_back([&, t] {
      Session s(&cluster_);
      while (!stop.load()) {
        StatusOr<Scanner> scan = cluster_.OpenScanner(s, "T", "row", "rox");
        if (!scan.ok()) {
          scan_errors[static_cast<size_t>(t)] = scan.status();
          return;
        }
        RowResult row;
        while (scan->Next(&row)) {
          const auto a = row.columns.find("a");
          const auto b = row.columns.find("b");
          if (a == row.columns.end() || b == row.columns.end() ||
              a->second != b->second) {
            ++torn[static_cast<size_t>(t)];
          }
        }
        if (!scan->status().ok()) {
          scan_errors[static_cast<size_t>(t)] = scan->status();
          return;
        }
      }
    });
  }

  writer.join();
  stop.store(true);
  for (auto& w : scanners) w.join();

  ASSERT_TRUE(writer_error.ok()) << writer_error.message();
  for (int t = 0; t < kScanners; ++t) {
    ASSERT_TRUE(scan_errors[static_cast<size_t>(t)].ok())
        << scan_errors[static_cast<size_t>(t)].message();
    EXPECT_EQ(torn[static_cast<size_t>(t)], 0) << "scanner " << t;
  }
}

TEST_F(ConcurrentStressTest, ConcurrentPutsToDistinctRowsAllLand) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  std::vector<Status> errors(kThreads, Status::Ok());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Session s(&cluster_);
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "w" + std::to_string(t) + "_" + std::to_string(i);
        Status put = cluster_.Put(s, "T", key, {{"v", key}});
        if (!put.ok()) {
          errors[static_cast<size_t>(t)] = put;
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const Status& e : errors) ASSERT_TRUE(e.ok()) << e.message();

  Session s(&cluster_);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string key = "w" + std::to_string(t) + "_" + std::to_string(i);
      StatusOr<RowResult> row = cluster_.Get(s, "T", key);
      ASSERT_TRUE(row.ok()) << key;
      EXPECT_EQ(row->columns.at("v"), key);
    }
  }
}

}  // namespace
}  // namespace synergy::hbase
