// Token-bucket retry budget and circuit breaker in isolation, then wired
// into the session retry loop: budget exhaustion stops retry storms,
// overload rejections are never retried, breaker trips fail fast without
// touching the cluster and recover through a half-open probe.
#include "hbase/retry_policy.h"

#include <gtest/gtest.h>

#include "hbase/admission.h"
#include "hbase/cluster.h"
#include "testing/fault_injector.h"

namespace synergy::hbase {
namespace {

TEST(RetryBudgetTest, SpendsToEmptyAndRefillsOnSuccess) {
  RetryPolicy policy;
  policy.retry_budget_max = 2.0;
  policy.retry_budget_refill = 0.5;
  RetryBudget budget(policy);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend()) << "bucket empty";
  budget.OnSuccess();
  EXPECT_FALSE(budget.TrySpend()) << "0.5 tokens still below the 1.0 cost";
  budget.OnSuccess();
  EXPECT_TRUE(budget.TrySpend());
  // Refills cap at the configured max.
  for (int i = 0; i < 100; ++i) budget.OnSuccess();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveOverloadsAndRecovers) {
  RetryPolicy policy;
  policy.breaker_trip_overloads = 2;
  policy.breaker_cooldown_us = 1000.0;
  CircuitBreaker breaker(policy);

  EXPECT_TRUE(breaker.Admit(0.0).ok());
  breaker.OnOverload(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed)
      << "one overload is below the trip threshold";
  breaker.OnOverload(10.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  // Open: fail fast during the cooldown, without consulting the cluster.
  const Status fast = breaker.Admit(500.0);
  EXPECT_EQ(fast.code(), StatusCode::kResourceExhausted) << fast;
  EXPECT_EQ(breaker.fast_failures(), 1);

  // Cooldown elapsed: one probe is let through (half-open).
  EXPECT_TRUE(breaker.Admit(1500.0).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_overloads(), 0);
}

TEST(CircuitBreakerTest, FailedProbeReopensImmediately) {
  RetryPolicy policy;
  policy.breaker_trip_overloads = 1;
  policy.breaker_cooldown_us = 1000.0;
  CircuitBreaker breaker(policy);
  breaker.OnOverload(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.Admit(1500.0).ok());  // half-open probe
  breaker.OnOverload(1500.0);               // probe hit overload again
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  // The new cooldown anchors at the re-open, not the original trip.
  EXPECT_EQ(breaker.Admit(2000.0).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(breaker.Admit(2600.0).ok());
}

class SessionProtectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "t"}).ok());
    Session s(&cluster_);
    ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
  }

  Cluster cluster_;
  fault::FaultInjector faults_{42};
};

TEST_F(SessionProtectionTest, EmptyBudgetSurfacesTheErrorInsteadOfRetrying) {
  fault::FaultRule rule;
  rule.point = fault::FaultPoint::kRpcTimeout;
  rule.probability = 1.0;  // persistent outage: every attempt times out
  faults_.AddRule(rule);
  cluster_.SetFaultInjector(&faults_);

  Session s(&cluster_);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.deadline_us = 1e9;  // neither attempts nor deadline stop the loop
  policy.retry_budget_max = 3.0;
  policy.retry_budget_refill = 0.0;
  s.SetRetryPolicy(policy);

  const Status status = cluster_.Get(s, "t", "r").status();
  // The budget is what ends the storm, so the caller sees the real error,
  // not a deadline artifact.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_EQ(s.retries(), 3u);
  EXPECT_EQ(s.deadline_exceeded(), 0u);
}

TEST_F(SessionProtectionTest, SuccessRefillsTheBudget) {
  cluster_.SetFaultInjector(&faults_);
  Session s(&cluster_);
  RetryPolicy policy;
  policy.retry_budget_max = 1.0;
  policy.retry_budget_refill = 1.0;
  s.SetRetryPolicy(policy);
  ASSERT_NE(s.retry_budget(), nullptr);

  // Two separate transient blips, a clean op between them: each blip costs
  // one token, each success earns it back, so both ops succeed.
  faults_.Arm(fault::FaultPoint::kRpcTimeout, 0, 1);
  EXPECT_TRUE(cluster_.Get(s, "t", "r").ok());
  faults_.Arm(fault::FaultPoint::kRpcTimeout, 0, 1);
  EXPECT_TRUE(cluster_.Get(s, "t", "r").ok());
  EXPECT_EQ(s.retries(), 2u);
}

TEST_F(SessionProtectionTest, OverloadTripsBreakerAndFailsFast) {
  AdmissionConfig admission;
  admission.enabled = true;
  admission.max_inflight_per_server = 1;
  admission.max_queue_depth = 1;
  cluster_.ConfigureAdmission(admission);
  StatusOr<int> server = cluster_.RegionServerOf("t");
  ASSERT_TRUE(server.ok());
  // A standing stampede keeps the queue full; every arrival is shed. (The
  // per-shed phantom drain is overwhelmed by the surplus.)
  cluster_.admission()->InjectBurst(*server, 1000);

  Session s(&cluster_);
  RetryPolicy policy;
  policy.breaker_trip_overloads = 2;
  policy.breaker_cooldown_us = 1e12;  // stays open for the whole test
  s.SetRetryPolicy(policy);
  ASSERT_NE(s.circuit_breaker(), nullptr);

  EXPECT_EQ(cluster_.Get(s, "t", "r").status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(cluster_.Get(s, "t", "r").status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(s.circuit_breaker()->state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(s.retries(), 0u) << "overload rejections are never retried";

  const int64_t sheds_before =
      cluster_.admission()->stats().shed_queue_full +
      cluster_.admission()->stats().shed_deadline;
  EXPECT_EQ(cluster_.Get(s, "t", "r").status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(cluster_.admission()->stats().shed_queue_full +
                cluster_.admission()->stats().shed_deadline,
            sheds_before)
      << "an open breaker must fail fast without reaching the server";
  EXPECT_EQ(s.circuit_breaker()->fast_failures(), 1);
  EXPECT_EQ(s.overload_rejections(), 3u);
}

TEST_F(SessionProtectionTest, BreakerRecoversThroughHalfOpenProbe) {
  AdmissionConfig admission;
  admission.enabled = true;
  admission.max_inflight_per_server = 1;
  admission.max_queue_depth = 1;
  cluster_.ConfigureAdmission(admission);
  StatusOr<int> server = cluster_.RegionServerOf("t");
  ASSERT_TRUE(server.ok());
  // Two phantoms: the first Get sheds (queue full) and drains one; the
  // half-open probe then only queues behind the last phantom and succeeds.
  cluster_.admission()->InjectBurst(*server, 2);

  Session s(&cluster_);
  RetryPolicy policy;
  policy.breaker_trip_overloads = 1;
  policy.breaker_cooldown_us = 5000.0;
  s.SetRetryPolicy(policy);

  ASSERT_EQ(cluster_.Get(s, "t", "r").status().code(),
            StatusCode::kResourceExhausted);
  ASSERT_EQ(s.circuit_breaker()->state(), CircuitBreaker::State::kOpen);
  // Wait out the cooldown in virtual time; the next op is the probe.
  s.meter().Charge(10000.0);
  EXPECT_TRUE(cluster_.Get(s, "t", "r").ok());
  EXPECT_EQ(s.circuit_breaker()->state(), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace synergy::hbase
