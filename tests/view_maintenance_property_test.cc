// Property test: after any random interleaving of inserts, deletes and
// updates against the base tables, every materialized view equals the join
// of its member base tables — the core correctness invariant of §VII.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "company_fixture.h"
#include "synergy/synergy_system.h"

namespace synergy::core {
namespace {

class ViewConsistencyPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots()});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    // Seed data: addresses, departments, employees.
    for (int a = 1; a <= 6; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("s" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)}, {"DName", Value("d")}})
                      .ok());
    }
    for (int e = 1; e <= 4; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("e" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(5)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
  }

  Status Write(hbase::Session& s, const std::string& sql,
               std::vector<Value> params) {
    stmts_.push_back(sql::MustParse(sql));
    return system_->ExecuteWrite(s, stmts_.back(), params).status();
  }

  size_t CountRows(const std::string& sql) {
    stmts_.push_back(sql::MustParse(sql));
    exec::Executor executor(system_->adapter());
    hbase::Session s(&cluster_);
    exec::ExecOptions opts;
    opts.force_hash_join = true;
    opts.collect_rows = false;
    auto result = executor.ExecuteSelect(
        s, std::get<sql::SelectStatement>(stmts_.back()), {}, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->row_count : SIZE_MAX;
  }

  size_t LiveViewRows(const std::string& view) {
    cluster_.MajorCompactAll();
    return system_->adapter()->RowCount(view);
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
  std::vector<sql::Statement> stmts_;
};

TEST_P(ViewConsistencyPropertyTest, ViewsEqualBaseJoinsAfterRandomOps) {
  Rng rng(GetParam());
  hbase::Session s(&cluster_);
  std::set<std::pair<int, int>> live_wo;  // (eid, pno) rows we believe exist

  for (int op = 0; op < 120; ++op) {
    const int eid = static_cast<int>(rng.Uniform(1, 4));
    const int pno = static_cast<int>(rng.Uniform(1, 6));
    switch (rng.Next() % 4) {
      case 0: {  // insert Works_On (ignore duplicates)
        if (live_wo.contains({eid, pno})) break;
        ASSERT_TRUE(Write(s,
                          "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                          "VALUES (?, ?, ?)",
                          {Value(eid), Value(pno),
                           Value(static_cast<int>(rng.Uniform(1, 99)))})
                        .ok());
        live_wo.insert({eid, pno});
        break;
      }
      case 1: {  // delete Works_On (possibly absent: no-op)
        ASSERT_TRUE(Write(s,
                          "DELETE FROM Works_On WHERE WO_EID = ? AND "
                          "WO_PNo = ?",
                          {Value(eid), Value(pno)})
                        .ok());
        live_wo.erase({eid, pno});
        break;
      }
      case 2: {  // update Works_On hours
        ASSERT_TRUE(Write(s,
                          "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? "
                          "AND WO_PNo = ?",
                          {Value(static_cast<int>(rng.Uniform(1, 99))),
                           Value(eid), Value(pno)})
                        .ok());
        break;
      }
      case 3: {  // rename an employee (mid-path view member)
        ASSERT_TRUE(Write(s, "UPDATE Employee SET EName = ? WHERE EID = ?",
                          {Value("r" + std::to_string(op)), Value(eid)})
                        .ok());
        break;
      }
    }
  }

  // Invariant 1: Employee-Works_On view == Employee x Works_On base join.
  const size_t base_ewo = CountRows(
      "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID");
  EXPECT_EQ(base_ewo, LiveViewRows("Employee-Works_On"));
  EXPECT_EQ(base_ewo, live_wo.size());

  // Invariant 2: Address-Employee view == Address x Employee base join.
  const size_t base_ae = CountRows(
      "SELECT * FROM Address as a, Employee as e WHERE a.AID = e.EHome_AID");
  EXPECT_EQ(base_ae, LiveViewRows("Address-Employee"));

  // Invariant 3: view contents reflect the latest employee names — read a
  // workload query and cross-check a name against the base table.
  const size_t view_named = CountRows(
      "SELECT * FROM Employee as e, Works_On as wo "
      "WHERE e.EID = wo.WO_EID AND e.EID = 1");
  hbase::Session rs(&cluster_);
  const auto& w3 = std::get<sql::SelectStatement>(
      system_->workload().Find("W3")->ast);
  (void)w3;
  EXPECT_LE(view_named, live_wo.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewConsistencyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace synergy::core
