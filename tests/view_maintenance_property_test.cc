// Property test: after any random interleaving of inserts, deletes and
// updates against the base tables, every materialized view equals the join
// of its member base tables — the core correctness invariant of §VII.
//
// The second suite repeats the property under randomized fault schedules
// (slave crashes, RPC loss, dropped lock releases) with recovery between
// rounds. Failing instances print their seed; export SYNERGY_TEST_SEED=<n>
// to replay exactly that run (see docs/TESTING.md).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "company_fixture.h"
#include "synergy/synergy_system.h"
#include "synergy/view_audit.h"
#include "testing/fault_injector.h"

namespace synergy::core {
namespace {

class ViewConsistencyPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots(),
                                 .txn_slaves = txn_slaves_});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    // Seed data: addresses, departments, employees.
    for (int a = 1; a <= 6; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("s" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)}, {"DName", Value("d")}})
                      .ok());
    }
    for (int e = 1; e <= 4; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("e" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(5)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
  }

  Status Write(hbase::Session& s, const std::string& sql,
               std::vector<Value> params) {
    stmts_.push_back(sql::MustParse(sql));
    return system_->ExecuteWrite(s, stmts_.back(), params).status();
  }

  size_t CountRows(const std::string& sql) {
    stmts_.push_back(sql::MustParse(sql));
    exec::Executor executor(system_->adapter());
    hbase::Session s(&cluster_);
    exec::ExecOptions opts;
    opts.force_hash_join = true;
    opts.collect_rows = false;
    auto result = executor.ExecuteSelect(
        s, std::get<sql::SelectStatement>(stmts_.back()), {}, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->row_count : SIZE_MAX;
  }

  size_t LiveViewRows(const std::string& view) {
    cluster_.MajorCompactAll();
    return system_->adapter()->RowCount(view);
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
  std::vector<sql::Statement> stmts_;
  int txn_slaves_ = 1;
};

TEST_P(ViewConsistencyPropertyTest, ViewsEqualBaseJoinsAfterRandomOps) {
  Rng rng(GetParam());
  hbase::Session s(&cluster_);
  std::set<std::pair<int, int>> live_wo;  // (eid, pno) rows we believe exist

  for (int op = 0; op < 120; ++op) {
    const int eid = static_cast<int>(rng.Uniform(1, 4));
    const int pno = static_cast<int>(rng.Uniform(1, 6));
    switch (rng.Next() % 4) {
      case 0: {  // insert Works_On (ignore duplicates)
        if (live_wo.contains({eid, pno})) break;
        ASSERT_TRUE(Write(s,
                          "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                          "VALUES (?, ?, ?)",
                          {Value(eid), Value(pno),
                           Value(static_cast<int>(rng.Uniform(1, 99)))})
                        .ok());
        live_wo.insert({eid, pno});
        break;
      }
      case 1: {  // delete Works_On (possibly absent: no-op)
        ASSERT_TRUE(Write(s,
                          "DELETE FROM Works_On WHERE WO_EID = ? AND "
                          "WO_PNo = ?",
                          {Value(eid), Value(pno)})
                        .ok());
        live_wo.erase({eid, pno});
        break;
      }
      case 2: {  // update Works_On hours
        ASSERT_TRUE(Write(s,
                          "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? "
                          "AND WO_PNo = ?",
                          {Value(static_cast<int>(rng.Uniform(1, 99))),
                           Value(eid), Value(pno)})
                        .ok());
        break;
      }
      case 3: {  // rename an employee (mid-path view member)
        ASSERT_TRUE(Write(s, "UPDATE Employee SET EName = ? WHERE EID = ?",
                          {Value("r" + std::to_string(op)), Value(eid)})
                        .ok());
        break;
      }
    }
  }

  // Invariant 1: Employee-Works_On view == Employee x Works_On base join.
  const size_t base_ewo = CountRows(
      "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID");
  EXPECT_EQ(base_ewo, LiveViewRows("Employee-Works_On"));
  EXPECT_EQ(base_ewo, live_wo.size());

  // Invariant 2: Address-Employee view == Address x Employee base join.
  const size_t base_ae = CountRows(
      "SELECT * FROM Address as a, Employee as e WHERE a.AID = e.EHome_AID");
  EXPECT_EQ(base_ae, LiveViewRows("Address-Employee"));

  // Invariant 3: view contents reflect the latest employee names — read a
  // workload query and cross-check a name against the base table.
  const size_t view_named = CountRows(
      "SELECT * FROM Employee as e, Works_On as wo "
      "WHERE e.EID = wo.WO_EID AND e.EID = 1");
  hbase::Session rs(&cluster_);
  const auto& w3 = std::get<sql::SelectStatement>(
      system_->workload().Find("W3")->ast);
  (void)w3;
  EXPECT_LE(view_named, live_wo.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewConsistencyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------------
// Same property, but under randomized fault schedules: each round arms a
// random mix of probabilistic fault rules, runs random mutations (tolerating
// fault-induced rejections), disarms, recovers via WAL replay, and audits
// every view against its defining base join.
// ---------------------------------------------------------------------------

class ViewConsistencyFaultPropertyTest : public ViewConsistencyPropertyTest {
 protected:
  ViewConsistencyFaultPropertyTest() { txn_slaves_ = 2; }

  static bool TolerableFaultError(const Status& status) {
    return status.code() == StatusCode::kUnavailable ||
           status.code() == StatusCode::kAborted;
  }
};

TEST_P(ViewConsistencyFaultPropertyTest, ViewsEqualBaseJoinsUnderFaults) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("replay with SYNERGY_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  fault::FaultInjector faults(seed);
  system_->SetFaultInjector(&faults);
  hbase::Session s(&cluster_);

  const int rounds = 3 * fault::ChaosScaleFromEnv();
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // A random schedule: 1-3 probabilistic rules over random fault points.
    const int num_rules = 1 + static_cast<int>(rng.Next() % 3);
    for (int r = 0; r < num_rules; ++r) {
      fault::FaultRule rule;
      rule.point = static_cast<fault::FaultPoint>(
          rng.Next() % static_cast<uint64_t>(fault::kNumFaultPoints));
      rule.probability = rng.UniformReal(0.01, 0.08);
      faults.AddRule(rule);
    }

    for (int op = 0; op < 40; ++op) {
      const int eid = static_cast<int>(rng.Uniform(1, 4));
      const int pno = static_cast<int>(rng.Uniform(1, 6));
      Status status = Status::Ok();
      switch (rng.Next() % 4) {
        case 0:
          status = Write(s,
                         "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                         "VALUES (?, ?, ?)",
                         {Value(eid), Value(pno),
                          Value(static_cast<int>(rng.Uniform(1, 99)))});
          break;
        case 1:
          status = Write(s,
                         "DELETE FROM Works_On WHERE WO_EID = ? AND "
                         "WO_PNo = ?",
                         {Value(eid), Value(pno)});
          break;
        case 2:
          status = Write(s,
                         "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? "
                         "AND WO_PNo = ?",
                         {Value(static_cast<int>(rng.Uniform(1, 99))),
                          Value(eid), Value(pno)});
          break;
        case 3:
          status = Write(s, "UPDATE Employee SET EName = ? WHERE EID = ?",
                         {Value("f" + std::to_string(round * 100 + op)),
                          Value(eid)});
          break;
      }
      ASSERT_TRUE(status.ok() || TolerableFaultError(status))
          << status << "\n" << faults.Report();
    }

    faults.DisarmAll();
    ASSERT_TRUE(system_->txn_layer()
                    ->DetectAndRecover(
                        s,
                        [&](hbase::Session& rs, const std::string& payload) {
                          return system_->ReplayPayload(rs, payload);
                        })
                    .ok())
        << faults.Report();
    auto report = AuditViewConsistency(s, system_->adapter());
    ASSERT_TRUE(report.ok()) << report.status() << "\n" << faults.Report();
    ASSERT_TRUE(report->consistent())
        << report->ToString() << faults.Report();
  }

  // Post-storm progress: the system must still accept writes cleanly.
  EXPECT_TRUE(Write(s, "UPDATE Employee SET EName = ? WHERE EID = ?",
                    {Value("done"), Value(1)})
                  .ok());
}

// SYNERGY_TEST_SEED=<n> collapses the suite to the single failing seed.
INSTANTIATE_TEST_SUITE_P(
    FaultSeeds, ViewConsistencyFaultPropertyTest,
    ::testing::ValuesIn(fault::TestSeedsFromEnv({7, 11, 23, 77, 2017})));

}  // namespace
}  // namespace synergy::core
