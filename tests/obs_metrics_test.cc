// Metrics registry unit tests: striped counter/histogram merge semantics,
// snapshot determinism and rendering, reset behavior, and a multi-writer
// stress case that the TSan CI job runs to prove the hot path race-clean.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sim/cost_model.h"

namespace synergy::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, MergesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncsPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(2.0);
  EXPECT_EQ(g.Value(), 2.0);
}

TEST(HistogramTest, MergedSummaryTracksPercentiles) {
  MetricsRegistry r;
  Histogram* h = r.GetHistogram("test_latency_us");
  for (int i = 1; i <= 1000; ++i) h->Observe(static_cast<double>(i));
  const RegistrySnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSummary& s = snap.histograms[0].summary;
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  // Log-bucketed percentiles: generous bounds, not exact ranks.
  EXPECT_GT(s.p50, 300.0);
  EXPECT_LT(s.p50, 700.0);
  EXPECT_GT(s.p99, s.p50);
  EXPECT_NEAR(s.sum, 1000.0 * 1001.0 / 2.0, 1.0);
}

TEST(HistogramTest, MergesAcrossThreads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.Observe(100.0 + t);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.Merged().count(), static_cast<size_t>(kThreads) *
                                    kObsPerThread);
}

TEST(RegistryTest, HandlesAreStable) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("x_total", "first registration wins");
  Counter* b = r.GetCounter("x_total", "ignored");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(r.Snapshot().CounterValue("x_total"), 3u);
}

TEST(RegistryTest, SnapshotIsNameOrderedAndDeterministic) {
  MetricsRegistry r;
  r.GetCounter("zebra_total")->Inc(1);
  r.GetCounter("alpha_total")->Inc(2);
  r.GetCounter("mid_total")->Inc(3);
  r.GetGauge("g2")->Set(2.0);
  r.GetGauge("g1")->Set(1.0);
  const RegistrySnapshot s1 = r.Snapshot();
  ASSERT_EQ(s1.counters.size(), 3u);
  EXPECT_EQ(s1.counters[0].name, "alpha_total");
  EXPECT_EQ(s1.counters[1].name, "mid_total");
  EXPECT_EQ(s1.counters[2].name, "zebra_total");
  ASSERT_EQ(s1.gauges.size(), 2u);
  EXPECT_EQ(s1.gauges[0].name, "g1");
  // Same state -> byte-identical renderings.
  const RegistrySnapshot s2 = r.Snapshot();
  EXPECT_EQ(s1.ToPrometheusText(), s2.ToPrometheusText());
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
}

TEST(RegistryTest, RenderingsContainFamilies) {
  MetricsRegistry r;
  r.GetCounter("hbase_rpcs_total", "RPCs")->Inc(7);
  r.GetGauge("hbase_live_region_servers", "live servers")->Set(3.0);
  r.GetHistogram("exec_statement_virtual_us", "per stmt")->Observe(42.0);
  const RegistrySnapshot snap = r.Snapshot();

  const std::string prom = snap.ToPrometheusText();
  EXPECT_NE(prom.find("hbase_rpcs_total 7"), std::string::npos);
  EXPECT_NE(prom.find("hbase_live_region_servers"), std::string::npos);
  EXPECT_NE(prom.find("exec_statement_virtual_us_count"), std::string::npos);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"hbase_rpcs_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  EXPECT_TRUE(snap.HasCounter("hbase_rpcs_total"));
  EXPECT_FALSE(snap.HasCounter("absent_total"));
  EXPECT_EQ(snap.CounterValue("absent_total"), 0u);
}

TEST(RegistryTest, ResetAllZeroesTalliesButKeepsGauges) {
  MetricsRegistry r;
  r.GetCounter("c_total")->Inc(5);
  r.GetHistogram("h_us")->Observe(10.0);
  r.GetGauge("g")->Set(4.0);
  r.ResetAll();
  const RegistrySnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.CounterValue("c_total"), 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].summary.count, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 4.0);
}

// TSan target: concurrent writers on every metric kind while a reader
// takes snapshots. Asserts only the final totals; the point is the
// interleaving itself.
TEST(RegistryTest, MultiWriterStressIsRaceClean) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("stress_total");
  Gauge* g = r.GetGauge("stress_gauge");
  Histogram* h = r.GetHistogram("stress_us");
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c->Inc();
        h->Observe(static_cast<double>(i % 97));
        g->Set(static_cast<double>(t));
        if (i % 256 == 0) {
          // Late registration races against Get* from other threads.
          r.GetCounter("stress_side_" + std::to_string(t) + "_total")->Inc();
        }
      }
    });
  }
  std::thread reader([&r] {
    for (int i = 0; i < 50; ++i) {
      const RegistrySnapshot snap = r.Snapshot();
      (void)snap.ToJson();
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();
  const RegistrySnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.CounterValue("stress_total"),
            static_cast<uint64_t>(kThreads) * kOps);
  ASSERT_FALSE(snap.histograms.empty());
  EXPECT_EQ(snap.histograms[0].summary.count,
            static_cast<size_t>(kThreads) * kOps);
}

TEST(TraceTest, SpansNestAndSumToMeterTotal) {
  sim::CostMeter meter;
  TraceCollector trace(&meter);
  const int root = trace.OpenSpan("stmt");
  meter.Charge(100.0);
  const int child = trace.OpenSpan("scan");
  meter.Charge(40.0);
  trace.Note(child, "table", "Employee");
  trace.CloseSpan(child);
  meter.Charge(10.0);
  trace.NoteCurrent("dirty_restarts", "0");
  trace.CloseSpan(root);

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& r = trace.spans()[0];
  const TraceSpan& ch = trace.spans()[1];
  EXPECT_EQ(r.parent, -1);
  EXPECT_EQ(ch.parent, root);
  EXPECT_EQ(ch.depth, 1);
  EXPECT_DOUBLE_EQ(r.duration_us(), 150.0);
  EXPECT_DOUBLE_EQ(ch.duration_us(), 40.0);
  EXPECT_DOUBLE_EQ(trace.RootUs(), 150.0);
  ASSERT_EQ(ch.notes.size(), 1u);
  EXPECT_EQ(ch.notes[0].first, "table");

  const std::string text = trace.Render();
  EXPECT_NE(text.find("stmt"), std::string::npos);
  EXPECT_NE(text.find("scan"), std::string::npos);

  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(TraceTest, AddLeafRecordsPreMeasuredChildren) {
  sim::CostMeter meter;
  TraceCollector trace(&meter);
  const int root = trace.OpenSpan("analyze");
  trace.AddLeaf("node: scan", 12.5);
  trace.CloseSpan(root);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.spans()[1].duration_us(), 12.5);
  EXPECT_EQ(trace.spans()[1].parent, root);
}

TEST(TraceTest, NullCollectorScopedSpanIsNoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.Note("k", "v");
  span.Close();  // must not crash
}

}  // namespace
}  // namespace synergy::obs
