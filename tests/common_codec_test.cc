#include "common/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace synergy::codec {
namespace {

std::string Enc(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

TEST(CodecTest, IntRoundTrip) {
  for (const int64_t x : {int64_t{0}, int64_t{1}, int64_t{-1},
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()}) {
    std::string enc = Enc(Value(x));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kInt);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec->as_int(), x);
    EXPECT_TRUE(view.empty());
  }
}

TEST(CodecTest, DoubleRoundTrip) {
  for (const double x : {0.0, 1.5, -1.5, 1e300, -1e300, 0.001}) {
    std::string enc = Enc(Value(x));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kDouble);
    ASSERT_TRUE(dec.ok());
    EXPECT_DOUBLE_EQ(dec->as_double(), x);
  }
}

TEST(CodecTest, StringRoundTripWithEmbeddedNul) {
  const std::string s("a\0b", 3);
  std::string enc = Enc(Value(s));
  std::string_view view(enc);
  auto dec = DecodeValue(&view, DataType::kString);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->as_string(), s);
}

TEST(CodecTest, NullRoundTrip) {
  std::string enc = Enc(Value());
  std::string_view view(enc);
  auto dec = DecodeValue(&view, DataType::kInt);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->is_null());
}

TEST(CodecTest, CompositeKeyRoundTrip) {
  std::vector<Value> vals = {Value(42), Value("user"), Value(2.5), Value()};
  std::string key = EncodeKey(vals);
  auto dec = DecodeKey(key, {DataType::kInt, DataType::kString,
                             DataType::kDouble, DataType::kString});
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec->size(), 4u);
  EXPECT_EQ((*dec)[0].as_int(), 42);
  EXPECT_EQ((*dec)[1].as_string(), "user");
  EXPECT_DOUBLE_EQ((*dec)[2].as_double(), 2.5);
  EXPECT_TRUE((*dec)[3].is_null());
}

TEST(CodecTest, DecodeRejectsTrailingGarbage) {
  std::string key = EncodeKey({Value(1)}) + "x";
  auto dec = DecodeKey(key, {DataType::kInt});
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, PrefixSuccessor) {
  EXPECT_EQ(PrefixSuccessor("abc"), "abd");
  EXPECT_EQ(PrefixSuccessor(std::string("a\xff", 2)), "b");
  EXPECT_EQ(PrefixSuccessor(std::string("\xff", 1)), "");
}

// Property: byte-order of encoded keys equals value order.
class CodecOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecOrderPropertyTest, IntOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    const int64_t b = static_cast<int64_t>(rng.Next());
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, DoubleOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double a = rng.UniformReal(-1e6, 1e6);
    const double b = rng.UniformReal(-1e6, 1e6);
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, StringOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.AlphaString(rng.Next() % 12);
    std::string b = rng.AlphaString(rng.Next() % 12);
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, CompositeOrderPreserved) {
  Rng rng(GetParam());
  std::vector<std::pair<std::vector<Value>, std::string>> keys;
  for (int i = 0; i < 100; ++i) {
    std::vector<Value> tuple = {Value(rng.Uniform(0, 50)),
                                Value(rng.AlphaString(3)),
                                Value(rng.Uniform(-10, 10))};
    keys.emplace_back(tuple, EncodeKey(tuple));
  }
  auto tuple_less = [](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      EXPECT_EQ(tuple_less(keys[i].first, keys[j].first),
                keys[i].second < keys[j].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecOrderPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace synergy::codec
