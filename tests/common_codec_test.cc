#include "common/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace synergy::codec {
namespace {

std::string Enc(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

TEST(CodecTest, IntRoundTrip) {
  for (const int64_t x : {int64_t{0}, int64_t{1}, int64_t{-1},
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()}) {
    std::string enc = Enc(Value(x));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kInt);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec->as_int(), x);
    EXPECT_TRUE(view.empty());
  }
}

TEST(CodecTest, DoubleRoundTrip) {
  for (const double x : {0.0, 1.5, -1.5, 1e300, -1e300, 0.001}) {
    std::string enc = Enc(Value(x));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kDouble);
    ASSERT_TRUE(dec.ok());
    EXPECT_DOUBLE_EQ(dec->as_double(), x);
  }
}

TEST(CodecTest, NanEncodesCanonicallyAndSortsLast) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // All NaN payloads encode identically (they compare equal) and sort after
  // every non-NaN double, matching Value::Compare's total order.
  EXPECT_EQ(Enc(Value(nan)), Enc(Value(-nan)));
  EXPECT_GT(Enc(Value(nan)), Enc(Value(std::numeric_limits<double>::max())));
  EXPECT_GT(Enc(Value(nan)),
            Enc(Value(std::numeric_limits<double>::infinity())));
  std::string enc = Enc(Value(nan));
  std::string_view view(enc);
  auto dec = DecodeValue(&view, DataType::kDouble);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(std::isnan(dec->as_double()));
}

TEST(CodecTest, StringRoundTripWithEmbeddedNul) {
  const std::string s("a\0b", 3);
  std::string enc = Enc(Value(s));
  std::string_view view(enc);
  auto dec = DecodeValue(&view, DataType::kString);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->as_string(), s);
}

TEST(CodecTest, NullRoundTrip) {
  std::string enc = Enc(Value());
  std::string_view view(enc);
  auto dec = DecodeValue(&view, DataType::kInt);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->is_null());
}

TEST(CodecTest, CompositeKeyRoundTrip) {
  std::vector<Value> vals = {Value(42), Value("user"), Value(2.5), Value()};
  std::string key = EncodeKey(vals);
  auto dec = DecodeKey(key, {DataType::kInt, DataType::kString,
                             DataType::kDouble, DataType::kString});
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec->size(), 4u);
  EXPECT_EQ((*dec)[0].as_int(), 42);
  EXPECT_EQ((*dec)[1].as_string(), "user");
  EXPECT_DOUBLE_EQ((*dec)[2].as_double(), 2.5);
  EXPECT_TRUE((*dec)[3].is_null());
}

TEST(CodecTest, DecodeRejectsTrailingGarbage) {
  std::string key = EncodeKey({Value(1)}) + "x";
  auto dec = DecodeKey(key, {DataType::kInt});
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, PrefixSuccessor) {
  EXPECT_EQ(PrefixSuccessor("abc"), "abd");
  EXPECT_EQ(PrefixSuccessor(std::string("a\xff", 2)), "b");
  EXPECT_EQ(PrefixSuccessor(std::string("\xff", 1)), "");
}

TEST(CodecTest, PrefixSuccessorEdgeCases) {
  // Empty prefix: no successor (unbounded scan).
  EXPECT_EQ(PrefixSuccessor(""), "");
  // All-0xFF prefixes of any length collapse to unbounded.
  EXPECT_EQ(PrefixSuccessor(std::string("\xff\xff\xff", 3)), "");
  // A 0xFE byte increments without carrying.
  EXPECT_EQ(PrefixSuccessor(std::string("a\xfe", 2)), std::string("a\xff", 2));
  // Embedded NUL bytes are ordinary bytes.
  EXPECT_EQ(PrefixSuccessor(std::string("\x00", 1)), std::string("\x01", 1));
  // The successor is strictly greater than every string with the prefix.
  const std::string p("k\xff\xff", 3);
  const std::string succ = PrefixSuccessor(p);
  EXPECT_EQ(succ, "l");
  EXPECT_GT(succ, p + std::string(8, '\xff'));
}

TEST(CodecTest, StringRoundTripWith0xFFBytes) {
  for (const std::string& s :
       {std::string("\xff", 1), std::string("a\xff\xff" "b", 4),
        std::string("\x00\xff", 2), std::string("\xff\x00", 2),
        std::string("\x00\x01", 2), std::string(3, '\0')}) {
    std::string enc = Enc(Value(s));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kString);
    ASSERT_TRUE(dec.ok()) << HexDump(s);
    EXPECT_EQ(dec->as_string(), s) << HexDump(s);
    EXPECT_TRUE(view.empty());
  }
}

TEST(CodecTest, EncodeKeyIntoMatchesEncodeKeyAndReusesBuffer) {
  const std::vector<Value> a = {Value(7), Value("x\0y"), Value(-2.25)};
  const std::vector<Value> b = {Value()};
  std::string scratch = "stale contents";
  EncodeKeyInto(a, &scratch);
  EXPECT_EQ(scratch, EncodeKey(a));
  EncodeKeyInto(b, &scratch);  // reuse must fully replace prior bytes
  EXPECT_EQ(scratch, EncodeKey(b));
}

// Property: byte-order of encoded keys equals value order.
class CodecOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecOrderPropertyTest, IntOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    const int64_t b = static_cast<int64_t>(rng.Next());
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, DoubleOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double a = rng.UniformReal(-1e6, 1e6);
    const double b = rng.UniformReal(-1e6, 1e6);
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, StringOrderPreserved) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.AlphaString(rng.Next() % 12);
    std::string b = rng.AlphaString(rng.Next() % 12);
    const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST_P(CodecOrderPropertyTest, CompositeOrderPreserved) {
  Rng rng(GetParam());
  std::vector<std::pair<std::vector<Value>, std::string>> keys;
  for (int i = 0; i < 100; ++i) {
    std::vector<Value> tuple = {Value(rng.Uniform(0, 50)),
                                Value(rng.AlphaString(3)),
                                Value(rng.Uniform(-10, 10))};
    keys.emplace_back(tuple, EncodeKey(tuple));
  }
  auto tuple_less = [](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      EXPECT_EQ(tuple_less(keys[i].first, keys[j].first),
                keys[i].second < keys[j].second);
    }
  }
}

TEST_P(CodecOrderPropertyTest, IntOrderMatchesValueCompareAtExtremes) {
  Rng rng(GetParam());
  std::vector<int64_t> vals = {0, 1, -1, std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max()};
  for (int i = 0; i < 50; ++i) vals.push_back(static_cast<int64_t>(rng.Next()));
  for (const int64_t a : vals) {
    for (const int64_t b : vals) {
      EXPECT_EQ(Value(a).Compare(Value(b)) < 0, Enc(Value(a)) < Enc(Value(b)))
          << a << " vs " << b;
    }
  }
}

TEST_P(CodecOrderPropertyTest, DoubleOrderMatchesValueCompareAtExtremes) {
  Rng rng(GetParam());
  std::vector<double> vals = {0.0, -0.0, 1.5, -1.5, 1e-300, -1e-300,
                              std::numeric_limits<double>::max(),
                              std::numeric_limits<double>::lowest(),
                              std::numeric_limits<double>::denorm_min()};
  for (int i = 0; i < 50; ++i) vals.push_back(rng.UniformReal(-1e12, 1e12));
  for (const double a : vals) {
    for (const double b : vals) {
      // Compare() is the ground truth; 0.0 and -0.0 must encode identically.
      const int c = Value(a).Compare(Value(b));
      const std::string ea = Enc(Value(a)), eb = Enc(Value(b));
      EXPECT_EQ(c < 0, ea < eb) << a << " vs " << b;
      EXPECT_EQ(c == 0, ea == eb) << a << " vs " << b;
    }
  }
}

TEST_P(CodecOrderPropertyTest, BinaryStringRoundTripAndOrderPreserved) {
  Rng rng(GetParam());
  std::vector<std::string> strs;
  for (int i = 0; i < 60; ++i) {
    // Arbitrary bytes, biased toward the codec's special values 0x00/0xFF.
    std::string s;
    const size_t len = rng.Next() % 10;
    for (size_t k = 0; k < len; ++k) {
      const uint64_t r = rng.Next() % 4;
      s.push_back(r == 0 ? '\0' : (r == 1 ? '\xff'
                                          : static_cast<char>(rng.Next())));
    }
    strs.push_back(std::move(s));
  }
  for (const std::string& s : strs) {
    std::string enc = Enc(Value(s));
    std::string_view view(enc);
    auto dec = DecodeValue(&view, DataType::kString);
    ASSERT_TRUE(dec.ok()) << HexDump(s);
    EXPECT_EQ(dec->as_string(), s) << HexDump(s);
  }
  for (const std::string& a : strs) {
    for (const std::string& b : strs) {
      EXPECT_EQ(a < b, Enc(Value(a)) < Enc(Value(b)))
          << HexDump(a) << " vs " << HexDump(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecOrderPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace synergy::codec
