#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace synergy::txn {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    locks_ = std::make_unique<LockManager>(&cluster_);
    ASSERT_TRUE(locks_->CreateLockTable("Customer").ok());
  }
  hbase::Cluster cluster_;
  std::unique_ptr<LockManager> locks_;
};

TEST_F(LockManagerTest, AcquireReleaseCycle) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->CreateLockEntry(s, "Customer", "k1").ok());
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k1").ok());
  auto held = locks_->IsHeld(s, "Customer", "k1");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
  ASSERT_TRUE(locks_->Release(s, "Customer", "k1").ok());
  held = locks_->IsHeld(s, "Customer", "k1");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(LockManagerTest, AcquireWithoutEntryCreatesIt) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "fresh").ok());
  auto held = locks_->IsHeld(s, "Customer", "fresh");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
}

TEST_F(LockManagerTest, SecondAcquireFailsWhileHeld) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k").ok());
  auto attempt = locks_->TryAcquire(s, "Customer", "k");
  ASSERT_TRUE(attempt.ok());
  EXPECT_FALSE(*attempt);
}

TEST_F(LockManagerTest, AcquireTimesOutEventually) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k").ok());
  Status st = locks_->Acquire(s, "Customer", "k", /*max_attempts=*/3);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
}

TEST_F(LockManagerTest, ReleaseWithoutHoldFails) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->CreateLockEntry(s, "Customer", "k").ok());
  EXPECT_EQ(locks_->Release(s, "Customer", "k").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LockManagerTest, DifferentKeysAreIndependent) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "a").ok());
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "b").ok());
}

TEST_F(LockManagerTest, LockGuardReleasesOnDestruction) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k").ok());
  {
    LockGuard guard(locks_.get(), &s, "Customer", "k");
  }
  auto held = locks_->IsHeld(s, "Customer", "k");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

TEST_F(LockManagerTest, LockGuardLeakKeepsLockHeld) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k").ok());
  {
    LockGuard guard(locks_.get(), &s, "Customer", "k");
    guard.Leak();
  }
  auto held = locks_->IsHeld(s, "Customer", "k");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
}

TEST_F(LockManagerTest, MutualExclusionUnderContention) {
  // Many threads increment a shared counter under the same root lock;
  // the lock must serialize the read-modify-write cycles.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 25;
  std::atomic<int> unsafe_counter{0};
  int protected_counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      hbase::Session s(&cluster_);
      for (int i = 0; i < kIncrements; ++i) {
        ASSERT_TRUE(locks_->Acquire(s, "Customer", "shared", 100000).ok());
        const int seen = protected_counter;
        std::this_thread::yield();  // widen the race window
        protected_counter = seen + 1;
        unsafe_counter.fetch_add(1);
        ASSERT_TRUE(locks_->Release(s, "Customer", "shared").ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(protected_counter, kThreads * kIncrements);
  EXPECT_EQ(unsafe_counter.load(), kThreads * kIncrements);
}

TEST_F(LockManagerTest, VirtualCostChargedPerLockOp) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(locks_->CreateLockEntry(s, "Customer", "k").ok());
  const double before = s.meter().micros();
  ASSERT_TRUE(locks_->Acquire(s, "Customer", "k").ok());
  ASSERT_TRUE(locks_->Release(s, "Customer", "k").ok());
  const double per_pair = s.meter().micros() - before;
  // One acquire + one release = two CheckAndPut RPCs.
  EXPECT_NEAR(per_pair, 2 * cluster_.cost_model().lock_rpc_us,
              cluster_.cost_model().lock_rpc_us);
}

}  // namespace
}  // namespace synergy::txn
