#include "common/value.h"

#include <gtest/gtest.h>

namespace synergy {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntFromPlainInt) {
  Value v(7);
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.as_int(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.5);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 3.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v("hello");
  EXPECT_EQ(v.type(), DataType::kString);
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(ValueTest, NullSortsLowest) {
  EXPECT_LT(Value(), Value(int64_t{-100}));
  EXPECT_LT(Value(), Value("a"));
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_GT(Value(5), Value(-5));
  EXPECT_EQ(Value(3), Value(3));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_GT(Value(2.5), Value(2));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_LT(Value("ab"), Value("abc"));
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(4).numeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.25).numeric(), 4.25);
}

TEST(ValueTest, ByteSizes) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(1).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 8u);  // 4 chars + 4 overhead
}

TEST(ValueTest, MixedTypeTotalOrderIsStable) {
  // Number < string by type tag, consistently in both directions.
  EXPECT_LT(Value(5), Value("5"));
  EXPECT_GT(Value("5"), Value(5));
}

}  // namespace
}  // namespace synergy
