#include "common/value.h"

#include <gtest/gtest.h>

#include <limits>

namespace synergy {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntFromPlainInt) {
  Value v(7);
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.as_int(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.5);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 3.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v("hello");
  EXPECT_EQ(v.type(), DataType::kString);
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(ValueTest, NullSortsLowest) {
  EXPECT_LT(Value(), Value(int64_t{-100}));
  EXPECT_LT(Value(), Value("a"));
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_GT(Value(5), Value(-5));
  EXPECT_EQ(Value(3), Value(3));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_GT(Value(2.5), Value(2));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_LT(Value("ab"), Value("abc"));
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(4).numeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.25).numeric(), 4.25);
}

TEST(ValueTest, ByteSizes) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(1).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 8u);  // 4 chars + 4 overhead
}

TEST(ValueTest, MixedTypeTotalOrderIsStable) {
  // Number < string by type tag, consistently in both directions.
  EXPECT_LT(Value(5), Value("5"));
  EXPECT_GT(Value("5"), Value(5));
}

TEST(ValueTest, IntDoubleComparisonIsExactBeyond2To53) {
  const int64_t big = (int64_t{1} << 53) + 1;  // not representable as double
  const double biggd = 9007199254740992.0;     // 2^53
  // Casting either side to double would collapse these to "equal".
  EXPECT_GT(Value(big), Value(biggd));
  EXPECT_LT(Value(biggd), Value(big));
  EXPECT_EQ(Value(int64_t{1} << 53).Compare(Value(biggd)), 0);
  // Extremes: doubles beyond the int64 range order correctly.
  EXPECT_LT(Value(std::numeric_limits<int64_t>::max()), Value(1e19));
  EXPECT_GT(Value(std::numeric_limits<int64_t>::min()), Value(-1e19));
  EXPECT_LT(Value(7), Value(7.5));
  EXPECT_GT(Value(8), Value(7.5));
  EXPECT_GT(Value(-7), Value(-7.5));
}

TEST(ValueTest, NanHasATotalOrder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN compares equal only to NaN and sorts after every non-NaN numeric —
  // a total order, as the sort comparators and hash-table equality require.
  EXPECT_EQ(Value(nan).Compare(Value(nan)), 0);
  EXPECT_EQ(Value(nan).Compare(Value(-nan)), 0);
  EXPECT_GT(Value(nan), Value(5.0));
  EXPECT_GT(Value(nan), Value(std::numeric_limits<double>::infinity()));
  EXPECT_GT(Value(nan), Value(5));
  EXPECT_LT(Value(5.0), Value(nan));
  EXPECT_EQ(Value(nan).Hash(), Value(-nan).Hash());
}

TEST(ValueTest, HashConsistentWithCompareEquality) {
  // Values that compare equal must hash equal (hash-join/GROUP BY keys).
  EXPECT_EQ(Value(5).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
  EXPECT_EQ(Value(0).Hash(), Value(-0.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
  EXPECT_EQ(Value().Hash(), Value().Hash());
}

TEST(ValueTest, HashSpreadsDistinctValues) {
  // Not a guarantee, but these common neighbors must not all collide.
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_NE(Value().Hash(), Value(0).Hash());
  EXPECT_NE(Value(1.5).Hash(), Value(2.5).Hash());
  // Adjacent large ints share a double rounding bucket but must not share a
  // hash (they hash by integer bits when not double-representable)...
  const int64_t big = (int64_t{1} << 60) + 2;
  EXPECT_NE(Value(big).Hash(), Value(big + 1).Hash());
  // ...while a double-representable int still hashes like its double.
  EXPECT_EQ(Value(int64_t{1} << 60).Hash(),
            Value(static_cast<double>(int64_t{1} << 60)).Hash());
}

}  // namespace
}  // namespace synergy
