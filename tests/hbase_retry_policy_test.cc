// RetryPolicy / RetryController in isolation (deterministic jitter, deadline
// ordering, non-retryable pass-through, backoff growth + cap) and the
// session-level retry loop end to end against injected RPC faults.
#include "hbase/retry_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "hbase/cluster.h"
#include "testing/fault_injector.h"

namespace synergy::hbase {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy p;
  p.jitter_fraction = 0.0;
  return p;
}

TEST(RetryPolicyTest, TaxonomyOnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("lost rpc")));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
  EXPECT_FALSE(IsRetryable(Status::NotFound("row")));
  EXPECT_FALSE(IsRetryable(Status::Aborted("conflict")));
  EXPECT_FALSE(IsRetryable(Status::FailedPrecondition("bad")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("budget")));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy = NoJitterPolicy();
  policy.initial_backoff_us = 2000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 5000;
  policy.max_attempts = 10;
  RetryController retry(policy, /*start_virtual_us=*/0.0);

  std::vector<double> backoffs;
  for (int i = 0; i < 4; ++i) {
    auto d = retry.OnFailure(Status::Unavailable("x"), /*now_us=*/0.0);
    ASSERT_TRUE(d.retry);
    backoffs.push_back(d.backoff_us);
  }
  EXPECT_EQ(backoffs, (std::vector<double>{2000, 4000, 5000, 5000}));
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryPolicy policy;  // jitter_fraction = 0.25
  auto sequence = [](const RetryPolicy& p) {
    RetryController retry(p, 0.0);
    std::vector<double> backoffs;
    for (int i = 0; i < 5; ++i) {
      auto d = retry.OnFailure(Status::Unavailable("x"), 0.0);
      if (!d.retry) break;
      backoffs.push_back(d.backoff_us);
    }
    return backoffs;
  };

  const std::vector<double> a = sequence(policy);
  const std::vector<double> b = sequence(policy);
  EXPECT_EQ(a, b) << "same seed must replay the same jittered backoffs";

  RetryPolicy other = policy;
  other.jitter_seed = policy.jitter_seed + 1;
  EXPECT_NE(a, sequence(other)) << "different seed, different jitter stream";

  // Jitter stays inside the ±fraction envelope of the un-jittered ladder.
  double expected = policy.initial_backoff_us;
  for (const double backoff : a) {
    EXPECT_GE(backoff, expected * (1.0 - policy.jitter_fraction));
    EXPECT_LE(backoff, expected * (1.0 + policy.jitter_fraction));
    expected = std::min(expected * policy.backoff_multiplier,
                        policy.max_backoff_us);
  }
}

TEST(RetryPolicyTest, DeadlineExpiresBeforeAttemptsRunOut) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 8;
  policy.initial_backoff_us = 6000;
  policy.deadline_us = 10000;
  RetryController retry(policy, /*start_virtual_us=*/0.0);

  // First failure: 6000 fits in the 10000 budget.
  auto d1 = retry.OnFailure(Status::Unavailable("server down"), 0.0);
  ASSERT_TRUE(d1.retry);
  // Second failure at t=6000: the next 12000 backoff blows the 4000 left,
  // so the deadline wins even though 6 attempts remain.
  auto d2 = retry.OnFailure(Status::Unavailable("server down"), 6000.0);
  EXPECT_FALSE(d2.retry);
  EXPECT_EQ(d2.final_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(d2.final_status.message().find("2 attempt"), std::string::npos)
      << d2.final_status;
  EXPECT_NE(d2.final_status.message().find("server down"), std::string::npos)
      << "last error must be preserved for forensics: " << d2.final_status;
}

TEST(RetryPolicyTest, ElapsedDeadlineFailsImmediately) {
  RetryPolicy policy = NoJitterPolicy();
  policy.deadline_us = 1000;
  RetryController retry(policy, /*start_virtual_us=*/500.0);
  EXPECT_GT(retry.DeadlineRemaining(500.0), 0.0);
  auto d = retry.OnFailure(Status::Unavailable("x"), /*now_us=*/2000.0);
  EXPECT_FALSE(d.retry);
  EXPECT_EQ(d.final_status.code(), StatusCode::kDeadlineExceeded);
}

TEST(RetryPolicyTest, AttemptsExhaustedSurfaceTheLastError) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 3;
  policy.deadline_us = 1e9;  // deadline never the limiting factor here
  RetryController retry(policy, 0.0);

  EXPECT_TRUE(retry.OnFailure(Status::Unavailable("a"), 0.0).retry);
  EXPECT_TRUE(retry.OnFailure(Status::Unavailable("b"), 0.0).retry);
  auto d = retry.OnFailure(Status::Unavailable("final straw"), 0.0);
  EXPECT_FALSE(d.retry);
  // Exhaustion is not a deadline problem: the caller sees the real error.
  EXPECT_EQ(d.final_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(retry.attempts(), 3);
  EXPECT_EQ(retry.retries_granted(), 2);
}

TEST(RetryPolicyTest, NonRetryablePassesThroughUntouched) {
  RetryController retry(RetryPolicy{}, 0.0);
  const Status original = Status::NotFound("no such row");
  auto d = retry.OnFailure(original, 0.0);
  EXPECT_FALSE(d.retry);
  EXPECT_EQ(d.final_status.code(), StatusCode::kNotFound);
  EXPECT_EQ(d.final_status.message(), original.message());
  EXPECT_EQ(retry.retries_granted(), 0);
}

class SessionRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "t"}).ok());
    Session s(&cluster_);
    ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
    cluster_.SetFaultInjector(&faults_);
  }

  Cluster cluster_;
  fault::FaultInjector faults_{42};
};

TEST_F(SessionRetryTest, TransientRpcTimeoutsAreAbsorbed) {
  faults_.Arm(fault::FaultPoint::kRpcTimeout, /*skip_hits=*/0,
              /*max_fires=*/2);
  Session s(&cluster_);
  s.SetRetryPolicy(RetryPolicy{});
  const double before_us = s.meter().micros();
  StatusOr<RowResult> got = cluster_.Get(s, "t", "r");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->columns.at("a"), "1");
  EXPECT_EQ(s.retries(), 2u);
  // Backoff was charged as virtual time, not hidden in a host sleep.
  EXPECT_GT(s.meter().micros() - before_us,
            2 * RetryPolicy{}.initial_backoff_us);
}

TEST_F(SessionRetryTest, WithoutPolicyTheFirstErrorSurfaces) {
  faults_.Arm(fault::FaultPoint::kRpcTimeout, 0, 1);
  Session s(&cluster_);
  const Status status = cluster_.Get(s, "t", "r").status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fault::IsInjectedFault(status)) << status;
  EXPECT_EQ(s.retries(), 0u);
}

TEST_F(SessionRetryTest, PersistentOutageHitsTheDeadline) {
  fault::FaultRule rule;
  rule.point = fault::FaultPoint::kRpcTimeout;
  rule.probability = 1.0;  // every attempt times out, forever
  faults_.AddRule(rule);

  Session s(&cluster_);
  RetryPolicy policy;
  policy.max_attempts = 1000;  // the deadline must be what stops us
  policy.deadline_us = 50000;
  s.SetRetryPolicy(policy);
  const Status status = cluster_.Get(s, "t", "r").status();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status;
  EXPECT_EQ(s.deadline_exceeded(), 1u);
  EXPECT_GT(s.retries(), 0u);
}

TEST_F(SessionRetryTest, NonRetryableErrorsSkipTheLoop) {
  Session s(&cluster_);
  s.SetRetryPolicy(RetryPolicy{});
  EXPECT_EQ(cluster_.Get(s, "t", "missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(s.retries(), 0u);
}

TEST_F(SessionRetryTest, SuppressionDisablesRetriesMidSession) {
  faults_.Arm(fault::FaultPoint::kRpcTimeout, 0, 1);
  Session s(&cluster_);
  s.SetRetryPolicy(RetryPolicy{});
  s.SuppressRetries(true);
  EXPECT_EQ(cluster_.Get(s, "t", "r").status().code(),
            StatusCode::kUnavailable);
  s.SuppressRetries(false);
  // The armed fault was consumed by the unretried attempt; clean now.
  EXPECT_TRUE(cluster_.Get(s, "t", "r").ok());
}

}  // namespace
}  // namespace synergy::hbase
