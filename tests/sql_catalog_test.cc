#include "sql/catalog.h"

#include <gtest/gtest.h>

namespace synergy::sql {
namespace {

RelationDef Customer() {
  return RelationDef{
      .name = "Customer",
      .columns = {{"c_id", DataType::kInt}, {"c_uname", DataType::kString}},
      .primary_key = {"c_id"},
      .foreign_keys = {}};
}

RelationDef Orders() {
  return RelationDef{
      .name = "Orders",
      .columns = {{"o_id", DataType::kInt}, {"o_c_id", DataType::kInt}},
      .primary_key = {"o_id"},
      .foreign_keys = {{{"o_c_id"}, "Customer"}}};
}

TEST(CatalogTest, AddAndFindRelation) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  const RelationDef* r = cat.FindRelation("Customer");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->HasColumn("c_uname"));
  EXPECT_FALSE(r->HasColumn("zzz"));
  EXPECT_EQ(*r->ColumnType("c_id"), DataType::kInt);
  EXPECT_TRUE(r->IsPrimaryKeyColumn("c_id"));
  EXPECT_FALSE(r->IsPrimaryKeyColumn("c_uname"));
}

TEST(CatalogTest, DuplicateRelationFails) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  EXPECT_EQ(cat.AddRelation(Customer()).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RelationWithoutPkFails) {
  Catalog cat;
  RelationDef bad{.name = "X", .columns = {{"a", DataType::kInt}}};
  EXPECT_FALSE(cat.AddRelation(bad).ok());
}

TEST(CatalogTest, PkMustBeAColumn) {
  Catalog cat;
  RelationDef bad{.name = "X",
                  .columns = {{"a", DataType::kInt}},
                  .primary_key = {"b"}};
  EXPECT_FALSE(cat.AddRelation(bad).ok());
}

TEST(CatalogTest, IndexCoversPkAutomatically) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  ASSERT_TRUE(cat.AddIndex({.name = "ix_c_uname",
                            .relation = "Customer",
                            .indexed_columns = {"c_uname"}})
                  .ok());
  const IndexDef* ix = cat.FindIndex("ix_c_uname");
  ASSERT_NE(ix, nullptr);
  EXPECT_EQ(ix->covered_columns.size(), 2u);  // c_uname + c_id
  auto for_rel = cat.IndexesFor("Customer");
  ASSERT_EQ(for_rel.size(), 1u);
  EXPECT_EQ(for_rel[0]->name, "ix_c_uname");
}

TEST(CatalogTest, IndexOnMissingRelationFails) {
  Catalog cat;
  EXPECT_FALSE(
      cat.AddIndex({.name = "ix", .relation = "Nope", .indexed_columns = {"a"}})
          .ok());
}

TEST(CatalogTest, IndexOnMissingColumnFails) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  EXPECT_FALSE(cat.AddIndex({.name = "ix",
                             .relation = "Customer",
                             .indexed_columns = {"zzz"}})
                   .ok());
}

TEST(CatalogTest, ForeignKeyLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  ASSERT_TRUE(cat.AddRelation(Orders()).ok());
  const ForeignKey* fk = cat.FindForeignKey("Orders", "Customer");
  ASSERT_NE(fk, nullptr);
  EXPECT_EQ(fk->columns[0], "o_c_id");
  EXPECT_EQ(cat.FindForeignKey("Customer", "Orders"), nullptr);
}

TEST(CatalogTest, ViewsAreRelationsWithMetadata) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  ASSERT_TRUE(cat.AddRelation(Orders()).ok());
  ViewDef view{.name = "Customer-Orders",
               .relations = {"Customer", "Orders"},
               .edges = {{}, {{"o_c_id"}, "Customer"}},
               .root = "Customer"};
  RelationDef storage{.name = "Customer-Orders",
                      .columns = {{"c_id", DataType::kInt},
                                  {"c_uname", DataType::kString},
                                  {"o_id", DataType::kInt},
                                  {"o_c_id", DataType::kInt}},
                      .primary_key = {"o_id"}};
  ASSERT_TRUE(cat.AddView(view, storage).ok());
  EXPECT_TRUE(cat.IsView("Customer-Orders"));
  EXPECT_FALSE(cat.IsView("Customer"));
  ASSERT_NE(cat.FindView("Customer-Orders"), nullptr);
  ASSERT_NE(cat.FindRelation("Customer-Orders"), nullptr);
  EXPECT_EQ(cat.Views().size(), 1u);
  EXPECT_EQ(cat.Relations().size(), 3u);
}

TEST(CatalogTest, PrimaryKeyTypes) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Customer()).ok());
  auto types = cat.FindRelation("Customer")->PrimaryKeyTypes();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], DataType::kInt);
}

}  // namespace
}  // namespace synergy::sql
