// Fault-accounting parity: every fault the injector reports as fired must
// be visible in the metrics registry, and vice versa. The nightly chaos job
// runs this to catch instrumentation drift — a fault point that fires
// without publishing (or a counter that double-counts) breaks the equality
// exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "company_fixture.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "synergy/synergy_system.h"
#include "testing/fault_injector.h"

namespace synergy::core {
namespace {

using fault::FaultPoint;

class ObsChaosParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults_ = std::make_unique<fault::FaultInjector>(
        fault::TestSeedFromEnv(/*default_seed=*/20260808));
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots()});
    system_->SetFaultInjector(faults_.get());
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    for (int a = 1; a <= 4; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("st")},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)}, {"DName", Value("dept")}})
                      .ok());
    }
    for (int e = 1; e <= 3; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("emp")},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(4)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
    // W2 reads through the Employee-Works_On view: it needs rows to scan,
    // or the dirty-read fault point is never reached.
    for (int e = 1; e <= 3; ++e) {
      for (int p = 1; p <= (e % 2) + 1; ++p) {
        ASSERT_TRUE(system_
                        ->Load(s, "Works_On",
                               {{"WO_EID", Value(e)},
                                {"WO_PNo", Value(p)},
                                {"Hours", Value(10 * e + p)}})
                        .ok());
      }
    }
  }

  uint64_t Counter(const std::string& name) {
    return cluster_.metrics().Snapshot().CounterValue(name);
  }

  void AddRule(FaultPoint point, double probability, int max_fires) {
    fault::FaultRule rule;
    rule.point = point;
    rule.probability = probability;
    rule.max_fires = max_fires;
    faults_->AddRule(rule);
  }

  hbase::Cluster cluster_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::unique_ptr<SynergySystem> system_;
};

TEST_F(ObsChaosParityTest, RpcFaultFiresMatchInjectedCounter) {
  // Probabilistic storm across the three RPC-level points the registry
  // rolls up into hbase_faults_injected_total.
  AddRule(FaultPoint::kRegionRpcFailure, 0.1, /*max_fires=*/20);
  AddRule(FaultPoint::kRpcTimeout, 0.05, /*max_fires=*/10);
  AddRule(FaultPoint::kRegionRpcAckLost, 0.1, /*max_fires=*/10);

  const sql::WorkloadStatement* w1 = system_->workload().Find("W1");
  ASSERT_NE(w1, nullptr);
  auto insert = sql::MustParse(
      "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)");
  hbase::Session s(&cluster_);
  for (int i = 0; i < 60; ++i) {
    // Statuses are irrelevant here: only the books have to balance.
    const std::vector<Value> read_params{Value(i % 3 + 1)};
    (void)system_->ExecuteRead(s, std::get<sql::SelectStatement>(w1->ast),
                               read_params);
    (void)system_->ExecuteWrite(
        s, insert, {Value(i % 3 + 1), Value(100 + i), Value(i)});
  }

  const int64_t injected = faults_->FireCount(FaultPoint::kRegionRpcFailure) +
                           faults_->FireCount(FaultPoint::kRpcTimeout) +
                           faults_->FireCount(FaultPoint::kRegionRpcAckLost);
  ASSERT_GT(injected, 0) << faults_->Report();
  EXPECT_EQ(Counter("hbase_faults_injected_total"),
            static_cast<uint64_t>(injected))
      << faults_->Report();
}

TEST_F(ObsChaosParityTest, WalFaultFiresMatchAppendFailureCounter) {
  AddRule(FaultPoint::kWalAppendFailure, 0.25, /*max_fires=*/8);

  auto insert = sql::MustParse(
      "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)");
  hbase::Session s(&cluster_);
  for (int i = 0; i < 40; ++i) {
    (void)system_->ExecuteWrite(
        s, insert, {Value(i % 3 + 1), Value(200 + i), Value(i)});
  }

  const int64_t injected = faults_->FireCount(FaultPoint::kWalAppendFailure);
  ASSERT_GT(injected, 0) << faults_->Report();
  EXPECT_EQ(Counter("txn_wal_append_failures_total"),
            static_cast<uint64_t>(injected))
      << faults_->Report();
}

TEST_F(ObsChaosParityTest, DirtyRestartFiresMatchExecutorCounter) {
  // One fire per statement: each aborts exactly one attempt, which the
  // executor restart loop retries and counts.
  const sql::WorkloadStatement* w2 = system_->workload().Find("W2");
  ASSERT_NE(w2, nullptr);
  hbase::Session s(&cluster_);
  for (int i = 0; i < 5; ++i) {
    faults_->Arm(FaultPoint::kDirtyReadRestart, /*skip_hits=*/0,
                 /*max_fires=*/1);
    const std::vector<Value> params{Value(i % 2 + 1)};
    auto r = system_->ExplainAnalyzeRead(
        s, std::get<sql::SelectStatement>(w2->ast), params);
    ASSERT_TRUE(r.ok()) << r.status();
    faults_->Disarm(FaultPoint::kDirtyReadRestart);
  }
  EXPECT_EQ(Counter("exec_dirty_restarts_total"),
            static_cast<uint64_t>(
                faults_->FireCount(FaultPoint::kDirtyReadRestart)));
  EXPECT_EQ(faults_->FireCount(FaultPoint::kDirtyReadRestart), 5);
}

}  // namespace
}  // namespace synergy::core
