// AdmissionController in isolation (budget, virtual queue, queue-full and
// deadline-aware shedding, burst phantoms, RAII slots) and wired into the
// Cluster RPC path (queue waits charged as virtual time, overload-burst
// fault point, kResourceExhausted surfaced to unprotected sessions).
#include "hbase/admission.h"

#include <gtest/gtest.h>

#include <utility>

#include "hbase/cluster.h"
#include "hbase/retry_policy.h"
#include "testing/fault_injector.h"

namespace synergy::hbase {
namespace {

AdmissionConfig SmallConfig() {
  AdmissionConfig config;
  config.enabled = true;
  config.max_inflight_per_server = 2;
  config.max_queue_depth = 3;
  config.est_service_us = 1000.0;
  config.burst_ops = 4;
  return config;
}

constexpr double kNoDeadline = 1e18;

TEST(AdmissionControllerTest, AdmitsUnderBudgetWithoutQueueing) {
  AdmissionController admission(/*num_servers=*/1, SmallConfig());
  const AdmissionDecision a = admission.Admit(0, kNoDeadline);
  const AdmissionDecision b = admission.Admit(0, kNoDeadline);
  EXPECT_TRUE(a.status.ok());
  EXPECT_TRUE(b.status.ok());
  EXPECT_EQ(a.queue_wait_us, 0.0);
  EXPECT_EQ(b.queue_wait_us, 0.0);
  EXPECT_EQ(admission.Occupancy(0), 2);
  EXPECT_EQ(admission.stats().admitted, 2);
  EXPECT_EQ(admission.stats().queued, 0);
}

TEST(AdmissionControllerTest, QueueWaitGrowsWithBacklogDepth) {
  AdmissionController admission(1, SmallConfig());
  admission.Admit(0, kNoDeadline);  // inflight 1
  admission.Admit(0, kNoDeadline);  // inflight 2 = budget full
  // Next two ops join the virtual queue at positions 1 and 2.
  const AdmissionDecision q1 = admission.Admit(0, kNoDeadline);
  const AdmissionDecision q2 = admission.Admit(0, kNoDeadline);
  ASSERT_TRUE(q1.status.ok());
  ASSERT_TRUE(q2.status.ok());
  EXPECT_EQ(q1.queue_wait_us, 1 * 1000.0);
  EXPECT_EQ(q2.queue_wait_us, 2 * 1000.0);
  EXPECT_EQ(admission.stats().queued, 2);
}

TEST(AdmissionControllerTest, QueueFullSheds) {
  AdmissionController admission(1, SmallConfig());
  for (int i = 0; i < 2 + 3; ++i) {  // fill budget + queue
    ASSERT_TRUE(admission.Admit(0, kNoDeadline).status.ok());
  }
  const AdmissionDecision shed = admission.Admit(0, kNoDeadline);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted) << shed.status;
  EXPECT_EQ(admission.stats().shed_queue_full, 1);
  // Releasing one slot reopens the queue.
  admission.Release(0);
  EXPECT_TRUE(admission.Admit(0, kNoDeadline).status.ok());
}

TEST(AdmissionControllerTest, DeadlineAwareShedRejectsHopelessOps) {
  AdmissionController admission(1, SmallConfig());
  admission.Admit(0, kNoDeadline);
  admission.Admit(0, kNoDeadline);
  // Estimated wait at queue position 1 is 1000us; an op with only 400us of
  // deadline left is rejected now instead of timing out in the queue.
  const AdmissionDecision shed = admission.Admit(0, /*deadline=*/400.0);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted) << shed.status;
  EXPECT_EQ(admission.stats().shed_deadline, 1);
  // The same op with budget to spare is queued, not shed.
  EXPECT_TRUE(admission.Admit(0, /*deadline=*/5000.0).status.ok());
}

TEST(AdmissionControllerTest, ServersAreIndependent) {
  AdmissionController admission(/*num_servers=*/2, SmallConfig());
  for (int i = 0; i < 5; ++i) admission.Admit(0, kNoDeadline);
  EXPECT_EQ(admission.Admit(0, kNoDeadline).status.code(),
            StatusCode::kResourceExhausted);
  const AdmissionDecision other = admission.Admit(1, kNoDeadline);
  EXPECT_TRUE(other.status.ok());
  EXPECT_EQ(other.queue_wait_us, 0.0);
}

TEST(AdmissionControllerTest, BurstPhantomsDrainOnePerRelease) {
  AdmissionController admission(1, SmallConfig());
  admission.InjectBurst(0, 2);
  EXPECT_EQ(admission.Occupancy(0), 2);
  EXPECT_EQ(admission.stats().burst_ops_injected, 2);
  // Budget is full of phantoms: a real op queues behind them.
  const AdmissionDecision q = admission.Admit(0, kNoDeadline);
  ASSERT_TRUE(q.status.ok());
  EXPECT_GT(q.queue_wait_us, 0.0);
  // Completing it drains one phantom along with the real slot.
  admission.Release(0);
  EXPECT_EQ(admission.Occupancy(0), 1);
  const AdmissionDecision direct = admission.Admit(0, kNoDeadline);
  ASSERT_TRUE(direct.status.ok());
  EXPECT_EQ(direct.queue_wait_us, 0.0);
}

TEST(AdmissionControllerTest, OversizedBurstDrainsViaShedsInsteadOfWedging) {
  // Regression: a burst wider than inflight+queue once wedged the server
  // forever — nothing could be admitted, so nothing ever Released a phantom.
  // Shed decisions must also drain the burst.
  AdmissionController admission(1, SmallConfig());
  admission.InjectBurst(0, 100);  // far beyond 2 + 3
  int sheds = 0;
  AdmissionDecision d = admission.Admit(0, kNoDeadline);
  while (!d.status.ok()) {
    ++sheds;
    ASSERT_EQ(d.status.code(), StatusCode::kResourceExhausted);
    ASSERT_LT(sheds, 200) << "burst never drained";
    d = admission.Admit(0, kNoDeadline);
  }
  EXPECT_GT(sheds, 0);
  EXPECT_LE(admission.Occupancy(0), 2 + 3 + 1);
}

TEST(AdmissionControllerTest, SlotReleasesOnDestructionAndMove) {
  AdmissionController admission(1, SmallConfig());
  ASSERT_TRUE(admission.Admit(0, kNoDeadline).status.ok());
  {
    AdmissionSlot slot(&admission, 0);
    EXPECT_EQ(admission.Occupancy(0), 1);
    AdmissionSlot moved(std::move(slot));
    EXPECT_EQ(admission.Occupancy(0), 1) << "move must not double-release";
  }
  EXPECT_EQ(admission.Occupancy(0), 0);
  AdmissionSlot empty;  // default slot owns nothing; destruction is a no-op
}

// ---- wired into the Cluster RPC path ----

class ClusterAdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "t"}).ok());
    Session s(&cluster_);
    ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
    StatusOr<int> server = cluster_.RegionServerOf("t");
    ASSERT_TRUE(server.ok());
    server_ = *server;
  }

  Cluster cluster_;
  int server_ = 0;
};

TEST_F(ClusterAdmissionTest, DisabledAdmissionIsAbsent) {
  cluster_.ConfigureAdmission(AdmissionConfig{});  // enabled = false
  EXPECT_EQ(cluster_.admission(), nullptr);
  Session s(&cluster_);
  EXPECT_TRUE(cluster_.Get(s, "t", "r").ok());
}

TEST_F(ClusterAdmissionTest, QueueWaitIsChargedAsVirtualTime) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight_per_server = 1;
  cluster_.ConfigureAdmission(config);
  ASSERT_NE(cluster_.admission(), nullptr);
  cluster_.admission()->InjectBurst(server_, 1);  // budget now full

  Session s(&cluster_);
  const double before_us = s.meter().micros();
  ASSERT_TRUE(cluster_.Get(s, "t", "r").ok());
  EXPECT_GE(s.meter().micros() - before_us, config.est_service_us)
      << "the modeled queue wait must land on the client's meter";
  EXPECT_EQ(cluster_.admission()->stats().queued, 1);
}

TEST_F(ClusterAdmissionTest, QueueFullShedSurfacesToUnprotectedSession) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight_per_server = 1;
  config.max_queue_depth = 2;
  cluster_.ConfigureAdmission(config);
  cluster_.admission()->InjectBurst(server_, 10);

  Session s(&cluster_);  // no retry policy: the rejection surfaces raw
  const Status status = cluster_.Get(s, "t", "r").status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
  EXPECT_GT(cluster_.admission()->stats().shed_queue_full, 0);
}

TEST_F(ClusterAdmissionTest, OverloadBurstFaultInjectsPhantoms) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight_per_server = 1;
  config.burst_ops = 3;
  cluster_.ConfigureAdmission(config);
  fault::FaultInjector faults(7);
  faults.Arm(fault::FaultPoint::kOverloadBurst, /*skip_hits=*/0,
             /*max_fires=*/1);
  cluster_.SetFaultInjector(&faults);

  Session s(&cluster_);
  // The burst lands before the triggering op's own admission decision, so
  // that op already queues behind the phantoms (and still completes).
  ASSERT_TRUE(cluster_.Get(s, "t", "r").ok());
  EXPECT_EQ(cluster_.admission()->stats().burst_ops_injected, 3);
  const double before_us = s.meter().micros();
  ASSERT_TRUE(cluster_.Get(s, "t", "r").ok());
  EXPECT_GE(s.meter().micros() - before_us, config.est_service_us);
}

TEST_F(ClusterAdmissionTest, DeadlineAwareShedUsesTheSessionOpDeadline) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight_per_server = 1;
  config.est_service_us = 100000.0;  // any queued op waits >= 100ms
  cluster_.ConfigureAdmission(config);
  cluster_.admission()->InjectBurst(server_, 1);

  Session s(&cluster_);
  RetryPolicy policy;
  policy.deadline_us = 20000;  // 20ms budget can never absorb a 100ms wait
  s.SetRetryPolicy(policy);
  const Status status = cluster_.Get(s, "t", "r").status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
  EXPECT_EQ(cluster_.admission()->stats().shed_deadline, 1);
  EXPECT_EQ(s.overload_rejections(), 1u);
  EXPECT_EQ(s.retries(), 0u) << "overload must not be retried";
}

}  // namespace
}  // namespace synergy::hbase
