// End-to-end executor tests over a small Customer/Orders/Order_line schema.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include "hbase/failover.h"
#include "sql/parser.h"
#include "testing/fault_injector.h"

namespace synergy::exec {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddRelation({.name = "Customer",
                                  .columns = {{"c_id", DataType::kInt},
                                              {"c_uname", DataType::kString},
                                              {"c_city", DataType::kString}},
                                  .primary_key = {"c_id"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddRelation({.name = "Orders",
                                  .columns = {{"o_id", DataType::kInt},
                                              {"o_c_id", DataType::kInt},
                                              {"o_total", DataType::kDouble}},
                                  .primary_key = {"o_id"},
                                  .foreign_keys = {{{"o_c_id"}, "Customer"}}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddRelation({.name = "Order_line",
                                  .columns = {{"ol_id", DataType::kInt},
                                              {"ol_o_id", DataType::kInt},
                                              {"ol_qty", DataType::kInt}},
                                  .primary_key = {"ol_id"},
                                  .foreign_keys = {{{"ol_o_id"}, "Orders"}}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddIndex({.name = "ix_c_uname",
                               .relation = "Customer",
                               .indexed_columns = {"c_uname"},
                               .covered_columns = {"c_uname", "c_id", "c_city"},
                               .unique = true})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddIndex({.name = "ix_o_c_id",
                               .relation = "Orders",
                               .indexed_columns = {"o_c_id"},
                               .covered_columns = {"o_c_id", "o_id", "o_total"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddIndex({.name = "ix_ol_o_id",
                               .relation = "Order_line",
                               .indexed_columns = {"ol_o_id"},
                               .covered_columns = {"ol_o_id", "ol_id", "ol_qty"}})
                    .ok());
    adapter_ = std::make_unique<TableAdapter>(&cluster_, &catalog_);
    for (const char* rel : {"Customer", "Orders", "Order_line"}) {
      ASSERT_TRUE(adapter_->CreateStorage(rel).ok());
    }
    executor_ = std::make_unique<Executor>(adapter_.get());
    Populate();
  }

  void Populate() {
    hbase::Session s(&cluster_);
    // 3 customers, 2 orders each, 2 lines per order.
    for (int c = 1; c <= 3; ++c) {
      ASSERT_TRUE(adapter_
                      ->Insert(s, "Customer",
                               {{"c_id", Value(c)},
                                {"c_uname", Value("user" + std::to_string(c))},
                                {"c_city", Value(c % 2 ? "NYC" : "SF")}})
                      .ok());
      for (int k = 0; k < 2; ++k) {
        const int o = c * 10 + k;
        ASSERT_TRUE(adapter_
                        ->Insert(s, "Orders",
                                 {{"o_id", Value(o)},
                                  {"o_c_id", Value(c)},
                                  {"o_total", Value(o * 1.5)}})
                        .ok());
        for (int j = 0; j < 2; ++j) {
          ASSERT_TRUE(adapter_
                          ->Insert(s, "Order_line",
                                   {{"ol_id", Value(o * 10 + j)},
                                    {"ol_o_id", Value(o)},
                                    {"ol_qty", Value(j + 1)}})
                          .ok());
        }
      }
    }
  }

  QueryResult Run(const std::string& sql, std::vector<Value> params = {},
                  ExecOptions options = {}) {
    stmts_.push_back(sql::MustParse(sql));
    const auto& sel = std::get<sql::SelectStatement>(stmts_.back());
    hbase::Session s(&cluster_);
    auto result = executor_->ExecuteSelect(s, sel, params, options);
    EXPECT_TRUE(result.ok()) << result.status() << " for " << sql;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::string ExplainSql(const std::string& sql, ExecOptions options = {}) {
    stmts_.push_back(sql::MustParse(sql));
    const auto& sel = std::get<sql::SelectStatement>(stmts_.back());
    auto e = executor_->Explain(sel, options);
    EXPECT_TRUE(e.ok()) << e.status();
    return e.ok() ? *e : "";
  }

  sql::Catalog catalog_;
  hbase::Cluster cluster_;
  std::unique_ptr<TableAdapter> adapter_;
  std::unique_ptr<Executor> executor_;
  std::vector<sql::Statement> stmts_;  // keep ASTs alive for the executor
};

TEST_F(ExecutorTest, FullScan) {
  auto r = Run("SELECT * FROM Customer");
  EXPECT_EQ(r.row_count, 3u);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.columns[0], "c_id");
}

TEST_F(ExecutorTest, PkGet) {
  EXPECT_NE(ExplainSql("SELECT * FROM Customer WHERE c_id = 2")
                .find("PK_GET"),
            std::string::npos);
  auto r = Run("SELECT * FROM Customer WHERE c_id = 2");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][1], Value("user2"));
}

TEST_F(ExecutorTest, PkGetWithParam) {
  auto r = Run("SELECT * FROM Customer WHERE c_id = ?", {Value(3)});
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][1], Value("user3"));
}

TEST_F(ExecutorTest, UniqueIndexLookup) {
  EXPECT_NE(ExplainSql("SELECT * FROM Customer WHERE c_uname = ?")
                .find("INDEX_SCAN(ix_c_uname)"),
            std::string::npos);
  auto r = Run("SELECT * FROM Customer WHERE c_uname = ?", {Value("user1")});
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][0], Value(1));
}

TEST_F(ExecutorTest, NonKeyFilterScans) {
  auto r = Run("SELECT * FROM Customer WHERE c_city = 'NYC'");
  EXPECT_EQ(r.row_count, 2u);  // customers 1 and 3
}

TEST_F(ExecutorTest, RangePredicate) {
  auto r = Run("SELECT * FROM Orders WHERE o_total > 30.0");
  for (const auto& row : r.rows) {
    EXPECT_GT(row[2].as_double(), 30.0);
  }
  EXPECT_EQ(r.row_count, 3u);  // orders 21,30,31 -> totals 31.5,45,46.5
}

TEST_F(ExecutorTest, TwoWayJoinIndexNestedLoop) {
  const std::string sql =
      "SELECT * FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id and c.c_uname = ?";
  EXPECT_NE(ExplainSql(sql).find("INDEX_NESTED_LOOP"), std::string::npos);
  auto r = Run(sql, {Value("user2")});
  EXPECT_EQ(r.row_count, 2u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0], Value(2));  // c_id
    EXPECT_EQ(row[4], Value(2));  // o_c_id
  }
}

TEST_F(ExecutorTest, TwoWayJoinHashJoin) {
  const std::string sql =
      "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id";
  ExecOptions opts;
  opts.force_hash_join = true;
  EXPECT_NE(ExplainSql(sql, opts).find("HASH_JOIN"), std::string::npos);
  auto r = Run(sql, {}, opts);
  EXPECT_EQ(r.row_count, 6u);  // 3 customers x 2 orders
}

TEST_F(ExecutorTest, HashJoinAndInlAgree) {
  const std::string sql =
      "SELECT * FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id and c.c_id = 1";
  ExecOptions hash;
  hash.force_hash_join = true;
  auto a = Run(sql, {}, hash);
  auto b = Run(sql);
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.row_count, 2u);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  const std::string sql =
      "SELECT * FROM Customer as c, Orders as o, Order_line as ol "
      "WHERE c.c_id = o.o_c_id and o.o_id = ol.ol_o_id and c.c_id = ?";
  auto r = Run(sql, {Value(1)});
  EXPECT_EQ(r.row_count, 4u);  // 2 orders x 2 lines
}

TEST_F(ExecutorTest, ThreeWayJoinFullHash) {
  ExecOptions opts;
  opts.force_hash_join = true;
  auto r = Run(
      "SELECT * FROM Customer as c, Orders as o, Order_line as ol "
      "WHERE c.c_id = o.o_c_id and o.o_id = ol.ol_o_id",
      {}, opts);
  EXPECT_EQ(r.row_count, 12u);
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  auto r = Run(
      "SELECT * FROM Order_line as a, Order_line as b "
      "WHERE a.ol_o_id = b.ol_o_id AND a.ol_id <> b.ol_id");
  EXPECT_EQ(r.row_count, 12u);  // per order: 2 lines -> 2 ordered pairs; 6 orders
}

TEST_F(ExecutorTest, NonEquiJoinPredicateAsResidual) {
  auto r = Run(
      "SELECT * FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id AND o.o_total < 20.0");
  for (const auto& row : r.rows) {
    EXPECT_LT(row[5].as_double(), 20.0);
  }
}

TEST_F(ExecutorTest, OrderByDescWithLimit) {
  auto r = Run("SELECT * FROM Orders ORDER BY o_total DESC LIMIT 2");
  ASSERT_EQ(r.row_count, 2u);
  EXPECT_EQ(r.rows[0][0], Value(31));
  EXPECT_EQ(r.rows[1][0], Value(30));
}

TEST_F(ExecutorTest, OrderByAscendingDefault) {
  auto r = Run("SELECT * FROM Orders ORDER BY o_id LIMIT 3");
  ASSERT_EQ(r.row_count, 3u);
  EXPECT_LT(r.rows[0][0].as_int(), r.rows[1][0].as_int());
}

TEST_F(ExecutorTest, LimitWithoutOrderStopsEarly) {
  auto r = Run("SELECT * FROM Order_line LIMIT 5");
  EXPECT_EQ(r.row_count, 5u);
}

TEST_F(ExecutorTest, ProjectionByName) {
  auto r = Run("SELECT c_uname FROM Customer WHERE c_id = 1");
  ASSERT_EQ(r.columns.size(), 1u);
  EXPECT_EQ(r.columns[0], "c_uname");
  EXPECT_EQ(r.rows[0][0], Value("user1"));
}

TEST_F(ExecutorTest, CountStar) {
  auto r = Run("SELECT COUNT(*) FROM Order_line");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][0], Value(12));
}

TEST_F(ExecutorTest, CountStarOnEmptyResult) {
  auto r = Run("SELECT COUNT(*) FROM Customer WHERE c_id = 999");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][0], Value(0));
}

TEST_F(ExecutorTest, GroupByWithSum) {
  auto r = Run(
      "SELECT ol_o_id, SUM(ol_qty) AS total FROM Order_line "
      "GROUP BY ol_o_id ORDER BY total DESC, ol_o_id LIMIT 3");
  ASSERT_EQ(r.row_count, 3u);
  // Every order has lines with qty 1+2 = 3.
  EXPECT_EQ(r.rows[0][1], Value(3.0));
}

TEST_F(ExecutorTest, GroupByJoin) {
  auto r = Run(
      "SELECT c.c_id, COUNT(o.o_id) AS n FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id GROUP BY c.c_id ORDER BY n DESC");
  EXPECT_EQ(r.row_count, 3u);
  EXPECT_EQ(r.rows[0][1], Value(2));
}

TEST_F(ExecutorTest, MinMaxAvg) {
  auto r = Run(
      "SELECT MIN(ol_qty) AS lo, MAX(ol_qty) AS hi, AVG(ol_qty) AS mid "
      "FROM Order_line");
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][0], Value(1));
  EXPECT_EQ(r.rows[0][1], Value(2));
  EXPECT_EQ(r.rows[0][2], Value(1.5));
}

TEST_F(ExecutorTest, CountOnlyModeSkipsRows) {
  ExecOptions opts;
  opts.collect_rows = false;
  auto r = Run("SELECT * FROM Order_line", {}, opts);
  EXPECT_EQ(r.row_count, 12u);
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, JoinChargesMoreVirtualTimeThanScan) {
  hbase::Session s1(&cluster_);
  hbase::Session s2(&cluster_);
  auto scan_stmt = sql::MustParse("SELECT * FROM Orders");
  auto join_stmt = sql::MustParse(
      "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id");
  ExecOptions opts;
  opts.force_hash_join = true;
  ASSERT_TRUE(executor_
                  ->ExecuteSelect(s1, std::get<sql::SelectStatement>(scan_stmt),
                                  {}, opts)
                  .ok());
  ASSERT_TRUE(executor_
                  ->ExecuteSelect(s2, std::get<sql::SelectStatement>(join_stmt),
                                  {}, opts)
                  .ok());
  EXPECT_GT(s2.meter().micros(), s1.meter().micros());
}

TEST_F(ExecutorTest, DirtyRowAbortsWithoutRetryBudget) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_->MarkRow(s, "Customer", {Value(2)}, true).ok());
  auto stmt = sql::MustParse("SELECT * FROM Customer");
  ExecOptions opts;
  opts.detect_dirty = true;
  opts.max_dirty_retries = 2;
  auto r = executor_->ExecuteSelect(
      s, std::get<sql::SelectStatement>(stmt), {}, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
}

TEST_F(ExecutorTest, DirtyRowRecoversAfterUnmark) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_->MarkRow(s, "Customer", {Value(2)}, true).ok());
  ASSERT_TRUE(adapter_->MarkRow(s, "Customer", {Value(2)}, false).ok());
  auto stmt = sql::MustParse("SELECT * FROM Customer");
  ExecOptions opts;
  opts.detect_dirty = true;
  auto r = executor_->ExecuteSelect(
      s, std::get<sql::SelectStatement>(stmt), {}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count, 3u);
}

TEST_F(ExecutorTest, DirtyRestartLoopStopsAtItsBoundWithAborted) {
  // A persistently dirty scan must drive the §VIII-C restart loop to its
  // configured bound and then surface kAborted — not spin forever, and not
  // morph into a retryable error class that would re-enter the loop above.
  fault::FaultInjector faults(7);
  fault::FaultRule rule;
  rule.point = fault::FaultPoint::kDirtyReadRestart;
  rule.probability = 1.0;  // every attempt aborts on its first row
  faults.AddRule(rule);
  cluster_.SetFaultInjector(&faults);

  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse("SELECT * FROM Customer");
  ExecOptions opts;
  opts.detect_dirty = true;
  opts.max_dirty_retries = 3;
  const double before_us = s.meter().micros();
  auto r = executor_->ExecuteSelect(s, std::get<sql::SelectStatement>(stmt),
                                    {}, opts);
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status();
  // Initial attempt plus exactly max_dirty_retries restarts ran.
  EXPECT_EQ(faults.FireCount(fault::FaultPoint::kDirtyReadRestart), 4);
  // Each restart backs off roughly one RPC of virtual time before
  // re-scanning; the bound keeps that cost finite.
  EXPECT_GE(s.meter().micros() - before_us,
            3 * cluster_.cost_model().rpc_base_us);
  cluster_.SetFaultInjector(nullptr);
}

TEST_F(ExecutorTest, DirtyRestartRecoversOnceTheDirtClears) {
  fault::FaultInjector faults(7);
  faults.Arm(fault::FaultPoint::kDirtyReadRestart, /*skip_hits=*/0,
             /*max_fires=*/2);
  cluster_.SetFaultInjector(&faults);

  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse("SELECT * FROM Customer");
  ExecOptions opts;
  opts.detect_dirty = true;
  opts.max_dirty_retries = 5;
  auto r = executor_->ExecuteSelect(s, std::get<sql::SelectStatement>(stmt),
                                    {}, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->dirty_restarts, 2);
  EXPECT_EQ(r->row_count, 3u);
  cluster_.SetFaultInjector(nullptr);
}

TEST_F(ExecutorTest, DirtyRestartBoundHoldsMidReassignment) {
  // The restart loop must keep its abort semantics while the hosting region
  // server is declared dead but its regions are not yet reassigned: reads
  // are served degraded during the window, and a dirty scan still exhausts
  // the bound with kAborted rather than escalating to kUnavailable.
  hbase::FailoverConfig fc;
  fc.heartbeat_every_rpcs = 4;
  fc.lease_missed_rounds = 2;
  fc.reassign_regions_per_round = 0;  // freeze the sweep in the window
  cluster_.ConfigureFailover(fc);
  StatusOr<int> host = cluster_.RegionServerOf("Customer");
  ASSERT_TRUE(host.ok());
  cluster_.failover().FenceServer(*host);
  for (int i = 0; i < fc.lease_missed_rounds + 2; ++i) {
    cluster_.failover().PumpVirtualTime(fc.heartbeat_every_rpcs *
                                        fc.us_per_tick);
  }
  ASSERT_EQ(cluster_.failover().state(*host), hbase::ServerState::kDead);

  fault::FaultInjector faults(7);
  fault::FaultRule rule;
  rule.point = fault::FaultPoint::kDirtyReadRestart;
  rule.probability = 1.0;
  faults.AddRule(rule);
  cluster_.SetFaultInjector(&faults);

  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse("SELECT * FROM Customer");
  ExecOptions opts;
  opts.detect_dirty = true;
  opts.max_dirty_retries = 2;
  auto r = executor_->ExecuteSelect(s, std::get<sql::SelectStatement>(stmt),
                                    {}, opts);
  EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status();
  EXPECT_EQ(faults.FireCount(fault::FaultPoint::kDirtyReadRestart), 3);
  EXPECT_GT(s.degraded_reads(), 0u)
      << "the scan must actually have run inside the reassignment window";
  cluster_.SetFaultInjector(nullptr);
}

TEST_F(ExecutorTest, UnknownTableFails) {
  auto stmt = sql::MustParse("SELECT * FROM Nope");
  hbase::Session s(&cluster_);
  EXPECT_FALSE(
      executor_->ExecuteSelect(s, std::get<sql::SelectStatement>(stmt), {})
          .ok());
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  auto stmt = sql::MustParse("SELECT * FROM Customer WHERE zzz = 1");
  hbase::Session s(&cluster_);
  EXPECT_FALSE(
      executor_->ExecuteSelect(s, std::get<sql::SelectStatement>(stmt), {})
          .ok());
}

TEST_F(ExecutorTest, AdapterUpdateMaintainsIndexes) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_
                  ->UpdateByPk(s, "Customer", {Value(1)},
                               {{"c_uname", Value("renamed")}})
                  .ok());
  auto r = Run("SELECT * FROM Customer WHERE c_uname = ?", {Value("renamed")});
  ASSERT_EQ(r.row_count, 1u);
  EXPECT_EQ(r.rows[0][0], Value(1));
  auto r2 = Run("SELECT * FROM Customer WHERE c_uname = ?", {Value("user1")});
  EXPECT_EQ(r2.row_count, 0u);
}

TEST_F(ExecutorTest, AdapterDeleteRemovesIndexRows) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_->DeleteByPk(s, "Customer", {Value(1)}).ok());
  EXPECT_EQ(Run("SELECT * FROM Customer").row_count, 2u);
  EXPECT_EQ(Run("SELECT * FROM Customer WHERE c_uname = ?", {Value("user1")})
                .row_count,
            0u);
}

TEST_F(ExecutorTest, AdapterUpdatePkRejected) {
  hbase::Session s(&cluster_);
  EXPECT_FALSE(adapter_
                   ->UpdateByPk(s, "Customer", {Value(1)},
                                {{"c_id", Value(99)}})
                   .ok());
}

TEST_F(ExecutorTest, AdapterGetMissingReturnsEmpty) {
  hbase::Session s(&cluster_);
  auto r = adapter_->GetByPk(s, "Customer", {Value(42)});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

}  // namespace
}  // namespace synergy::exec
