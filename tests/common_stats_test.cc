// LatencyHistogram: percentile accuracy, merge, and edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace synergy {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(LatencyHistogramTest, SingleValueIsEveryPercentile) {
  LatencyHistogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(LatencyHistogramTest, UniformRampPercentilesWithinResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  // Bucket resolution is 2^(1/32) ~ 2.2%; allow 5% slack.
  EXPECT_NEAR(h.Percentile(50), 5000.0, 0.05 * 5000.0);
  EXPECT_NEAR(h.Percentile(95), 9500.0, 0.05 * 9500.0);
  EXPECT_NEAR(h.Percentile(99), 9900.0, 0.05 * 9900.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10000.0);
  EXPECT_NEAR(h.mean(), 5000.5, 1e-6);
}

TEST(LatencyHistogramTest, TailIsSeparatedFromBody) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Add(1.0);
  h.Add(1000.0);  // one straggler
  EXPECT_NEAR(h.Percentile(50), 1.0, 0.05);
  EXPECT_NEAR(h.Percentile(99), 1.0, 0.05);
  EXPECT_NEAR(h.Percentile(100), 1000.0, 1e-9);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.UniformReal(0.1, 500.0);
    (i % 2 == 0 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogramTest, OutOfRangeValuesAreClampedNotLost) {
  LatencyHistogram h;
  h.Add(0.0);      // below the first bucket
  h.Add(-5.0);     // negative
  h.Add(1e30);     // far above the last bucket
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e30);
  EXPECT_DOUBLE_EQ(h.Percentile(0), -5.0);
}

TEST(LatencyHistogramTest, BucketBoundaryInterpolationStaysWithinResolution) {
  // Values sitting exactly on a power-of-two bucket edge must round-trip
  // through the log-bucketed store within one bucket of resolution
  // (2^(1/32) ~ 2.2%), and never escape the observed [min, max] envelope.
  for (const double edge : {1.0, 2.0, 1024.0, 1048576.0}) {
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Add(edge);
    EXPECT_NEAR(h.Percentile(50), edge, 0.03 * edge) << "edge " << edge;
    EXPECT_GE(h.Percentile(50), h.min()) << "edge " << edge;
    EXPECT_LE(h.Percentile(50), h.max()) << "edge " << edge;
    EXPECT_DOUBLE_EQ(h.Percentile(0), edge);
    EXPECT_DOUBLE_EQ(h.Percentile(100), edge);
  }
}

TEST(LatencyHistogramTest, AdjacentBucketValuesKeepTheirOrder) {
  // 2.3% apart straddles at most one bucket edge: the reported percentiles
  // must not invert the order of the two populations.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Add(1000.0);
  for (int i = 0; i < 100; ++i) h.Add(1023.0);
  EXPECT_LE(h.Percentile(25), h.Percentile(75));
  EXPECT_NEAR(h.Percentile(25), 1000.0, 0.03 * 1000.0);
  EXPECT_NEAR(h.Percentile(75), 1023.0, 0.03 * 1023.0);
}

TEST(LatencyHistogramTest, DisjointRangeMergeKeepsBothPopulations) {
  // A merge of two non-overlapping distributions (fast client, slow client)
  // must preserve both modes: the median stays in the fast mode, the upper
  // quartile jumps to the slow one, and min/max span the union.
  LatencyHistogram fast, slow;
  for (int i = 0; i < 100; ++i) fast.Add(1.0);
  for (int i = 0; i < 100; ++i) slow.Add(1e6);
  fast.Merge(slow);
  EXPECT_EQ(fast.count(), 200u);
  EXPECT_DOUBLE_EQ(fast.min(), 1.0);
  EXPECT_DOUBLE_EQ(fast.max(), 1e6);
  EXPECT_NEAR(fast.Percentile(50), 1.0, 0.05);
  EXPECT_NEAR(fast.Percentile(75), 1e6, 0.03 * 1e6);
  EXPECT_DOUBLE_EQ(fast.Percentile(100), 1e6);
  EXPECT_NEAR(fast.mean(), (100 * 1.0 + 100 * 1e6) / 200.0, 1.0);
}

TEST(LatencyHistogramTest, MergeIntoEmptyEqualsSource) {
  LatencyHistogram empty, src;
  for (int i = 1; i <= 100; ++i) src.Add(static_cast<double>(i));
  empty.Merge(src);
  EXPECT_EQ(empty.count(), src.count());
  EXPECT_DOUBLE_EQ(empty.min(), src.min());
  EXPECT_DOUBLE_EQ(empty.max(), src.max());
  for (const double p : {50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(empty.Percentile(p), src.Percentile(p)) << "p" << p;
  }
  // Merging an empty histogram is a no-op, not a corruption of min/max.
  LatencyHistogram still_empty;
  src.Merge(still_empty);
  EXPECT_EQ(src.count(), 100u);
  EXPECT_DOUBLE_EQ(src.min(), 1.0);
  EXPECT_DOUBLE_EQ(src.max(), 100.0);
}

TEST(RunningStatsTest, MeanAndStderrStillWork) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

}  // namespace
}  // namespace synergy
