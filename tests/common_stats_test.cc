// LatencyHistogram: percentile accuracy, merge, and edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace synergy {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(LatencyHistogramTest, SingleValueIsEveryPercentile) {
  LatencyHistogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(LatencyHistogramTest, UniformRampPercentilesWithinResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  // Bucket resolution is 2^(1/32) ~ 2.2%; allow 5% slack.
  EXPECT_NEAR(h.Percentile(50), 5000.0, 0.05 * 5000.0);
  EXPECT_NEAR(h.Percentile(95), 9500.0, 0.05 * 9500.0);
  EXPECT_NEAR(h.Percentile(99), 9900.0, 0.05 * 9900.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10000.0);
  EXPECT_NEAR(h.mean(), 5000.5, 1e-6);
}

TEST(LatencyHistogramTest, TailIsSeparatedFromBody) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Add(1.0);
  h.Add(1000.0);  // one straggler
  EXPECT_NEAR(h.Percentile(50), 1.0, 0.05);
  EXPECT_NEAR(h.Percentile(99), 1.0, 0.05);
  EXPECT_NEAR(h.Percentile(100), 1000.0, 1e-9);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.UniformReal(0.1, 500.0);
    (i % 2 == 0 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogramTest, OutOfRangeValuesAreClampedNotLost) {
  LatencyHistogram h;
  h.Add(0.0);      // below the first bucket
  h.Add(-5.0);     // negative
  h.Add(1e30);     // far above the last bucket
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e30);
  EXPECT_DOUBLE_EQ(h.Percentile(0), -5.0);
}

TEST(RunningStatsTest, MeanAndStderrStillWork) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

}  // namespace
}  // namespace synergy
