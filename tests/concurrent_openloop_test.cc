// Open-loop (arrival-rate) driver: schedule generation, queued-start latency
// accounting (coordinated-omission avoidance), client abandonment, error and
// shed classification, span/goodput bookkeeping, determinism.
#include "concurrent/session_driver.h"

#include <gtest/gtest.h>

#include <memory>

#include "concurrent/metrics.h"

namespace synergy::concurrent {
namespace {

OpenLoopConfig UniformConfig(double rate, double horizon_sec) {
  OpenLoopConfig config;
  config.threads = 1;
  config.offered_rate_per_sec = rate;
  config.duration_virtual_sec = horizon_sec;
  config.arrival = ArrivalDist::kUniform;
  config.base_seed = 11;
  return config;
}

/// Factory for an op with a fixed virtual cost and optional failure status.
OpenLoopFactory FixedCostOp(double cost_us) {
  return [cost_us](int, uint64_t) -> OpenLoopOp {
    return [cost_us](size_t) { return OpResult(OpOutcome(cost_us)); };
  };
}

TEST(OpenLoopDriverTest, UniformScheduleOffersRateTimesHorizon) {
  // 1000 ops/s for 1 virtual second with constant gaps: exactly 1000
  // arrivals at 1ms, 2ms, ..., 1000ms.
  const WorkloadReport report =
      RunOpenLoop(UniformConfig(1000.0, 1.0), FixedCostOp(10.0));
  EXPECT_EQ(report.total_offered, 1000u);
  EXPECT_EQ(report.total_ops, 1000u);
  EXPECT_EQ(report.total_errors, 0u);
  EXPECT_NEAR(report.offered_rate(), 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(report.offered_duration_seconds, 1.0);
}

TEST(OpenLoopDriverTest, UnderloadedLatencyIsServiceTimeOnly) {
  // Service (10us) far below the 1000us gap: no queueing, every op's
  // latency is its own cost.
  const WorkloadReport report =
      RunOpenLoop(UniformConfig(1000.0, 0.5), FixedCostOp(10.0));
  EXPECT_NEAR(report.latency_us.max(), 10.0, 1.0);
  // The run ends at the arrival horizon, not earlier: goodput is bounded by
  // what was offered, not by how fast the ops ran.
  EXPECT_GE(report.virtual_seconds, 0.5);
  EXPECT_NEAR(report.goodput(), report.offered_rate(), 5.0);
}

TEST(OpenLoopDriverTest, QueuedStartLatencyCountsBacklogDelay) {
  // Each op costs 2000us but arrivals come every 1000us: the backlog grows
  // by one op per arrival, and queued-start accounting must charge each op
  // its wait. The last of 100 ops waits ~99 * 1000us.
  const WorkloadReport report =
      RunOpenLoop(UniformConfig(1000.0, 0.1), FixedCostOp(2000.0));
  EXPECT_EQ(report.total_ops, 100u);
  EXPECT_GT(report.latency_us.max(), 90.0 * 1000.0)
      << "a coordinated-omission driver would report ~2000us here";
  // Span covers the backlog drain: 100 ops x 2000us = 0.2 virtual seconds,
  // so goodput is half the offered rate.
  EXPECT_NEAR(report.virtual_seconds, 0.2, 0.01);
  EXPECT_NEAR(report.goodput(), 500.0, 25.0);
}

TEST(OpenLoopDriverTest, ClientsAbandonStaleArrivals) {
  OpenLoopConfig config = UniformConfig(1000.0, 0.1);
  config.max_queue_delay_us = 5000.0;
  const WorkloadReport report = RunOpenLoop(config, FixedCostOp(2000.0));
  EXPECT_GT(report.total_abandoned, 0u);
  EXPECT_EQ(report.total_offered,
            report.total_ops + report.total_errors + report.total_abandoned);
  // Abandonment bounds the queue, so admitted-op latency stays near
  // max_queue_delay + service instead of growing with the backlog.
  EXPECT_LE(report.latency_us.max(), 5000.0 + 2000.0 + 1.0);
}

TEST(OpenLoopDriverTest, FailedOpsStillAdvanceTheClockAndClassify) {
  // Every third op fails: deadline errors and overload sheds are counted in
  // their own buckets, and the failed attempts' cost still burns client
  // time (span reflects it).
  OpenLoopFactory factory = [](int, uint64_t) -> OpenLoopOp {
    auto n = std::make_shared<size_t>(0);
    return [n](size_t) -> OpResult {
      const size_t i = (*n)++;
      if (i % 3 == 1) {
        return OpResult(Status::DeadlineExceeded("too slow"),
                        OpOutcome(1000.0));
      }
      if (i % 3 == 2) {
        return OpResult(Status::ResourceExhausted("shed"), OpOutcome(50.0));
      }
      return OpResult(OpOutcome(1000.0));
    };
  };
  const WorkloadReport report =
      RunOpenLoop(UniformConfig(1000.0, 0.3), factory);
  EXPECT_EQ(report.total_offered, 300u);
  EXPECT_EQ(report.total_ops, 100u);
  EXPECT_EQ(report.total_errors, 200u);
  EXPECT_EQ(report.total_deadline_errors, 100u);
  EXPECT_EQ(report.total_shed_errors, 100u);
  EXPECT_EQ(report.latency_us.count(), report.total_ops)
      << "only successful ops contribute latency samples";
}

TEST(OpenLoopDriverTest, PoissonArrivalsApproximateTheTargetRate) {
  OpenLoopConfig config = UniformConfig(2000.0, 1.0);
  config.arrival = ArrivalDist::kPoisson;
  const WorkloadReport report = RunOpenLoop(config, FixedCostOp(10.0));
  // sd of a Poisson count at 2000 is ~45; 10 sigma of slack keeps this
  // deterministic-seed test far from flaky while still catching a broken
  // gap formula (for example mean gap off by 2x).
  EXPECT_NEAR(static_cast<double>(report.total_offered), 2000.0, 450.0);
}

TEST(OpenLoopDriverTest, SameSeedReplaysExactly) {
  OpenLoopConfig config = UniformConfig(500.0, 0.5);
  config.arrival = ArrivalDist::kPoisson;
  config.threads = 2;
  const WorkloadReport a = RunOpenLoop(config, FixedCostOp(300.0));
  const WorkloadReport b = RunOpenLoop(config, FixedCostOp(300.0));
  EXPECT_EQ(a.total_offered, b.total_offered);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_DOUBLE_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_DOUBLE_EQ(a.p99_ms(), b.p99_ms());

  OpenLoopConfig other = config;
  other.base_seed = config.base_seed + 1;
  const WorkloadReport c = RunOpenLoop(other, FixedCostOp(300.0));
  EXPECT_NE(a.total_offered, c.total_offered)
      << "a different seed must draw a different Poisson schedule";
}

TEST(OpenLoopDriverTest, RateSplitsAcrossThreads) {
  OpenLoopConfig config = UniformConfig(1000.0, 1.0);
  config.threads = 4;
  const WorkloadReport report = RunOpenLoop(config, FixedCostOp(10.0));
  // 4 uniform processes at 250/s each.
  EXPECT_EQ(report.total_offered, 1000u);
  EXPECT_EQ(report.threads, 4);
}

}  // namespace
}  // namespace synergy::concurrent
