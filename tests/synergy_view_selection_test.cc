// §VI: view selection (marking procedure, Figure 6), query rewriting and
// view-index recommendation.
#include "synergy/view_selection.h"

#include <gtest/gtest.h>

#include "company_fixture.h"
#include "synergy/query_rewrite.h"
#include "synergy/view_index.h"

namespace synergy::core {
namespace {

class ViewSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::CompanyCatalog();
    workload_ = testing::CompanyWorkload();
    auto graph = SchemaGraph::FromCatalog(catalog_);
    auto result = GenerateCandidateViews(graph, workload_, catalog_,
                                         testing::CompanyRoots());
    ASSERT_TRUE(result.ok());
    trees_ = result->trees;
  }
  sql::Catalog catalog_;
  sql::Workload workload_;
  std::vector<RootedTree> trees_;
};

TEST_F(ViewSelectionTest, W1SelectsAddressEmployee) {
  const auto& w1 = std::get<sql::SelectStatement>(workload_.Find("W1")->ast);
  auto views = SelectViewsForQuery(w1, catalog_, trees_);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].Name(), "Address-Employee");
  EXPECT_EQ(views[0].root, "Address");
}

TEST_F(ViewSelectionTest, W2SelectsEmployeeWorksOnOnly) {
  // The D->E join is not a tree edge (Employee lives in the Address tree),
  // so only E-WO materializes.
  const auto& w2 = std::get<sql::SelectStatement>(workload_.Find("W2")->ast);
  auto views = SelectViewsForQuery(w2, catalog_, trees_);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].Name(), "Employee-Works_On");
}

TEST_F(ViewSelectionTest, WorkloadSelectionDeduplicates) {
  auto views = SelectViews(workload_, catalog_, trees_);
  // W1 -> Address-Employee; W2, W3 -> Employee-Works_On (deduplicated).
  ASSERT_EQ(views.size(), 2u);
  std::set<std::string> names;
  for (const auto& v : views) names.insert(v.Name());
  EXPECT_TRUE(names.contains("Address-Employee"));
  EXPECT_TRUE(names.contains("Employee-Works_On"));
}

TEST_F(ViewSelectionTest, PaperFigure6MarkingExample) {
  // Rooted tree: R1->R2->R3->R4, R2->R5->R6; query joins R2-R3, R3-R4,
  // R2-R5 (not materializable: R2 is start of two chains), R5-R6.
  sql::Catalog cat;
  auto add_rel = [&](const std::string& name, const std::string& pk,
                     const std::string& fk_col, const std::string& fk_ref) {
    sql::RelationDef def;
    def.name = name;
    def.columns = {{pk, DataType::kInt}};
    def.primary_key = {pk};
    if (!fk_ref.empty()) {
      def.columns.push_back({fk_col, DataType::kInt});
      def.foreign_keys = {{{fk_col}, fk_ref}};
    }
    ASSERT_TRUE(cat.AddRelation(def).ok());
  };
  add_rel("R1", "pk1", "", "");
  add_rel("R2", "pk2", "fk2", "R1");
  add_rel("R3", "pk3", "fk3", "R2");
  add_rel("R4", "pk4", "fk4", "R3");
  add_rel("R5", "pk5", "fk5", "R2");
  add_rel("R6", "pk6", "fk6", "R5");
  RootedTree tree("R1");
  tree.AddEdge({"R1", "R2", {{"fk2"}, "R1"}, 0});
  tree.AddEdge({"R2", "R3", {{"fk3"}, "R2"}, 0});
  tree.AddEdge({"R3", "R4", {{"fk4"}, "R3"}, 0});
  tree.AddEdge({"R2", "R5", {{"fk5"}, "R2"}, 0});
  tree.AddEdge({"R5", "R6", {{"fk6"}, "R5"}, 0});

  auto stmt = sql::MustParse(
      "SELECT * FROM R2, R3, R4, R5, R6 "
      "WHERE R2.pk2 = R3.fk3 and R3.pk3 = R4.fk4 and R2.pk2 = R5.fk5 "
      "and R5.pk5 = R6.fk6");
  auto views = SelectViewsForQuery(std::get<sql::SelectStatement>(stmt),
                                   cat, {tree});
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].Name(), "R2-R3-R4");
  EXPECT_EQ(views[1].Name(), "R5-R6");

  // Figure 6(d): rewrite uses both views and keeps only the cross-view join.
  auto rewrite = RewriteQuery(std::get<sql::SelectStatement>(stmt), cat, views);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->changed);
  ASSERT_EQ(rewrite->stmt.from.size(), 2u);
  EXPECT_EQ(rewrite->stmt.from[0].table, "R2-R3-R4");
  EXPECT_EQ(rewrite->stmt.from[1].table, "R5-R6");
  ASSERT_EQ(rewrite->stmt.where.size(), 1u);
  EXPECT_EQ(rewrite->stmt.where[0].lhs.column.qualifier, "R2-R3-R4");
  EXPECT_EQ(rewrite->stmt.where[0].rhs.column.qualifier, "R5-R6");
}

TEST_F(ViewSelectionTest, QueriesUsingRelationTwiceAreSkipped) {
  sql::Workload w;
  ASSERT_TRUE(w.Add("X",
                    "SELECT * FROM Works_On as a, Works_On as b, Employee as e "
                    "WHERE e.EID = a.WO_EID AND e.EID = b.WO_EID")
                  .ok());
  const auto& stmt = std::get<sql::SelectStatement>(w.statements[0].ast);
  EXPECT_TRUE(SelectViewsForQuery(stmt, catalog_, trees_).empty());
}

TEST_F(ViewSelectionTest, MaterializeViewDefBuildsStorage) {
  auto views = SelectViews(workload_, catalog_, trees_);
  for (const SelectedView& view : views) {
    auto defs = MaterializeViewDef(view, catalog_);
    ASSERT_TRUE(defs.ok());
    const auto& [vdef, storage] = *defs;
    EXPECT_EQ(vdef.name, storage.name);
    // PK of the view = PK of the last relation.
    const sql::RelationDef* last = catalog_.FindRelation(view.relations.back());
    EXPECT_EQ(storage.primary_key, last->primary_key);
    // Attribute union.
    size_t expected_cols = 0;
    for (const std::string& rel : view.relations) {
      expected_cols += catalog_.FindRelation(rel)->columns.size();
    }
    EXPECT_EQ(storage.columns.size(), expected_cols);
  }
}

TEST_F(ViewSelectionTest, RewriteW1UsesView) {
  auto views = SelectViews(workload_, catalog_, trees_);
  const auto& w1 = std::get<sql::SelectStatement>(workload_.Find("W1")->ast);
  auto rewrite = RewriteQuery(w1, catalog_, views);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->changed);
  ASSERT_EQ(rewrite->stmt.from.size(), 1u);
  EXPECT_EQ(rewrite->stmt.from[0].table, "Address-Employee");
  // Join condition dropped; only the EID filter remains.
  ASSERT_EQ(rewrite->stmt.where.size(), 1u);
  EXPECT_EQ(rewrite->stmt.where[0].lhs.column.column, "EID");
}

TEST_F(ViewSelectionTest, RewriteW2KeepsCrossViewJoin) {
  auto views = SelectViews(workload_, catalog_, trees_);
  const auto& w2 = std::get<sql::SelectStatement>(workload_.Find("W2")->ast);
  auto rewrite = RewriteQuery(w2, catalog_, views);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->changed);
  // FROM: Department + Employee-Works_On.
  ASSERT_EQ(rewrite->stmt.from.size(), 2u);
  EXPECT_EQ(rewrite->stmt.from[0].table, "Department");
  EXPECT_EQ(rewrite->stmt.from[1].table, "Employee-Works_On");
  // The D.DNo = E.E_DNo join survives; E.EID = WO.WO_EID is internal.
  size_t joins = 0;
  for (const auto& p : rewrite->stmt.where) {
    if (p.IsEquiJoin()) ++joins;
  }
  EXPECT_EQ(joins, 1u);
}

TEST_F(ViewSelectionTest, RewriteWorkloadInPlace) {
  sql::Workload w = workload_;
  // Register views in a catalog copy.
  sql::Catalog cat = testing::CompanyCatalog();
  for (const SelectedView& view : SelectViews(w, cat, trees_)) {
    auto defs = MaterializeViewDef(view, cat);
    ASSERT_TRUE(defs.ok());
    ASSERT_TRUE(cat.AddView(defs->first, defs->second).ok());
  }
  auto rewritten = RewriteWorkload(&w, cat, trees_);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->size(), 3u);  // W1, W2, W3 all rewritten
  // Re-parse all rewritten SQL to ensure it is valid.
  for (const auto& stmt : w.statements) {
    EXPECT_TRUE(sql::Parse(stmt.sql).ok()) << stmt.sql;
  }
}

TEST_F(ViewSelectionTest, ViewIndexRecommendation) {
  // Build catalog with views + rewritten workload, then check W3's filter
  // on Hours yields a view-index (the view is keyed on WO's PK).
  sql::Catalog cat = testing::CompanyCatalog();
  sql::Workload w = workload_;
  for (const SelectedView& view : SelectViews(w, cat, trees_)) {
    auto defs = MaterializeViewDef(view, cat);
    ASSERT_TRUE(defs.ok());
    ASSERT_TRUE(cat.AddView(defs->first, defs->second).ok());
  }
  ASSERT_TRUE(RewriteWorkload(&w, cat, trees_).ok());
  auto indexes = RecommendViewIndexes(w, cat);
  bool found_hours = false;
  for (const auto& ix : indexes) {
    if (ix.relation == "Employee-Works_On" &&
        ix.indexed_columns == std::vector<std::string>{"Hours"}) {
      found_hours = true;
      // Covered index: must cover every view column.
      EXPECT_EQ(ix.covered_columns.size(),
                cat.FindRelation("Employee-Works_On")->columns.size());
    }
  }
  EXPECT_TRUE(found_hours);
}

TEST_F(ViewSelectionTest, MaintenanceIndexRecommendation) {
  sql::Catalog cat = testing::CompanyCatalog();
  sql::Workload w = workload_;
  for (const SelectedView& view : SelectViews(w, cat, trees_)) {
    auto defs = MaterializeViewDef(view, cat);
    ASSERT_TRUE(defs.ok());
    ASSERT_TRUE(cat.AddView(defs->first, defs->second).ok());
  }
  // Add an UPDATE on Employee (mid-path member of both views).
  ASSERT_TRUE(w.Add("U1", "UPDATE Employee SET EName = ? WHERE EID = ?").ok());
  auto indexes = RecommendMaintenanceIndexes(w, cat);
  bool found = false;
  for (const auto& ix : indexes) {
    if (ix.relation == "Employee-Works_On" &&
        ix.indexed_columns == std::vector<std::string>{"EID"}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace synergy::core
