// The paper's running example: the Company schema (Figure 2) with roots
// Q = {Address, Department} and the synthetic workload W1-W3 (§V-B2).
#pragma once

#include "sql/catalog.h"
#include "sql/workload.h"

namespace synergy::testing {

inline sql::Catalog CompanyCatalog() {
  using sql::Catalog;
  using sql::RelationDef;
  using DT = synergy::DataType;
  Catalog cat;
  auto must = [](Status s) {
    if (!s.ok()) std::abort();
  };
  must(cat.AddRelation(RelationDef{
      .name = "Address",
      .columns = {{"AID", DT::kInt},
                  {"Street", DT::kString},
                  {"City", DT::kString},
                  {"Zip", DT::kString}},
      .primary_key = {"AID"}}));
  must(cat.AddRelation(RelationDef{
      .name = "Department",
      .columns = {{"DNo", DT::kInt}, {"DName", DT::kString}},
      .primary_key = {"DNo"}}));
  must(cat.AddRelation(RelationDef{
      .name = "Department_Location",
      .columns = {{"DL_DNo", DT::kInt}, {"DLocation", DT::kString}},
      .primary_key = {"DL_DNo", "DLocation"},
      .foreign_keys = {{{"DL_DNo"}, "Department"}}}));
  must(cat.AddRelation(RelationDef{
      .name = "Employee",
      .columns = {{"EID", DT::kInt},
                  {"EName", DT::kString},
                  {"EHome_AID", DT::kInt},
                  {"EOffice_AID", DT::kInt},
                  {"E_DNo", DT::kInt}},
      .primary_key = {"EID"},
      .foreign_keys = {{{"EHome_AID"}, "Address"},
                       {{"EOffice_AID"}, "Address"},
                       {{"E_DNo"}, "Department"}}}));
  must(cat.AddRelation(RelationDef{
      .name = "Project",
      .columns = {{"PNo", DT::kInt},
                  {"PName", DT::kString},
                  {"P_DNo", DT::kInt}},
      .primary_key = {"PNo"},
      .foreign_keys = {{{"P_DNo"}, "Department"}}}));
  must(cat.AddRelation(RelationDef{
      .name = "Works_On",
      .columns = {{"WO_EID", DT::kInt},
                  {"WO_PNo", DT::kInt},
                  {"Hours", DT::kInt}},
      .primary_key = {"WO_EID", "WO_PNo"},
      .foreign_keys = {{{"WO_EID"}, "Employee"}, {{"WO_PNo"}, "Project"}}}));
  must(cat.AddRelation(RelationDef{
      .name = "Dependent",
      .columns = {{"DP_EID", DT::kInt},
                  {"DPName", DT::kString},
                  {"DPHome_AID", DT::kInt}},
      .primary_key = {"DP_EID", "DPName"},
      .foreign_keys = {{{"DP_EID"}, "Employee"},
                       {{"DPHome_AID"}, "Address"}}}));
  return cat;
}

inline sql::Workload CompanyWorkload() {
  sql::Workload w;
  auto must = [](Status s) {
    if (!s.ok()) std::abort();
  };
  // W1: address details of an employee.
  must(w.Add("W1",
             "SELECT * FROM Employee as e, Address as a "
             "WHERE a.AID = e.EHome_AID and e.EID = ?"));
  // W2: all employees and their hours in a department.
  must(w.Add("W2",
             "SELECT * FROM Department as d, Employee as e, Works_On as wo "
             "WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?"));
  // W3: employees who work a certain number of hours.
  must(w.Add("W3",
             "SELECT * FROM Employee as e, Works_On as wo "
             "WHERE e.EID = wo.WO_EID and wo.Hours = ?"));
  return w;
}

inline std::vector<std::string> CompanyRoots() {
  return {"Address", "Department"};
}

}  // namespace synergy::testing
