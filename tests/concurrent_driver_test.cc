// Closed-loop session driver + TPC-W mix: aggregation, per-thread
// determinism (seed = base ^ thread_id), and fresh-id stream partitioning.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "concurrent/session_driver.h"
#include "concurrent/tpcw_mix.h"

namespace synergy::concurrent {
namespace {

TEST(SessionDriverTest, AggregatesAcrossThreads) {
  DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 100;
  WorkloadReport report = RunClosedLoop(cfg, [](int tid, uint64_t) {
    // Thread t charges (t+1)*100 µs per op: the run's virtual duration is
    // the slowest thread's busy time.
    return [tid](size_t) -> StatusOr<OpOutcome> {
      return OpOutcome((tid + 1) * 100.0);
    };
  });
  EXPECT_EQ(report.threads, 4);
  EXPECT_EQ(report.total_ops, 400U);
  EXPECT_EQ(report.total_errors, 0U);
  EXPECT_NEAR(report.virtual_seconds, 100 * 400.0 / 1e6, 1e-9);
  EXPECT_NEAR(report.virtual_throughput(), 400.0 / (100 * 400.0 / 1e6), 1.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  // p50 over {100,200,300,400}x100 within histogram resolution.
  EXPECT_NEAR(report.p50_ms(), 0.2, 0.2 * 0.05);
}

TEST(SessionDriverTest, SeedsArePerThreadAndDeterministic) {
  DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 8;
  cfg.base_seed = 12345;

  auto run = [&] {
    std::mutex mu;
    std::map<int, uint64_t> seeds;
    std::map<int, std::vector<uint64_t>> draws;
    RunClosedLoop(cfg, [&](int tid, uint64_t seed) {
      {
        std::lock_guard lock(mu);
        seeds[tid] = seed;
      }
      auto rng = std::make_shared<Rng>(seed);
      return [&, tid, rng](size_t) -> StatusOr<OpOutcome> {
        const uint64_t draw = rng->Next();
        std::lock_guard lock(mu);
        draws[tid].push_back(draw);
        return OpOutcome(1.0);
      };
    });
    return std::make_pair(seeds, draws);
  };

  auto [seeds1, draws1] = run();
  auto [seeds2, draws2] = run();
  for (int tid = 0; tid < cfg.threads; ++tid) {
    EXPECT_EQ(seeds1[tid], cfg.base_seed ^ static_cast<uint64_t>(tid));
  }
  EXPECT_EQ(draws1, draws2) << "same config must replay identically";
  EXPECT_NE(draws1[0], draws1[1]) << "threads must not share a stream";
}

TEST(SessionDriverTest, ErrorsAreCountedNotFatal) {
  DriverConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 30;
  WorkloadReport report = RunClosedLoop(cfg, [](int, uint64_t) {
    return [](size_t i) -> StatusOr<OpOutcome> {
      if (i % 3 == 2) return Status::Aborted("every third op");
      return OpOutcome(5.0);
    };
  });
  EXPECT_EQ(report.total_ops, 40U);
  EXPECT_EQ(report.total_errors, 20U);
  EXPECT_FALSE(report.first_error.ok());
  EXPECT_EQ(report.first_error.code(), StatusCode::kAborted);
}

TEST(SessionDriverTest, RobustnessCountersAggregate) {
  DriverConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 10;
  WorkloadReport report = RunClosedLoop(cfg, [](int tid, uint64_t) {
    return [tid](size_t i) -> StatusOr<OpOutcome> {
      if (tid == 0 && i == 0) return Status::DeadlineExceeded("budget spent");
      if (tid == 0 && i == 1) return Status::Aborted("conflict");
      // Thread 1's ops each consumed one retry and a degraded read.
      if (tid == 1) return OpOutcome(100.0, /*r=*/1, /*d=*/1);
      return OpOutcome(100.0);
    };
  });
  EXPECT_EQ(report.total_ops, 18U);
  EXPECT_EQ(report.total_errors, 2U);
  EXPECT_EQ(report.total_deadline_errors, 1U);
  EXPECT_EQ(report.total_retries, 10U);
  EXPECT_EQ(report.total_degraded_ops, 10U);
  EXPECT_EQ(report.first_error.code(), StatusCode::kDeadlineExceeded);
}

TEST(TpcwMixTest, ReadOnlyMixDrawsOnlyReadStatements) {
  tpcw::ScaleConfig scale;
  scale.num_customers = 100;
  DriverConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 50;

  const MixConfig mix = ReadOnlyMix();
  const std::set<std::string> allowed(mix.reads.begin(), mix.reads.end());
  std::mutex mu;
  std::set<std::string> seen;
  WorkloadReport report = RunTpcwMix(
      cfg, scale, mix,
      [&](int, const std::string& stmt_id,
          const std::vector<Value>& params) -> StatusOr<OpOutcome> {
        std::lock_guard lock(mu);
        EXPECT_TRUE(allowed.count(stmt_id)) << stmt_id;
        EXPECT_FALSE(params.empty());
        seen.insert(stmt_id);
        return OpOutcome(10.0);
      });
  EXPECT_EQ(report.total_ops, 100U);
  EXPECT_GT(seen.size(), 1U) << "mix should draw from multiple statements";
}

TEST(TpcwMixTest, FreshInsertIdsNeverCollideAcrossThreads) {
  tpcw::ScaleConfig scale;
  scale.num_customers = 100;
  DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 200;

  // Write-only mix of fresh-id inserts: every W1/W6 draw consumes a fresh
  // id as its first parameter.
  MixConfig mix;
  mix.name = "inserts";
  mix.read_fraction = 0.0;
  mix.writes = {"W1", "W6"};

  std::mutex mu;
  std::vector<int64_t> ids;
  WorkloadReport report = RunTpcwMix(
      cfg, scale, mix,
      [&](int, const std::string&,
          const std::vector<Value>& params) -> StatusOr<OpOutcome> {
        std::lock_guard lock(mu);
        ids.push_back(params[0].as_int());
        return OpOutcome(1.0);
      });
  EXPECT_EQ(report.total_ops, 800U);
  std::set<int64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size()) << "fresh ids collided across threads";
}

}  // namespace
}  // namespace synergy::concurrent
