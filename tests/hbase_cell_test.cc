#include "hbase/cell.h"

#include <gtest/gtest.h>

namespace synergy::hbase {
namespace {

TEST(CellTest, LatestReturnsNewestVersion) {
  Cell c;
  c.AddVersion({1, "old", false});
  c.AddVersion({5, "new", false});
  c.AddVersion({3, "mid", false});
  ASSERT_TRUE(c.Latest().has_value());
  EXPECT_EQ(*c.Latest(), "new");
}

TEST(CellTest, SameTimestampOverwrites) {
  Cell c;
  c.AddVersion({2, "a", false});
  c.AddVersion({2, "b", false});
  EXPECT_EQ(c.versions().size(), 1u);
  EXPECT_EQ(*c.Latest(), "b");
}

TEST(CellTest, TombstoneHidesValue) {
  Cell c;
  c.AddVersion({1, "v", false});
  c.AddVersion({2, "", true});
  EXPECT_FALSE(c.Latest().has_value());
}

TEST(CellTest, LatestVisibleRespectsReadTimestamp) {
  Cell c;
  c.AddVersion({10, "ten", false});
  c.AddVersion({20, "twenty", false});
  EXPECT_EQ(*c.LatestVisible(15, nullptr), "ten");
  EXPECT_EQ(*c.LatestVisible(25, nullptr), "twenty");
  EXPECT_FALSE(c.LatestVisible(5, nullptr).has_value());
}

TEST(CellTest, LatestVisibleSkipsExcludedTransactions) {
  Cell c;
  c.AddVersion({10, "committed", false});
  c.AddVersion({20, "in-flight", false});
  std::vector<int64_t> exclude = {20};
  EXPECT_EQ(*c.LatestVisible(INT64_MAX, &exclude), "committed");
}

TEST(CellTest, TombstoneVisibleAtTimestampHidesOlder) {
  Cell c;
  c.AddVersion({10, "v", false});
  c.AddVersion({20, "", true});
  EXPECT_FALSE(c.LatestVisible(30, nullptr).has_value());
  EXPECT_EQ(*c.LatestVisible(15, nullptr), "v");
}

TEST(CellTest, CompactDropsTombstonesAndOldVersions) {
  Cell c;
  for (int i = 1; i <= 5; ++i) c.AddVersion({i, "v" + std::to_string(i), false});
  c.Compact(2);
  ASSERT_EQ(c.versions().size(), 2u);
  EXPECT_EQ(c.versions()[0].timestamp, 5);
  EXPECT_EQ(c.versions()[1].timestamp, 4);
}

TEST(CellTest, CompactWithLeadingTombstoneEmptiesCell) {
  Cell c;
  c.AddVersion({1, "v", false});
  c.AddVersion({2, "", true});
  c.Compact(3);
  EXPECT_TRUE(c.versions().empty());
}

TEST(RowResultTest, PayloadBytesCountsKeysAndValues) {
  RowResult r;
  r.row_key = "key1";  // 4
  r.columns = {{"a", "xx"}, {"bb", "y"}};  // 1+2 + 2+1
  EXPECT_EQ(r.PayloadBytes(), 10u);
}

}  // namespace
}  // namespace synergy::hbase
