#include "exec/expression.h"

#include <gtest/gtest.h>

namespace synergy::exec {
namespace {

TEST(RowSchemaTest, QualifiedAndUnqualifiedLookup) {
  auto schema = RowSchema::Make({"c.c_id", "c.c_name", "o.o_id"});
  EXPECT_EQ(schema->FindByName("c.c_id"), 0);
  EXPECT_EQ(schema->FindByName("c_name"), 1);
  EXPECT_EQ(schema->FindByName("o_id"), 2);
  EXPECT_EQ(schema->FindByName("nope"), -1);
}

TEST(RowSchemaTest, AmbiguousUnqualifiedNameIsRejected) {
  auto schema = RowSchema::Make({"a.x", "b.x"});
  EXPECT_EQ(schema->FindByName("x"), -1);
  EXPECT_EQ(schema->FindByName("a.x"), 0);
  EXPECT_EQ(schema->FindByName("b.x"), 1);
}

TEST(RowSchemaTest, ConcatPreservesSlots) {
  auto left = RowSchema::Make({"a.x"});
  auto right = RowSchema::Make({"b.y"});
  auto both = RowSchema::Concat(*left, *right);
  EXPECT_EQ(both->size(), 2u);
  EXPECT_EQ(both->FindByName("a.x"), 0);
  EXPECT_EQ(both->FindByName("b.y"), 1);
}

TEST(RowSchemaTest, FindWithColumnRef) {
  auto schema = RowSchema::Make({"c.c_id"});
  EXPECT_EQ(schema->Find(sql::ColumnRef{"c", "c_id"}), 0);
  EXPECT_EQ(schema->Find(sql::ColumnRef{"", "c_id"}), 0);
  EXPECT_EQ(schema->Find(sql::ColumnRef{"z", "c_id"}), -1);
}

class ExpressionTest : public ::testing::Test {
 protected:
  ExecRow Row() {
    return ExecRow{RowSchema::Make({"t.a", "t.b", "t.s"}),
                   {Value(5), Value(), Value("hi")}};
  }
};

TEST_F(ExpressionTest, ResolveColumnOperand) {
  auto v = ResolveOperand(sql::Operand::Col({"t", "a"}), Row(), {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(5));
}

TEST_F(ExpressionTest, ResolveLiteralAndParam) {
  std::vector<Value> params = {Value("p0")};
  auto lit = ResolveOperand(sql::Operand::Lit(Value(9)), Row(), params);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(*lit, Value(9));
  auto par = ResolveOperand(sql::Operand::Param(0), Row(), params);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*par, Value("p0"));
}

TEST_F(ExpressionTest, ParamOutOfRangeFails) {
  EXPECT_FALSE(ResolveOperand(sql::Operand::Param(3), Row(), {}).ok());
}

TEST_F(ExpressionTest, UnknownColumnFails) {
  EXPECT_FALSE(ResolveOperand(sql::Operand::Col({"t", "zz"}), Row(), {}).ok());
}

TEST_F(ExpressionTest, CompareOperators) {
  EXPECT_TRUE(CompareValues(sql::CompareOp::kEq, Value(1), Value(1)));
  EXPECT_TRUE(CompareValues(sql::CompareOp::kNe, Value(1), Value(2)));
  EXPECT_TRUE(CompareValues(sql::CompareOp::kLt, Value(1), Value(2)));
  EXPECT_TRUE(CompareValues(sql::CompareOp::kLe, Value(2), Value(2)));
  EXPECT_TRUE(CompareValues(sql::CompareOp::kGt, Value(3), Value(2)));
  EXPECT_TRUE(CompareValues(sql::CompareOp::kGe, Value(2), Value(2)));
}

TEST_F(ExpressionTest, NullComparesFalse) {
  // SQL three-valued logic collapses to false for our conjunctions.
  EXPECT_FALSE(CompareValues(sql::CompareOp::kEq, Value(), Value()));
  EXPECT_FALSE(CompareValues(sql::CompareOp::kNe, Value(), Value(1)));
}

TEST_F(ExpressionTest, EvalPredicateAgainstRow) {
  sql::Predicate p;
  p.lhs = sql::Operand::Col({"t", "a"});
  p.op = sql::CompareOp::kGt;
  p.rhs = sql::Operand::Lit(Value(3));
  auto r = EvalPredicate(p, Row(), {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(ExpressionTest, EvalAllShortCircuits) {
  sql::Predicate yes;
  yes.lhs = sql::Operand::Lit(Value(1));
  yes.rhs = sql::Operand::Lit(Value(1));
  sql::Predicate no;
  no.lhs = sql::Operand::Lit(Value(1));
  no.rhs = sql::Operand::Lit(Value(2));
  auto row = Row();
  auto both = EvalAll({&yes, &no}, row, {});
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(*both);
  auto one = EvalAll({&yes}, row, {});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(*one);
}

TEST_F(ExpressionTest, NullColumnMakesPredicateFalse) {
  sql::Predicate p;
  p.lhs = sql::Operand::Col({"t", "b"});  // NULL slot
  p.rhs = sql::Operand::Lit(Value(1));
  auto r = EvalPredicate(p, Row(), {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

}  // namespace
}  // namespace synergy::exec
