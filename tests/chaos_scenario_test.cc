// Chaos scenario suite: write storms against hot rows under injected faults
// (slave crashes, dropped lock releases, region-RPC loss, region-server
// outages, WAL failures), asserting after every recovery that each
// materialized view equals the join of its base tables and no dirty marks
// or orphaned locks remain.
//
// Every scenario is deterministic in a single seed. A failing run prints
// the seed; replay it with SYNERGY_TEST_SEED=<n> (see docs/TESTING.md).
// SYNERGY_CHAOS_ITERS=<k> multiplies the round count (nightly CI).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "company_fixture.h"
#include "synergy/synergy_system.h"
#include "synergy/view_audit.h"
#include "systems/synergy_wrapper.h"
#include "testing/fault_injector.h"
#include "tpcw/generator.h"
#include "tpcw/workload.h"

namespace synergy::core {
namespace {

using fault::FaultPoint;

/// True for the errors a client legitimately sees during a fault storm:
/// crashed/unreachable slaves, lock-acquisition timeouts against locks a
/// dead slave still holds, and overload rejections (admission sheds, full
/// slave queues, open circuit breakers) while a burst drains.
bool TolerableStormError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kAborted ||
         status.code() == StatusCode::kResourceExhausted;
}

class ChaosScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots(),
                                 .txn_slaves = 2});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    for (int a = 1; a <= 6; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("s" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)}, {"DName", Value("d")}})
                      .ok());
    }
    for (int e = 1; e <= 4; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("e" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(5)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
  }

  /// One injector per scenario, seeded from SYNERGY_TEST_SEED (or the
  /// scenario default). Rounds scale with SYNERGY_CHAOS_ITERS.
  void InstallInjector(uint64_t default_seed) {
    seed_ = fault::TestSeedFromEnv(default_seed);
    faults_ = std::make_unique<fault::FaultInjector>(seed_);
    system_->SetFaultInjector(faults_.get());
    rng_ = std::make_unique<Rng>(seed_);
    rounds_ = 3 * fault::ChaosScaleFromEnv();
  }

  std::string ReplayHint() const {
    return "replay with SYNERGY_TEST_SEED=" + std::to_string(seed_) + "; " +
           faults_->Report();
  }

  /// Hot-row write storm: random inserts/deletes/updates on Works_On plus
  /// Employee renames, all against the same handful of rows. Crashed or
  /// lock-blocked writes are expected; any other failure is a bug.
  void Storm(int ops) {
    hbase::Session s(&cluster_);
    for (int op = 0; op < ops; ++op) {
      const int eid = static_cast<int>(rng_->Uniform(1, 4));
      const int pno = static_cast<int>(rng_->Uniform(1, 5));
      Status status = Status::Ok();
      switch (rng_->Next() % 4) {
        case 0:
          status = Write("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                         "VALUES (?, ?, ?)",
                         {Value(eid), Value(pno),
                          Value(static_cast<int>(rng_->Uniform(1, 99)))});
          break;
        case 1:
          status = Write("DELETE FROM Works_On WHERE WO_EID = ? AND "
                         "WO_PNo = ?",
                         {Value(eid), Value(pno)});
          break;
        case 2:
          status = Write("UPDATE Works_On SET Hours = ? WHERE WO_EID = ? "
                         "AND WO_PNo = ?",
                         {Value(static_cast<int>(rng_->Uniform(1, 99))),
                          Value(eid), Value(pno)});
          break;
        case 3:
          status = Write("UPDATE Employee SET EName = ? WHERE EID = ?",
                         {Value("r" + std::to_string(op)), Value(eid)});
          break;
      }
      ASSERT_TRUE(status.ok() || TolerableStormError(status))
          << status << "\n" << ReplayHint();
    }
  }

  Status Write(const std::string& sql, std::vector<Value> params) {
    hbase::Session s(&cluster_);
    if (storm_policy_.has_value()) s.SetRetryPolicy(*storm_policy_);
    return WriteOn(s, sql, std::move(params));
  }

  /// Workload read on a fresh session (dirty-read detection is on for
  /// SynergySystem reads, so kDirtyReadRestart faults land here).
  Status Read(const std::string& workload_id, std::vector<Value> params) {
    const sql::WorkloadStatement* stmt =
        system_->workload().Find(workload_id);
    if (stmt == nullptr) return Status::NotFound(workload_id);
    hbase::Session s(&cluster_);
    if (storm_policy_.has_value()) s.SetRetryPolicy(*storm_policy_);
    return system_
        ->ExecuteRead(s, std::get<sql::SelectStatement>(stmt->ast), params)
        .status();
  }

  /// Thread-safe write: parses into a stack-local statement and executes on
  /// the caller's session, so concurrent clients share no test state.
  Status WriteOn(hbase::Session& session, const std::string& sql,
                 std::vector<Value> params) {
    const sql::Statement stmt = sql::MustParse(sql);
    return system_->ExecuteWrite(session, stmt, params).status();
  }

  /// Multi-client storm: `clients` worker threads hammer the same hot
  /// Works_On / Employee rows (and thus race for the same root locks) while
  /// the armed faults fire. Each client gets its own session and its own
  /// RNG stream (seed_ ^ client), so the per-client workload replays from
  /// the scenario seed even though the interleaving varies; the assertions
  /// below are interleaving-independent invariants. gtest assertions are
  /// not thread-safe off the main thread, so workers collect intolerable
  /// statuses and the main thread reports them after the join.
  void ConcurrentStorm(int clients, int ops_per_client) {
    std::vector<std::vector<Status>> intolerable(clients);
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([this, c, ops_per_client, &intolerable] {
        Rng rng(seed_ ^ static_cast<uint64_t>(c + 1));
        hbase::Session session(&cluster_);
        for (int op = 0; op < ops_per_client; ++op) {
          const int eid = static_cast<int>(rng.Uniform(1, 4));
          const int pno = static_cast<int>(rng.Uniform(1, 5));
          Status status = Status::Ok();
          switch (rng.Next() % 4) {
            case 0:
              status = WriteOn(session,
                               "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                               "VALUES (?, ?, ?)",
                               {Value(eid), Value(pno),
                                Value(static_cast<int>(rng.Uniform(1, 99)))});
              break;
            case 1:
              status = WriteOn(session,
                               "DELETE FROM Works_On WHERE WO_EID = ? AND "
                               "WO_PNo = ?",
                               {Value(eid), Value(pno)});
              break;
            case 2:
              status = WriteOn(session,
                               "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? "
                               "AND WO_PNo = ?",
                               {Value(static_cast<int>(rng.Uniform(1, 99))),
                                Value(eid), Value(pno)});
              break;
            case 3:
              status = WriteOn(session,
                               "UPDATE Employee SET EName = ? WHERE EID = ?",
                               {Value("c" + std::to_string(c) + "_" +
                                      std::to_string(op)),
                                Value(eid)});
              break;
          }
          if (!status.ok() && !TolerableStormError(status)) {
            intolerable[c].push_back(status);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (int c = 0; c < clients; ++c) {
      for (const Status& status : intolerable[c]) {
        ADD_FAILURE() << "client " << c << ": " << status << "\n"
                      << ReplayHint();
      }
    }
  }

  /// Pumps heartbeat rounds until every region sits on a live server (dead
  /// servers' regions reassigned, crashed stores replayed). No-op when the
  /// cluster is healthy; bounded so a stuck failover fails the audit below
  /// instead of hanging the test.
  void DrainFailover() {
    for (int i = 0; i < 256; ++i) {
      bool all_live = true;
      for (const hbase::Region* region : cluster_.AllRegions()) {
        if (cluster_.failover().state(region->server_id()) !=
            hbase::ServerState::kLive) {
          all_live = false;
          break;
        }
      }
      if (all_live) return;
      cluster_.failover().PumpVirtualTime(
          64 * cluster_.failover().config().us_per_tick);
    }
  }

  /// After an overload storm, residual burst phantoms stay on a server's
  /// admission books until real ops drain them (one per completion or per
  /// shed decision). Quiesce the way an operator would — trickle cheap
  /// probes until the books are empty — so recovery and the audit run on a
  /// calm cluster instead of being shed themselves. Bounded: every probe
  /// drains at least one phantom, so the loop always terminates.
  void DrainOverloadBacklog() {
    if (cluster_.admission() == nullptr) return;
    for (int probe = 0; probe < 1024; ++probe) {
      bool busy = false;
      for (int sid = 0; sid < cluster_.num_region_servers(); ++sid) {
        if (cluster_.admission()->Occupancy(sid) > 0) {
          busy = true;
          break;
        }
      }
      if (!busy) return;
      hbase::Session s(&cluster_);
      (void)cluster_.Get(s, "Employee", "overload-drain-probe");
    }
  }

  /// Disarms all faults, runs master failover + WAL replay, then audits
  /// every view against its defining base join and checks that writes make
  /// progress again (no orphaned locks, live slaves).
  void RecoverAndAudit() {
    faults_->DisarmAll();
    DrainOverloadBacklog();
    DrainFailover();
    hbase::Session s(&cluster_);
    ASSERT_TRUE(system_->txn_layer()
                    ->DetectAndRecover(
                        s,
                        [&](hbase::Session& rs, const std::string& payload) {
                          return system_->ReplayPayload(rs, payload);
                        })
                    .ok())
        << ReplayHint();
    auto report = AuditViewConsistency(s, system_->adapter());
    ASSERT_TRUE(report.ok()) << report.status() << "\n" << ReplayHint();
    EXPECT_TRUE(report->consistent())
        << report->ToString() << ReplayHint();
    // Post-recovery progress: a write to the hottest root must succeed.
    const Status progress =
        Write("UPDATE Employee SET EName = ? WHERE EID = ?",
              {Value("recovered"), Value(1)});
    EXPECT_TRUE(progress.ok()) << progress << "\n" << ReplayHint();
  }

  /// Deterministic single-point scenario: each round lets a few writes
  /// pass, fires the fault, keeps storming, then recovers and audits.
  void RunDeterministicScenario(FaultPoint point, uint64_t default_seed) {
    InstallInjector(default_seed);
    for (int round = 0; round < rounds_; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      faults_->Arm(point, /*skip_hits=*/round, /*max_fires=*/2);
      Storm(30);
      RecoverAndAudit();
    }
  }

  /// Probabilistic scenario: every hit of `point` fires with `probability`
  /// (optionally filtered), drawn from the seeded RNG.
  void RunProbabilisticScenario(fault::FaultRule rule, uint64_t default_seed) {
    InstallInjector(default_seed);
    for (int round = 0; round < rounds_; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      faults_->AddRule(rule);
      Storm(30);
      RecoverAndAudit();
    }
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::unique_ptr<Rng> rng_;
  uint64_t seed_ = 0;
  int rounds_ = 1;
  /// When set, every storm session carries this retry policy (failover
  /// scenarios: clients are expected to ride out the outage).
  std::optional<hbase::RetryPolicy> storm_policy_;
};

// --- Scenario 1: slave dies holding the root lock, before the body runs.
TEST_F(ChaosScenarioTest, CrashBeforeExecuteStorm) {
  RunDeterministicScenario(FaultPoint::kCrashBeforeExecute, 101);
}

// --- Scenario 2: slave dies right after the WAL append (no lock held).
TEST_F(ChaosScenarioTest, CrashAfterWalAppendStorm) {
  RunDeterministicScenario(FaultPoint::kCrashAfterWalAppend, 102);
}

// --- Scenario 3: the lock-release RPC is lost after a successful body.
TEST_F(ChaosScenarioTest, DropLockReleaseStorm) {
  RunDeterministicScenario(FaultPoint::kDropLockRelease, 103);
}

// --- Scenario 4: WAL appends fail (writes rejected before any state
// change); the system must stay consistent and keep accepting writes.
TEST_F(ChaosScenarioTest, WalAppendFailureStorm) {
  RunDeterministicScenario(FaultPoint::kWalAppendFailure, 104);
}

// --- Scenario 5: store RPCs are randomly lost before reaching the region;
// mid-body losses kill the slave, which must heal via WAL replay.
TEST_F(ChaosScenarioTest, RegionRpcFailureStorm) {
  fault::FaultRule rule;
  rule.point = FaultPoint::kRegionRpcFailure;
  rule.probability = 0.03;
  RunProbabilisticScenario(rule, 105);
}

// --- Scenario 6: mutations are applied but their acknowledgements are
// lost; replay must be idempotent over the already-applied writes.
TEST_F(ChaosScenarioTest, RegionRpcAckLostStorm) {
  fault::FaultRule rule;
  rule.point = FaultPoint::kRegionRpcAckLost;
  rule.probability = 0.05;
  RunProbabilisticScenario(rule, 106);
}

// --- Scenario 7: a whole region server goes dark (every RPC to its regions
// fails) while writers hammer the hot rows; after the outage the views must
// equal their joins again.
TEST_F(ChaosScenarioTest, RegionServerOutage) {
  fault::FaultRule rule;
  rule.point = FaultPoint::kRegionRpcFailure;
  rule.server_id = 1;
  RunProbabilisticScenario(rule, 107);
}

// --- Scenario 8: faults aimed only at the lock tables (the hierarchical
// locking machinery itself is the failure domain).
TEST_F(ChaosScenarioTest, LockTableRpcFailureStorm) {
  fault::FaultRule rule;
  rule.point = FaultPoint::kRegionRpcFailure;
  rule.probability = 0.2;
  rule.table_prefix = "__lock_";
  RunProbabilisticScenario(rule, 108);
}

// --- Scenario 9: three clients race for the same root locks while slaves
// crash before executing the body (the lock is leaked on purpose) and after
// the WAL append; recovery must release the orphaned locks and restore view
// consistency no matter which client's write was in flight.
TEST_F(ChaosScenarioTest, MultiClientSlaveCrashStorm) {
  InstallInjector(109);
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    for (const FaultPoint point :
         {FaultPoint::kCrashBeforeExecute, FaultPoint::kCrashAfterWalAppend}) {
      fault::FaultRule rule;
      rule.point = point;
      rule.probability = 0.04;
      faults_->AddRule(rule);
    }
    ConcurrentStorm(/*clients=*/3, /*ops_per_client=*/20);
    RecoverAndAudit();
  }
}

// --- Scenario 10: concurrent clients under request loss — store RPCs are
// randomly dropped while two sessions contend on the hot rows; mid-body
// losses kill the slave under one client while the other keeps writing.
TEST_F(ChaosScenarioTest, MultiClientRequestLostStorm) {
  InstallInjector(110);
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    fault::FaultRule rule;
    rule.point = FaultPoint::kRegionRpcFailure;
    rule.probability = 0.03;
    faults_->AddRule(rule);
    ConcurrentStorm(/*clients=*/2, /*ops_per_client=*/25);
    RecoverAndAudit();
  }
}

// --- Scenario 11: the lock-release RPC is dropped under concurrency: a
// client finishes its body but leaves the root lock held, blocking the
// other clients (they see tolerable lock timeouts) until recovery releases
// the orphans.
TEST_F(ChaosScenarioTest, MultiClientDropLockReleaseStorm) {
  InstallInjector(111);
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    fault::FaultRule rule;
    rule.point = FaultPoint::kDropLockRelease;
    rule.probability = 0.05;
    faults_->AddRule(rule);
    ConcurrentStorm(/*clients=*/3, /*ops_per_client=*/20);
    RecoverAndAudit();
  }
}

// --- Scenario 13: a region server crashes (store wiped) in the middle of
// the write storm. Clients carry a retry policy, so the outage must be
// absorbed: failure detection, lease expiry, region reassignment and WAL
// replay all run inside the clients' backoffs, and the audit proves no
// acknowledged write was lost.
TEST_F(ChaosScenarioTest, RegionServerCrashFailoverStorm) {
  InstallInjector(113);
  // Faster detection so one storm's RPC stream spans the whole failover.
  hbase::FailoverConfig fo;
  fo.heartbeat_every_rpcs = 8;
  fo.lease_missed_rounds = 2;
  cluster_.ConfigureFailover(fo);
  storm_policy_ = hbase::RetryPolicy{};
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    faults_->AddRule({.point = FaultPoint::kRegionServerCrash,
                      .probability = 1.0,
                      .skip_hits = round,
                      .max_fires = 1,
                      .table_prefix = "",
                      .server_id = round % 2 == 0 ? 1 : 2});
    Storm(40);
    RecoverAndAudit();
  }
}

// --- Scenario 14: heartbeat loss (server alive but silent). The lease
// expires, regions move *without* replay (store intact), and reads in the
// window are served degraded rather than failing.
TEST_F(ChaosScenarioTest, HeartbeatLossFencingStorm) {
  InstallInjector(114);
  hbase::FailoverConfig fo;
  fo.heartbeat_every_rpcs = 8;
  fo.lease_missed_rounds = 2;
  cluster_.ConfigureFailover(fo);
  storm_policy_ = hbase::RetryPolicy{};
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    fault::FaultRule rule;
    rule.point = FaultPoint::kHeartbeatLoss;
    rule.probability = 0.5;  // each live server misses ~half its beats
    faults_->AddRule(rule);
    Storm(40);
    RecoverAndAudit();
    EXPECT_EQ(cluster_.failover().stats().crashes, 0)
        << "heartbeat loss must fence, not crash\n" << ReplayHint();
  }
}

// --- Scenario 15: RPCs time out in flight (request never reached the
// region). Without retries a mid-body timeout kills the slave; with the
// storm policy the root-level SubmitWrite retry must absorb it, auto-
// recovering drained slaves between attempts.
TEST_F(ChaosScenarioTest, RpcTimeoutStorm) {
  storm_policy_ = hbase::RetryPolicy{};
  fault::FaultRule rule;
  rule.point = FaultPoint::kRpcTimeout;
  rule.probability = 0.03;
  RunProbabilisticScenario(rule, 115);
}

// --- Scenario 16: dirty-read restarts forced mid-failover: reads hit the
// MVCC restart loop (as if a concurrent root txn marked their rows) while a
// region server is down, so restarted scans also ride the retry path.
TEST_F(ChaosScenarioTest, DirtyReadRestartMidFailover) {
  InstallInjector(116);
  hbase::FailoverConfig fo;
  fo.heartbeat_every_rpcs = 8;
  fo.lease_missed_rounds = 2;
  cluster_.ConfigureFailover(fo);
  storm_policy_ = hbase::RetryPolicy{};
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    faults_->AddRule({.point = FaultPoint::kRegionServerCrash,
                      .probability = 1.0,
                      .skip_hits = round,
                      .max_fires = 1,
                      .table_prefix = "",
                      .server_id = 1});
    fault::FaultRule restart;
    restart.point = FaultPoint::kDirtyReadRestart;
    restart.probability = 0.2;
    faults_->AddRule(restart);
    for (int op = 0; op < 20; ++op) {
      // Interleave the hot-row writes with workload joins; the restart
      // fault only has teeth on the read path (detect_dirty scans).
      Storm(2);
      const Status read =
          Read("W2", {Value(static_cast<int>(rng_->Uniform(1, 2)))});
      ASSERT_TRUE(read.ok() || TolerableStormError(read))
          << read << "\n" << ReplayHint();
    }
    RecoverAndAudit();
  }
}

// --- Scenario 17: synthetic load bursts slam the serving region servers
// while clients hammer the hot rows. Admission control queues or sheds the
// overflow (tolerable kResourceExhausted — never retried), oversized bursts
// drain through completed ops and shed decisions instead of wedging a
// server, and after the storm the views are consistent and writes make
// progress: overload may degrade service, never correctness.
TEST_F(ChaosScenarioTest, OverloadBurstSheddingStorm) {
  InstallInjector(117);
  hbase::AdmissionConfig admission;
  admission.enabled = true;
  admission.max_inflight_per_server = 2;
  admission.max_queue_depth = 4;
  admission.est_service_us = 500.0;
  admission.burst_ops = 12;  // wider than inflight+queue: sheds must drain it
  cluster_.ConfigureAdmission(admission);
  storm_policy_ = hbase::RetryPolicy{};
  for (int round = 0; round < rounds_; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    fault::FaultRule rule;
    rule.point = FaultPoint::kOverloadBurst;
    rule.probability = 0.05;  // ~one burst per handful of admitted RPCs
    faults_->AddRule(rule);
    Storm(30);
    RecoverAndAudit();
  }
  const hbase::AdmissionStats stats = cluster_.admission()->stats();
  EXPECT_GT(stats.burst_ops_injected, 0) << ReplayHint();
  EXPECT_GT(stats.queued + stats.shed_queue_full + stats.shed_deadline, 0)
      << "the bursts must actually have displaced real traffic\n"
      << ReplayHint();
}

// --- Scenario 12: TPC-W write storm (W1-W13 hot-row traffic) under a mix of
// every fault point at once, on the full paper schema with views.
TEST(ChaosTpcwTest, MixedFaultWriteStorm) {
  systems::SynergyWrapper wrapper;
  tpcw::ScaleConfig scale;
  scale.num_customers = 20;
  ASSERT_TRUE(wrapper.Setup(scale).ok());

  const uint64_t seed = fault::TestSeedFromEnv(20170904);
  fault::FaultInjector faults(seed);
  wrapper.system()->SetFaultInjector(&faults);
  tpcw::ParamProvider params(scale, seed);
  const std::vector<std::string> writes = tpcw::WriteStatementIds();
  hbase::Session s(wrapper.system()->adapter()->cluster());
  const std::string hint = "replay with SYNERGY_TEST_SEED=" +
                           std::to_string(seed);

  const int rounds = 3 * fault::ChaosScaleFromEnv();
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    for (const FaultPoint point :
         {FaultPoint::kCrashBeforeExecute, FaultPoint::kCrashAfterWalAppend,
          FaultPoint::kDropLockRelease, FaultPoint::kRegionRpcFailure,
          FaultPoint::kRegionRpcAckLost, FaultPoint::kWalAppendFailure}) {
      fault::FaultRule rule;
      rule.point = point;
      rule.probability = 0.02;
      faults.AddRule(rule);
    }
    for (int rep = 0; rep < 2; ++rep) {
      for (const std::string& stmt_id : writes) {
        auto p = params.ParamsFor(stmt_id);
        ASSERT_TRUE(p.ok()) << stmt_id;
        auto result = wrapper.Execute(stmt_id, *p);
        ASSERT_TRUE(result.ok() || TolerableStormError(result.status()))
            << stmt_id << ": " << result.status() << "\n" << hint << "; "
            << faults.Report();
      }
    }
    faults.DisarmAll();
    ASSERT_TRUE(wrapper.system()
                    ->txn_layer()
                    ->DetectAndRecover(
                        s,
                        [&](hbase::Session& rs, const std::string& payload) {
                          return wrapper.system()->ReplayPayload(rs, payload);
                        })
                    .ok())
        << hint << "; " << faults.Report();
    auto report = AuditViewConsistency(s, wrapper.system()->adapter());
    ASSERT_TRUE(report.ok()) << report.status() << "\n" << hint;
    EXPECT_TRUE(report->consistent())
        << report->ToString() << hint << "; " << faults.Report();
  }
}

}  // namespace
}  // namespace synergy::core
