// Validates the §V mechanism against the paper's Company example
// (Figures 4 and 5).
#include "synergy/candidate_views.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "company_fixture.h"

namespace synergy::core {
namespace {

class CandidateViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::CompanyCatalog();
    workload_ = testing::CompanyWorkload();
    graph_ = SchemaGraph::FromCatalog(catalog_);
  }
  sql::Catalog catalog_;
  sql::Workload workload_;
  SchemaGraph graph_;
};

TEST_F(CandidateViewsTest, SchemaGraphHasAllRelationsAndEdges) {
  EXPECT_EQ(graph_.relations().size(), 7u);
  // 9 FK edges total (Employee has 3, Works_On 2, Dependent 2, DL 1, P 1).
  EXPECT_EQ(graph_.edges().size(), 9u);
  // Parallel edges Address->Employee (home + office).
  size_t addr_emp = 0;
  for (const SchemaEdge& e : graph_.edges()) {
    if (e.parent == "Address" && e.child == "Employee") ++addr_emp;
  }
  EXPECT_EQ(addr_emp, 2u);
}

TEST_F(CandidateViewsTest, EdgeWeightsFollowWorkload) {
  SchemaEdge home{"Address", "Employee", {{"EHome_AID"}, "Address"}};
  SchemaEdge office{"Address", "Employee", {{"EOffice_AID"}, "Address"}};
  SchemaEdge ewo{"Employee", "Works_On", {{"WO_EID"}, "Employee"}};
  EXPECT_EQ(EdgeWeight(home, workload_, catalog_), 1.0);   // W1
  EXPECT_EQ(EdgeWeight(office, workload_, catalog_), 0.0);
  EXPECT_EQ(EdgeWeight(ewo, workload_, catalog_), 2.0);    // W2 + W3
}

TEST_F(CandidateViewsTest, QueryJoinEdgeExtraction) {
  const auto& w2 = std::get<sql::SelectStatement>(
      workload_.Find("W2")->ast);
  auto joins = ExtractJoinEdges(w2, catalog_);
  ASSERT_EQ(joins.size(), 2u);
  std::set<std::string> labels;
  for (const auto& j : joins) labels.insert(j.edge.parent + ">" + j.edge.child);
  EXPECT_TRUE(labels.contains("Department>Employee"));
  EXPECT_TRUE(labels.contains("Employee>Works_On"));
}

TEST_F(CandidateViewsTest, NonKeyJoinsAreIgnored) {
  sql::Workload w;
  // Equi join on non-key columns: not a key/foreign-key join.
  ASSERT_TRUE(w.Add("X",
                    "SELECT * FROM Employee as e, Dependent as d "
                    "WHERE e.EName = d.DPName")
                  .ok());
  const auto& stmt = std::get<sql::SelectStatement>(w.statements[0].ast);
  EXPECT_TRUE(ExtractJoinEdges(stmt, catalog_).empty());
}

TEST_F(CandidateViewsTest, RootedTreesMatchPaperFigure4b) {
  auto result = GenerateCandidateViews(graph_, workload_, catalog_,
                                       testing::CompanyRoots());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->trees.size(), 2u);
  const RootedTree* address = nullptr;
  const RootedTree* department = nullptr;
  for (const RootedTree& t : result->trees) {
    if (t.root() == "Address") address = &t;
    if (t.root() == "Department") department = &t;
  }
  ASSERT_NE(address, nullptr);
  ASSERT_NE(department, nullptr);

  // Address tree: A -> E (via EHome_AID), E -> WO, E -> DP.
  EXPECT_TRUE(address->Contains("Employee"));
  EXPECT_TRUE(address->Contains("Works_On"));
  EXPECT_TRUE(address->Contains("Dependent"));
  const TreeEdge* ae = address->EdgeTo("Employee");
  ASSERT_NE(ae, nullptr);
  EXPECT_EQ(ae->fk.columns, std::vector<std::string>{"EHome_AID"});
  EXPECT_EQ(*address->ParentOf("Works_On"), "Employee");
  EXPECT_EQ(*address->ParentOf("Dependent"), "Employee");

  // Department tree: D -> DL, D -> P.
  EXPECT_TRUE(department->Contains("Department_Location"));
  EXPECT_TRUE(department->Contains("Project"));
  EXPECT_FALSE(department->Contains("Employee"));
  EXPECT_FALSE(department->Contains("Works_On"));

  EXPECT_TRUE(result->unassigned.empty());
}

TEST_F(CandidateViewsTest, EachRelationInAtMostOneTree) {
  auto result = GenerateCandidateViews(graph_, workload_, catalog_,
                                       testing::CompanyRoots());
  ASSERT_TRUE(result.ok());
  std::map<std::string, int> membership;
  for (const RootedTree& t : result->trees) {
    for (const std::string& rel : t.Members()) membership[rel] += 1;
  }
  for (const auto& [rel, count] : membership) {
    EXPECT_EQ(count, 1) << rel << " is in " << count << " trees";
  }
}

TEST_F(CandidateViewsTest, TreesHaveUniquePaths) {
  auto result = GenerateCandidateViews(graph_, workload_, catalog_,
                                       testing::CompanyRoots());
  ASSERT_TRUE(result.ok());
  for (const RootedTree& t : result->trees) {
    for (const std::string& rel : t.Members()) {
      if (rel == t.root()) continue;
      const auto path = t.PathFromRoot(rel);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), t.root());
      EXPECT_EQ(path.back(), rel);
    }
  }
}

TEST_F(CandidateViewsTest, PathFromRootWalksTheChain) {
  auto result = GenerateCandidateViews(graph_, workload_, catalog_,
                                       testing::CompanyRoots());
  ASSERT_TRUE(result.ok());
  for (const RootedTree& t : result->trees) {
    if (t.root() != "Address") continue;
    const auto path = t.PathFromRoot("Works_On");
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], "Address");
    EXPECT_EQ(path[1], "Employee");
    EXPECT_EQ(path[2], "Works_On");
  }
}

TEST_F(CandidateViewsTest, CandidatePathEnumeration) {
  RootedTree tree("R1");
  tree.AddEdge({"R1", "R2", {{"fk2"}, "R1"}, 1});
  tree.AddEdge({"R2", "R3", {{"fk3"}, "R2"}, 1});
  tree.AddEdge({"R2", "R5", {{"fk5"}, "R2"}, 1});
  auto paths = EnumerateCandidatePaths(tree);
  // Paths (>=2 nodes): R1-R2, R1-R2-R3, R1-R2-R5, R2-R3, R2-R5.
  EXPECT_EQ(paths.size(), 5u);
}

TEST_F(CandidateViewsTest, UnknownRootFails) {
  auto result =
      GenerateCandidateViews(graph_, workload_, catalog_, {"Nope"});
  EXPECT_FALSE(result.ok());
}

TEST_F(CandidateViewsTest, CycleDetection) {
  sql::Catalog cat;
  ASSERT_TRUE(cat.AddRelation({.name = "A",
                               .columns = {{"a_id", DataType::kInt},
                                           {"a_b", DataType::kInt}},
                               .primary_key = {"a_id"},
                               .foreign_keys = {{{"a_b"}, "B"}}})
                  .ok());
  ASSERT_TRUE(cat.AddRelation({.name = "B",
                               .columns = {{"b_id", DataType::kInt},
                                           {"b_a", DataType::kInt}},
                               .primary_key = {"b_id"},
                               .foreign_keys = {{{"b_a"}, "A"}}})
                  .ok());
  SchemaGraph g = SchemaGraph::FromCatalog(cat);
  sql::Workload empty;
  auto result = GenerateCandidateViews(g, empty, cat, {"A"});
  EXPECT_FALSE(result.ok());
}

TEST_F(CandidateViewsTest, RelationUnreachableFromRootsIsUnassigned) {
  // Only Department as root: Address/Employee subtree partially unreachable.
  auto result =
      GenerateCandidateViews(graph_, workload_, catalog_, {"Department"});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->unassigned.empty());
  // Address has no incoming edges from Department.
  EXPECT_NE(std::find(result->unassigned.begin(), result->unassigned.end(),
                      "Address"),
            result->unassigned.end());
}

}  // namespace
}  // namespace synergy::core
