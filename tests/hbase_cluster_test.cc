#include "hbase/cluster.h"

#include <gtest/gtest.h>

#include <utility>

#include "testing/fault_injector.h"

namespace synergy::hbase {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "t"}).ok());
  }
  Cluster cluster_;
};

TEST_F(ClusterTest, CreateTableTwiceFails) {
  EXPECT_EQ(cluster_.CreateTable({.name = "t"}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ClusterTest, DropTable) {
  EXPECT_TRUE(cluster_.DropTable("t").ok());
  EXPECT_FALSE(cluster_.HasTable("t"));
  EXPECT_EQ(cluster_.DropTable("t").code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, PutGetChargesVirtualTime) {
  Session s(&cluster_);
  ASSERT_TRUE(cluster_.Put(s, "t", "row1", {{"a", "1"}}).ok());
  const double after_put = s.meter().micros();
  EXPECT_GT(after_put, 0.0);
  auto row = cluster_.Get(s, "t", "row1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->columns.at("a"), "1");
  EXPECT_GT(s.meter().micros(), after_put);
}

TEST_F(ClusterTest, GetMissingRowIsNotFound) {
  Session s(&cluster_);
  EXPECT_EQ(cluster_.Get(s, "t", "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ClusterTest, OpsOnMissingTableFail) {
  Session s(&cluster_);
  EXPECT_FALSE(cluster_.Put(s, "zz", "r", {{"a", "1"}}).ok());
  EXPECT_FALSE(cluster_.Get(s, "zz", "r").ok());
  EXPECT_FALSE(cluster_.OpenScanner(s, "zz").ok());
}

TEST_F(ClusterTest, DeleteRemovesRow) {
  Session s(&cluster_);
  ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
  ASSERT_TRUE(cluster_.Delete(s, "t", "r").ok());
  EXPECT_FALSE(cluster_.Get(s, "t", "r").ok());
}

TEST_F(ClusterTest, ScannerIteratesInKeyOrder) {
  Session s(&cluster_);
  for (const char* k : {"c", "a", "b"}) {
    ASSERT_TRUE(cluster_.Put(s, "t", k, {{"v", k}}).ok());
  }
  auto scanner = cluster_.OpenScanner(s, "t");
  ASSERT_TRUE(scanner.ok());
  std::vector<std::string> keys;
  RowResult row;
  while (scanner->Next(&row)) keys.push_back(row.row_key);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(ClusterTest, ScannerHonorsRange) {
  Session s(&cluster_);
  for (const char* k : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(cluster_.Put(s, "t", k, {{"v", k}}).ok());
  }
  auto scanner = cluster_.OpenScanner(s, "t", "b", "d");
  ASSERT_TRUE(scanner.ok());
  std::vector<std::string> keys;
  RowResult row;
  while (scanner->Next(&row)) keys.push_back(row.row_key);
  EXPECT_EQ(keys, (std::vector<std::string>{"b", "c"}));
}

TEST_F(ClusterTest, ScannerCrossesPresplitRegions) {
  ASSERT_TRUE(cluster_.CreateTable({.name = "split"}, {"g", "p"}).ok());
  Session s(&cluster_);
  for (const char* k : {"a", "h", "q", "z", "g", "p"}) {
    ASSERT_TRUE(cluster_.Put(s, "split", k, {{"v", k}}).ok());
  }
  auto scanner = cluster_.OpenScanner(s, "split");
  ASSERT_TRUE(scanner.ok());
  std::vector<std::string> keys;
  RowResult row;
  while (scanner->Next(&row)) keys.push_back(row.row_key);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "g", "h", "p", "q", "z"}));
}

TEST_F(ClusterTest, ScanCostScalesWithRows) {
  Session s(&cluster_);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        cluster_.Put(s, "t", "k" + std::to_string(1000 + i), {{"v", "x"}})
            .ok());
  }
  s.meter().Reset();
  auto scanner = cluster_.OpenScanner(s, "t");
  ASSERT_TRUE(scanner.ok());
  RowResult row;
  while (scanner->Next(&row)) {
  }
  const double cost100 = s.meter().micros();

  Session s2(&cluster_);
  auto sc2 = cluster_.OpenScanner(s2, "t", "k1000", "k1010");
  ASSERT_TRUE(sc2.ok());
  while (sc2->Next(&row)) {
  }
  EXPECT_GT(cost100, s2.meter().micros());
}

TEST_F(ClusterTest, CheckAndPutAcquireRelease) {
  Session s(&cluster_);
  auto won = cluster_.CheckAndPut(s, "t", "lockrow", "lock", std::nullopt, "1");
  ASSERT_TRUE(won.ok());
  EXPECT_TRUE(*won);
  auto lost = cluster_.CheckAndPut(s, "t", "lockrow", "lock", std::nullopt, "1");
  ASSERT_TRUE(lost.ok());
  EXPECT_FALSE(*lost);
  auto release = cluster_.CheckAndPut(s, "t", "lockrow", "lock", "1", "0");
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(*release);
}

TEST_F(ClusterTest, IncrementThroughCluster) {
  Session s(&cluster_);
  auto v = cluster_.Increment(s, "t", "ctr", "n", 7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST_F(ClusterTest, MvccReadViewFiltersInFlightWrites) {
  Session writer(&cluster_);
  ASSERT_TRUE(cluster_.Put(writer, "t", "r", {{"a", "committed"}}, 100).ok());
  ASSERT_TRUE(cluster_.Put(writer, "t", "r", {{"a", "inflight"}}, 200).ok());

  Session reader(&cluster_);
  std::vector<int64_t> exclude = {200};
  reader.SetReadView(ReadView{.read_ts = INT64_MAX, .exclude = &exclude});
  auto row = cluster_.Get(reader, "t", "r");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->columns.at("a"), "committed");
}

TEST_F(ClusterTest, SizeReportTracksData) {
  Session s(&cluster_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster_.Put(s, "t", "k" + std::to_string(i),
                             {{"v", "payload-data"}})
                    .ok());
  }
  auto report = cluster_.SizeReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].rows, 10u);
  EXPECT_GT(report[0].bytes, 100u);
  EXPECT_GT(cluster_.TotalBytes(), 0u);
}

TEST_F(ClusterTest, AutoSplitCreatesRegions) {
  ASSERT_TRUE(cluster_
                  .CreateTable({.name = "grow", .split_threshold_rows = 100})
                  .ok());
  Session s(&cluster_);
  for (int i = 0; i < 500; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(cluster_.Put(s, "grow", key, {{"v", "x"}}).ok());
  }
  cluster_.MaybeSplitAll();
  auto report = cluster_.SizeReport();
  for (const auto& info : report) {
    if (info.name == "grow") {
      EXPECT_GT(info.regions, 1u);
      EXPECT_EQ(info.rows, 500u);
    }
  }
  // Scans still see everything, in order, across the split.
  auto scanner = cluster_.OpenScanner(s, "grow");
  ASSERT_TRUE(scanner.ok());
  RowResult row;
  size_t n = 0;
  std::string prev;
  while (scanner->Next(&row)) {
    EXPECT_LT(prev, row.row_key);
    prev = row.row_key;
    ++n;
  }
  EXPECT_EQ(n, 500u);
}

TEST_F(ClusterTest, ScannerErrorIsSurfacedViaStatus) {
  Session s(&cluster_);
  ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
  fault::FaultInjector faults(7);
  faults.Arm(fault::FaultPoint::kRegionRpcFailure, /*skip_hits=*/0,
             /*max_fires=*/1);
  cluster_.SetFaultInjector(&faults);

  auto scanner = cluster_.OpenScanner(s, "t");
  ASSERT_TRUE(scanner.ok());
  RowResult row;
  EXPECT_FALSE(scanner->Next(&row)) << "failed batch must stop the scan";
  EXPECT_EQ(scanner->status().code(), StatusCode::kUnavailable);
  cluster_.SetFaultInjector(nullptr);
}

TEST_F(ClusterTest, ScannerDroppedWithUncheckedErrorAssertsInDebug) {
  Session s(&cluster_);
  ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", "1"}}).ok());
  fault::FaultInjector faults(7);
  cluster_.SetFaultInjector(&faults);

  // Dropping a scanner that hit an error without ever calling status() is
  // the silent-truncation bug; debug builds die in the destructor. (In
  // release builds the statement simply runs, per EXPECT_DEBUG_DEATH.)
  EXPECT_DEBUG_DEATH(
      {
        faults.Arm(fault::FaultPoint::kRegionRpcFailure, 0, 1);
        auto scanner = cluster_.OpenScanner(s, "t");
        if (scanner.ok()) {
          RowResult row;
          scanner->Next(&row);
        }
      },
      "unchecked");

  // Moving a scanner transfers the checking responsibility: the moved-from
  // shell must destruct quietly, the destination still reports the error.
  faults.Arm(fault::FaultPoint::kRegionRpcFailure, 0, 1);
  auto scanner = cluster_.OpenScanner(s, "t");
  ASSERT_TRUE(scanner.ok());
  RowResult row;
  scanner->Next(&row);
  Scanner moved = std::move(*scanner);
  EXPECT_EQ(moved.status().code(), StatusCode::kUnavailable);
  cluster_.SetFaultInjector(nullptr);
}

TEST_F(ClusterTest, MajorCompactionShrinksMultiVersionData) {
  Session s(&cluster_);
  for (int v = 0; v < 10; ++v) {
    ASSERT_TRUE(cluster_.Put(s, "t", "r", {{"a", std::string(100, 'x')}}).ok());
  }
  const size_t before = cluster_.TotalBytes();
  cluster_.MajorCompactAll();
  EXPECT_LT(cluster_.TotalBytes(), before);
}

}  // namespace
}  // namespace synergy::hbase
