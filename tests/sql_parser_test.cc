#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/workload.h"

namespace synergy::sql {
namespace {

TEST(LexerTest, TokenizesSymbolsAndLiterals) {
  auto tokens = Tokenize("a.b = 'x''y', 3 <> 4.5 ?");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[2].text, "b");
  EXPECT_EQ((*tokens)[4].value.as_string(), "x'y");
  EXPECT_EQ(types.back(), TokenType::kEnd);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(LexerTest, NegativeNumbers) {
  auto tokens = Tokenize("-42 -1.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].value.as_int(), -42);
  EXPECT_DOUBLE_EQ((*tokens)[1].value.as_double(), -1.5);
}

TEST(ParserTest, SimpleSelectStar) {
  auto stmt = Parse("SELECT * FROM Customer WHERE c_id = ?");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_TRUE(sel.items[0].star);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].table, "Customer");
  ASSERT_EQ(sel.where.size(), 1u);
  EXPECT_EQ(sel.where[0].lhs.column.column, "c_id");
  EXPECT_EQ(sel.where[0].rhs.kind, Operand::Kind::kParam);
}

TEST(ParserTest, JoinWithAliases) {
  auto stmt = Parse(
      "SELECT * FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id and c.c_uname = ?");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(sel.from.size(), 2u);
  EXPECT_EQ(sel.from[0].alias, "c");
  EXPECT_EQ(sel.from[1].alias, "o");
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_TRUE(sel.where[0].IsEquiJoin());
  EXPECT_FALSE(sel.where[1].IsEquiJoin());
}

TEST(ParserTest, BareAlias) {
  auto stmt = Parse("SELECT c.c_id FROM Customer c WHERE c.c_id = 5");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(sel.from[0].alias, "c");
}

TEST(ParserTest, OrderGroupLimit) {
  auto stmt = Parse(
      "SELECT i_id, SUM(ol_qty) AS qty FROM Item, Order_line "
      "WHERE i_id = ol_i_id GROUP BY i_id ORDER BY qty DESC, i_id LIMIT 50");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[1].output_name, "qty");
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
  EXPECT_EQ(sel.limit, 50);
  EXPECT_TRUE(sel.HasAggregates());
}

TEST(ParserTest, CountStar) {
  auto stmt = Parse("SELECT COUNT(*) FROM Orders");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  EXPECT_TRUE(sel.items[0].count_star);
  EXPECT_EQ(sel.items[0].agg, AggFunc::kCount);
}

TEST(ParserTest, Insert) {
  auto stmt = Parse("INSERT INTO Address (addr_id, addr_street1) VALUES (?, ?)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStatement>(*stmt);
  EXPECT_EQ(ins.table, "Address");
  ASSERT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.values[0].param_index, 0);
  EXPECT_EQ(ins.values[1].param_index, 1);
}

TEST(ParserTest, InsertCountMismatchFails) {
  EXPECT_FALSE(Parse("INSERT INTO T (a, b) VALUES (1)").ok());
}

TEST(ParserTest, Update) {
  auto stmt = Parse("UPDATE Item SET i_cost = ?, i_pub_date = ? WHERE i_id = ?");
  ASSERT_TRUE(stmt.ok());
  const auto& upd = std::get<UpdateStatement>(*stmt);
  EXPECT_EQ(upd.table, "Item");
  ASSERT_EQ(upd.assignments.size(), 2u);
  ASSERT_EQ(upd.where.size(), 1u);
  EXPECT_EQ(CountParams(*stmt), 3);
}

TEST(ParserTest, Delete) {
  auto stmt = Parse(
      "DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?");
  ASSERT_TRUE(stmt.ok());
  const auto& del = std::get<DeleteStatement>(*stmt);
  EXPECT_EQ(del.table, "Shopping_cart_line");
  ASSERT_EQ(del.where.size(), 2u);
}

TEST(ParserTest, SelfJoinWithNotEquals) {
  auto stmt = Parse(
      "SELECT ol.ol_i_id FROM Order_line as ol, Order_line as ol2 "
      "WHERE ol.ol_o_id = ol2.ol_o_id AND ol.ol_i_id <> ol2.ol_i_id");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(sel.from[0].alias, "ol");
  EXPECT_EQ(sel.from[1].alias, "ol2");
  EXPECT_EQ(sel.where[1].op, CompareOp::kNe);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("SELECT * FROM T garbage garbage2 garbage3").ok());
}

TEST(ParserTest, RejectsUnknownStatement) {
  EXPECT_FALSE(Parse("EXPLAIN SELECT 1").ok());
}

TEST(ParserTest, ParamIndicesAssignedInOrder) {
  auto stmt = Parse("SELECT * FROM T WHERE a = ? AND b = ? AND c = ?");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(sel.where[0].rhs.param_index, 0);
  EXPECT_EQ(sel.where[1].rhs.param_index, 1);
  EXPECT_EQ(sel.where[2].rhs.param_index, 2);
  EXPECT_EQ(CountParams(*stmt), 3);
}

TEST(ParserTest, RoundTripToString) {
  const std::string sql =
      "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id";
  auto stmt = Parse(sql);
  ASSERT_TRUE(stmt.ok());
  // Re-parse the printed form; it should be stable.
  auto stmt2 = Parse(StatementToString(*stmt));
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(StatementToString(*stmt), StatementToString(*stmt2));
}

TEST(ParserTest, IsReadStatement) {
  EXPECT_TRUE(IsReadStatement(MustParse("SELECT * FROM T")));
  EXPECT_FALSE(IsReadStatement(MustParse("DELETE FROM T WHERE a = 1")));
}

TEST(WorkloadTest, AddAndFind) {
  Workload w;
  ASSERT_TRUE(w.Add("Q1", "SELECT * FROM T WHERE a = ?").ok());
  ASSERT_TRUE(w.Add("W1", "INSERT INTO T (a) VALUES (?)", 2.0).ok());
  EXPECT_EQ(w.statements.size(), 2u);
  ASSERT_NE(w.Find("W1"), nullptr);
  EXPECT_EQ(w.Find("W1")->frequency, 2.0);
  EXPECT_EQ(w.Find("nope"), nullptr);
}

TEST(WorkloadTest, AddRejectsBadSql) {
  Workload w;
  EXPECT_FALSE(w.Add("bad", "SELEC * FORM T").ok());
}

}  // namespace
}  // namespace synergy::sql
