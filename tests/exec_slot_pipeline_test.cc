// Regression tests for the slot-based row pipeline (PR 4): results must be
// identical to the old map-Tuple executor across the tricky cases — NULL
// join keys, hidden ORDER BY sort columns, GROUP BY over NULL groups,
// covered-index decoding through the slot map, and the bounded-heap top-N
// path vs a full stable sort.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"

namespace synergy::exec {
namespace {

class SlotPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddRelation({.name = "Customer",
                                  .columns = {{"c_id", DataType::kInt},
                                              {"c_uname", DataType::kString},
                                              {"c_city", DataType::kString}},
                                  .primary_key = {"c_id"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddRelation({.name = "Orders",
                                  .columns = {{"o_id", DataType::kInt},
                                              {"o_c_id", DataType::kInt},
                                              {"o_total", DataType::kDouble}},
                                  .primary_key = {"o_id"},
                                  .foreign_keys = {{{"o_c_id"}, "Customer"}}})
                    .ok());
    // Covered order differs from relation column order on purpose: the
    // index-scan slot map must reorder decoded values into relation slots.
    ASSERT_TRUE(catalog_
                    .AddIndex({.name = "ix_c_uname",
                               .relation = "Customer",
                               .indexed_columns = {"c_uname"},
                               .covered_columns = {"c_uname", "c_id", "c_city"},
                               .unique = true})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddIndex({.name = "ix_o_c_id",
                               .relation = "Orders",
                               .indexed_columns = {"o_c_id"},
                               .covered_columns = {"o_c_id", "o_id", "o_total"}})
                    .ok());
    adapter_ = std::make_unique<TableAdapter>(&cluster_, &catalog_);
    for (const char* rel : {"Customer", "Orders"}) {
      ASSERT_TRUE(adapter_->CreateStorage(rel).ok());
    }
    executor_ = std::make_unique<Executor>(adapter_.get());

    hbase::Session s(&cluster_);
    auto customer = [&](int id, const char* uname,
                        std::optional<const char*> city) {
      Tuple t = {{"c_id", Value(id)}, {"c_uname", Value(uname)}};
      if (city.has_value()) t.emplace("c_city", Value(*city));
      ASSERT_TRUE(adapter_->Insert(s, "Customer", t).ok());
    };
    auto order = [&](int id, std::optional<int> c_id, double total) {
      Tuple t = {{"o_id", Value(id)}, {"o_total", Value(total)}};
      if (c_id.has_value()) t.emplace("o_c_id", Value(*c_id));
      ASSERT_TRUE(adapter_->Insert(s, "Orders", t).ok());
    };
    customer(1, "u1", "NYC");
    customer(2, "u2", "SF");
    customer(3, "u3", std::nullopt);  // NULL city
    customer(4, "u4", "NYC");
    customer(5, "u5", std::nullopt);  // NULL city
    order(10, 1, 10.0);
    order(11, 2, 5.5);
    order(12, std::nullopt, 7.0);  // NULL join key
    order(13, 1, 2.5);
    order(14, 4, 1.0);
    order(15, std::nullopt, 9.9);  // NULL join key
  }

  QueryResult Run(const std::string& sql, std::vector<Value> params = {},
                  ExecOptions options = {}) {
    stmts_.push_back(sql::MustParse(sql));
    const auto& sel = std::get<sql::SelectStatement>(stmts_.back());
    hbase::Session s(&cluster_);
    auto result = executor_->ExecuteSelect(s, sel, params, options);
    EXPECT_TRUE(result.ok()) << result.status() << " for " << sql;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  sql::Catalog catalog_;
  hbase::Cluster cluster_;
  std::unique_ptr<TableAdapter> adapter_;
  std::unique_ptr<Executor> executor_;
  std::vector<sql::Statement> stmts_;  // keep ASTs alive for the executor
};

TEST_F(SlotPipelineTest, JoinSkipsNullKeysIdenticallyForBothJoinMethods) {
  const std::string sql =
      "SELECT c_id, o_id FROM Customer as c, Orders as o "
      "WHERE c.c_id = o.o_c_id ORDER BY o_id";
  const std::vector<std::vector<Value>> expected = {
      {Value(1), Value(10)}, {Value(2), Value(11)},
      {Value(1), Value(13)}, {Value(4), Value(14)}};

  for (const bool force_hash : {false, true}) {
    ExecOptions options;
    options.force_hash_join = force_hash;
    QueryResult r = Run(sql, {}, options);
    EXPECT_EQ(r.row_count, 4u) << "force_hash=" << force_hash;
    EXPECT_EQ(r.dirty_restarts, 0);
    ASSERT_EQ(r.rows.size(), 4u) << "force_hash=" << force_hash;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(r.rows[i].size(), 2u);
      EXPECT_EQ(r.rows[i][0], expected[i][0]) << i;
      EXPECT_EQ(r.rows[i][1], expected[i][1]) << i;
    }
  }
}

TEST_F(SlotPipelineTest, HiddenOrderByColumnIsSortedThenDropped) {
  // c_city is not selected: it rides along as a hidden sort slot. DESC puts
  // NULL cities last; ties (NYC x2, NULL x2) keep scan (PK) order stably.
  QueryResult r = Run("SELECT c_uname FROM Customer ORDER BY c_city DESC");
  ASSERT_EQ(r.columns.size(), 1u);
  EXPECT_EQ(r.columns[0], "c_uname");
  ASSERT_EQ(r.rows.size(), 5u);
  const std::vector<std::string> expected = {"u2", "u1", "u4", "u3", "u5"};
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(r.rows[i].size(), 1u) << "hidden sort column not dropped";
    EXPECT_EQ(r.rows[i][0].as_string(), expected[i]) << i;
  }
}

TEST_F(SlotPipelineTest, TopNHeapMatchesFullStableSortPrefix) {
  const std::string base = "SELECT c_uname FROM Customer ORDER BY c_city DESC";
  QueryResult full = Run(base);
  ASSERT_EQ(full.rows.size(), 5u);
  for (const size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                         size_t{5}, size_t{10}}) {
    QueryResult limited = Run(base + " LIMIT " + std::to_string(k));
    const size_t want = std::min(k, full.rows.size());
    EXPECT_EQ(limited.row_count, want) << "k=" << k;
    ASSERT_EQ(limited.rows.size(), want) << "k=" << k;
    for (size_t i = 0; i < want; ++i) {
      EXPECT_EQ(limited.rows[i][0], full.rows[i][0]) << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SlotPipelineTest, GroupByCollectsNullsIntoOneGroup) {
  QueryResult r = Run("SELECT c_city, COUNT(*) as n FROM Customer "
                      "GROUP BY c_city");
  ASSERT_EQ(r.columns.size(), 2u);
  // Groups appear in first-seen order: NYC (c1), SF (c2), NULL (c3).
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].as_string(), "NYC");
  EXPECT_EQ(r.rows[0][1].as_int(), 2);
  EXPECT_EQ(r.rows[1][0].as_string(), "SF");
  EXPECT_EQ(r.rows[1][1].as_int(), 1);
  EXPECT_TRUE(r.rows[2][0].is_null());
  EXPECT_EQ(r.rows[2][1].as_int(), 2);
}

TEST_F(SlotPipelineTest, GroupByNullKeyAggregatesMatch) {
  QueryResult r = Run(
      "SELECT o_c_id, SUM(o_total) as t, COUNT(*) as n FROM Orders "
      "GROUP BY o_c_id");
  ASSERT_EQ(r.rows.size(), 4u);  // groups 1, 2, NULL, 4 in first-seen order
  EXPECT_EQ(r.rows[0][0].as_int(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), 10.0 + 2.5);
  EXPECT_EQ(r.rows[0][2].as_int(), 2);
  EXPECT_EQ(r.rows[1][0].as_int(), 2);
  EXPECT_DOUBLE_EQ(r.rows[1][1].as_double(), 5.5);
  EXPECT_TRUE(r.rows[2][0].is_null());
  EXPECT_DOUBLE_EQ(r.rows[2][1].as_double(), 7.0 + 9.9);
  EXPECT_EQ(r.rows[2][2].as_int(), 2);
  EXPECT_EQ(r.rows[3][0].as_int(), 4);
  EXPECT_DOUBLE_EQ(r.rows[3][1].as_double(), 1.0);
}

TEST_F(SlotPipelineTest, CoveredIndexScanDecodesThroughSlotMap) {
  // Covered columns are stored as (c_uname, c_id, c_city) but slots are
  // relation order (c_id, c_uname, c_city): values must land re-ordered.
  QueryResult r = Run("SELECT c_id, c_city FROM Customer WHERE c_uname = ?",
                      {Value("u2")});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2);
  EXPECT_EQ(r.rows[0][1].as_string(), "SF");

  // A NULL covered value decodes as NULL in its slot.
  QueryResult rnull = Run("SELECT c_id, c_city FROM Customer "
                          "WHERE c_uname = ?", {Value("u3")});
  ASSERT_EQ(rnull.rows.size(), 1u);
  EXPECT_EQ(rnull.rows[0][0].as_int(), 3);
  EXPECT_TRUE(rnull.rows[0][1].is_null());
}

TEST_F(SlotPipelineTest, AggregateOverEmptyInputStillProducesOneRow) {
  QueryResult r = Run("SELECT COUNT(*) as n, SUM(o_total) as t FROM Orders "
                      "WHERE o_id = 999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SlotPipelineTest, NumericJoinKeysMatchAcrossTypesForBothJoinMethods) {
  // A DOUBLE column joined against the INT PK: Value::Compare treats int 2
  // and double 2.0 as equal, so both the hash join (ValueKey) and the INL
  // byte-key lookup (type-coerced) must find the match; 2.5 matches nothing.
  ASSERT_TRUE(catalog_
                  .AddRelation({.name = "Payments",
                                .columns = {{"p_id", DataType::kInt},
                                            {"p_amount", DataType::kDouble}},
                                .primary_key = {"p_id"}})
                  .ok());
  ASSERT_TRUE(adapter_->CreateStorage("Payments").ok());
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_->Insert(s, "Payments",
                               {{"p_id", Value(1)}, {"p_amount", Value(2.0)}})
                  .ok());
  ASSERT_TRUE(adapter_->Insert(s, "Payments",
                               {{"p_id", Value(2)}, {"p_amount", Value(2.5)}})
                  .ok());

  const std::string sql =
      "SELECT p_id, c_uname FROM Payments as p, Customer as c "
      "WHERE c.c_id = p.p_amount ORDER BY p_id";
  // The unforced plan must actually take the byte-key INL path.
  stmts_.push_back(sql::MustParse(sql));
  auto explain = executor_->Explain(
      std::get<sql::SelectStatement>(stmts_.back()));
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("INDEX_NESTED_LOOP"), std::string::npos) << *explain;
  for (const bool force_hash : {false, true}) {
    ExecOptions options;
    options.force_hash_join = force_hash;
    QueryResult r = Run(sql, {}, options);
    ASSERT_EQ(r.rows.size(), 1u) << "force_hash=" << force_hash;
    EXPECT_EQ(r.rows[0][0].as_int(), 1);
    EXPECT_EQ(r.rows[0][1].as_string(), "u2");
  }
}

TEST_F(SlotPipelineTest, DirtyMarkStillAbortsAndRestartCountsSurvive) {
  hbase::Session s(&cluster_);
  ASSERT_TRUE(adapter_->MarkRow(s, "Customer", {Value(1)}, true).ok());

  stmts_.push_back(sql::MustParse("SELECT * FROM Customer"));
  const auto& sel = std::get<sql::SelectStatement>(stmts_.back());
  ExecOptions options;
  options.detect_dirty = true;
  options.max_dirty_retries = 2;
  auto dirty = executor_->ExecuteSelect(s, sel, {}, options);
  EXPECT_FALSE(dirty.ok());
  EXPECT_EQ(dirty.status().code(), StatusCode::kAborted);

  ASSERT_TRUE(adapter_->MarkRow(s, "Customer", {Value(1)}, false).ok());
  auto clean = executor_->ExecuteSelect(s, sel, {}, options);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->row_count, 5u);
  EXPECT_EQ(clean->dirty_restarts, 0);
}

}  // namespace
}  // namespace synergy::exec
