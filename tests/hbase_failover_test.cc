// Region-server failover: heartbeat-driven failure detection, WAL-backed
// region reassignment (crash = store lost + replay; fence = store intact,
// move without replay), degraded reads, and the client retry path riding
// through an outage.
#include "hbase/failover.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "hbase/cluster.h"
#include "hbase/region.h"
#include "testing/fault_injector.h"

namespace synergy::hbase {
namespace {

// One row per region of the 5-way pre-split table; region i lands on
// server i (round-robin assignment starts at 0 for each table).
const char* const kSplits[] = {"d", "h", "m", "r"};
const char* const kRows[] = {"a1", "e1", "i1", "n1", "s1"};

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fast detection so tests drive whole failovers with a few pumps: a
    // heartbeat round every 4 ticks, dead after 2 missed rounds.
    config_.heartbeat_every_rpcs = 4;
    config_.lease_missed_rounds = 2;
    cluster_.ConfigureFailover(config_);
    ASSERT_TRUE(cluster_
                    .CreateTable({.name = "t"},
                                 {kSplits, kSplits + 4})
                    .ok());
    Session s(&cluster_);
    for (const char* row : kRows) {
      ASSERT_TRUE(cluster_.Put(s, "t", row, {{"v", row}}).ok());
    }
  }

  /// Advances virtual time by `n` heartbeat rounds without issuing RPCs.
  void Rounds(int n) {
    for (int i = 0; i < n; ++i) {
      cluster_.failover().PumpVirtualTime(config_.heartbeat_every_rpcs *
                                          config_.us_per_tick);
    }
  }

  FailoverConfig config_;
  Cluster cluster_;
};

TEST_F(FailoverTest, RegionServerOfReportsHostingServer) {
  StatusOr<int> host = cluster_.RegionServerOf("t");
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(*host, 0);  // first region of a fresh table is on server 0
  EXPECT_EQ(cluster_.RegionServerOf("nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FailoverTest, CrashedServerIsUnavailableUntilLeaseExpires) {
  ASSERT_TRUE(cluster_.failover().CrashServer(0));
  EXPECT_EQ(cluster_.failover().state(0), ServerState::kCrashed);
  EXPECT_FALSE(cluster_.failover().AllHealthy());

  // Row "a1" lives on server 0: its store is gone and the master has not
  // noticed yet, so the read fails retryably.
  Session s(&cluster_);
  EXPECT_EQ(cluster_.Get(s, "t", "a1").status().code(),
            StatusCode::kUnavailable);
  // Rows on live servers are unaffected.
  EXPECT_TRUE(cluster_.Get(s, "t", "e1").ok());
}

TEST_F(FailoverTest, CrashReassignsAndReplaysWithoutLosingWrites) {
  ASSERT_TRUE(cluster_.failover().CrashServer(0));
  Rounds(config_.lease_missed_rounds + 2);  // expire lease + sweep

  EXPECT_EQ(cluster_.failover().state(0), ServerState::kDead);
  Session s(&cluster_);
  for (const char* row : kRows) {
    StatusOr<RowResult> got = cluster_.Get(s, "t", row);
    ASSERT_TRUE(got.ok()) << row << ": " << got.status();
    EXPECT_EQ(got->columns.at("v"), row);
  }
  const FailoverStats stats = cluster_.failover().stats();
  EXPECT_EQ(stats.crashes, 1);
  EXPECT_GE(stats.regions_reassigned, 1);
  EXPECT_GE(stats.edits_replayed, 1);  // crash wiped the store -> replay
  EXPECT_GT(cluster_.RegionServerOf("t").value(), 0);  // moved off server 0
}

TEST_F(FailoverTest, FencedServerMovesRegionsWithoutReplay) {
  cluster_.failover().FenceServer(1);
  Rounds(config_.lease_missed_rounds + 2);

  EXPECT_EQ(cluster_.failover().state(1), ServerState::kDead);
  Session s(&cluster_);
  StatusOr<RowResult> got = cluster_.Get(s, "t", "e1");  // was on server 1
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->columns.at("v"), "e1");
  const FailoverStats stats = cluster_.failover().stats();
  EXPECT_EQ(stats.fenced, 1);
  EXPECT_EQ(stats.crashes, 0);
  EXPECT_GE(stats.regions_reassigned, 1);
  // The store was intact: replaying would duplicate versions, so none ran.
  EXPECT_EQ(stats.edits_replayed, 0);
}

TEST_F(FailoverTest, DegradedReadsDuringReassignmentWindow) {
  // Zero-region batches freeze the sweep, holding the cluster in the
  // "declared dead, not yet reassigned" window.
  config_.reassign_regions_per_round = 0;
  cluster_.ConfigureFailover(config_);

  cluster_.failover().FenceServer(2);
  Rounds(config_.lease_missed_rounds + 2);
  ASSERT_EQ(cluster_.failover().state(2), ServerState::kDead);

  // Fenced store is intact: reads are served, flagged degraded.
  Session s(&cluster_);
  StatusOr<RowResult> got = cluster_.Get(s, "t", "i1");  // server 2's region
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->columns.at("v"), "i1");
  EXPECT_EQ(s.degraded_reads(), 1u);
  EXPECT_GE(cluster_.failover().stats().degraded_reads, 1);

  // Writes cannot be accepted mid-reassignment.
  EXPECT_EQ(cluster_.Put(s, "t", "i2", {{"v", "x"}}).code(),
            StatusCode::kUnavailable);
  EXPECT_GE(cluster_.failover().stats().writes_rejected, 1);
}

TEST_F(FailoverTest, CrashedStoreRefusesDegradedReads) {
  config_.reassign_regions_per_round = 0;
  cluster_.ConfigureFailover(config_);

  ASSERT_TRUE(cluster_.failover().CrashServer(3));
  Rounds(config_.lease_missed_rounds + 2);
  ASSERT_EQ(cluster_.failover().state(3), ServerState::kDead);

  // The store is lost and replay is frozen: stale data would be *wrong*
  // data, so the read fails retryably instead of degrading.
  Session s(&cluster_);
  EXPECT_EQ(cluster_.Get(s, "t", "n1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(s.degraded_reads(), 0u);
}

TEST_F(FailoverTest, RetryingClientRidesThroughCrash) {
  ASSERT_TRUE(cluster_.failover().CrashServer(0));

  // The client's backoffs pump virtual time: failure detection, lease
  // expiry and WAL replay all complete inside this one Get call.
  Session s(&cluster_);
  s.SetRetryPolicy(RetryPolicy{});
  StatusOr<RowResult> got = cluster_.Get(s, "t", "a1");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->columns.at("v"), "a1");
  EXPECT_GT(s.retries(), 0u);
  EXPECT_EQ(cluster_.failover().state(0), ServerState::kDead);
  EXPECT_GE(cluster_.failover().stats().edits_replayed, 1);
}

TEST_F(FailoverTest, LastLiveServerCannotBeTakenDown) {
  for (int sid = 0; sid < 4; ++sid) {
    ASSERT_TRUE(cluster_.failover().CrashServer(sid)) << sid;
    Rounds(config_.lease_missed_rounds + 2);
  }
  EXPECT_FALSE(cluster_.failover().CrashServer(4));
  EXPECT_EQ(cluster_.failover().state(4), ServerState::kLive);
  EXPECT_EQ(cluster_.failover().LiveServerCount(), 1);

  // Everything reassigned onto the survivor; no acknowledged write lost.
  Rounds(8);
  Session s(&cluster_);
  for (const char* row : kRows) {
    StatusOr<RowResult> got = cluster_.Get(s, "t", row);
    ASSERT_TRUE(got.ok()) << row << ": " << got.status();
    EXPECT_EQ(got->columns.at("v"), row);
  }
}

TEST_F(FailoverTest, InjectedServerCrashFiresOnHeartbeatRound) {
  fault::FaultInjector faults(7);
  faults.AddRule({.point = fault::FaultPoint::kRegionServerCrash,
                  .probability = 1.0,
                  .skip_hits = 0,
                  .max_fires = 1,
                  .table_prefix = "",
                  .server_id = 1});
  cluster_.SetFaultInjector(&faults);

  // RPC traffic drives the heartbeat that consults the rule; keep reading a
  // row hosted elsewhere so the reads themselves never fault.
  Session s(&cluster_);
  for (int i = 0; i < 16 * config_.heartbeat_every_rpcs; ++i) {
    ASSERT_TRUE(cluster_.Get(s, "t", "a1").ok());
  }
  EXPECT_EQ(cluster_.failover().state(1), ServerState::kDead);
  EXPECT_EQ(cluster_.failover().stats().crashes, 1);
  StatusOr<RowResult> got = cluster_.Get(s, "t", "e1");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->columns.at("v"), "e1");
}

TEST(RegionWalTest, SplitPartitionsEditLogByKey) {
  std::atomic<int64_t> clock{0};
  Region left("", "", &clock, /*server_id=*/0);
  left.Put("a", {{"v", "1"}});
  left.Put("m", {{"v", "2"}});
  left.Put("z", {{"v", "3"}});
  ASSERT_EQ(left.EditLogSize(), 3u);

  Region right("m", "", &clock, /*server_id=*/1);
  left.SplitInto("m", &right);
  EXPECT_EQ(left.EditLogSize(), 1u);
  EXPECT_EQ(right.EditLogSize(), 2u);

  // The daughter replays exactly its own half of the log.
  right.DropStore();
  EXPECT_TRUE(right.store_lost());
  EXPECT_FALSE(right.Get("z", ReadView{}).has_value());
  right.ReplayEdits();
  EXPECT_FALSE(right.store_lost());
  ASSERT_TRUE(right.Get("z", ReadView{}).has_value());
  EXPECT_EQ(right.Get("z", ReadView{})->columns.at("v"), "3");
  EXPECT_EQ(right.Get("m", ReadView{})->columns.at("v"), "2");
  // The parent kept its half untouched.
  ASSERT_TRUE(left.Get("a", ReadView{}).has_value());
  EXPECT_EQ(left.Get("a", ReadView{})->columns.at("v"), "1");
}

TEST(RegionWalTest, ReplayReproducesTombstonesAndRmwResults) {
  std::atomic<int64_t> clock{0};
  Region region("", "", &clock, 0);
  region.Put("r", {{"a", "1"}, {"b", "2"}});
  region.Delete("r");
  region.Put("r", {{"a", "3"}});
  ASSERT_TRUE(region.CheckAndPut("r", "a", "3", "4"));
  ASSERT_TRUE(region.Increment("r", "n", 5).ok());

  region.DropStore();
  region.ReplayEdits();
  std::optional<RowResult> row = region.Get("r", ReadView{});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->columns.at("a"), "4");
  EXPECT_EQ(row->columns.at("n"), "5");
  EXPECT_EQ(row->columns.find("b"), row->columns.end())
      << "tombstoned column resurrected by replay";
}

}  // namespace
}  // namespace synergy::hbase
